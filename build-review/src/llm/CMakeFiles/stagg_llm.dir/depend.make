# Empty dependencies file for stagg_llm.
# This may be replaced when dependencies are built.
