file(REMOVE_RECURSE
  "libstagg_llm.a"
)
