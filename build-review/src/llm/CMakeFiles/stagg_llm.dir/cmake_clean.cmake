file(REMOVE_RECURSE
  "CMakeFiles/stagg_llm.dir/Prompt.cpp.o"
  "CMakeFiles/stagg_llm.dir/Prompt.cpp.o.d"
  "CMakeFiles/stagg_llm.dir/ResponseParser.cpp.o"
  "CMakeFiles/stagg_llm.dir/ResponseParser.cpp.o.d"
  "CMakeFiles/stagg_llm.dir/SimulatedLlm.cpp.o"
  "CMakeFiles/stagg_llm.dir/SimulatedLlm.cpp.o.d"
  "libstagg_llm.a"
  "libstagg_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
