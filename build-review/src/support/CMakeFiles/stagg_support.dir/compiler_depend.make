# Empty compiler generated dependencies file for stagg_support.
# This may be replaced when dependencies are built.
