file(REMOVE_RECURSE
  "CMakeFiles/stagg_support.dir/Rational.cpp.o"
  "CMakeFiles/stagg_support.dir/Rational.cpp.o.d"
  "CMakeFiles/stagg_support.dir/Rng.cpp.o"
  "CMakeFiles/stagg_support.dir/Rng.cpp.o.d"
  "CMakeFiles/stagg_support.dir/StringUtils.cpp.o"
  "CMakeFiles/stagg_support.dir/StringUtils.cpp.o.d"
  "libstagg_support.a"
  "libstagg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
