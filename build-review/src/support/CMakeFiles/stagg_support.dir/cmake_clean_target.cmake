file(REMOVE_RECURSE
  "libstagg_support.a"
)
