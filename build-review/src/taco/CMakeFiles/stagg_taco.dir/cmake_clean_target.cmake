file(REMOVE_RECURSE
  "libstagg_taco.a"
)
