file(REMOVE_RECURSE
  "CMakeFiles/stagg_taco.dir/Ast.cpp.o"
  "CMakeFiles/stagg_taco.dir/Ast.cpp.o.d"
  "CMakeFiles/stagg_taco.dir/Codegen.cpp.o"
  "CMakeFiles/stagg_taco.dir/Codegen.cpp.o.d"
  "CMakeFiles/stagg_taco.dir/Lexer.cpp.o"
  "CMakeFiles/stagg_taco.dir/Lexer.cpp.o.d"
  "CMakeFiles/stagg_taco.dir/Parser.cpp.o"
  "CMakeFiles/stagg_taco.dir/Parser.cpp.o.d"
  "CMakeFiles/stagg_taco.dir/Printer.cpp.o"
  "CMakeFiles/stagg_taco.dir/Printer.cpp.o.d"
  "CMakeFiles/stagg_taco.dir/Semantics.cpp.o"
  "CMakeFiles/stagg_taco.dir/Semantics.cpp.o.d"
  "libstagg_taco.a"
  "libstagg_taco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_taco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
