
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taco/Ast.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Ast.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Ast.cpp.o.d"
  "/root/repo/src/taco/Codegen.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Codegen.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Codegen.cpp.o.d"
  "/root/repo/src/taco/Lexer.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Lexer.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Lexer.cpp.o.d"
  "/root/repo/src/taco/Parser.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Parser.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Parser.cpp.o.d"
  "/root/repo/src/taco/Printer.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Printer.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Printer.cpp.o.d"
  "/root/repo/src/taco/Semantics.cpp" "src/taco/CMakeFiles/stagg_taco.dir/Semantics.cpp.o" "gcc" "src/taco/CMakeFiles/stagg_taco.dir/Semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/stagg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
