# Empty dependencies file for stagg_taco.
# This may be replaced when dependencies are built.
