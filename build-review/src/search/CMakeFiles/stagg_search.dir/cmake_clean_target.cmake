file(REMOVE_RECURSE
  "libstagg_search.a"
)
