file(REMOVE_RECURSE
  "CMakeFiles/stagg_search.dir/BottomUp.cpp.o"
  "CMakeFiles/stagg_search.dir/BottomUp.cpp.o.d"
  "CMakeFiles/stagg_search.dir/CostModel.cpp.o"
  "CMakeFiles/stagg_search.dir/CostModel.cpp.o.d"
  "CMakeFiles/stagg_search.dir/Penalty.cpp.o"
  "CMakeFiles/stagg_search.dir/Penalty.cpp.o.d"
  "CMakeFiles/stagg_search.dir/TemplateState.cpp.o"
  "CMakeFiles/stagg_search.dir/TemplateState.cpp.o.d"
  "CMakeFiles/stagg_search.dir/TopDown.cpp.o"
  "CMakeFiles/stagg_search.dir/TopDown.cpp.o.d"
  "libstagg_search.a"
  "libstagg_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
