# Empty compiler generated dependencies file for stagg_search.
# This may be replaced when dependencies are built.
