file(REMOVE_RECURSE
  "libstagg_driver.a"
)
