# Empty dependencies file for stagg_driver.
# This may be replaced when dependencies are built.
