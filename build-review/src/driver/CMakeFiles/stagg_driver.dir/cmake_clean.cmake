file(REMOVE_RECURSE
  "CMakeFiles/stagg_driver.dir/Cli.cpp.o"
  "CMakeFiles/stagg_driver.dir/Cli.cpp.o.d"
  "CMakeFiles/stagg_driver.dir/ServeCommand.cpp.o"
  "CMakeFiles/stagg_driver.dir/ServeCommand.cpp.o.d"
  "CMakeFiles/stagg_driver.dir/SuiteRunner.cpp.o"
  "CMakeFiles/stagg_driver.dir/SuiteRunner.cpp.o.d"
  "libstagg_driver.a"
  "libstagg_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
