# Empty dependencies file for stagg_cli.
# This may be replaced when dependencies are built.
