file(REMOVE_RECURSE
  "../../stagg"
  "../../stagg.pdb"
  "CMakeFiles/stagg_cli.dir/Main.cpp.o"
  "CMakeFiles/stagg_cli.dir/Main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
