file(REMOVE_RECURSE
  "CMakeFiles/stagg_cfront.dir/Lexer.cpp.o"
  "CMakeFiles/stagg_cfront.dir/Lexer.cpp.o.d"
  "CMakeFiles/stagg_cfront.dir/Parser.cpp.o"
  "CMakeFiles/stagg_cfront.dir/Parser.cpp.o.d"
  "libstagg_cfront.a"
  "libstagg_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
