# Empty dependencies file for stagg_cfront.
# This may be replaced when dependencies are built.
