file(REMOVE_RECURSE
  "libstagg_cfront.a"
)
