file(REMOVE_RECURSE
  "CMakeFiles/stagg_serve.dir/BatchingOracle.cpp.o"
  "CMakeFiles/stagg_serve.dir/BatchingOracle.cpp.o.d"
  "CMakeFiles/stagg_serve.dir/LiftService.cpp.o"
  "CMakeFiles/stagg_serve.dir/LiftService.cpp.o.d"
  "CMakeFiles/stagg_serve.dir/RequestQueue.cpp.o"
  "CMakeFiles/stagg_serve.dir/RequestQueue.cpp.o.d"
  "CMakeFiles/stagg_serve.dir/ResultCache.cpp.o"
  "CMakeFiles/stagg_serve.dir/ResultCache.cpp.o.d"
  "libstagg_serve.a"
  "libstagg_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
