file(REMOVE_RECURSE
  "libstagg_serve.a"
)
