# Empty compiler generated dependencies file for stagg_serve.
# This may be replaced when dependencies are built.
