file(REMOVE_RECURSE
  "CMakeFiles/stagg_validate.dir/IoExamples.cpp.o"
  "CMakeFiles/stagg_validate.dir/IoExamples.cpp.o.d"
  "CMakeFiles/stagg_validate.dir/Validator.cpp.o"
  "CMakeFiles/stagg_validate.dir/Validator.cpp.o.d"
  "libstagg_validate.a"
  "libstagg_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
