# Empty dependencies file for stagg_validate.
# This may be replaced when dependencies are built.
