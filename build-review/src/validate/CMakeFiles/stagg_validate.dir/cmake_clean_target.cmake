file(REMOVE_RECURSE
  "libstagg_validate.a"
)
