file(REMOVE_RECURSE
  "CMakeFiles/stagg_verify.dir/BoundedVerifier.cpp.o"
  "CMakeFiles/stagg_verify.dir/BoundedVerifier.cpp.o.d"
  "libstagg_verify.a"
  "libstagg_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
