file(REMOVE_RECURSE
  "libstagg_verify.a"
)
