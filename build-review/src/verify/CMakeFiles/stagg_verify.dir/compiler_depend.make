# Empty compiler generated dependencies file for stagg_verify.
# This may be replaced when dependencies are built.
