# Empty dependencies file for stagg_core.
# This may be replaced when dependencies are built.
