file(REMOVE_RECURSE
  "libstagg_core.a"
)
