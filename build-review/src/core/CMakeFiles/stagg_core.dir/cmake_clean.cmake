file(REMOVE_RECURSE
  "CMakeFiles/stagg_core.dir/Stagg.cpp.o"
  "CMakeFiles/stagg_core.dir/Stagg.cpp.o.d"
  "libstagg_core.a"
  "libstagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
