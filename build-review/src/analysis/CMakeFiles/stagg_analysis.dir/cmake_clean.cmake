file(REMOVE_RECURSE
  "CMakeFiles/stagg_analysis.dir/Affine.cpp.o"
  "CMakeFiles/stagg_analysis.dir/Affine.cpp.o.d"
  "CMakeFiles/stagg_analysis.dir/KernelAnalysis.cpp.o"
  "CMakeFiles/stagg_analysis.dir/KernelAnalysis.cpp.o.d"
  "libstagg_analysis.a"
  "libstagg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
