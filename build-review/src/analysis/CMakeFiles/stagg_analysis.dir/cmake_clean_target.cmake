file(REMOVE_RECURSE
  "libstagg_analysis.a"
)
