# Empty dependencies file for stagg_analysis.
# This may be replaced when dependencies are built.
