file(REMOVE_RECURSE
  "libstagg_baselines.a"
)
