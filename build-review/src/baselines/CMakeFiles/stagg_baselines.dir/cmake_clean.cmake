file(REMOVE_RECURSE
  "CMakeFiles/stagg_baselines.dir/C2Taco.cpp.o"
  "CMakeFiles/stagg_baselines.dir/C2Taco.cpp.o.d"
  "CMakeFiles/stagg_baselines.dir/LlmOnly.cpp.o"
  "CMakeFiles/stagg_baselines.dir/LlmOnly.cpp.o.d"
  "CMakeFiles/stagg_baselines.dir/Tenspiler.cpp.o"
  "CMakeFiles/stagg_baselines.dir/Tenspiler.cpp.o.d"
  "libstagg_baselines.a"
  "libstagg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
