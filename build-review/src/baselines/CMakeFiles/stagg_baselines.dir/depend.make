# Empty dependencies file for stagg_baselines.
# This may be replaced when dependencies are built.
