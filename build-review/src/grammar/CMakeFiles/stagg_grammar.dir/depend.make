# Empty dependencies file for stagg_grammar.
# This may be replaced when dependencies are built.
