file(REMOVE_RECURSE
  "libstagg_grammar.a"
)
