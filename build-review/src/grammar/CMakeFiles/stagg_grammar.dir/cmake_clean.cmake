file(REMOVE_RECURSE
  "CMakeFiles/stagg_grammar.dir/DimensionList.cpp.o"
  "CMakeFiles/stagg_grammar.dir/DimensionList.cpp.o.d"
  "CMakeFiles/stagg_grammar.dir/Pcfg.cpp.o"
  "CMakeFiles/stagg_grammar.dir/Pcfg.cpp.o.d"
  "CMakeFiles/stagg_grammar.dir/Template.cpp.o"
  "CMakeFiles/stagg_grammar.dir/Template.cpp.o.d"
  "libstagg_grammar.a"
  "libstagg_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
