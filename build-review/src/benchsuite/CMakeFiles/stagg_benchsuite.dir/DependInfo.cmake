
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsuite/Benchmark.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/Benchmark.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/Benchmark.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteArtificial.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteArtificial.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteArtificial.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteBlas.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteBlas.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteBlas.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteDarknet.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteDarknet.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteDarknet.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteDsp.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteDsp.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteDsp.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteLlama.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteLlama.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteLlama.cpp.o.d"
  "/root/repo/src/benchsuite/SuiteMisc.cpp" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteMisc.cpp.o" "gcc" "src/benchsuite/CMakeFiles/stagg_benchsuite.dir/SuiteMisc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/taco/CMakeFiles/stagg_taco.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/stagg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
