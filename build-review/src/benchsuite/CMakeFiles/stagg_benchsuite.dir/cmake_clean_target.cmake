file(REMOVE_RECURSE
  "libstagg_benchsuite.a"
)
