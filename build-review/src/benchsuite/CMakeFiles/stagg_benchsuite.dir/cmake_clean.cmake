file(REMOVE_RECURSE
  "CMakeFiles/stagg_benchsuite.dir/Benchmark.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/Benchmark.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteArtificial.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteArtificial.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteBlas.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteBlas.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteDarknet.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteDarknet.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteDsp.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteDsp.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteLlama.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteLlama.cpp.o.d"
  "CMakeFiles/stagg_benchsuite.dir/SuiteMisc.cpp.o"
  "CMakeFiles/stagg_benchsuite.dir/SuiteMisc.cpp.o.d"
  "libstagg_benchsuite.a"
  "libstagg_benchsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_benchsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
