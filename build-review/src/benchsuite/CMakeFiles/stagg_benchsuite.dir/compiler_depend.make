# Empty compiler generated dependencies file for stagg_benchsuite.
# This may be replaced when dependencies are built.
