# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("cfront")
subdirs("taco")
subdirs("analysis")
subdirs("benchsuite")
subdirs("grammar")
subdirs("llm")
subdirs("search")
subdirs("validate")
subdirs("verify")
subdirs("core")
subdirs("baselines")
subdirs("serve")
subdirs("driver")
