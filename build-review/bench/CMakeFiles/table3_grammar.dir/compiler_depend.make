# Empty compiler generated dependencies file for table3_grammar.
# This may be replaced when dependencies are built.
