file(REMOVE_RECURSE
  "CMakeFiles/table3_grammar.dir/table3_grammar.cpp.o"
  "CMakeFiles/table3_grammar.dir/table3_grammar.cpp.o.d"
  "table3_grammar"
  "table3_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
