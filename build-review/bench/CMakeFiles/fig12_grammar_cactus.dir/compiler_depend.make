# Empty compiler generated dependencies file for fig12_grammar_cactus.
# This may be replaced when dependencies are built.
