file(REMOVE_RECURSE
  "CMakeFiles/fig12_grammar_cactus.dir/fig12_grammar_cactus.cpp.o"
  "CMakeFiles/fig12_grammar_cactus.dir/fig12_grammar_cactus.cpp.o.d"
  "fig12_grammar_cactus"
  "fig12_grammar_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_grammar_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
