# Empty dependencies file for fig11_grammar_success.
# This may be replaced when dependencies are built.
