file(REMOVE_RECURSE
  "CMakeFiles/fig11_grammar_success.dir/fig11_grammar_success.cpp.o"
  "CMakeFiles/fig11_grammar_success.dir/fig11_grammar_success.cpp.o.d"
  "fig11_grammar_success"
  "fig11_grammar_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_grammar_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
