file(REMOVE_RECURSE
  "CMakeFiles/table2_penalties.dir/table2_penalties.cpp.o"
  "CMakeFiles/table2_penalties.dir/table2_penalties.cpp.o.d"
  "table2_penalties"
  "table2_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
