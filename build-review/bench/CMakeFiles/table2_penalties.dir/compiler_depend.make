# Empty compiler generated dependencies file for table2_penalties.
# This may be replaced when dependencies are built.
