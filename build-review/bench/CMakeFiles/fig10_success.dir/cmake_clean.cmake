file(REMOVE_RECURSE
  "CMakeFiles/fig10_success.dir/fig10_success.cpp.o"
  "CMakeFiles/fig10_success.dir/fig10_success.cpp.o.d"
  "fig10_success"
  "fig10_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
