# Empty dependencies file for fig10_success.
# This may be replaced when dependencies are built.
