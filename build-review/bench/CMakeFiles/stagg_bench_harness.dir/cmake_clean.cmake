file(REMOVE_RECURSE
  "CMakeFiles/stagg_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/stagg_bench_harness.dir/Harness.cpp.o.d"
  "libstagg_bench_harness.a"
  "libstagg_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagg_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
