# Empty compiler generated dependencies file for stagg_bench_harness.
# This may be replaced when dependencies are built.
