file(REMOVE_RECURSE
  "libstagg_bench_harness.a"
)
