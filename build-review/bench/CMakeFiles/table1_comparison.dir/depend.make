# Empty dependencies file for table1_comparison.
# This may be replaced when dependencies are built.
