file(REMOVE_RECURSE
  "CMakeFiles/table1_comparison.dir/table1_comparison.cpp.o"
  "CMakeFiles/table1_comparison.dir/table1_comparison.cpp.o.d"
  "table1_comparison"
  "table1_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
