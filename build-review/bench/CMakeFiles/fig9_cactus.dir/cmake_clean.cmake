file(REMOVE_RECURSE
  "CMakeFiles/fig9_cactus.dir/fig9_cactus.cpp.o"
  "CMakeFiles/fig9_cactus.dir/fig9_cactus.cpp.o.d"
  "fig9_cactus"
  "fig9_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
