# Empty dependencies file for fig9_cactus.
# This may be replaced when dependencies are built.
