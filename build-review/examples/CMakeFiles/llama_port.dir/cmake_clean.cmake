file(REMOVE_RECURSE
  "CMakeFiles/llama_port.dir/llama_port.cpp.o"
  "CMakeFiles/llama_port.dir/llama_port.cpp.o.d"
  "llama_port"
  "llama_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llama_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
