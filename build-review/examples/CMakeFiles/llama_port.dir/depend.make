# Empty dependencies file for llama_port.
# This may be replaced when dependencies are built.
