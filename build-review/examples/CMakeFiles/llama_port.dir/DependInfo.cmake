
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/llama_port.cpp" "examples/CMakeFiles/llama_port.dir/llama_port.cpp.o" "gcc" "examples/CMakeFiles/llama_port.dir/llama_port.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/stagg_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/stagg_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/llm/CMakeFiles/stagg_llm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/stagg_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/search/CMakeFiles/stagg_search.dir/DependInfo.cmake"
  "/root/repo/build-review/src/grammar/CMakeFiles/stagg_grammar.dir/DependInfo.cmake"
  "/root/repo/build-review/src/verify/CMakeFiles/stagg_verify.dir/DependInfo.cmake"
  "/root/repo/build-review/src/validate/CMakeFiles/stagg_validate.dir/DependInfo.cmake"
  "/root/repo/build-review/src/benchsuite/CMakeFiles/stagg_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cfront/CMakeFiles/stagg_cfront.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taco/CMakeFiles/stagg_taco.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/stagg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
