file(REMOVE_RECURSE
  "CMakeFiles/solver_anatomy.dir/solver_anatomy.cpp.o"
  "CMakeFiles/solver_anatomy.dir/solver_anatomy.cpp.o.d"
  "solver_anatomy"
  "solver_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
