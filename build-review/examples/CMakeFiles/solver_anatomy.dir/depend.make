# Empty dependencies file for solver_anatomy.
# This may be replaced when dependencies are built.
