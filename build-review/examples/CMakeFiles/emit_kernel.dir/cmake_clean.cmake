file(REMOVE_RECURSE
  "CMakeFiles/emit_kernel.dir/emit_kernel.cpp.o"
  "CMakeFiles/emit_kernel.dir/emit_kernel.cpp.o.d"
  "emit_kernel"
  "emit_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
