# Empty compiler generated dependencies file for emit_kernel.
# This may be replaced when dependencies are built.
