file(REMOVE_RECURSE
  "CMakeFiles/lift_legacy_library.dir/lift_legacy_library.cpp.o"
  "CMakeFiles/lift_legacy_library.dir/lift_legacy_library.cpp.o.d"
  "lift_legacy_library"
  "lift_legacy_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_legacy_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
