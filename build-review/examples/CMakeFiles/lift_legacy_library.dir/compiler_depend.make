# Empty compiler generated dependencies file for lift_legacy_library.
# This may be replaced when dependencies are built.
