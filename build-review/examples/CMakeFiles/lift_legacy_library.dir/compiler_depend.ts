# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lift_legacy_library.
