# Empty compiler generated dependencies file for ValidatorTest.
# This may be replaced when dependencies are built.
