file(REMOVE_RECURSE
  "CMakeFiles/ValidatorTest.dir/ValidatorTest.cpp.o"
  "CMakeFiles/ValidatorTest.dir/ValidatorTest.cpp.o.d"
  "ValidatorTest"
  "ValidatorTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ValidatorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
