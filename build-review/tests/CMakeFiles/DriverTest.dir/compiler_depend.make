# Empty compiler generated dependencies file for DriverTest.
# This may be replaced when dependencies are built.
