file(REMOVE_RECURSE
  "CMakeFiles/DriverTest.dir/DriverTest.cpp.o"
  "CMakeFiles/DriverTest.dir/DriverTest.cpp.o.d"
  "DriverTest"
  "DriverTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DriverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
