# Empty compiler generated dependencies file for TacoSemanticsTest.
# This may be replaced when dependencies are built.
