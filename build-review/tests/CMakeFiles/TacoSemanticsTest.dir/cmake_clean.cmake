file(REMOVE_RECURSE
  "CMakeFiles/TacoSemanticsTest.dir/TacoSemanticsTest.cpp.o"
  "CMakeFiles/TacoSemanticsTest.dir/TacoSemanticsTest.cpp.o.d"
  "TacoSemanticsTest"
  "TacoSemanticsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TacoSemanticsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
