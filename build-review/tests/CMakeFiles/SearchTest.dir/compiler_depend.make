# Empty compiler generated dependencies file for SearchTest.
# This may be replaced when dependencies are built.
