file(REMOVE_RECURSE
  "CMakeFiles/SearchTest.dir/SearchTest.cpp.o"
  "CMakeFiles/SearchTest.dir/SearchTest.cpp.o.d"
  "SearchTest"
  "SearchTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SearchTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
