# Empty dependencies file for CfrontParserTest.
# This may be replaced when dependencies are built.
