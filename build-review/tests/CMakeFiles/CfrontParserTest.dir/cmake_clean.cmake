file(REMOVE_RECURSE
  "CMakeFiles/CfrontParserTest.dir/CfrontParserTest.cpp.o"
  "CMakeFiles/CfrontParserTest.dir/CfrontParserTest.cpp.o.d"
  "CfrontParserTest"
  "CfrontParserTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CfrontParserTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
