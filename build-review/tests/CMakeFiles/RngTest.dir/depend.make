# Empty dependencies file for RngTest.
# This may be replaced when dependencies are built.
