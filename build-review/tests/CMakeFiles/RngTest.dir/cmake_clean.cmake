file(REMOVE_RECURSE
  "CMakeFiles/RngTest.dir/RngTest.cpp.o"
  "CMakeFiles/RngTest.dir/RngTest.cpp.o.d"
  "RngTest"
  "RngTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RngTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
