# Empty compiler generated dependencies file for RngTest.
# This may be replaced when dependencies are built.
