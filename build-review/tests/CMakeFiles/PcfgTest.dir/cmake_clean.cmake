file(REMOVE_RECURSE
  "CMakeFiles/PcfgTest.dir/PcfgTest.cpp.o"
  "CMakeFiles/PcfgTest.dir/PcfgTest.cpp.o.d"
  "PcfgTest"
  "PcfgTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PcfgTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
