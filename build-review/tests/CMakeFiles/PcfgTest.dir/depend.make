# Empty dependencies file for PcfgTest.
# This may be replaced when dependencies are built.
