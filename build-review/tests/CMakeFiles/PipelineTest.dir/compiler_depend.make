# Empty compiler generated dependencies file for PipelineTest.
# This may be replaced when dependencies are built.
