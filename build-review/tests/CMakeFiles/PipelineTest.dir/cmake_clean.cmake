file(REMOVE_RECURSE
  "CMakeFiles/PipelineTest.dir/PipelineTest.cpp.o"
  "CMakeFiles/PipelineTest.dir/PipelineTest.cpp.o.d"
  "PipelineTest"
  "PipelineTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PipelineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
