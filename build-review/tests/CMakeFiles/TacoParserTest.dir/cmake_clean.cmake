file(REMOVE_RECURSE
  "CMakeFiles/TacoParserTest.dir/TacoParserTest.cpp.o"
  "CMakeFiles/TacoParserTest.dir/TacoParserTest.cpp.o.d"
  "TacoParserTest"
  "TacoParserTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TacoParserTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
