# Empty compiler generated dependencies file for TacoParserTest.
# This may be replaced when dependencies are built.
