# Empty dependencies file for CodegenTest.
# This may be replaced when dependencies are built.
