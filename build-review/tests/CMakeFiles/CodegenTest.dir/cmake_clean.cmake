file(REMOVE_RECURSE
  "CMakeFiles/CodegenTest.dir/CodegenTest.cpp.o"
  "CMakeFiles/CodegenTest.dir/CodegenTest.cpp.o.d"
  "CodegenTest"
  "CodegenTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CodegenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
