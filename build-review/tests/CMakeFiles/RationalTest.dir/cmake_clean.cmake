file(REMOVE_RECURSE
  "CMakeFiles/RationalTest.dir/RationalTest.cpp.o"
  "CMakeFiles/RationalTest.dir/RationalTest.cpp.o.d"
  "RationalTest"
  "RationalTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RationalTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
