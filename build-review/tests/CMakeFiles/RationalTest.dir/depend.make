# Empty dependencies file for RationalTest.
# This may be replaced when dependencies are built.
