# Empty compiler generated dependencies file for BaselineTest.
# This may be replaced when dependencies are built.
