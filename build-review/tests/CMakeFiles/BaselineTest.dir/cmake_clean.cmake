file(REMOVE_RECURSE
  "BaselineTest"
  "BaselineTest.pdb"
  "CMakeFiles/BaselineTest.dir/BaselineTest.cpp.o"
  "CMakeFiles/BaselineTest.dir/BaselineTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BaselineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
