# Empty dependencies file for VerifierTest.
# This may be replaced when dependencies are built.
