file(REMOVE_RECURSE
  "CMakeFiles/VerifierTest.dir/VerifierTest.cpp.o"
  "CMakeFiles/VerifierTest.dir/VerifierTest.cpp.o.d"
  "VerifierTest"
  "VerifierTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VerifierTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
