# Empty compiler generated dependencies file for CfrontInterpTest.
# This may be replaced when dependencies are built.
