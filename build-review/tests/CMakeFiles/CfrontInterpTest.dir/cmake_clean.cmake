file(REMOVE_RECURSE
  "CMakeFiles/CfrontInterpTest.dir/CfrontInterpTest.cpp.o"
  "CMakeFiles/CfrontInterpTest.dir/CfrontInterpTest.cpp.o.d"
  "CfrontInterpTest"
  "CfrontInterpTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CfrontInterpTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
