file(REMOVE_RECURSE
  "CMakeFiles/ServeTest.dir/ServeTest.cpp.o"
  "CMakeFiles/ServeTest.dir/ServeTest.cpp.o.d"
  "ServeTest"
  "ServeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ServeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
