# Empty compiler generated dependencies file for ServeTest.
# This may be replaced when dependencies are built.
