file(REMOVE_RECURSE
  "CMakeFiles/DimensionListTest.dir/DimensionListTest.cpp.o"
  "CMakeFiles/DimensionListTest.dir/DimensionListTest.cpp.o.d"
  "DimensionListTest"
  "DimensionListTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DimensionListTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
