# Empty dependencies file for DimensionListTest.
# This may be replaced when dependencies are built.
