file(REMOVE_RECURSE
  "CMakeFiles/EinsumTest.dir/EinsumTest.cpp.o"
  "CMakeFiles/EinsumTest.dir/EinsumTest.cpp.o.d"
  "EinsumTest"
  "EinsumTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EinsumTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
