# Empty compiler generated dependencies file for EinsumTest.
# This may be replaced when dependencies are built.
