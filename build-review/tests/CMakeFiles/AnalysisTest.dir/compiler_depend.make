# Empty compiler generated dependencies file for AnalysisTest.
# This may be replaced when dependencies are built.
