
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/AnalysisTest.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/AnalysisTest.dir/AnalysisTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/analysis/CMakeFiles/stagg_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cfront/CMakeFiles/stagg_cfront.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/stagg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
