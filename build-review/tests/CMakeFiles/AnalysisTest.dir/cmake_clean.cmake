file(REMOVE_RECURSE
  "AnalysisTest"
  "AnalysisTest.pdb"
  "CMakeFiles/AnalysisTest.dir/AnalysisTest.cpp.o"
  "CMakeFiles/AnalysisTest.dir/AnalysisTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AnalysisTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
