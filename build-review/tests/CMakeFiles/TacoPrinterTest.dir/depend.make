# Empty dependencies file for TacoPrinterTest.
# This may be replaced when dependencies are built.
