file(REMOVE_RECURSE
  "CMakeFiles/TacoPrinterTest.dir/TacoPrinterTest.cpp.o"
  "CMakeFiles/TacoPrinterTest.dir/TacoPrinterTest.cpp.o.d"
  "TacoPrinterTest"
  "TacoPrinterTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TacoPrinterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
