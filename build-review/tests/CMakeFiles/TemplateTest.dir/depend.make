# Empty dependencies file for TemplateTest.
# This may be replaced when dependencies are built.
