file(REMOVE_RECURSE
  "CMakeFiles/TemplateTest.dir/TemplateTest.cpp.o"
  "CMakeFiles/TemplateTest.dir/TemplateTest.cpp.o.d"
  "TemplateTest"
  "TemplateTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TemplateTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
