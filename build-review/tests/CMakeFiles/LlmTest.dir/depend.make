# Empty dependencies file for LlmTest.
# This may be replaced when dependencies are built.
