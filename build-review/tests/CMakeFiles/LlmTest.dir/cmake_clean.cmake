file(REMOVE_RECURSE
  "CMakeFiles/LlmTest.dir/LlmTest.cpp.o"
  "CMakeFiles/LlmTest.dir/LlmTest.cpp.o.d"
  "LlmTest"
  "LlmTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LlmTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
