# Empty compiler generated dependencies file for SuiteTest.
# This may be replaced when dependencies are built.
