file(REMOVE_RECURSE
  "CMakeFiles/SuiteTest.dir/SuiteTest.cpp.o"
  "CMakeFiles/SuiteTest.dir/SuiteTest.cpp.o.d"
  "SuiteTest"
  "SuiteTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SuiteTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
