file(REMOVE_RECURSE
  "CMakeFiles/PenaltyTest.dir/PenaltyTest.cpp.o"
  "CMakeFiles/PenaltyTest.dir/PenaltyTest.cpp.o.d"
  "PenaltyTest"
  "PenaltyTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PenaltyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
