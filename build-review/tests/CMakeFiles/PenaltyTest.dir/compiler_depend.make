# Empty compiler generated dependencies file for PenaltyTest.
# This may be replaced when dependencies are built.
