//===- cfront/Parser.cpp - Parser for the mini-C front end ----------------===//

#include "cfront/Parser.h"

#include "cfront/Lexer.h"

using namespace stagg;
using namespace stagg::cfront;

namespace {

class CParser {
public:
  explicit CParser(std::vector<CToken> Tokens) : Tokens(std::move(Tokens)) {}

  const CToken &peek(size_t Ahead = 0) const {
    size_t Index = Pos + Ahead;
    return Index < Tokens.size() ? Tokens[Index] : Tokens.back();
  }
  const CToken &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool checkPunct(const std::string &Spelling) const {
    return peek().Kind == CTokKind::Punct && peek().Spelling == Spelling;
  }
  bool matchPunct(const std::string &Spelling) {
    if (!checkPunct(Spelling))
      return false;
    advance();
    return true;
  }
  bool checkKeyword(const std::string &Word) const {
    return peek().Kind == CTokKind::Keyword && peek().Spelling == Word;
  }
  bool matchKeyword(const std::string &Word) {
    if (!checkKeyword(Word))
      return false;
    advance();
    return true;
  }

  void fail(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage =
          Message + " (line " + std::to_string(peek().Line) + ")";
  }
  bool hadError() const { return !ErrorMessage.empty(); }
  const std::string &error() const { return ErrorMessage; }

  bool atTypeKeyword() const {
    return checkKeyword("int") || checkKeyword("float") ||
           checkKeyword("double") || checkKeyword("void");
  }

  /// type := ("int" | "float" | "double" | "void") "*"*
  CType parseType() {
    CType Type;
    if (checkKeyword("int"))
      Type.Base = BaseType::Int;
    else if (checkKeyword("float"))
      Type.Base = BaseType::Float;
    else if (checkKeyword("double"))
      Type.Base = BaseType::Double;
    else if (checkKeyword("void"))
      Type.Base = BaseType::Void;
    else {
      fail("expected type keyword");
      return Type;
    }
    advance();
    while (matchPunct("*"))
      ++Type.PointerDepth;
    return Type;
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  /// primary := INT | FLOAT | IDENT | "(" expr ")"
  CExprPtr parsePrimary() {
    if (peek().Kind == CTokKind::Integer) {
      int64_t Value = advance().IntValue;
      return std::make_unique<IntLit>(Value);
    }
    if (peek().Kind == CTokKind::Float) {
      const CToken &Tok = advance();
      int64_t Mantissa = Tok.FloatMantissa;
      int Scale = Tok.FloatScale;
      return std::make_unique<FloatLit>(Mantissa, Scale);
    }
    if (peek().Kind == CTokKind::Identifier) {
      std::string Name = advance().Spelling;
      return std::make_unique<VarRef>(std::move(Name));
    }
    if (matchPunct("(")) {
      // A parenthesized cast like `(float) x` is parsed and discarded.
      if (atTypeKeyword()) {
        parseType();
        if (!matchPunct(")")) {
          fail("expected ')' after cast type");
          return nullptr;
        }
        return parseUnary();
      }
      CExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!matchPunct(")")) {
        fail("expected ')'");
        return nullptr;
      }
      return parsePostfixSuffixes(std::move(Inner));
    }
    fail("expected expression");
    return nullptr;
  }

  /// postfix := primary ( "[" expr "]" | "++" | "--" )*
  CExprPtr parsePostfixSuffixes(CExprPtr Base) {
    for (;;) {
      if (matchPunct("[")) {
        CExprPtr Index = parseExpr();
        if (!Index)
          return nullptr;
        if (!matchPunct("]")) {
          fail("expected ']'");
          return nullptr;
        }
        Base = std::make_unique<CIndex>(std::move(Base), std::move(Index));
        continue;
      }
      if (checkPunct("++") || checkPunct("--")) {
        bool IsIncrement = advance().Spelling == "++";
        Base = std::make_unique<CIncDec>(IsIncrement, /*IsPrefix=*/false,
                                         std::move(Base));
        continue;
      }
      return Base;
    }
  }

  CExprPtr parsePostfix() {
    CExprPtr Base = parsePrimary();
    if (!Base)
      return nullptr;
    return parsePostfixSuffixes(std::move(Base));
  }

  /// unary := ("-" | "*" | "&" | "!" | "++" | "--") unary | postfix
  CExprPtr parseUnary() {
    if (matchPunct("-")) {
      CExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return std::make_unique<CUnary>(CUnOp::Neg, std::move(Sub));
    }
    if (matchPunct("*")) {
      CExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return parsePostfixSuffixes(
          std::make_unique<CUnary>(CUnOp::Deref, std::move(Sub)));
    }
    if (matchPunct("&")) {
      CExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return std::make_unique<CUnary>(CUnOp::AddrOf, std::move(Sub));
    }
    if (matchPunct("!")) {
      CExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return std::make_unique<CUnary>(CUnOp::Not, std::move(Sub));
    }
    if (checkPunct("++") || checkPunct("--")) {
      bool IsIncrement = advance().Spelling == "++";
      CExprPtr Target = parseUnary();
      if (!Target)
        return nullptr;
      return std::make_unique<CIncDec>(IsIncrement, /*IsPrefix=*/true,
                                       std::move(Target));
    }
    return parsePostfix();
  }

  /// Precedence table for binary operators; higher binds tighter.
  static int binPrecedence(const std::string &Spelling) {
    if (Spelling == "*" || Spelling == "/" || Spelling == "%")
      return 6;
    if (Spelling == "+" || Spelling == "-")
      return 5;
    if (Spelling == "<" || Spelling == "<=" || Spelling == ">" ||
        Spelling == ">=")
      return 4;
    if (Spelling == "==" || Spelling == "!=")
      return 3;
    if (Spelling == "&&")
      return 2;
    if (Spelling == "||")
      return 1;
    return 0;
  }

  static CBinOp binOpFor(const std::string &Spelling) {
    if (Spelling == "*")
      return CBinOp::Mul;
    if (Spelling == "/")
      return CBinOp::Div;
    if (Spelling == "%")
      return CBinOp::Mod;
    if (Spelling == "+")
      return CBinOp::Add;
    if (Spelling == "-")
      return CBinOp::Sub;
    if (Spelling == "<")
      return CBinOp::Lt;
    if (Spelling == "<=")
      return CBinOp::Le;
    if (Spelling == ">")
      return CBinOp::Gt;
    if (Spelling == ">=")
      return CBinOp::Ge;
    if (Spelling == "==")
      return CBinOp::Eq;
    if (Spelling == "!=")
      return CBinOp::Ne;
    if (Spelling == "&&")
      return CBinOp::LAnd;
    return CBinOp::LOr;
  }

  CExprPtr parseBinary(int MinPrecedence) {
    CExprPtr Lhs = parseUnary();
    if (!Lhs)
      return nullptr;
    for (;;) {
      if (peek().Kind != CTokKind::Punct)
        return Lhs;
      int Precedence = binPrecedence(peek().Spelling);
      if (Precedence == 0 || Precedence < MinPrecedence)
        return Lhs;
      std::string Spelling = advance().Spelling;
      CExprPtr Rhs = parseBinary(Precedence + 1);
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<CBinary>(binOpFor(Spelling), std::move(Lhs),
                                      std::move(Rhs));
    }
  }

  /// expr := binary [("=" | "+=" | "-=" | "*=" | "/=") expr]
  CExprPtr parseExpr() {
    CExprPtr Lhs = parseBinary(1);
    if (!Lhs)
      return nullptr;
    if (peek().Kind == CTokKind::Punct) {
      const std::string &Spelling = peek().Spelling;
      CAssignOp Op;
      bool IsAssign = true;
      if (Spelling == "=")
        Op = CAssignOp::Plain;
      else if (Spelling == "+=")
        Op = CAssignOp::Add;
      else if (Spelling == "-=")
        Op = CAssignOp::Sub;
      else if (Spelling == "*=")
        Op = CAssignOp::Mul;
      else if (Spelling == "/=")
        Op = CAssignOp::Div;
      else
        IsAssign = false;
      if (IsAssign) {
        advance();
        CExprPtr Rhs = parseExpr();
        if (!Rhs)
          return nullptr;
        return std::make_unique<CAssign>(Op, std::move(Lhs), std::move(Rhs));
      }
    }
    return Lhs;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Parses `type name [= init] ("," name [= init])* ";"` into a block of
  /// single-declarator statements (or a single CDeclStmt when alone).
  CStmtPtr parseDecl() {
    SourceLoc Loc{peek().Line, peek().Col};
    CType Type = parseType();
    if (hadError())
      return nullptr;
    std::vector<CStmtPtr> Decls;
    do {
      CType DeclType = Type;
      // Per-declarator pointers: `int *p, i;`.
      while (matchPunct("*"))
        ++DeclType.PointerDepth;
      if (peek().Kind != CTokKind::Identifier) {
        fail("expected declarator name");
        return nullptr;
      }
      std::string Name = advance().Spelling;
      CExprPtr Init;
      if (matchPunct("=")) {
        Init = parseExpr();
        if (!Init)
          return nullptr;
      }
      Decls.push_back(
          std::make_unique<CDeclStmt>(DeclType, std::move(Name), std::move(Init)));
      Decls.back()->setLoc(Loc);
    } while (matchPunct(","));
    if (!matchPunct(";")) {
      fail("expected ';' after declaration");
      return nullptr;
    }
    if (Decls.size() == 1)
      return std::move(Decls.front());
    CStmtPtr Block = std::make_unique<CBlock>(std::move(Decls));
    Block->setLoc(Loc);
    return Block;
  }

  CStmtPtr parseStmt() {
    SourceLoc Loc{peek().Line, peek().Col};
    CStmtPtr S = parseStmtInner();
    if (S && !S->loc().valid())
      S->setLoc(Loc);
    return S;
  }

  CStmtPtr parseStmtInner() {
    if (matchPunct(";"))
      return std::make_unique<CEmpty>();
    if (checkPunct("{"))
      return parseBlock();
    if (atTypeKeyword())
      return parseDecl();
    if (matchKeyword("return")) {
      CExprPtr Value;
      if (!checkPunct(";")) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!matchPunct(";")) {
        fail("expected ';' after return");
        return nullptr;
      }
      return std::make_unique<CReturn>(std::move(Value));
    }
    if (matchKeyword("for")) {
      if (!matchPunct("(")) {
        fail("expected '(' after for");
        return nullptr;
      }
      CStmtPtr Init;
      if (!matchPunct(";")) {
        if (atTypeKeyword()) {
          Init = parseDecl();
        } else {
          CExprPtr E = parseExpr();
          if (!E)
            return nullptr;
          if (!matchPunct(";")) {
            fail("expected ';' in for header");
            return nullptr;
          }
          Init = std::make_unique<CExprStmt>(std::move(E));
        }
        if (!Init)
          return nullptr;
      }
      CExprPtr Cond;
      if (!checkPunct(";")) {
        Cond = parseExpr();
        if (!Cond)
          return nullptr;
      }
      if (!matchPunct(";")) {
        fail("expected second ';' in for header");
        return nullptr;
      }
      CExprPtr Step;
      if (!checkPunct(")")) {
        Step = parseExpr();
        if (!Step)
          return nullptr;
      }
      if (!matchPunct(")")) {
        fail("expected ')' in for header");
        return nullptr;
      }
      CStmtPtr Body = parseStmt();
      if (!Body)
        return nullptr;
      return std::make_unique<CFor>(std::move(Init), std::move(Cond),
                                    std::move(Step), std::move(Body));
    }
    if (matchKeyword("while")) {
      if (!matchPunct("(")) {
        fail("expected '(' after while");
        return nullptr;
      }
      CExprPtr Cond = parseExpr();
      if (!Cond)
        return nullptr;
      if (!matchPunct(")")) {
        fail("expected ')' after while condition");
        return nullptr;
      }
      CStmtPtr Body = parseStmt();
      if (!Body)
        return nullptr;
      return std::make_unique<CWhile>(std::move(Cond), std::move(Body));
    }
    if (matchKeyword("if")) {
      if (!matchPunct("(")) {
        fail("expected '(' after if");
        return nullptr;
      }
      CExprPtr Cond = parseExpr();
      if (!Cond)
        return nullptr;
      if (!matchPunct(")")) {
        fail("expected ')' after if condition");
        return nullptr;
      }
      CStmtPtr Then = parseStmt();
      if (!Then)
        return nullptr;
      CStmtPtr Else;
      if (matchKeyword("else")) {
        Else = parseStmt();
        if (!Else)
          return nullptr;
      }
      return std::make_unique<CIf>(std::move(Cond), std::move(Then),
                                   std::move(Else));
    }
    // Expression statement.
    CExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!matchPunct(";")) {
      fail("expected ';' after expression");
      return nullptr;
    }
    return std::make_unique<CExprStmt>(std::move(E));
  }

  CStmtPtr parseBlock() {
    if (!matchPunct("{")) {
      fail("expected '{'");
      return nullptr;
    }
    std::vector<CStmtPtr> Stmts;
    while (!checkPunct("}") && peek().Kind != CTokKind::End) {
      CStmtPtr Stmt = parseStmt();
      if (!Stmt)
        return nullptr;
      Stmts.push_back(std::move(Stmt));
    }
    if (!matchPunct("}")) {
      fail("expected '}'");
      return nullptr;
    }
    return std::make_unique<CBlock>(std::move(Stmts));
  }

  std::unique_ptr<CFunction> parseFunction() {
    auto Function = std::make_unique<CFunction>();
    Function->ReturnType = parseType();
    if (hadError())
      return nullptr;
    if (peek().Kind != CTokKind::Identifier) {
      fail("expected function name");
      return nullptr;
    }
    Function->Name = advance().Spelling;
    if (!matchPunct("(")) {
      fail("expected '(' after function name");
      return nullptr;
    }
    if (!checkPunct(")")) {
      do {
        CParam Param;
        Param.Type = parseType();
        if (hadError())
          return nullptr;
        if (peek().Kind != CTokKind::Identifier) {
          fail("expected parameter name");
          return nullptr;
        }
        Param.Name = advance().Spelling;
        // Array parameter syntax `T a[]` means pointer.
        if (matchPunct("[")) {
          if (peek().Kind == CTokKind::Integer)
            advance();
          if (!matchPunct("]")) {
            fail("expected ']' in array parameter");
            return nullptr;
          }
          ++Param.Type.PointerDepth;
        }
        Function->Params.push_back(std::move(Param));
      } while (matchPunct(","));
    }
    if (!matchPunct(")")) {
      fail("expected ')' after parameters");
      return nullptr;
    }
    CStmtPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    Function->Body.reset(static_cast<CBlock *>(Body.release()));
    return Function;
  }

private:
  std::vector<CToken> Tokens;
  size_t Pos = 0;
  std::string ErrorMessage;
};

} // namespace

CParseResult cfront::parseCFunction(const std::string &Source) {
  CParser Parser(lexC(Source));
  CParseResult Result;
  Result.Function = Parser.parseFunction();
  if (!Result.Function)
    Result.Error = Parser.error().empty() ? "parse failed" : Parser.error();
  return Result;
}
