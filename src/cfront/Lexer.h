//===- cfront/Lexer.h - Tokenizer for the mini-C front end ------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the C subset. Comments (`//` and `/* */`) are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_CFRONT_LEXER_H
#define STAGG_CFRONT_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace stagg {
namespace cfront {

enum class CTokKind {
  Identifier,
  Keyword, // int, float, double, void, for, while, if, else, return
  Integer,
  Float,
  Punct, // one of the operator/punctuation spellings below
  End,
  Invalid,
};

/// A token; Punct tokens carry their exact spelling (e.g. "+=", "++", "<=").
struct CToken {
  CTokKind Kind = CTokKind::Invalid;
  std::string Spelling;
  int64_t IntValue = 0;
  int64_t FloatMantissa = 0;
  int FloatScale = 0;
  int Line = 1;
  int Col = 1; ///< 1-based column of the token's first character.
};

/// Tokenizes \p Source; the result ends with an End token.
std::vector<CToken> lexC(const std::string &Source);

} // namespace cfront
} // namespace stagg

#endif // STAGG_CFRONT_LEXER_H
