//===- cfront/Parser.h - Parser for the mini-C front end --------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a CFunction from a single-function
/// translation unit. Failures are reported as diagnostics (no exceptions);
/// benchmark sources are authored in-repo, so a parse failure is a bug and
/// tests assert success.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_CFRONT_PARSER_H
#define STAGG_CFRONT_PARSER_H

#include "cfront/Ast.h"

#include <memory>
#include <string>

namespace stagg {
namespace cfront {

/// Outcome of parsing a function definition.
struct CParseResult {
  std::unique_ptr<CFunction> Function;
  std::string Error;

  bool ok() const { return Function != nullptr; }
};

/// Parses a translation unit containing exactly one function definition.
CParseResult parseCFunction(const std::string &Source);

} // namespace cfront
} // namespace stagg

#endif // STAGG_CFRONT_PARSER_H
