//===- cfront/Interp.h - Mini-C interpreter ---------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete interpreter for the mini-C AST, parameterized over the numeric
/// data type: the validator executes kernels over `double`, the bounded
/// verifier over `Rational` (mirroring the paper's rational-datatype CBMC
/// extension). Integer arithmetic (loop counters, subscripts) is evaluated
/// exactly over int64 in both instantiations; only *data* values take the
/// template type.
///
/// The interpreter is defensive: out-of-bounds accesses, dereferencing
/// non-pointers, and step-budget exhaustion all produce an error result
/// instead of undefined behaviour, so fuzzing and failure-injection tests can
/// drive it safely.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_CFRONT_INTERP_H
#define STAGG_CFRONT_INTERP_H

#include "cfront/Ast.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace cfront {

/// Execution environment: named data arrays (pointer parameters), integer
/// scalar parameters (sizes), and numeric scalar parameters (e.g. `alpha`).
template <typename T> struct ExecEnv {
  std::map<std::string, std::vector<T>> Arrays;
  std::map<std::string, int64_t> IntScalars;
  std::map<std::string, T> NumScalars;
};

/// Outcome of an execution.
struct ExecStatus {
  bool Ok = false;
  std::string Error;

  static ExecStatus success() {
    ExecStatus S;
    S.Ok = true;
    return S;
  }
  static ExecStatus failure(std::string Message) {
    ExecStatus S;
    S.Error = std::move(Message);
    return S;
  }
};

namespace detail {

/// A dynamically-typed runtime value.
template <typename T> struct CValue {
  enum class Kind { Int, Num, Ptr } K = Kind::Int;
  int64_t I = 0;
  T N{};
  int Buf = -1;
  int64_t Off = 0;

  static CValue fromInt(int64_t V) {
    CValue R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static CValue fromNum(T V) {
    CValue R;
    R.K = Kind::Num;
    R.N = std::move(V);
    return R;
  }
  static CValue fromPtr(int Buf, int64_t Off) {
    CValue R;
    R.K = Kind::Ptr;
    R.Buf = Buf;
    R.Off = Off;
    return R;
  }

  bool isInt() const { return K == Kind::Int; }
  bool isNum() const { return K == Kind::Num; }
  bool isPtr() const { return K == Kind::Ptr; }

  /// Numeric view: ints promote to T.
  T asNum() const { return isInt() ? T(I) : N; }
};

/// Interpreter state for one call.
template <typename T> class Machine {
public:
  Machine(const CFunction &Fn, ExecEnv<T> &Env, int64_t StepBudget,
          bool TrustBounds = false)
      : Fn(Fn), Env(Env), StepsLeft(StepBudget), TrustBounds(TrustBounds) {}

  ExecStatus run() {
    // Bind parameters.
    for (const CParam &Param : Fn.Params) {
      if (Param.Type.isPointer()) {
        auto It = Env.Arrays.find(Param.Name);
        if (It == Env.Arrays.end())
          return ExecStatus::failure("missing array argument '" + Param.Name +
                                     "'");
        BufferNames.push_back(Param.Name);
        Locals[Param.Name] = CValue<T>::fromPtr(
            static_cast<int>(BufferNames.size() - 1), 0);
        continue;
      }
      if (auto It = Env.IntScalars.find(Param.Name); It != Env.IntScalars.end()) {
        Locals[Param.Name] = CValue<T>::fromInt(It->second);
        continue;
      }
      if (auto It = Env.NumScalars.find(Param.Name); It != Env.NumScalars.end()) {
        Locals[Param.Name] = CValue<T>::fromNum(It->second);
        continue;
      }
      return ExecStatus::failure("missing scalar argument '" + Param.Name +
                                 "'");
    }
    execStmt(*Fn.Body);
    if (!Err.empty())
      return ExecStatus::failure(Err);
    return ExecStatus::success();
  }

private:
  bool budget() {
    if (--StepsLeft <= 0) {
      fail("step budget exhausted (possible non-termination)");
      return false;
    }
    return true;
  }

  void fail(const std::string &Message) {
    if (Err.empty())
      Err = Message;
  }
  bool failed() const { return !Err.empty(); }

  std::vector<T> &buffer(int Buf) { return Env.Arrays[BufferNames[Buf]]; }

  //===------------------------------------------------------------------===//
  // Expression evaluation
  //===------------------------------------------------------------------===//

  /// The location an lvalue names: a local variable slot or a buffer element.
  struct Place {
    bool IsLocal = false;
    std::string Name;
    int Buf = -1;
    int64_t Off = 0;
  };

  bool validBuffer(int Buf) {
    if (Buf >= 0 && Buf < static_cast<int>(BufferNames.size()))
      return true;
    fail("access through an uninitialized pointer");
    return false;
  }

  CValue<T> readPlace(const Place &P) {
    if (P.IsLocal) {
      auto It = Locals.find(P.Name);
      if (It == Locals.end()) {
        fail("use of undeclared variable '" + P.Name + "'");
        return {};
      }
      return It->second;
    }
    if (!validBuffer(P.Buf))
      return {};
    std::vector<T> &Data = buffer(P.Buf);
    if (!TrustBounds &&
        (P.Off < 0 || P.Off >= static_cast<int64_t>(Data.size()))) {
      fail("out-of-bounds read at offset " + std::to_string(P.Off));
      return {};
    }
    return CValue<T>::fromNum(Data[static_cast<size_t>(P.Off)]);
  }

  void writePlace(const Place &P, const CValue<T> &Value) {
    if (P.IsLocal) {
      Locals[P.Name] = Value;
      return;
    }
    if (Value.isPtr()) {
      fail("storing a pointer into a data array");
      return;
    }
    if (!validBuffer(P.Buf))
      return;
    std::vector<T> &Data = buffer(P.Buf);
    if (!TrustBounds &&
        (P.Off < 0 || P.Off >= static_cast<int64_t>(Data.size()))) {
      fail("out-of-bounds write at offset " + std::to_string(P.Off));
      return;
    }
    Data[static_cast<size_t>(P.Off)] = Value.asNum();
  }

  Place evalPlace(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::VarRef: {
      Place P;
      P.IsLocal = true;
      P.Name = cCast<VarRef>(E).name();
      return P;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      if (U.op() != CUnOp::Deref) {
        fail("expression is not an lvalue");
        return {};
      }
      CValue<T> Ptr = evalExpr(U.operand());
      if (failed())
        return {};
      if (!Ptr.isPtr()) {
        fail("dereferencing a non-pointer");
        return {};
      }
      Place P;
      P.Buf = Ptr.Buf;
      P.Off = Ptr.Off;
      return P;
    }
    case CExpr::Kind::Index: {
      const auto &Ix = cCast<CIndex>(E);
      CValue<T> Base = evalExpr(Ix.base());
      CValue<T> Index = evalExpr(Ix.index());
      if (failed())
        return {};
      if (!Base.isPtr() || !Index.isInt()) {
        fail("invalid array subscript");
        return {};
      }
      Place P;
      P.Buf = Base.Buf;
      P.Off = Base.Off + Index.I;
      return P;
    }
    default:
      fail("expression is not an lvalue");
      return {};
    }
  }

  CValue<T> applyBinary(CBinOp Op, const CValue<T> &L, const CValue<T> &R) {
    // Pointer arithmetic.
    if (L.isPtr() || R.isPtr()) {
      if (Op == CBinOp::Add && L.isPtr() && R.isInt())
        return CValue<T>::fromPtr(L.Buf, L.Off + R.I);
      if (Op == CBinOp::Add && R.isPtr() && L.isInt())
        return CValue<T>::fromPtr(R.Buf, R.Off + L.I);
      if (Op == CBinOp::Sub && L.isPtr() && R.isInt())
        return CValue<T>::fromPtr(L.Buf, L.Off - R.I);
      if (Op == CBinOp::Lt && L.isPtr() && R.isPtr())
        return CValue<T>::fromInt(L.Off < R.Off);
      if (Op == CBinOp::Ne && L.isPtr() && R.isPtr())
        return CValue<T>::fromInt(L.Buf != R.Buf || L.Off != R.Off);
      fail("unsupported pointer arithmetic");
      return {};
    }
    // Pure integer arithmetic stays exact (subscripts, bounds).
    if (L.isInt() && R.isInt()) {
      switch (Op) {
      case CBinOp::Add:
        return CValue<T>::fromInt(L.I + R.I);
      case CBinOp::Sub:
        return CValue<T>::fromInt(L.I - R.I);
      case CBinOp::Mul:
        return CValue<T>::fromInt(L.I * R.I);
      case CBinOp::Div:
        if (R.I == 0) {
          fail("integer division by zero");
          return {};
        }
        return CValue<T>::fromInt(L.I / R.I);
      case CBinOp::Mod:
        if (R.I == 0) {
          fail("integer modulo by zero");
          return {};
        }
        return CValue<T>::fromInt(L.I % R.I);
      case CBinOp::Lt:
        return CValue<T>::fromInt(L.I < R.I);
      case CBinOp::Le:
        return CValue<T>::fromInt(L.I <= R.I);
      case CBinOp::Gt:
        return CValue<T>::fromInt(L.I > R.I);
      case CBinOp::Ge:
        return CValue<T>::fromInt(L.I >= R.I);
      case CBinOp::Eq:
        return CValue<T>::fromInt(L.I == R.I);
      case CBinOp::Ne:
        return CValue<T>::fromInt(L.I != R.I);
      case CBinOp::LAnd:
        return CValue<T>::fromInt(L.I != 0 && R.I != 0);
      case CBinOp::LOr:
        return CValue<T>::fromInt(L.I != 0 || R.I != 0);
      }
    }
    // Mixed/numeric arithmetic promotes to the data type.
    T A = L.asNum();
    T B = R.asNum();
    switch (Op) {
    case CBinOp::Add:
      return CValue<T>::fromNum(A + B);
    case CBinOp::Sub:
      return CValue<T>::fromNum(A - B);
    case CBinOp::Mul:
      return CValue<T>::fromNum(A * B);
    case CBinOp::Div:
      return CValue<T>::fromNum(A / B);
    case CBinOp::Lt:
      return CValue<T>::fromInt(A < B);
    case CBinOp::Gt:
      return CValue<T>::fromInt(B < A);
    case CBinOp::Le:
      return CValue<T>::fromInt(!(B < A));
    case CBinOp::Ge:
      return CValue<T>::fromInt(!(A < B));
    case CBinOp::Eq:
      return CValue<T>::fromInt(A == B);
    case CBinOp::Ne:
      return CValue<T>::fromInt(!(A == B));
    default:
      fail("unsupported numeric operator");
      return {};
    }
  }

  CValue<T> evalExpr(const CExpr &E) {
    if (failed() || !budget())
      return {};
    switch (E.kind()) {
    case CExpr::Kind::IntLit:
      return CValue<T>::fromInt(cCast<IntLit>(E).value());
    case CExpr::Kind::FloatLit: {
      const auto &F = cCast<FloatLit>(E);
      int64_t Denominator = 1;
      for (int I = 0; I < F.scale(); ++I)
        Denominator *= 10;
      return CValue<T>::fromNum(T(F.mantissa()) / T(Denominator));
    }
    case CExpr::Kind::VarRef: {
      auto It = Locals.find(cCast<VarRef>(E).name());
      if (It == Locals.end()) {
        fail("use of undeclared variable '" + cCast<VarRef>(E).name() + "'");
        return {};
      }
      return It->second;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      switch (U.op()) {
      case CUnOp::Neg: {
        CValue<T> V = evalExpr(U.operand());
        if (failed())
          return {};
        if (V.isInt())
          return CValue<T>::fromInt(-V.I);
        if (V.isNum())
          return CValue<T>::fromNum(-V.N);
        fail("negating a pointer");
        return {};
      }
      case CUnOp::Not: {
        CValue<T> V = evalExpr(U.operand());
        if (failed())
          return {};
        if (V.isInt())
          return CValue<T>::fromInt(V.I == 0);
        fail("'!' on non-integer");
        return {};
      }
      case CUnOp::Deref: {
        Place P = evalPlace(E);
        if (failed())
          return {};
        return readPlace(P);
      }
      case CUnOp::AddrOf: {
        // Supported form: &buffer[expr] (including &*p).
        const CExpr &Target = U.operand();
        if (Target.kind() == CExpr::Kind::Index ||
            (Target.kind() == CExpr::Kind::Unary &&
             cCast<CUnary>(Target).op() == CUnOp::Deref)) {
          Place P = evalPlace(Target);
          if (failed())
            return {};
          if (P.IsLocal) {
            fail("address of local variable is unsupported");
            return {};
          }
          return CValue<T>::fromPtr(P.Buf, P.Off);
        }
        fail("unsupported address-of expression");
        return {};
      }
      }
      return {};
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      // Short-circuit logical operators.
      if (B.op() == CBinOp::LAnd || B.op() == CBinOp::LOr) {
        CValue<T> L = evalExpr(B.lhs());
        if (failed())
          return {};
        if (!L.isInt()) {
          fail("logical operator on non-integer");
          return {};
        }
        bool LTrue = L.I != 0;
        if (B.op() == CBinOp::LAnd && !LTrue)
          return CValue<T>::fromInt(0);
        if (B.op() == CBinOp::LOr && LTrue)
          return CValue<T>::fromInt(1);
        CValue<T> R = evalExpr(B.rhs());
        if (failed())
          return {};
        if (!R.isInt()) {
          fail("logical operator on non-integer");
          return {};
        }
        return CValue<T>::fromInt(R.I != 0);
      }
      CValue<T> L = evalExpr(B.lhs());
      CValue<T> R = evalExpr(B.rhs());
      if (failed())
        return {};
      return applyBinary(B.op(), L, R);
    }
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      Place P = evalPlace(A.lhs());
      if (failed())
        return {};
      CValue<T> Rhs = evalExpr(A.rhs());
      if (failed())
        return {};
      CValue<T> NewValue = Rhs;
      if (A.op() != CAssignOp::Plain) {
        CValue<T> Old = readPlace(P);
        if (failed())
          return {};
        CBinOp Op = A.op() == CAssignOp::Add   ? CBinOp::Add
                    : A.op() == CAssignOp::Sub ? CBinOp::Sub
                    : A.op() == CAssignOp::Mul ? CBinOp::Mul
                                               : CBinOp::Div;
        NewValue = applyBinary(Op, Old, Rhs);
        if (failed())
          return {};
      }
      writePlace(P, NewValue);
      return NewValue;
    }
    case CExpr::Kind::IncDec: {
      const auto &I = cCast<CIncDec>(E);
      Place P = evalPlace(I.target());
      if (failed())
        return {};
      CValue<T> Old = readPlace(P);
      if (failed())
        return {};
      CValue<T> Delta = CValue<T>::fromInt(1);
      CValue<T> NewValue =
          applyBinary(I.isIncrement() ? CBinOp::Add : CBinOp::Sub, Old, Delta);
      if (failed())
        return {};
      writePlace(P, NewValue);
      return I.isPrefix() ? NewValue : Old;
    }
    case CExpr::Kind::Index: {
      Place P = evalPlace(E);
      if (failed())
        return {};
      return readPlace(P);
    }
    }
    return {};
  }

  //===------------------------------------------------------------------===//
  // Statement execution
  //===------------------------------------------------------------------===//

  bool truthy(const CValue<T> &V) {
    if (V.isInt())
      return V.I != 0;
    if (V.isNum())
      return !(V.N == T(0));
    fail("pointer used as condition");
    return false;
  }

  void execStmt(const CStmt &S) {
    if (failed() || Returned || !budget())
      return;
    switch (S.kind()) {
    case CStmt::Kind::Empty:
      return;
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(S);
      if (D.init()) {
        CValue<T> V = evalExpr(*D.init());
        if (failed())
          return;
        Locals[D.name()] = V;
      } else {
        Locals[D.name()] = D.type().isPointer()
                               ? CValue<T>::fromPtr(-1, 0)
                               : (D.type().isFloating()
                                      ? CValue<T>::fromNum(T(0))
                                      : CValue<T>::fromInt(0));
      }
      return;
    }
    case CStmt::Kind::ExprStmt:
      evalExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements()) {
        execStmt(*Sub);
        if (failed() || Returned)
          return;
      }
      return;
    case CStmt::Kind::For: {
      const auto &F = cCast<CFor>(S);
      if (F.init())
        execStmt(*F.init());
      for (;;) {
        if (failed() || Returned || !budget())
          return;
        if (F.cond()) {
          CValue<T> C = evalExpr(*F.cond());
          if (failed())
            return;
          if (!truthy(C))
            return;
        }
        execStmt(F.body());
        if (failed() || Returned)
          return;
        if (F.step())
          evalExpr(*F.step());
      }
    }
    case CStmt::Kind::While: {
      const auto &W = cCast<CWhile>(S);
      for (;;) {
        if (failed() || Returned || !budget())
          return;
        CValue<T> C = evalExpr(W.cond());
        if (failed())
          return;
        if (!truthy(C))
          return;
        execStmt(W.body());
        if (failed() || Returned)
          return;
      }
    }
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(S);
      CValue<T> C = evalExpr(I.cond());
      if (failed())
        return;
      if (truthy(C))
        execStmt(I.thenStmt());
      else if (I.elseStmt())
        execStmt(*I.elseStmt());
      return;
    }
    case CStmt::Kind::Return: {
      const auto &R = cCast<CReturn>(S);
      if (R.expr())
        evalExpr(*R.expr());
      Returned = true;
      return;
    }
    }
  }

  const CFunction &Fn;
  ExecEnv<T> &Env;
  int64_t StepsLeft;
  /// When set, the per-access range checks in readPlace/writePlace are
  /// elided. Callers must hold a static in-bounds proof for this kernel
  /// under these buffer sizes (analysis::Checker's BoundsProvenSafe);
  /// without one the elided check becomes genuine undefined behaviour.
  bool TrustBounds = false;
  std::map<std::string, CValue<T>> Locals;
  std::vector<std::string> BufferNames;
  bool Returned = false;
  std::string Err;
};

} // namespace detail

/// Executes \p Fn over \p Env (arrays are mutated in place). \p StepBudget
/// bounds the number of interpreter steps. Pass \p TrustBounds = true only
/// when a static proof (analysis::Checker) guarantees every access is in
/// bounds for these array sizes: the per-access range checks are elided.
template <typename T>
ExecStatus runCFunction(const CFunction &Fn, ExecEnv<T> &Env,
                        int64_t StepBudget = 10'000'000,
                        bool TrustBounds = false) {
  detail::Machine<T> M(Fn, Env, StepBudget, TrustBounds);
  return M.run();
}

} // namespace cfront
} // namespace stagg

#endif // STAGG_CFRONT_INTERP_H
