//===- cfront/Lexer.cpp - Tokenizer for the mini-C front end --------------===//

#include "cfront/Lexer.h"

#include <cctype>

using namespace stagg;
using namespace stagg::cfront;

static bool isKeyword(const std::string &Word) {
  static const char *Keywords[] = {"int",  "float", "double", "void",
                                   "for",  "while", "if",     "else",
                                   "return"};
  for (const char *K : Keywords)
    if (Word == K)
      return true;
  return false;
}

std::vector<CToken> cfront::lexC(const std::string &Source) {
  std::vector<CToken> Tokens;
  size_t I = 0;
  const size_t N = Source.size();
  int Line = 1;
  size_t LineStart = 0;

  auto Peek = [&](size_t Ahead) -> char {
    return I + Ahead < N ? Source[I + Ahead] : '\0';
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && Peek(1) == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n') {
          ++Line;
          LineStart = I + 1;
        }
        ++I;
      }
      I = I + 2 <= N ? I + 2 : N;
      continue;
    }

    CToken Tok;
    Tok.Line = Line;
    Tok.Col = static_cast<int>(I - LineStart) + 1;

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Tok.Spelling = Source.substr(Start, I - Start);
      Tok.Kind = isKeyword(Tok.Spelling) ? CTokKind::Keyword
                                         : CTokKind::Identifier;
      Tokens.push_back(std::move(Tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      if (I < N && Source[I] == '.') {
        ++I;
        size_t FracStart = I;
        while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
        // Optional float suffix.
        if (I < N && (Source[I] == 'f' || Source[I] == 'F'))
          ++I;
        std::string IntPart = Source.substr(Start, FracStart - 1 - Start);
        std::string FracPart =
            Source.substr(FracStart, I - FracStart);
        while (!FracPart.empty() &&
               (FracPart.back() == 'f' || FracPart.back() == 'F'))
          FracPart.pop_back();
        Tok.Kind = CTokKind::Float;
        Tok.Spelling = Source.substr(Start, I - Start);
        Tok.FloatScale = static_cast<int>(FracPart.size());
        Tok.FloatMantissa = std::stoll(IntPart + (FracPart.empty() ? "0" : FracPart));
        if (FracPart.empty())
          Tok.FloatScale = 1; // "2." == 20 / 10^1
        Tokens.push_back(std::move(Tok));
        continue;
      }
      Tok.Kind = CTokKind::Integer;
      Tok.Spelling = Source.substr(Start, I - Start);
      Tok.IntValue = std::stoll(Tok.Spelling);
      Tokens.push_back(std::move(Tok));
      continue;
    }

    // Multi-character punctuation first.
    static const char *TwoChar[] = {"+=", "-=", "*=", "/=", "==", "!=",
                                    "<=", ">=", "&&", "||", "++", "--"};
    bool Matched = false;
    for (const char *P : TwoChar) {
      if (C == P[0] && Peek(1) == P[1]) {
        Tok.Kind = CTokKind::Punct;
        Tok.Spelling = P;
        I += 2;
        Matched = true;
        break;
      }
    }
    if (Matched) {
      Tokens.push_back(std::move(Tok));
      continue;
    }

    static const char OneChar[] = "+-*/%<>=!&(){}[];,";
    if (std::string(OneChar).find(C) != std::string::npos) {
      Tok.Kind = CTokKind::Punct;
      Tok.Spelling = std::string(1, C);
      ++I;
      Tokens.push_back(std::move(Tok));
      continue;
    }

    Tok.Kind = CTokKind::Invalid;
    Tok.Spelling = std::string(1, C);
    ++I;
    Tokens.push_back(std::move(Tok));
  }

  CToken EndTok;
  EndTok.Kind = CTokKind::End;
  EndTok.Line = Line;
  Tokens.push_back(std::move(EndTok));
  return Tokens;
}
