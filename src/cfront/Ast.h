//===- cfront/Ast.h - Mini-C abstract syntax --------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the C subset used by the lifting benchmarks: one
/// function with scalar/pointer parameters, local declarations, `for`/
/// `while`/`if` statements, assignments (plain and compound), pointer
/// arithmetic, array subscripts, and pre/post increment/decrement. This
/// replaces the Clang/MLIR ingestion path of the paper: the same AST feeds
/// both the concrete interpreter (I/O example generation, verification) and
/// the static analyses (array recovery, delinearization, dimension
/// prediction).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_CFRONT_AST_H
#define STAGG_CFRONT_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stagg {
namespace cfront {

/// Scalar element types. Float and double are interpreted identically (the
/// evaluator's numeric type is chosen by the harness).
enum class BaseType { Int, Float, Double, Void };

/// A declared C type: a base type plus pointer depth (0 or 1 in practice).
struct CType {
  BaseType Base = BaseType::Int;
  int PointerDepth = 0;

  bool isPointer() const { return PointerDepth > 0; }
  bool isFloating() const {
    return Base == BaseType::Float || Base == BaseType::Double;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators (arithmetic, comparison, logical).
enum class CBinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LAnd,
  LOr,
};

/// Unary operators.
enum class CUnOp { Neg, Deref, AddrOf, Not };

/// Assignment flavors; Plain is `=`, the rest are compound.
enum class CAssignOp { Plain, Add, Sub, Mul, Div };

/// Base class for expressions with kind-tag dispatch.
class CExpr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    VarRef,
    Unary,
    Binary,
    Assign,
    IncDec,
    Index,
  };

  virtual ~CExpr() = default;
  Kind kind() const { return NodeKind; }

protected:
  explicit CExpr(Kind K) : NodeKind(K) {}

private:
  Kind NodeKind;
};

using CExprPtr = std::unique_ptr<CExpr>;

/// Integer literal.
class IntLit : public CExpr {
public:
  explicit IntLit(int64_t Value) : CExpr(Kind::IntLit), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// Floating literal, stored exactly as numerator / 10^scale.
class FloatLit : public CExpr {
public:
  FloatLit(int64_t Mantissa, int Scale)
      : CExpr(Kind::FloatLit), Mantissa(Mantissa), Scale(Scale) {}
  int64_t mantissa() const { return Mantissa; }
  int scale() const { return Scale; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::FloatLit; }

private:
  int64_t Mantissa;
  int Scale;
};

/// Reference to a parameter or local variable.
class VarRef : public CExpr {
public:
  explicit VarRef(std::string Name) : CExpr(Kind::VarRef), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

/// Unary operation.
class CUnary : public CExpr {
public:
  CUnary(CUnOp Op, CExprPtr Sub)
      : CExpr(Kind::Unary), Op(Op), Sub(std::move(Sub)) {}
  CUnOp op() const { return Op; }
  const CExpr &operand() const { return *Sub; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::Unary; }

private:
  CUnOp Op;
  CExprPtr Sub;
};

/// Binary operation.
class CBinary : public CExpr {
public:
  CBinary(CBinOp Op, CExprPtr Lhs, CExprPtr Rhs)
      : CExpr(Kind::Binary), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}
  CBinOp op() const { return Op; }
  const CExpr &lhs() const { return *Lhs; }
  const CExpr &rhs() const { return *Rhs; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::Binary; }

private:
  CBinOp Op;
  CExprPtr Lhs;
  CExprPtr Rhs;
};

/// Assignment, plain or compound. The left-hand side must be an lvalue
/// (VarRef, Deref, or Index).
class CAssign : public CExpr {
public:
  CAssign(CAssignOp Op, CExprPtr Lhs, CExprPtr Rhs)
      : CExpr(Kind::Assign), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}
  CAssignOp op() const { return Op; }
  const CExpr &lhs() const { return *Lhs; }
  const CExpr &rhs() const { return *Rhs; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::Assign; }

private:
  CAssignOp Op;
  CExprPtr Lhs;
  CExprPtr Rhs;
};

/// `++`/`--`, prefix or postfix, on an lvalue.
class CIncDec : public CExpr {
public:
  CIncDec(bool IsIncrement, bool IsPrefix, CExprPtr Target)
      : CExpr(Kind::IncDec), Increment(IsIncrement), Prefix(IsPrefix),
        Target(std::move(Target)) {}
  bool isIncrement() const { return Increment; }
  bool isPrefix() const { return Prefix; }
  const CExpr &target() const { return *Target; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::IncDec; }

private:
  bool Increment;
  bool Prefix;
  CExprPtr Target;
};

/// Array subscript `base[index]`.
class CIndex : public CExpr {
public:
  CIndex(CExprPtr Base, CExprPtr Index)
      : CExpr(Kind::Index), Base(std::move(Base)), Index(std::move(Index)) {}
  const CExpr &base() const { return *Base; }
  const CExpr &index() const { return *Index; }
  static bool classof(const CExpr *E) { return E->kind() == Kind::Index; }

private:
  CExprPtr Base;
  CExprPtr Index;
};

/// LLVM-style helpers for the mini hierarchy.
template <typename T> const T *cDynCast(const CExpr *E) {
  return (E && T::classof(E)) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> const T &cCast(const CExpr &E) {
  assert(T::classof(&E) && "bad C expression cast");
  return static_cast<const T &>(E);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Source position of a construct's first token (1-based; 0 = unknown).
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool valid() const { return Line > 0; }

  /// Renders as "line L, column C" (empty when unknown).
  std::string str() const {
    if (!valid())
      return "";
    return "line " + std::to_string(Line) + ", column " + std::to_string(Col);
  }
};

class CStmt {
public:
  enum class Kind { Decl, ExprStmt, Block, For, While, If, Return, Empty };

  virtual ~CStmt() = default;
  Kind kind() const { return NodeKind; }

  /// Position of the statement's first token; set by the parser so
  /// diagnostics can cite where in the request text a construct sits.
  const SourceLoc &loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

protected:
  explicit CStmt(Kind K) : NodeKind(K) {}

private:
  Kind NodeKind;
  SourceLoc Loc;
};

using CStmtPtr = std::unique_ptr<CStmt>;

/// Local declaration `type name [= init];` (one declarator per statement; the
/// parser splits comma-separated declarators).
class CDeclStmt : public CStmt {
public:
  CDeclStmt(CType Type, std::string Name, CExprPtr Init)
      : CStmt(Kind::Decl), Type(Type), Name(std::move(Name)),
        Init(std::move(Init)) {}
  const CType &type() const { return Type; }
  const std::string &name() const { return Name; }
  const CExpr *init() const { return Init.get(); }
  static bool classof(const CStmt *S) { return S->kind() == Kind::Decl; }

private:
  CType Type;
  std::string Name;
  CExprPtr Init;
};

/// Expression statement.
class CExprStmt : public CStmt {
public:
  explicit CExprStmt(CExprPtr E) : CStmt(Kind::ExprStmt), E(std::move(E)) {}
  const CExpr &expr() const { return *E; }
  static bool classof(const CStmt *S) { return S->kind() == Kind::ExprStmt; }

private:
  CExprPtr E;
};

/// `{ ... }`.
class CBlock : public CStmt {
public:
  explicit CBlock(std::vector<CStmtPtr> Stmts)
      : CStmt(Kind::Block), Stmts(std::move(Stmts)) {}
  const std::vector<CStmtPtr> &statements() const { return Stmts; }
  static bool classof(const CStmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<CStmtPtr> Stmts;
};

/// `for (init; cond; step) body`. Init may be a declaration or expression
/// statement; any of the three headers may be absent.
class CFor : public CStmt {
public:
  CFor(CStmtPtr Init, CExprPtr Cond, CExprPtr Step, CStmtPtr Body)
      : CStmt(Kind::For), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  const CStmt *init() const { return Init.get(); }
  const CExpr *cond() const { return Cond.get(); }
  const CExpr *step() const { return Step.get(); }
  const CStmt &body() const { return *Body; }
  static bool classof(const CStmt *S) { return S->kind() == Kind::For; }

private:
  CStmtPtr Init;
  CExprPtr Cond;
  CExprPtr Step;
  CStmtPtr Body;
};

/// `while (cond) body`.
class CWhile : public CStmt {
public:
  CWhile(CExprPtr Cond, CStmtPtr Body)
      : CStmt(Kind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}
  const CExpr &cond() const { return *Cond; }
  const CStmt &body() const { return *Body; }
  static bool classof(const CStmt *S) { return S->kind() == Kind::While; }

private:
  CExprPtr Cond;
  CStmtPtr Body;
};

/// `if (cond) then [else els]`.
class CIf : public CStmt {
public:
  CIf(CExprPtr Cond, CStmtPtr Then, CStmtPtr Else)
      : CStmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  const CExpr &cond() const { return *Cond; }
  const CStmt &thenStmt() const { return *Then; }
  const CStmt *elseStmt() const { return Else.get(); }
  static bool classof(const CStmt *S) { return S->kind() == Kind::If; }

private:
  CExprPtr Cond;
  CStmtPtr Then;
  CStmtPtr Else;
};

/// `return [expr];`.
class CReturn : public CStmt {
public:
  explicit CReturn(CExprPtr E) : CStmt(Kind::Return), E(std::move(E)) {}
  const CExpr *expr() const { return E.get(); }
  static bool classof(const CStmt *S) { return S->kind() == Kind::Return; }

private:
  CExprPtr E;
};

/// `;`.
class CEmpty : public CStmt {
public:
  CEmpty() : CStmt(Kind::Empty) {}
  static bool classof(const CStmt *S) { return S->kind() == Kind::Empty; }
};

template <typename T> const T *cDynCast(const CStmt *S) {
  return (S && T::classof(S)) ? static_cast<const T *>(S) : nullptr;
}
template <typename T> const T &cCast(const CStmt &S) {
  assert(T::classof(&S) && "bad C statement cast");
  return static_cast<const T &>(S);
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

/// A function parameter.
struct CParam {
  CType Type;
  std::string Name;
};

/// A parsed kernel function.
struct CFunction {
  CType ReturnType;
  std::string Name;
  std::vector<CParam> Params;
  std::unique_ptr<CBlock> Body;

  /// Finds a parameter by name; returns nullptr if absent.
  const CParam *findParam(const std::string &ParamName) const {
    for (const CParam &P : Params)
      if (P.Name == ParamName)
        return &P;
    return nullptr;
  }
};

} // namespace cfront
} // namespace stagg

#endif // STAGG_CFRONT_AST_H
