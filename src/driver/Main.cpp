//===- driver/Main.cpp - stagg CLI entry point ----------------------------===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
// Exit codes: 0 the run completed (individual benchmarks may still FAIL —
// that is a result, not an error), 1 an output file could not be written,
// 2 bad command line. `stagg serve` additionally distinguishes its request
// failures: 2 unknown registry name, 3 malformed JSON / protocol violation,
// 4 inline-kernel parse or ingestion failure, 5 static-checker refusal
// (driver/ServeCommand.h). `stagg check` returns 0 clean, 1 findings,
// 2 bad target (driver/CheckCommand.h).
//
//===----------------------------------------------------------------------===//

#include "driver/BenchCommand.h"
#include "driver/CheckCommand.h"
#include "driver/Cli.h"
#include "driver/ServeCommand.h"
#include "driver/SuiteRunner.h"

#include <iostream>
#include <vector>

using namespace stagg;

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  driver::CliParse Parse = driver::parseArgs(Args);
  if (!Parse.ok()) {
    std::cerr << "stagg: " << Parse.Error << "\n\n" << driver::usage();
    return 2;
  }
  const driver::CliOptions &Options = Parse.Options;
  if (Options.ShowHelp) {
    std::cout << driver::usage();
    return 0;
  }

  if (Options.Mode == driver::DriverMode::Serve)
    return driver::runServeCommand(Options);

  if (Options.Mode == driver::DriverMode::Bench)
    return driver::runBenchCommand(Options);

  if (Options.Mode == driver::DriverMode::List)
    return driver::runListCommand(Options);

  if (Options.Mode == driver::DriverMode::Check)
    return driver::runCheckCommand(Options);

  if (Options.Mode == driver::DriverMode::Disasm)
    return driver::runDisasmCommand(Options);

  std::string SuiteError;
  std::vector<const bench::Benchmark *> Suite =
      driver::selectSuite(Options.Suite, Options.Limit, SuiteError);
  if (!SuiteError.empty()) {
    std::cerr << "stagg: " << SuiteError << "\n";
    return 2;
  }

  if (Options.ListOnly) {
    for (const bench::Benchmark *B : Suite)
      std::cout << B->Name << "  (" << B->Category << ")\n";
    std::cout << Suite.size() << " benchmarks\n";
    return 0;
  }

  driver::SuiteReport Report =
      driver::runSuite(Suite, Options, &std::cerr);

  switch (Options.Format) {
  case driver::OutputFormat::Table:
    driver::printTable(std::cout, Report);
    break;
  case driver::OutputFormat::Csv:
    driver::printDelimited(std::cout, Report, ',');
    break;
  case driver::OutputFormat::Tsv:
    driver::printDelimited(std::cout, Report, '\t');
    break;
  case driver::OutputFormat::Json:
    // Unreachable: parseArgs rejects --format json outside `stagg check`.
    break;
  }

  if (Options.ShowCacheStats)
    driver::printServeStats(std::cerr, Report.Cache, Report.Batching,
                            Options.Config.Serve.BatchSize);

  if (!Options.CsvPath.empty() &&
      !driver::writeCsv(Options.CsvPath, Report)) {
    std::cerr << "stagg: cannot write '" << Options.CsvPath << "'\n";
    return 1;
  }
  return 0;
}
