//===- driver/CheckCommand.cpp - stagg check lint -------------------------===//

#include "driver/CheckCommand.h"

#include "analysis/Checker.h"
#include "analysis/KernelModel.h"
#include "api/KernelIngest.h"
#include "cfront/Parser.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

using namespace stagg;
using namespace stagg::driver;

namespace {

/// One checked target, however it was named.
struct Row {
  std::string Name;
  bool BoundsProven = false;

  /// Non-empty when the target never reached the checker (unreadable file,
  /// C parse error). Counts as a hard failure.
  std::string Error;

  /// Non-empty when the kernel checked clean(ish) but the ingestion
  /// pipeline still cannot derive a reference translation for it.
  /// Informational: liftability is not a safety defect.
  std::string Note;

  std::vector<analysis::CheckFinding> Findings;

  int hard() const {
    int N = Error.empty() ? 0 : 1;
    for (const analysis::CheckFinding &F : Findings)
      if (F.Severity == analysis::CheckSeverity::Hard)
        ++N;
    return N;
  }
  int warnings() const {
    int N = 0;
    for (const analysis::CheckFinding &F : Findings)
      if (F.Severity == analysis::CheckSeverity::Warning)
        ++N;
    return N;
  }
};

/// A target names a file when it looks like a path rather than a registry
/// kernel; registry names never contain '/' or a ".c"/".h" suffix.
bool looksLikeFile(const std::string &Target) {
  if (Target.find('/') != std::string::npos)
    return true;
  auto EndsWith = [&](const std::string &Suffix) {
    return Target.size() > Suffix.size() &&
           Target.compare(Target.size() - Suffix.size(), Suffix.size(),
                          Suffix) == 0;
  };
  return EndsWith(".c") || EndsWith(".h");
}

/// "mykernels/saxpy.c" -> "saxpy", for the report's name column.
std::string stemOf(const std::string &Path) {
  std::string::size_type Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  std::string::size_type Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base.resize(Dot);
  return Base.empty() ? Path : Base;
}

/// Checks one registry kernel against its declared argument shapes — the
/// same authoritative-shape contract the lift pipeline uses in step 2.
Row checkRegistryKernel(const bench::Benchmark &B) {
  Row R;
  R.Name = B.Name;
  cfront::CParseResult Parsed = cfront::parseCFunction(B.CSource);
  if (!Parsed.ok()) {
    R.Error = "C parse error: " + Parsed.Error;
    return R;
  }
  analysis::KernelModel Model = analysis::buildKernelModel(*Parsed.Function);
  analysis::CheckOptions Opts;
  for (const bench::ArgSpec &Arg : B.Args) {
    if (Arg.K != bench::ArgSpec::Kind::Array)
      continue;
    std::vector<analysis::Poly> Extents;
    for (const std::string &Dim : Arg.Shape)
      Extents.push_back(analysis::shapeExtentPoly(Dim));
    Opts.Shapes.emplace(Arg.Name, std::move(Extents));
    if (Arg.IsOutput)
      Opts.OutputParams.insert(Arg.Name);
  }
  analysis::CheckReport Report = analysis::checkKernel(Model, Opts);
  R.BoundsProven = Report.BoundsProvenSafe;
  R.Findings = std::move(Report.Findings);
  return R;
}

/// Checks one C source file through api::ingestKernel, so the verdict —
/// including the shapes the checker sees — matches the serving layer's
/// ingestion gate exactly.
Row checkFile(const std::string &Path) {
  Row R;
  R.Name = stemOf(Path);
  std::ifstream In(Path);
  if (!In) {
    R.Error = "cannot read '" + Path + "'";
    return R;
  }
  std::ostringstream Text;
  Text << In.rdbuf();

  api::IngestResult Ingested = api::ingestKernel(Text.str(), R.Name);
  R.BoundsProven = Ingested.BoundsProvenSafe;
  R.Findings = std::move(Ingested.Findings);
  if (Ingested.Status == api::IngestStatus::ParseError)
    R.Error = Ingested.Error;
  else if (!Ingested.ok() && R.hard() == 0)
    R.Note = "not liftable as-is: " + Ingested.Error;
  return R;
}

const char *verdictOf(const Row &R) {
  if (!R.Error.empty())
    return "error";
  if (R.hard() > 0)
    return "unsafe";
  if (R.warnings() > 0)
    return "warnings";
  return R.BoundsProven ? "safe" : "clean";
}

void printTable(std::ostream &Out, const std::vector<Row> &Rows) {
  size_t NameW = 6;
  for (const Row &R : Rows)
    NameW = std::max(NameW, R.Name.size());
  Out << std::left << std::setw(static_cast<int>(NameW) + 2) << "kernel"
      << std::setw(10) << "verdict"
      << "findings\n";
  int Hard = 0, Warnings = 0;
  for (const Row &R : Rows) {
    Hard += R.hard();
    Warnings += R.warnings();
    Out << std::left << std::setw(static_cast<int>(NameW) + 2) << R.Name
        << std::setw(10) << verdictOf(R)
        << (R.Findings.empty() && R.Error.empty() ? "-" : "") << "\n";
    if (!R.Error.empty())
      Out << "    " << R.Error << "\n";
    for (const analysis::CheckFinding &F : R.Findings) {
      Out << "    " << F.Code << " "
          << analysis::checkSeverityName(F.Severity);
      if (F.Loc.valid())
        Out << " (" << F.Loc.str() << ")";
      Out << ": " << F.Message << "\n";
    }
    if (!R.Note.empty())
      Out << "    note: " << R.Note << "\n";
  }
  Out << Rows.size() << " kernels checked: " << Hard << " hard findings, "
      << Warnings << " warnings\n";
}

void printJson(std::ostream &Out, const std::vector<Row> &Rows) {
  using support::Json;
  Json Report = Json::object();
  Report.set("v", Json::integer(1));
  Json Kernels = Json::array();
  int Hard = 0, Warnings = 0;
  for (const Row &R : Rows) {
    Hard += R.hard();
    Warnings += R.warnings();
    Json K = Json::object();
    K.set("name", Json::str(R.Name));
    K.set("verdict", Json::str(verdictOf(R)));
    K.set("bounds_proven", Json::boolean(R.BoundsProven));
    if (!R.Error.empty())
      K.set("error", Json::str(R.Error));
    if (!R.Note.empty())
      K.set("note", Json::str(R.Note));
    Json Findings = Json::array();
    for (const analysis::CheckFinding &F : R.Findings) {
      Json D = Json::object();
      D.set("code", Json::str(F.Code));
      D.set("severity", Json::str(analysis::checkSeverityName(F.Severity)));
      D.set("message", Json::str(F.Message));
      D.set("line", Json::integer(F.Loc.Line));
      D.set("col", Json::integer(F.Loc.Col));
      Findings.push(std::move(D));
    }
    K.set("findings", std::move(Findings));
    Kernels.push(std::move(K));
  }
  Report.set("checked", Json::integer(static_cast<int64_t>(Rows.size())));
  Report.set("hard", Json::integer(Hard));
  Report.set("warnings", Json::integer(Warnings));
  Report.set("kernels", std::move(Kernels));
  Out << Report.dump() << "\n";
}

} // namespace

int driver::runCheckCommand(const CliOptions &Options) {
  std::vector<Row> Rows;

  if (Options.Targets.empty()) {
    std::string Error;
    std::vector<const bench::Benchmark *> Suite =
        selectSuite(Options.Suite, Options.Limit, Error);
    if (!Error.empty()) {
      std::cerr << "stagg: " << Error << "\n";
      return CheckExitBadTarget;
    }
    for (const bench::Benchmark *B : Suite)
      Rows.push_back(checkRegistryKernel(*B));
  } else {
    for (const std::string &Target : Options.Targets) {
      if (looksLikeFile(Target)) {
        Rows.push_back(checkFile(Target));
        if (!Rows.back().Error.empty() &&
            Rows.back().Error.rfind("cannot read", 0) == 0) {
          std::cerr << "stagg: " << Rows.back().Error << "\n";
          return CheckExitBadTarget;
        }
        continue;
      }
      const bench::Benchmark *B = bench::findBenchmark(Target);
      if (!B) {
        std::string Error = "unknown benchmark '" + Target + "'";
        std::vector<std::string> Names;
        for (const bench::Benchmark &Known : bench::allBenchmarks())
          Names.push_back(Known.Name);
        std::string Hint = closestMatch(Target, Names);
        if (!Hint.empty())
          Error += " — did you mean '" + Hint + "'?";
        std::cerr << "stagg: " << Error << "\n";
        return CheckExitBadTarget;
      }
      Rows.push_back(checkRegistryKernel(*B));
    }
  }

  if (Options.Format == OutputFormat::Json)
    printJson(std::cout, Rows);
  else
    printTable(std::cout, Rows);

  for (const Row &R : Rows)
    if (R.hard() > 0 || (Options.CheckWerror && R.warnings() > 0))
      return CheckExitFindings;
  return CheckExitClean;
}
