//===- driver/Cli.h - stagg CLI flag parsing --------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag parsing for the `stagg` pipeline driver. Every evaluation knob of
/// core::StaggConfig (search kind, grammar and penalty ablations,
/// verification bounds, per-query budget) is reachable from the command
/// line, plus execution controls that belong to the driver itself: which
/// suite to run, how many benchmarks, how many worker threads, and the
/// output format. Parsing is pure (no I/O, no exit) so the mapping is unit
/// testable.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_CLI_H
#define STAGG_DRIVER_CLI_H

#include "benchsuite/Benchmark.h"
#include "core/Stagg.h"

#include <string>
#include <vector>

namespace stagg {
namespace driver {

/// Output renderings of the results table. Json applies to `stagg check`
/// only (one machine-readable report object).
enum class OutputFormat { Table, Csv, Tsv, Json };

/// What this invocation does: a batch suite run (default), the persistent
/// request-serving loop (`stagg serve`), the performance-report run
/// (`stagg bench`), the registry listing with per-kernel ingestion-class
/// labels (`stagg list`), the static safety lint (`stagg check`), or the
/// VM bytecode listing (`stagg disasm`).
enum class DriverMode { Run, Serve, Bench, List, Check, Disasm };

/// Everything the driver needs for one invocation.
struct CliOptions {
  /// The pipeline configuration assembled from the ablation flags,
  /// including the serving-layer knobs in Config.Serve (--queue-depth,
  /// --batch, --batch-wait-us, --cache-capacity, --cache-shards).
  core::StaggConfig Config;

  DriverMode Mode = DriverMode::Run;

  /// `stagg serve`: read newline-delimited requests from this file instead
  /// of stdin when non-empty.
  std::string InputPath;

  /// `stagg bench`: also write the versioned JSON report here when
  /// non-empty.
  std::string JsonPath;

  /// `stagg bench`: minimum measured wall time per micro benchmark.
  double BenchMinTime = 0.1;

  /// `stagg bench --repeat N`: independent measurement repetitions per
  /// micro benchmark; the reported time is the median of N, so the perf
  /// gates do not ride on a single timing sample. Default 1.
  int BenchRepeat = 1;

  /// Print cache and batching counters to stderr after the run.
  bool ShowCacheStats = false;

  /// Suite selector: "all" (full registry), "paper" (the original 77),
  /// "real" (the paper's 67), or one category ("artificial", "blas",
  /// "darknet", "dsp", "misc", "llama", "pointer").
  std::string Suite = "real";

  /// Run only the first N benchmarks of the selection; < 0 means all.
  int Limit = -1;

  /// Worker-pool width; 0 means hardware concurrency.
  int Threads = 0;

  /// Seed of the simulated LLM oracle (one "GPT-4 session").
  uint64_t OracleSeed = 20250411;

  OutputFormat Format = OutputFormat::Table;

  /// Also write the per-benchmark rows to this CSV path when non-empty.
  std::string CsvPath;

  /// Print the selected benchmark names and exit.
  bool ListOnly = false;

  /// Print one line per finished benchmark while running.
  bool Verbose = false;

  /// `stagg check` / `stagg disasm`: positional targets — registry kernel
  /// names and/or (for check) paths to C source files (anything with a '/'
  /// or a ".c"/".h" suffix is read as a file). Empty means "the --suite
  /// selection".
  std::vector<std::string> Targets;

  /// `stagg check --Werror`: warnings also fail the lint (exit 1).
  bool CheckWerror = false;

  bool ShowHelp = false;
};

/// Outcome of parsing an argument vector.
struct CliParse {
  CliOptions Options;

  /// Empty on success; a one-line diagnostic otherwise.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses \p Args (argv[1..argc-1]). Accepts both `--flag value` and
/// `--flag=value` spellings.
CliParse parseArgs(const std::vector<std::string> &Args);

/// The --help text.
std::string usage();

/// Resolves a --suite selector against the benchmark registry, applying
/// \p Limit. Returns an empty vector and sets \p Error for unknown names.
std::vector<const bench::Benchmark *>
selectSuite(const std::string &Suite, int Limit, std::string &Error);

/// `stagg list`: prints the selected registry kernels with their suite tag
/// and ingestion-class label (subscript / pointer-walking / conditional /
/// multi-statement, from the kernel's analysis::KernelModel). Returns the
/// process exit code.
int runListCommand(const CliOptions &Options);

/// `stagg disasm`: prints the optimized (default) or raw (--no-vm-opt) VM
/// instruction stream of each target's ground-truth lifted program, via
/// vm::disassemble. Returns the process exit code (0 ok, 2 bad target).
int runDisasmCommand(const CliOptions &Options);

/// Valid --suite values, for diagnostics and --help.
const std::vector<std::string> &knownSuites();

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_CLI_H
