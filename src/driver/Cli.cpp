//===- driver/Cli.cpp - stagg CLI flag parsing ----------------------------===//

#include "driver/Cli.h"

#include "analysis/KernelModel.h"
#include "cfront/Parser.h"
#include "support/StringUtils.h"
#include "taco/Parser.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>

using namespace stagg;
using namespace stagg::driver;

namespace {

/// One consumed flag: name plus optional inline `=value` part.
struct Flag {
  std::string Name;
  std::string Inline;
  bool HasInline = false;
};

Flag splitFlag(const std::string &Arg) {
  Flag F;
  std::string::size_type Eq = Arg.find('=');
  if (Eq == std::string::npos) {
    F.Name = Arg;
  } else {
    F.Name = Arg.substr(0, Eq);
    F.Inline = Arg.substr(Eq + 1);
    F.HasInline = true;
  }
  return F;
}

bool parseInt(const std::string &Text, long long &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  Out = std::strtoll(Text.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0';
}

bool parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  Out = std::strtod(Text.c_str(), &End);
  return errno == 0 && End && *End == '\0';
}

/// Every flag the parser understands, for the did-you-mean hint.
const std::vector<std::string> &knownFlags() {
  static const std::vector<std::string> Flags = {
      "--help",          "-h",
      "--list",          "--verbose",
      "-v",              "--no-verify",
      "--no-vm",         "--no-vm-opt",
      "--full-grammar",  "--equal-probability",
      "--cache-stats",   "--suite",
      "--repeat",        "--execute-threads",
      "--search",        "--drop-penalty",
      "--format",        "--csv",
      "--input",         "--limit",
      "--threads",       "--search-threads",
      "--candidates",
      "--io-examples",   "--max-depth",
      "--max-size",      "--seed",
      "--example-seed",  "--queue-depth",
      "--batch",         "--batch-wait-us",
      "--cache-capacity", "--cache-shards",
      "--timeout",        "--json",
      "--min-time",       "--Werror",
      "--listen",         "--max-conns",
      "--max-inflight",   "--idle-timeout",
      "--cache-file",     "--max-execute-cells"};
  return Flags;
}

/// The closest known spelling of \p Unknown, or "" when nothing is near
/// enough to be a plausible typo.
std::string suggestFor(const std::string &Unknown,
                       const std::vector<std::string> &Candidates) {
  return closestMatch(Unknown, Candidates);
}

/// Applies one `--drop-penalty` selector; returns false for unknown names.
bool dropPenalty(search::SearchConfig &Search, const std::string &Which) {
  if (Which == "all") {
    Search.dropAllTopDownPenalties();
    Search.dropAllBottomUpPenalties();
    return true;
  }
  if (Which == "a") {
    Search.dropAllTopDownPenalties();
    return true;
  }
  if (Which == "b") {
    Search.dropAllBottomUpPenalties();
    return true;
  }
  if (Which == "a1")
    return Search.PenaltyA1 = false, true;
  if (Which == "a2")
    return Search.PenaltyA2 = false, true;
  if (Which == "a3")
    return Search.PenaltyA3 = false, true;
  if (Which == "a4")
    return Search.PenaltyA4 = false, true;
  if (Which == "a5")
    return Search.PenaltyA5 = false, true;
  if (Which == "b1")
    return Search.PenaltyB1 = false, true;
  if (Which == "b2")
    return Search.PenaltyB2 = false, true;
  return false;
}

} // namespace

const std::vector<std::string> &driver::knownSuites() {
  static const std::vector<std::string> Suites = {
      "all",  "real", "paper", "artificial", "blas",
      "darknet", "dsp", "misc", "llama", "pointer"};
  return Suites;
}

std::vector<const bench::Benchmark *>
driver::selectSuite(const std::string &Suite, int Limit, std::string &Error) {
  std::vector<const bench::Benchmark *> Selected;
  const std::vector<std::string> &Known = knownSuites();
  if (std::find(Known.begin(), Known.end(), Suite) == Known.end()) {
    Error = "unknown suite '" + Suite + "'";
    return Selected;
  }

  for (const bench::Benchmark &B : bench::allBenchmarks()) {
    bool Take = Suite == "all" ||
                (Suite == "real" && B.isRealWorld() &&
                 B.Category != "pointer") ||
                (Suite == "paper" && B.Category != "pointer") ||
                B.Category == Suite;
    if (Take)
      Selected.push_back(&B);
  }
  if (Limit >= 0 && static_cast<int>(Selected.size()) > Limit)
    Selected.resize(static_cast<size_t>(Limit));
  return Selected;
}

CliParse driver::parseArgs(const std::vector<std::string> &Args) {
  CliParse Parse;
  CliOptions &O = Parse.Options;

  size_t I = 0;
  // Fetches the flag's value from `=value` or the next argument; returns
  // false (and sets the error) when it is missing.
  auto takeValue = [&](const Flag &F, std::string &Out) {
    if (F.HasInline) {
      Out = F.Inline;
      return true;
    }
    if (I + 1 < Args.size()) {
      Out = Args[++I];
      return true;
    }
    Parse.Error = F.Name + " expects a value";
    return false;
  };

  bool SawCommand = false;
  // First flag of each applicability class seen, for the mode cross-checks
  // after the loop: RunOnly flags belong to the batch table run, SuiteFlags
  // to any suite-selecting mode (batch or bench), BenchOnly to `stagg
  // bench`.
  std::string RunOnly;
  std::string SuiteFlag;
  std::string BenchOnly;
  std::string FormatFlag;
  std::string CheckOnly;
  std::string ServeOnly;
  for (; I < Args.size(); ++I) {
    // Positional arguments are subcommands: `serve` or `bench`.
    if (!Args[I].empty() && Args[I][0] != '-') {
      if (!SawCommand && Args[I] == "serve") {
        O.Mode = DriverMode::Serve;
        SawCommand = true;
        continue;
      }
      if (!SawCommand && Args[I] == "bench") {
        O.Mode = DriverMode::Bench;
        SawCommand = true;
        continue;
      }
      if (!SawCommand && Args[I] == "list") {
        O.Mode = DriverMode::List;
        SawCommand = true;
        continue;
      }
      if (!SawCommand && Args[I] == "check") {
        O.Mode = DriverMode::Check;
        SawCommand = true;
        continue;
      }
      if (!SawCommand && Args[I] == "disasm") {
        O.Mode = DriverMode::Disasm;
        SawCommand = true;
        continue;
      }
      if (O.Mode == DriverMode::Check || O.Mode == DriverMode::Disasm) {
        // `stagg check` / `stagg disasm` targets: registry names (check
        // also accepts C source paths).
        O.Targets.push_back(Args[I]);
        continue;
      }
      Parse.Error = "unknown command '" + Args[I] + "'";
      std::string Hint =
          suggestFor(Args[I], {"serve", "bench", "list", "check", "disasm"});
      if (!Hint.empty())
        Parse.Error += " — did you mean '" + Hint + "'?";
      Parse.Error += " (see --help)";
      break;
    }

    Flag F = splitFlag(Args[I]);
    std::string Value;

    bool IsBoolean = F.Name == "--help" || F.Name == "-h" ||
                     F.Name == "--list" || F.Name == "--verbose" ||
                     F.Name == "-v" || F.Name == "--no-verify" ||
                     F.Name == "--no-vm" || F.Name == "--no-vm-opt" ||
                     F.Name == "--full-grammar" ||
                     F.Name == "--equal-probability" ||
                     F.Name == "--cache-stats" || F.Name == "--Werror";
    if (IsBoolean && F.HasInline) {
      Parse.Error = F.Name + " does not take a value";
      break;
    }

    if (F.Name == "--help" || F.Name == "-h") {
      O.ShowHelp = true;
    } else if (F.Name == "--list") {
      O.ListOnly = true;
      RunOnly = F.Name;
    } else if (F.Name == "--verbose" || F.Name == "-v") {
      O.Verbose = true;
    } else if (F.Name == "--no-verify") {
      O.Config.SkipVerification = true;
    } else if (F.Name == "--no-vm") {
      O.Config.UseVm = false;
    } else if (F.Name == "--no-vm-opt") {
      O.Config.UseVmOpt = false;
    } else if (F.Name == "--full-grammar") {
      O.Config.Grammar.FullGrammar = true;
    } else if (F.Name == "--equal-probability") {
      O.Config.Grammar.EqualProbability = true;
    } else if (F.Name == "--cache-stats") {
      O.ShowCacheStats = true;
    } else if (F.Name == "--Werror") {
      O.CheckWerror = true;
      CheckOnly = F.Name;
    } else if (F.Name == "--input") {
      if (!takeValue(F, O.InputPath))
        break;
    } else if (F.Name == "--suite") {
      SuiteFlag = F.Name;
      if (!takeValue(F, O.Suite))
        break;
      const std::vector<std::string> &Known = knownSuites();
      if (std::find(Known.begin(), Known.end(), O.Suite) == Known.end()) {
        std::string Choices;
        for (const std::string &S : Known)
          Choices += (Choices.empty() ? "" : ", ") + S;
        Parse.Error =
            "unknown suite '" + O.Suite + "' (choices: " + Choices + ")";
        break;
      }
    } else if (F.Name == "--search") {
      if (!takeValue(F, Value))
        break;
      if (Value == "td" || Value == "top-down") {
        O.Config.Kind = core::SearchKind::TopDown;
      } else if (Value == "bu" || Value == "bottom-up") {
        O.Config.Kind = core::SearchKind::BottomUp;
      } else {
        Parse.Error = "--search expects td|bu, got '" + Value + "'";
        break;
      }
    } else if (F.Name == "--drop-penalty") {
      if (!takeValue(F, Value))
        break;
      if (!dropPenalty(O.Config.Search, Value)) {
        Parse.Error =
            "--drop-penalty expects a1..a5, b1, b2, a, b or all, got '" +
            Value + "'";
        break;
      }
    } else if (F.Name == "--format") {
      FormatFlag = F.Name;
      if (!takeValue(F, Value))
        break;
      if (Value == "table") {
        O.Format = OutputFormat::Table;
      } else if (Value == "csv") {
        O.Format = OutputFormat::Csv;
      } else if (Value == "tsv") {
        O.Format = OutputFormat::Tsv;
      } else if (Value == "json") {
        O.Format = OutputFormat::Json;
      } else {
        Parse.Error =
            "--format expects table|csv|tsv (or json for `stagg check`), "
            "got '" + Value + "'";
        break;
      }
    } else if (F.Name == "--csv") {
      RunOnly = F.Name;
      if (!takeValue(F, O.CsvPath))
        break;
    } else if (F.Name == "--limit" || F.Name == "--threads" ||
               F.Name == "--search-threads" ||
               F.Name == "--candidates" || F.Name == "--io-examples" ||
               F.Name == "--max-depth" || F.Name == "--max-size" ||
               F.Name == "--seed" || F.Name == "--example-seed") {
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N)) {
        Parse.Error = F.Name + " expects an integer, got '" + Value + "'";
        break;
      }
      bool Seed = F.Name == "--seed" || F.Name == "--example-seed";
      if (N < 0 || (!Seed && F.Name != "--limit" && N == 0) ||
          (!Seed && F.Name != "--max-size" &&
           N > std::numeric_limits<int>::max())) {
        Parse.Error = F.Name + " expects a positive value, got '" + Value +
                      "'";
        break;
      }
      if (F.Name == "--limit") {
        O.Limit = static_cast<int>(N);
        SuiteFlag = F.Name;
      }
      else if (F.Name == "--threads")
        O.Threads = static_cast<int>(N);
      else if (F.Name == "--search-threads")
        O.Config.Search.Threads = static_cast<int>(N);
      else if (F.Name == "--candidates")
        O.Config.NumCandidates = static_cast<int>(N);
      else if (F.Name == "--io-examples")
        O.Config.NumIoExamples = static_cast<int>(N);
      else if (F.Name == "--max-depth")
        O.Config.Search.MaxDepth = static_cast<int>(N);
      else if (F.Name == "--max-size")
        O.Config.Verify.MaxSize = N;
      else if (F.Name == "--seed")
        O.OracleSeed = static_cast<uint64_t>(N);
      else // --example-seed
        O.Config.ExampleSeed = static_cast<uint64_t>(N);
    } else if (F.Name == "--queue-depth" || F.Name == "--batch" ||
               F.Name == "--batch-wait-us" || F.Name == "--cache-capacity" ||
               F.Name == "--cache-shards") {
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N)) {
        Parse.Error = F.Name + " expects an integer, got '" + Value + "'";
        break;
      }
      // Zero means "off" for the wait and the cache; the structural knobs
      // (queue depth, batch width, shard count) need at least one.
      bool ZeroOk =
          F.Name == "--batch-wait-us" || F.Name == "--cache-capacity";
      if (N < 0 || (!ZeroOk && N == 0) ||
          (F.Name != "--cache-capacity" &&
           N > std::numeric_limits<int>::max())) {
        Parse.Error =
            F.Name + " expects a positive value, got '" + Value + "'";
        break;
      }
      if (F.Name == "--queue-depth")
        O.Config.Serve.QueueDepth = static_cast<int>(N);
      else if (F.Name == "--batch")
        O.Config.Serve.BatchSize = static_cast<int>(N);
      else if (F.Name == "--batch-wait-us")
        O.Config.Serve.BatchWaitMicros = static_cast<int>(N);
      else if (F.Name == "--cache-capacity")
        O.Config.Serve.CacheCapacity = static_cast<size_t>(N);
      else // --cache-shards
        O.Config.Serve.CacheShards = static_cast<int>(N);
    } else if (F.Name == "--listen") {
      ServeOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      // Validate the shape here so a typo fails at startup, not at bind
      // time: "<addr>:<port>" with a numeric port (0 picks a free one).
      std::string::size_type Colon = Value.rfind(':');
      long long Port = 0;
      if (Colon == std::string::npos || Colon == 0 ||
          !parseInt(Value.substr(Colon + 1), Port) || Port < 0 ||
          Port > 65535) {
        Parse.Error = "--listen expects <addr>:<port> (port 0 picks a free "
                      "one), got '" + Value + "'";
        break;
      }
      O.Config.Serve.ListenAddr = Value;
    } else if (F.Name == "--max-conns" || F.Name == "--max-inflight") {
      ServeOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N) || N <= 0 ||
          N > std::numeric_limits<int>::max()) {
        Parse.Error =
            F.Name + " expects a positive value, got '" + Value + "'";
        break;
      }
      if (F.Name == "--max-conns")
        O.Config.Serve.MaxConns = static_cast<int>(N);
      else
        O.Config.Serve.MaxInFlight = static_cast<int>(N);
    } else if (F.Name == "--idle-timeout") {
      ServeOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      double Seconds = 0;
      if (!parseDouble(Value, Seconds) || !std::isfinite(Seconds) ||
          Seconds < 0) {
        Parse.Error =
            "--idle-timeout expects seconds >= 0 (0 disables), got '" +
            Value + "'";
        break;
      }
      O.Config.Serve.IdleTimeoutSeconds = Seconds;
    } else if (F.Name == "--cache-file") {
      ServeOnly = F.Name;
      if (!takeValue(F, O.Config.Serve.CachePath))
        break;
    } else if (F.Name == "--max-execute-cells") {
      ServeOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N) || N < 0) {
        Parse.Error = "--max-execute-cells expects a value >= 0 (0 "
                      "disables the cap), got '" + Value + "'";
        break;
      }
      O.Config.Serve.MaxExecuteCells = static_cast<int64_t>(N);
    } else if (F.Name == "--execute-threads") {
      ServeOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N) || N < 0 ||
          N > std::numeric_limits<int>::max()) {
        Parse.Error = "--execute-threads expects a value >= 0 (0 means "
                      "hardware concurrency), got '" + Value + "'";
        break;
      }
      O.Config.Serve.ExecuteThreads = static_cast<int>(N);
    } else if (F.Name == "--timeout") {
      if (!takeValue(F, Value))
        break;
      double Seconds = 0;
      if (!parseDouble(Value, Seconds) || !std::isfinite(Seconds) ||
          Seconds <= 0) {
        Parse.Error = "--timeout expects seconds > 0, got '" + Value + "'";
        break;
      }
      O.Config.Search.TimeoutSeconds = Seconds;
    } else if (F.Name == "--json") {
      BenchOnly = F.Name;
      if (!takeValue(F, O.JsonPath))
        break;
    } else if (F.Name == "--min-time") {
      BenchOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      double Seconds = 0;
      if (!parseDouble(Value, Seconds) || !std::isfinite(Seconds) ||
          Seconds <= 0) {
        Parse.Error = "--min-time expects seconds > 0, got '" + Value + "'";
        break;
      }
      O.BenchMinTime = Seconds;
    } else if (F.Name == "--repeat") {
      BenchOnly = F.Name;
      if (!takeValue(F, Value))
        break;
      long long N = 0;
      if (!parseInt(Value, N) || N <= 0 || N > 1000) {
        Parse.Error =
            "--repeat expects a repetition count in 1..1000, got '" + Value +
            "'";
        break;
      }
      O.BenchRepeat = static_cast<int>(N);
    } else {
      Parse.Error = "unknown flag '" + Args[I] + "'";
      std::string Hint = suggestFor(F.Name, knownFlags());
      if (!Hint.empty())
        Parse.Error += " — did you mean '" + Hint + "'?";
      Parse.Error += " (see --help)";
      break;
    }
  }

  // Silently ignoring a mode-mismatched flag would do the wrong large
  // thing: --input without `serve` runs the whole default suite; --csv
  // with `serve` writes nothing the user asked for.
  if (Parse.ok() && !O.ShowHelp) {
    // --format is mode-checked separately from the other RunOnly flags
    // because `stagg check` shares it (table|json).
    std::string TableOnly = !RunOnly.empty() ? RunOnly : FormatFlag;
    if (O.Mode != DriverMode::Serve && !O.InputPath.empty())
      Parse.Error = "--input only applies to `stagg serve`";
    else if (O.Mode == DriverMode::Serve && !TableOnly.empty())
      Parse.Error = TableOnly + " only applies to batch mode, not `stagg "
                                "serve` (requests come from the input "
                                "stream)";
    else if (O.Mode == DriverMode::Serve && !SuiteFlag.empty())
      Parse.Error = SuiteFlag + " only applies to batch mode, not `stagg "
                                "serve` (requests come from the input "
                                "stream)";
    else if (O.Mode != DriverMode::Bench && !BenchOnly.empty())
      Parse.Error = BenchOnly + " only applies to `stagg bench`";
    else if (O.Mode == DriverMode::Bench && !TableOnly.empty())
      Parse.Error =
          TableOnly + " does not apply to `stagg bench` (see --help)";
    else if (O.Mode == DriverMode::List && !TableOnly.empty())
      Parse.Error =
          TableOnly + " does not apply to `stagg list` (see --help)";
    else if (O.Mode == DriverMode::Disasm && !TableOnly.empty())
      Parse.Error =
          TableOnly + " does not apply to `stagg disasm` (see --help)";
    else if (O.Mode != DriverMode::Serve && !ServeOnly.empty())
      Parse.Error = ServeOnly + " only applies to `stagg serve`";
    else if (!O.Config.Serve.ListenAddr.empty() && !O.InputPath.empty())
      Parse.Error = "--listen and --input are mutually exclusive (requests "
                    "arrive over the socket)";
    else if (O.Mode != DriverMode::Check && !CheckOnly.empty())
      Parse.Error = CheckOnly + " only applies to `stagg check`";
    else if (O.Mode != DriverMode::Check && O.Format == OutputFormat::Json)
      Parse.Error = "--format json only applies to `stagg check`";
    else if (O.Mode == DriverMode::Check && !RunOnly.empty())
      Parse.Error =
          RunOnly + " does not apply to `stagg check` (see --help)";
    else if (O.Mode == DriverMode::Check && (O.Format == OutputFormat::Csv ||
                                             O.Format == OutputFormat::Tsv))
      Parse.Error = "`stagg check` renders table or json, not csv/tsv";
  }

  return Parse;
}

std::string driver::usage() {
  std::ostringstream Os;
  Os << "stagg — guided tensor lifting pipeline driver\n"
     << "\n"
     << "Runs the full lift pipeline (C parse -> kernel analysis -> "
        "LLM-seeded\n"
     << "PCFG -> weighted A* search -> TACO codegen -> I/O validation -> "
        "bounded\n"
     << "verification) over a benchmark suite on a worker pool.\n"
     << "\n"
     << "Usage: stagg [options]         batch suite run\n"
     << "       stagg bench [options]   performance report: runs the micro\n"
     << "                               benchmarks (TACO parse, einsum,\n"
     << "                               C interpreter, grammar, search,\n"
     << "                               validator, verifier) plus an\n"
     << "                               end-to-end lift-latency sweep over\n"
     << "                               the selected suite; prints a table\n"
     << "                               and, with --json PATH, writes the\n"
     << "                               versioned JSON report consumed by\n"
     << "                               scripts/bench_compare.py and the CI\n"
     << "                               perf job\n"
     << "       stagg serve [options]   persistent serving loop: reads\n"
     << "                               newline-delimited requests from\n"
     << "                               stdin (or --input FILE) and streams\n"
     << "                               one result line each. A request is\n"
     << "                               a protocol-v1 JSON object — e.g.\n"
     << "                               {\"v\":1,\"kernel\":\"void kernel("
        "...){...}\",\n"
     << "                               \"config\":{\"skip_verify\":true}} "
        "— carrying\n"
     << "                               a registry name or an inline C\n"
     << "                               kernel plus per-request config\n"
     << "                               overrides (see README, \"Wire\n"
     << "                               protocol v1\"), or a legacy bare\n"
     << "                               benchmark name. Exit codes: 0 ok,\n"
     << "                               2 unknown name, 3 bad JSON,\n"
     << "                               4 kernel ingestion failure,\n"
     << "                               5 static checker refused a kernel\n"
     << "       stagg check [targets]   static safety & liftability lint:\n"
     << "                               runs analysis::Checker (bounds\n"
     << "                               proofs, loop-carried dependences,\n"
     << "                               aliasing, uninitialized\n"
     << "                               accumulators; SK001..SK007) over\n"
     << "                               registry names and/or C source\n"
     << "                               files, or the --suite selection\n"
     << "                               when no targets are given. Exit\n"
     << "                               codes: 0 clean, 1 hard findings\n"
     << "                               (or warnings with --Werror),\n"
     << "                               2 bad target\n"
     << "\n"
     << "Commands:\n"
     << "  stagg [flags]       batch suite run (default)\n"
     << "  stagg serve         persistent request-serving loop\n"
     << "  stagg bench         micro + end-to-end performance report\n"
     << "  stagg list          print registry kernels with suite tags and\n"
     << "                      ingestion-class labels (subscript |\n"
     << "                      pointer-walking | conditional |\n"
     << "                      multi-statement)\n"
     << "  stagg check         static safety lint over kernels (see the\n"
     << "                      README's diagnostics catalog)\n"
     << "  stagg disasm        print the VM instruction stream of each\n"
     << "                      target's ground-truth lifted program —\n"
     << "                      optimized by default, raw with --no-vm-opt\n"
     << "                      (targets: registry names, or the --suite\n"
     << "                      selection when none are given)\n"
     << "\n"
     << "Suite selection:\n"
     << "  --suite NAME        all | real | paper | artificial | blas | "
        "darknet |\n"
     << "                      dsp | misc | llama | pointer (default: real;\n"
     << "                      paper = the original 77, pointer = the\n"
     << "                      post-paper pointer/conditional/fused suite)\n"
     << "  --limit N           run only the first N selected benchmarks\n"
     << "  --list              print the selection and exit\n"
     << "\n"
     << "Pipeline configuration:\n"
     << "  --search td|bu      top-down (default) or bottom-up search\n"
     << "  --timeout SECONDS   per-benchmark search budget (default 5)\n"
     << "  --candidates N      oracle candidates per query (default 10)\n"
     << "  --io-examples N     I/O examples for validation (default 3)\n"
     << "  --max-depth N       top-down expression depth cap (default 6)\n"
     << "  --max-size N        bounded-verifier size bound (default 2)\n"
     << "  --seed N            simulated-LLM oracle seed\n"
     << "  --example-seed N    I/O example generator seed\n"
     << "  --search-threads N  parallel candidate-probing workers per lift\n"
     << "                      (default 1 = serial; results are bit-identical\n"
     << "                      for every N, and the serving layer caps N so\n"
     << "                      pool width x N never oversubscribes the host)\n"
     << "\n"
     << "Ablations (paper Tables 2/3):\n"
     << "  --no-verify         accept on I/O validation only (C2TACO-style)\n"
     << "  --no-vm             evaluate candidates with the tree-walking\n"
     << "                      evaluator instead of the bytecode VM (A/B;\n"
     << "                      results are bit-identical, just slower)\n"
     << "  --no-vm-opt         run the raw VM instruction stream, skipping\n"
     << "                      vm::optimize (load hoisting, fused spans,\n"
     << "                      dead-register elimination; A/B — results are\n"
     << "                      bit-identical, just slower)\n"
     << "  --full-grammar      FullGrammar: skip dimension refinement\n"
     << "  --equal-probability EqualProbability: uniform rule weights\n"
     << "  --drop-penalty P    disable penalty a1..a5|b1|b2, or a|b|all;\n"
     << "                      repeatable\n"
     << "\n"
     << "Serving layer (both modes run on it):\n"
     << "  --queue-depth N     request-queue bound; full = backpressure\n"
     << "                      (default 64)\n"
     << "  --batch N           coalesce up to N oracle calls per propose\n"
     << "                      round (default 1 = off)\n"
     << "  --batch-wait-us N   how long a round waits to fill (default "
        "200)\n"
     << "  --cache-capacity N  kernel-text result-cache entries; 0 "
        "disables\n"
     << "                      (default 1024)\n"
     << "  --cache-shards N    independently locked cache shards (default "
        "8)\n"
     << "  --cache-stats       print cache/batching counters to stderr\n"
     << "  --input PATH        serve: read requests from PATH, not stdin\n"
     << "\n"
     << "Socket transport (stagg serve --listen):\n"
     << "  --listen ADDR:PORT  serve over TCP instead of stdin: newline-\n"
     << "                      delimited v1 requests or v2 batch frames\n"
     << "                      (see README, \"Running as a network "
        "service\").\n"
     << "                      Port 0 picks a free port; the bound address\n"
     << "                      is printed as `listening on HOST:PORT`\n"
     << "  --max-conns N       concurrent connection cap; extra clients are\n"
     << "                      refused with an error event (default 64)\n"
     << "  --max-inflight N    per-connection fairness cap: reads pause\n"
     << "                      while a client has this many requests\n"
     << "                      admitted or queued (default 8)\n"
     << "  --idle-timeout S    close connections quiet for S seconds;\n"
     << "                      0 disables (default 300)\n"
     << "  --cache-file PATH   persist the result cache to an append-only\n"
     << "                      journal at PATH, reloaded on restart\n"
     << "  --max-execute-cells N  total tensor cells one v2 execute frame\n"
     << "                      may materialize (inputs + output); larger\n"
     << "                      requests answer a result error instead of\n"
     << "                      allocating. 0 disables (default 4194304)\n"
     << "  --execute-threads N worker threads for one v2 execute request:\n"
     << "                      outputs above a cell threshold are split\n"
     << "                      into disjoint row tiles, bit-identical to\n"
     << "                      the serial pass. 0 = hardware concurrency\n"
     << "                      (default 1 = serial); patchable per request\n"
     << "                      as \"execute_threads\"\n"
     << "\n"
     << "Benchmarking (stagg bench):\n"
     << "  --json PATH         write the versioned JSON report to PATH\n"
     << "  --min-time SECONDS  minimum measured time per micro benchmark\n"
     << "                      (default 0.1)\n"
     << "  --repeat N          measure each micro N times and report the\n"
     << "                      median, stabilizing the --min-speedup perf\n"
     << "                      gates (default 1)\n"
     << "\n"
     << "Linting (stagg check):\n"
     << "  [targets]           registry names and/or C files; default is\n"
     << "                      the --suite selection\n"
     << "  --format table|json human table (default) or one JSON report\n"
     << "  --Werror            warnings also fail the lint (exit 1)\n"
     << "\n"
     << "Execution and output:\n"
     << "  --threads N         worker pool width (default: hardware)\n"
     << "  --format F          table (default) | csv | tsv on stdout\n"
     << "  --csv PATH          also write per-benchmark rows to PATH\n"
     << "  --verbose, -v       one progress line per finished benchmark\n"
     << "  --help, -h          this text\n"
     << "\n"
     << "Examples:\n"
     << "  stagg --suite blas --limit 3\n"
     << "  stagg --suite real --search bu --threads 8 --csv results.csv\n"
     << "  stagg --suite all --drop-penalty a --equal-probability\n"
     << "  stagg serve --threads 4 --batch 4 --cache-stats < requests.txt\n"
     << "  stagg serve --listen 127.0.0.1:0 --cache-file lift-cache.jsonl\n"
     << "  stagg bench --suite real --threads 1 --json bench.json\n"
     << "  stagg list --suite pointer\n"
     << "  stagg check --suite all\n"
     << "  stagg check blas_gemv mykernel.c --Werror --format json\n"
     << "  stagg disasm blas_dot misc_sum2d\n"
     << "  stagg disasm --suite blas --no-vm-opt\n";
  return Os.str();
}

int driver::runDisasmCommand(const CliOptions &Options) {
  // Resolve the targets: explicit registry names, else the --suite
  // selection (only kernels whose ground truth lowers to VM code).
  std::vector<const bench::Benchmark *> Targets;
  if (Options.Targets.empty()) {
    std::string Error;
    Targets = selectSuite(Options.Suite, Options.Limit, Error);
    if (!Error.empty()) {
      std::cerr << "stagg: " << Error << "\n";
      return 2;
    }
  } else {
    for (const std::string &Name : Options.Targets) {
      const bench::Benchmark *B = bench::findBenchmark(Name);
      if (!B) {
        std::vector<std::string> Names;
        for (const bench::Benchmark &Known : bench::allBenchmarks())
          Names.push_back(Known.Name);
        std::cerr << "stagg: unknown benchmark '" << Name << "'";
        std::string Hint = closestMatch(Name, Names);
        if (!Hint.empty())
          std::cerr << " — did you mean '" << Hint << "'?";
        std::cerr << "\n";
        return 2;
      }
      Targets.push_back(B);
    }
  }

  // --no-vm-opt prints the raw compiler output; the default prints the
  // stream every consumer of a concrete program actually runs (optimized,
  // constants frozen).
  vm::OptimizeOptions OptOpts;
  OptOpts.FreezeConstants = true;
  for (const bench::Benchmark *B : Targets) {
    taco::ParseStatementsResult GT = taco::parseTacoStatements(B->GroundTruth);
    std::cout << "== " << B->Name << ": " << B->GroundTruth << "\n";
    if (!GT.ok() || GT.Programs.empty()) {
      std::cout << "  <ground truth does not parse: " << GT.Error << ">\n";
      continue;
    }
    vm::Code Code = vm::compileStatements(GT.Programs);
    if (!Code.ok()) {
      std::cout << "  <does not lower to VM code: " << Code.error() << ">\n";
      continue;
    }
    if (Options.Config.UseVmOpt)
      Code = vm::optimize(Code, OptOpts);
    std::cout << vm::disassemble(Code);
  }
  return 0;
}

int driver::runListCommand(const CliOptions &Options) {
  std::string Error;
  std::vector<const bench::Benchmark *> Suite =
      selectSuite(Options.Suite, Options.Limit, Error);
  if (!Error.empty()) {
    std::cerr << "stagg: " << Error << "\n";
    return 2;
  }

  struct Row {
    const bench::Benchmark *B;
    std::string Class;
    std::string Vm;
  };
  std::vector<Row> Rows;
  std::map<std::string, int> PerClass;
  for (const bench::Benchmark *B : Suite) {
    cfront::CParseResult Parsed = cfront::parseCFunction(B->CSource);
    std::string Label = "unparseable";
    if (Parsed.ok()) {
      analysis::KernelModel Model = analysis::buildKernelModel(*Parsed.Function);
      Label = analysis::kernelClassName(analysis::classifyKernel(Model));
    }
    // Does the ground-truth lifted program lower to vm::Code? "-" marks
    // programs the VM cannot take (the pipeline falls back to the
    // tree-walk for them, so this is informational, not an error).
    std::string Vm = "-";
    taco::ParseStatementsResult GT = taco::parseTacoStatements(B->GroundTruth);
    if (GT.ok() && !GT.Programs.empty() &&
        vm::compileStatements(GT.Programs).ok())
      Vm = "yes";
    ++PerClass[Label];
    Rows.push_back({B, std::move(Label), std::move(Vm)});
  }

  size_t NameW = 9, CatW = 5, ClassW = 5;
  for (const Row &R : Rows) {
    NameW = std::max(NameW, R.B->Name.size());
    CatW = std::max(CatW, R.B->Category.size());
    ClassW = std::max(ClassW, R.Class.size());
  }
  std::cout << std::left << std::setw(static_cast<int>(NameW) + 2)
            << "benchmark" << std::setw(static_cast<int>(CatW) + 2) << "suite"
            << std::setw(static_cast<int>(ClassW) + 2) << "class"
            << std::setw(5) << "vm"
            << "ground truth\n";
  for (const Row &R : Rows)
    std::cout << std::left << std::setw(static_cast<int>(NameW) + 2)
              << R.B->Name << std::setw(static_cast<int>(CatW) + 2)
              << R.B->Category << std::setw(static_cast<int>(ClassW) + 2)
              << R.Class << std::setw(5) << R.Vm << R.B->GroundTruth << "\n";

  std::cout << Rows.size() << " benchmarks (";
  bool First = true;
  for (const auto &[Label, Count] : PerClass) {
    if (!First)
      std::cout << ", ";
    First = false;
    std::cout << Count << " " << Label;
  }
  std::cout << ")\n";
  return 0;
}
