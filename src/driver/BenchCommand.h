//===- driver/BenchCommand.h - stagg bench subcommand -----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `stagg bench` subcommand: the performance surface of the lift
/// pipeline as one machine-readable artifact. Two layers run back to back:
///
///  * *Micro benchmarks* over the hot primitives (TACO parsing, einsum
///    evaluation, the mini-C interpreter, grammar construction, search
///    enumeration, validator substitution enumeration, and the bounded
///    verifier with and without its reference cache) — the same suite
///    bench/micro_primitives.cpp registers with google-benchmark, here
///    driven by a self-contained adaptive harness so the subcommand works
///    without the optional dependency.
///  * An *end-to-end lift-latency sweep* over a named benchmark suite
///    (--suite/--limit), reporting per-benchmark lift wall time and the
///    total.
///
/// Results print as an aligned table on stdout; `--json PATH` additionally
/// writes the versioned report consumed by scripts/bench_compare.py and the
/// CI perf job (see README, "stagg bench"):
///
///   { "schema": "stagg-bench", "version": 1,
///     "config_fingerprint": "...", "suite": "real", "threads": N,
///     "benchmarks": [ { "name": "micro/taco_parse",
///                       "wall_seconds": 0.1, "iterations": 123456,
///                       "per_iter_seconds": 8.1e-7 }, ... ] }
///
/// Lift entries are named "lift/<benchmark>" with iterations = 1 and a
/// "solved" flag; "lift/_total" carries the sweep's wall clock.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_BENCHCOMMAND_H
#define STAGG_DRIVER_BENCHCOMMAND_H

#include "driver/Cli.h"

#include <iosfwd>

namespace stagg {
namespace driver {

/// One measured benchmark (micro or end-to-end).
struct BenchEntry {
  std::string Name;
  double WallSeconds = 0;
  int64_t Iterations = 0;

  /// Lift entries only: whether the lift succeeded (-1 = not a lift).
  int Solved = -1;

  double perIterSeconds() const {
    return Iterations > 0 ? WallSeconds / static_cast<double>(Iterations) : 0;
  }
};

/// The whole report.
struct BenchReport {
  std::vector<BenchEntry> Entries;
  std::string ConfigFingerprint;
  std::string Suite;
  int Threads = 1;
};

/// Runs the micro suite plus the lift sweep under \p Options. Progress
/// lines go to \p Progress (nullptr for silence).
BenchReport runBench(const CliOptions &Options, std::ostream *Progress);

/// Renders the aligned human-readable table.
void printBenchTable(std::ostream &Os, const BenchReport &Report);

/// Serializes the versioned JSON report (schema above, single line).
std::string benchReportJson(const BenchReport &Report);

/// Entry point used by Main: runs, prints the table, writes --json when
/// requested. Returns 0, or 1 when the JSON file cannot be written.
int runBenchCommand(const CliOptions &Options);

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_BENCHCOMMAND_H
