//===- driver/BenchCommand.cpp - stagg bench subcommand -------------------===//

#include "driver/BenchCommand.h"

#include "analysis/Checker.h"
#include "analysis/KernelAnalysis.h"
#include "analysis/KernelModel.h"
#include "api/KernelIngest.h"
#include "cfront/Interp.h"
#include "cfront/Parser.h"
#include "driver/SuiteRunner.h"
#include "grammar/DimensionList.h"
#include "grammar/Pcfg.h"
#include "grammar/Template.h"
#include "search/TopDown.h"
#include "search/WorkerPool.h"
#include "serve/ResultCache.h"
#include "serve/SocketServer.h"
#include "support/Json.h"
#include "support/Timer.h"
#include "taco/Einsum.h"
#include "taco/Parser.h"
#include "taco/Printer.h"
#include "validate/Validator.h"
#include "verify/BoundedVerifier.h"
#include "vm/Compiler.h"
#include "vm/Interpreter.h"
#include "vm/Optimizer.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace stagg;
using namespace stagg::driver;

namespace {

/// One registered micro benchmark: a name and a single-iteration body.
struct Micro {
  std::string Name;
  std::function<void()> Body;
};

/// Runs \p M adaptively: one warm-up iteration, then batches until the
/// measured wall time reaches \p MinSeconds. With \p Repeat > 1 the whole
/// measurement repeats and the median sample (by per-iteration time) is
/// reported — `stagg bench --repeat N` — so the perf gates compare a
/// noise-resistant statistic instead of one timing sample.
BenchEntry runMicro(const Micro &M, double MinSeconds, int Repeat) {
  M.Body();
  std::vector<BenchEntry> Samples;
  for (int R = 0; R < std::max(1, Repeat); ++R) {
    BenchEntry Entry;
    Entry.Name = M.Name;
    Timer Clock;
    int64_t Batch = 1;
    for (;;) {
      for (int64_t I = 0; I < Batch; ++I)
        M.Body();
      Entry.Iterations += Batch;
      Entry.WallSeconds = Clock.seconds();
      if (Entry.WallSeconds >= MinSeconds)
        break;
      // Grow the batch toward the remaining budget to keep clock reads
      // rare.
      Batch = std::min<int64_t>(Entry.Iterations * 4, int64_t(1) << 24);
    }
    Samples.push_back(std::move(Entry));
  }
  std::sort(Samples.begin(), Samples.end(),
            [](const BenchEntry &A, const BenchEntry &B) {
              return A.perIterSeconds() < B.perIterSeconds();
            });
  // Lower middle for even N: biasing toward the faster sample is the
  // conventional choice for timing medians (slow outliers, not fast ones,
  // are the noise being rejected).
  return Samples[(Samples.size() - 1) / 2];
}

/// Shared fixture state for the pipeline micros, built once.
struct MicroFixtures {
  // blas_axpy: enumeration-heavy validation (2 scalar-rank options x two
  // rank-1 symbols over three rank-1 arguments).
  const bench::Benchmark *Axpy = bench::findBenchmark("blas_axpy");
  std::unique_ptr<cfront::CFunction> AxpyFn;
  std::vector<validate::IoExample> AxpyExamples;
  taco::Program AxpyTemplate;

  // blas_gemv_ptr: the paper's Fig. 2 kernel; validator + verifier target.
  const bench::Benchmark *Gemv = bench::findBenchmark("blas_gemv_ptr");
  std::unique_ptr<cfront::CFunction> GemvFn;
  std::vector<validate::IoExample> GemvExamples;
  taco::Program GemvTemplate;
  taco::Program GemvTruth;

  MicroFixtures() {
    {
      cfront::CParseResult R = cfront::parseCFunction(Axpy->CSource);
      AxpyFn = std::move(R.Function);
      Rng Rand(42);
      AxpyExamples = validate::generateExamples(*Axpy, *AxpyFn, 3, Rand);
      AxpyTemplate = grammar::templatize(
                         *taco::parseTacoProgram(Axpy->GroundTruth).Prog)
                         .Template;
    }
    {
      cfront::CParseResult R = cfront::parseCFunction(Gemv->CSource);
      GemvFn = std::move(R.Function);
      Rng Rand(42);
      GemvExamples = validate::generateExamples(*Gemv, *GemvFn, 3, Rand);
      GemvTemplate = grammar::templatize(
                         *taco::parseTacoProgram(Gemv->GroundTruth).Prog)
                         .Template;
      GemvTruth = *taco::parseTacoProgram(Gemv->GroundTruth).Prog;
    }
  }
};

/// The micro suite. Mirrors bench/micro_primitives.cpp (the google-benchmark
/// build of the same measurements) and adds the validator/verifier hot
/// paths this repo's perf work targets.
std::vector<Micro> buildMicros(const MicroFixtures &F) {
  std::vector<Micro> Micros;

  Micros.push_back({"micro/taco_parse", [] {
                      auto R = taco::parseTacoProgram(
                          "C(i,j) = A(i,k) * B(k,j) + D(i,j)");
                      if (!R.ok())
                        std::abort();
                    }});

  {
    auto P = std::make_shared<taco::Program>(
        *taco::parseTacoProgram("a(i,j) = b(i,k) * c(k,j)").Prog);
    auto Ops =
        std::make_shared<std::map<std::string, taco::Tensor<double>>>();
    taco::Tensor<double> Bm({16, 16}), Cm({16, 16});
    for (size_t I = 0; I < Bm.flat().size(); ++I) {
      Bm.flat()[I] = static_cast<double>(I % 7);
      Cm.flat()[I] = static_cast<double>(I % 5);
    }
    Ops->emplace("b", std::move(Bm));
    Ops->emplace("c", std::move(Cm));
    Micros.push_back({"micro/einsum_matmul16", [P, Ops] {
                        auto R = taco::evalEinsum<double>(*P, *Ops, {16, 16});
                        if (!R.Ok)
                          std::abort();
                      }});
  }

  {
    auto Fn = std::make_shared<cfront::CParseResult>(
        cfront::parseCFunction(F.Gemv->CSource));
    Micros.push_back({"micro/cinterp_gemv32", [Fn] {
                        cfront::ExecEnv<double> Env;
                        Env.IntScalars["N"] = 32;
                        Env.Arrays["Mat1"].assign(32 * 32, 2.0);
                        Env.Arrays["Mat2"].assign(32, 3.0);
                        Env.Arrays["Result"].assign(32, 0.0);
                        auto S = cfront::runCFunction(*Fn->Function, Env);
                        if (!S.Ok)
                          std::abort();
                      }});
  }

  {
    const bench::Benchmark *B = bench::findBenchmark("dsp_matmul_ptr");
    auto Fn = std::make_shared<cfront::CParseResult>(
        cfront::parseCFunction(B->CSource));
    Micros.push_back({"micro/static_analysis", [Fn] {
                        analysis::KernelSummary S =
                            analysis::analyzeKernel(*Fn->Function);
                        if (S.LhsDim < 0)
                          std::abort();
                      }});
    Micros.push_back({"micro/kernel_model", [Fn] {
                        analysis::KernelModel M =
                            analysis::buildKernelModel(*Fn->Function);
                        if (M.Loops.empty())
                          std::abort();
                      }});
    // The safety pass alone (no model rebuild): bounds proofs, dependence
    // and aliasing analysis, under the declared shapes — what the
    // ingestion gate and `stagg check` add on top of the model.
    auto Model = std::make_shared<analysis::KernelModel>(
        analysis::buildKernelModel(*Fn->Function));
    auto Opts = std::make_shared<analysis::CheckOptions>();
    for (const bench::ArgSpec &Arg : B->Args) {
      if (Arg.K != bench::ArgSpec::Kind::Array)
        continue;
      std::vector<analysis::Poly> Extents;
      for (const std::string &Dim : Arg.Shape)
        Extents.push_back(analysis::shapeExtentPoly(Dim));
      Opts->Shapes.emplace(Arg.Name, std::move(Extents));
      if (Arg.IsOutput)
        Opts->OutputParams.insert(Arg.Name);
    }
    Micros.push_back({"micro/checker", [Model, Opts] {
                        analysis::CheckReport R =
                            analysis::checkKernel(*Model, *Opts);
                        if (R.hardCount() != 0)
                          std::abort();
                      }});
  }

  // Model-based ingestion end to end (parse + model + shapes + reference
  // translation + smoke example): the serve admission path for inline
  // kernels, one entry per ingestion class.
  {
    auto AddIngest = [&Micros](const char *Name, const char *Registry) {
      auto Src = std::make_shared<std::string>(
          bench::findBenchmark(Registry)->CSource);
      Micros.push_back({Name, [Src] {
                          api::IngestResult R = api::ingestKernel(*Src, "b");
                          if (!R.ok())
                            std::abort();
                        }});
    };
    AddIngest("micro/ingest_subscript", "blas_axpy");
    AddIngest("micro/ingest_pointer", "ptr_mv_rowwalk");
    AddIngest("micro/ingest_conditional", "relu_forward");
    AddIngest("micro/ingest_fused", "fused_scale_shift");
  }

  {
    auto T = std::make_shared<std::vector<grammar::Templatized>>();
    for (const char *S : {"r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(j)",
                          "r(i) = m(i,j) * v(i)", "r(i) = m(i,j) + v(j)"})
      T->push_back(grammar::templatize(*taco::parseTacoProgram(S).Prog));
    *T = grammar::dedupTemplates(*T);
    Micros.push_back(
        {"micro/grammar_construction", [T] {
           grammar::TemplateGrammar G = grammar::buildTemplateGrammar(
               *T, grammar::predictDimensionList(*T, 1), 1,
               grammar::GrammarOptions());
           if (G.TensorRules.empty())
             std::abort();
         }});
  }

  {
    auto T = std::make_shared<std::vector<grammar::Templatized>>();
    for (const char *S : {"r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(j)"})
      T->push_back(grammar::templatize(*taco::parseTacoProgram(S).Prog));
    *T = grammar::dedupTemplates(*T);
    auto G = std::make_shared<grammar::TemplateGrammar>(
        grammar::buildTemplateGrammar(*T, grammar::predictDimensionList(*T, 1),
                                      1, grammar::GrammarOptions()));
    Micros.push_back({"micro/topdown_enumeration100", [G] {
                        search::SearchConfig Config;
                        Config.MaxAttempts = 100;
                        search::SearchResult R = search::runTopDown(
                            *G, Config,
                            [](const taco::Program &) { return false; });
                        if (R.Attempts <= 0)
                          std::abort();
                      }});
  }

  // The parallel frontier (search/Frontier.h): identical probe workloads —
  // one 32x32 VM matmul per candidate, heavy enough to amortize worker
  // spawn — driven serially and at four workers. The perf gate
  // (scripts/bench_compare.py --min-speedup) holds search_topdown_par to a
  // 2x win over its _ser twin within the same report, so the pair is the
  // scaling regression test. search_steal skews per-candidate work by a
  // factor of four, forcing idle workers onto the steal path.
  {
    auto T = std::make_shared<std::vector<grammar::Templatized>>();
    for (const char *S : {"r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(j)",
                          "r(i) = m(i,j) + v(i)", "r(i) = m(i,j) * v(i)"})
      T->push_back(grammar::templatize(*taco::parseTacoProgram(S).Prog));
    *T = grammar::dedupTemplates(*T);
    auto G = std::make_shared<grammar::TemplateGrammar>(
        grammar::buildTemplateGrammar(*T, grammar::predictDimensionList(*T, 1),
                                      1, grammar::GrammarOptions()));
    auto P = std::make_shared<taco::Program>(
        *taco::parseTacoProgram("a(i,j) = b(i,k) * c(k,j)").Prog);
    auto Code = std::make_shared<vm::Code>(vm::compileProgram(*P));
    auto Ops = std::make_shared<std::map<std::string, taco::Tensor<double>>>();
    taco::Tensor<double> Bm({32, 32}), Cm({32, 32});
    for (size_t I = 0; I < Bm.flat().size(); ++I) {
      Bm.flat()[I] = static_cast<double>(I % 7);
      Cm.flat()[I] = static_cast<double>(I % 5);
    }
    Ops->emplace("b", std::move(Bm));
    Ops->emplace("c", std::move(Cm));

    auto RunSearch = [G, Code, Ops](int Threads, bool Skewed) {
      search::SearchConfig Config;
      Config.MaxAttempts = 32;
      Config.Threads = Threads;
      search::SearchResult R = search::runTopDown(
          *G, Config, search::TemplateProbeFactory([&](int) {
            // Per-worker interpreter and scratch output: one shared
            // vm::Code, concurrent execution.
            auto Interp = std::make_shared<vm::Interpreter<double>>(*Code);
            if (!Interp->bindMap(*Ops, {32, 32}))
              std::abort();
            auto Out = std::make_shared<taco::Tensor<double>>(
                std::vector<int64_t>{32, 32});
            return search::TemplateProbe(
                [Interp, Out, Skewed](const taco::Program &Cand) {
                  int Reps = 1;
                  if (Skewed)
                    Reps += static_cast<int>(std::hash<std::string>()(
                                taco::printProgram(Cand)) %
                            4);
                  for (int I = 0; I < Reps; ++I)
                    Interp->evaluateInto(*Out);
                  return false;
                });
          }));
      if (R.Attempts != 32)
        std::abort();
    };
    Micros.push_back(
        {"micro/search_topdown_ser", [RunSearch] { RunSearch(1, false); }});
    Micros.push_back(
        {"micro/search_topdown_par", [RunSearch] { RunSearch(4, false); }});
    Micros.push_back(
        {"micro/search_steal", [RunSearch] { RunSearch(4, true); }});
  }

  // Validator substitution enumeration (the §6 hot path).
  {
    auto V = std::make_shared<validate::Validator>(
        *F.Axpy, F.AxpyExamples, std::vector<int64_t>{1, 2});
    auto T = std::make_shared<taco::Program>(F.AxpyTemplate);
    Micros.push_back({"micro/validator_axpy", [V, T] {
                        if (V->validate(*T).empty())
                          std::abort();
                      }});
  }
  {
    auto V = std::make_shared<validate::Validator>(
        *F.Gemv, F.GemvExamples, std::vector<int64_t>{1, 2});
    auto T = std::make_shared<taco::Program>(F.GemvTemplate);
    Micros.push_back({"micro/validator_gemv", [V, T] {
                        if (V->validate(*T).empty())
                          std::abort();
                      }});
  }

  // Bounded verifier (§7): one cold candidate, and the Fig. 1 fallback loop
  // of eight candidates sharing one reference cache.
  {
    auto Fn = std::make_shared<cfront::CParseResult>(
        cfront::parseCFunction(F.Gemv->CSource));
    auto P = std::make_shared<taco::Program>(F.GemvTruth);
    const bench::Benchmark *B = F.Gemv;
    Micros.push_back({"micro/verifier_gemv", [Fn, P, B] {
                        verify::VerifyResult VR = verify::verifyEquivalence(
                            *B, *Fn->Function, *P);
                        if (!VR.Equivalent)
                          std::abort();
                      }});
    Micros.push_back({"micro/verifier_fallback8", [Fn, P, B] {
                        verify::ReferenceCache Cache;
                        for (int I = 0; I < 8; ++I) {
                          verify::VerifyResult VR = verify::verifyEquivalence(
                              *B, *Fn->Function, *P, verify::VerifyOptions(),
                              &Cache);
                          if (!VR.Equivalent)
                            std::abort();
                        }
                      }});
  }

  // Bytecode VM: the compile cost a candidate pays once per validator /
  // verifier entry, and the pure execute cost after binding — the same
  // 16x16 matmul as micro/einsum_matmul16 for a direct tree-walk
  // comparison.
  {
    auto P = std::make_shared<taco::Program>(F.GemvTruth);
    Micros.push_back({"micro/vm_compile", [P] {
                        vm::Code Code = vm::compileProgram(*P);
                        if (!Code.ok())
                          std::abort();
                      }});
  }
  {
    auto P = std::make_shared<taco::Program>(
        *taco::parseTacoProgram("a(i,j) = b(i,k) * c(k,j)").Prog);
    auto Code = std::make_shared<vm::Code>(vm::compileProgram(*P));
    auto Ops =
        std::make_shared<std::map<std::string, taco::Tensor<double>>>();
    taco::Tensor<double> Bm({16, 16}), Cm({16, 16});
    for (size_t I = 0; I < Bm.flat().size(); ++I) {
      Bm.flat()[I] = static_cast<double>(I % 7);
      Cm.flat()[I] = static_cast<double>(I % 5);
    }
    Ops->emplace("b", std::move(Bm));
    Ops->emplace("c", std::move(Cm));
    auto Interp = std::make_shared<vm::Interpreter<double>>(*Code);
    if (!Interp->bindMap(*Ops, {16, 16}))
      std::abort();
    auto Out = std::make_shared<taco::Tensor<double>>(
        std::vector<int64_t>{16, 16});
    Micros.push_back({"micro/vm_execute", [Interp, Out, Code, Ops] {
                        Interp->evaluateInto(*Out);
                        if (Out->flat().empty())
                          std::abort();
                      }});

    // The same matmul through vm::optimize: a DotSpan superinstruction
    // replaces the interpreted k-loop. CI holds this to a 1.5x win over
    // micro/vm_execute within the same run (bench_compare --min-speedup).
    vm::OptimizeOptions OO;
    OO.FreezeConstants = true;
    auto Fused = std::make_shared<vm::Code>(vm::optimize(*Code, OO));
    auto FusedInterp = std::make_shared<vm::Interpreter<double>>(*Fused);
    if (!FusedInterp->bindMap(*Ops, {16, 16}))
      std::abort();
    Micros.push_back({"micro/vm_execute_fused",
                      [FusedInterp, Out, Fused, Ops] {
                        FusedInterp->evaluateInto(*Out);
                        if (Out->flat().empty())
                          std::abort();
                      }});
  }

  // Parallel tiled execute: the serve execute path above the cell
  // threshold — a 128x128 matmul partitioned over the output's outer
  // dimension on a four-worker pool via evaluateRows, including the
  // per-request pool spawn and per-tile bind the endpoint pays.
  {
    auto P = std::make_shared<taco::Program>(
        *taco::parseTacoProgram("a(i,j) = b(i,k) * c(k,j)").Prog);
    vm::OptimizeOptions OO;
    OO.FreezeConstants = true;
    auto Code = std::make_shared<vm::Code>(
        vm::optimize(vm::compileProgram(*P), OO));
    auto Ops =
        std::make_shared<std::map<std::string, taco::Tensor<double>>>();
    taco::Tensor<double> Bm({128, 128}), Cm({128, 128});
    for (size_t I = 0; I < Bm.flat().size(); ++I) {
      Bm.flat()[I] = static_cast<double>(I % 7);
      Cm.flat()[I] = static_cast<double>(I % 5);
    }
    Ops->emplace("b", std::move(Bm));
    Ops->emplace("c", std::move(Cm));
    auto Out = std::make_shared<taco::Tensor<double>>(
        std::vector<int64_t>{128, 128});
    Micros.push_back({"micro/vm_execute_tiled", [Code, Ops, Out] {
                        constexpr int Tiles = 4;
                        std::vector<double> &Flat = Out->flat();
                        search::WorkerPool Pool;
                        Pool.run(Tiles, [&](int Worker) {
                          vm::Interpreter<double> Tile(*Code);
                          if (!Tile.bindMap(*Ops, {128, 128}))
                            std::abort();
                          Tile.evaluateRows(Flat, 128 * Worker / Tiles,
                                            128 * (Worker + 1) / Tiles);
                        });
                        if (Flat.empty())
                          std::abort();
                      }});
  }

  // Socket transport round trip: one frame through the live epoll loop and
  // back over loopback TCP — the per-request floor of `stagg serve --listen`
  // before any lifting happens.
  {
    /// A self-contained echo server: loop thread plus one blocking client.
    struct EchoRig : serve::SocketProtocol {
      serve::SocketServer Server;
      std::thread Loop;
      int Fd = -1;

      EchoRig()
          : Server(*this, [] {
              serve::SocketServerOptions O;
              O.Host = "127.0.0.1";
              O.Port = 0;
              return O;
            }()) {}

      void onFrame(serve::SocketClient &Client,
                   const std::string &Line) override {
        Client.send("ok:" + Line);
      }
      void onDisconnect(serve::SocketClient &) override {}
      std::string rejectLine(serve::TransportReject) override {
        return "reject";
      }

      bool up() {
        std::string Error;
        if (!Server.start(Error))
          return false;
        Loop = std::thread([this] { Server.run(); });
        Fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in Addr = {};
        Addr.sin_family = AF_INET;
        Addr.sin_port = htons(static_cast<uint16_t>(Server.port()));
        Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr)) == 0;
      }

      void roundTrip() {
        const char Ping[] = "ping\n";
        if (::send(Fd, Ping, sizeof(Ping) - 1, 0) < 0)
          std::abort();
        char Buf[64];
        size_t Got = 0;
        while (Got == 0 || Buf[Got - 1] != '\n') {
          ssize_t N = ::recv(Fd, Buf + Got, sizeof(Buf) - Got, 0);
          if (N <= 0)
            std::abort();
          Got += static_cast<size_t>(N);
        }
      }

      ~EchoRig() override {
        if (Fd >= 0)
          ::close(Fd);
        Server.requestShutdown();
        if (Loop.joinable())
          Loop.join();
      }
    };
    auto Rig = std::make_shared<EchoRig>();
    if (Rig->up())
      Micros.push_back({"micro/socket_echo", [Rig] { Rig->roundTrip(); }});
  }

  // Persistent-cache record encode/decode: what every write-through insert
  // pays on the way out and every journal record pays at warm start.
  {
    auto Result = std::make_shared<core::LiftResult>();
    Result->Solved = true;
    Result->Verified = true;
    Result->Template = F.GemvTemplate;
    Result->Concrete = F.GemvTruth;
    Result->Attempts = 12;
    Result->Expansions = 3456;
    Micros.push_back({"micro/cache_persist", [Result] {
                        core::LiftResult Back;
                        if (!serve::liftResultFromJson(
                                serve::liftResultToJson(*Result), Back) ||
                            !Back.Solved)
                          std::abort();
                      }});
  }

  return Micros;
}

} // namespace

BenchReport driver::runBench(const CliOptions &Options,
                             std::ostream *Progress) {
  BenchReport Report;
  Report.ConfigFingerprint = core::configFingerprint(Options.Config);
  Report.Suite = Options.Suite;

  MicroFixtures Fixtures;
  std::vector<Micro> Micros = buildMicros(Fixtures);
  for (const Micro &M : Micros) {
    if (Progress)
      *Progress << "bench: " << M.Name << "\n";
    Report.Entries.push_back(
        runMicro(M, Options.BenchMinTime, Options.BenchRepeat));
  }

  // End-to-end lift latency over the selected suite.
  std::string SuiteError;
  std::vector<const bench::Benchmark *> Suite =
      selectSuite(Options.Suite, Options.Limit, SuiteError);
  if (Progress)
    *Progress << "bench: lift sweep over " << Suite.size() << " benchmarks ("
              << Options.Suite << ")\n";
  SuiteReport Sweep = runSuite(Suite, Options, nullptr);
  Report.Threads = Sweep.Threads;
  for (const RunRow &Row : Sweep.Rows) {
    BenchEntry Entry;
    Entry.Name = "lift/" + Row.Benchmark;
    Entry.WallSeconds = Row.Result.Seconds;
    Entry.Iterations = 1;
    Entry.Solved = Row.Result.Solved ? 1 : 0;
    Report.Entries.push_back(std::move(Entry));
  }
  BenchEntry Total;
  Total.Name = "lift/_total";
  Total.WallSeconds = Sweep.WallSeconds;
  Total.Iterations = 1;
  Total.Solved = Sweep.solvedCount() == static_cast<int>(Sweep.Rows.size());
  Report.Entries.push_back(std::move(Total));
  return Report;
}

void driver::printBenchTable(std::ostream &Os, const BenchReport &Report) {
  size_t NameWidth = 4;
  for (const BenchEntry &E : Report.Entries)
    NameWidth = std::max(NameWidth, E.Name.size());

  Os << std::left << std::setw(static_cast<int>(NameWidth)) << "name"
     << std::right << std::setw(14) << "per-iter" << std::setw(12) << "iters"
     << std::setw(12) << "wall" << "\n";
  for (const BenchEntry &E : Report.Entries) {
    std::ostringstream PerIter;
    PerIter << std::fixed << std::setprecision(1)
            << E.perIterSeconds() * 1e6 << " us";
    std::ostringstream Wall;
    Wall << std::fixed << std::setprecision(3) << E.WallSeconds << " s";
    Os << std::left << std::setw(static_cast<int>(NameWidth)) << E.Name
       << std::right << std::setw(14) << PerIter.str() << std::setw(12)
       << E.Iterations << std::setw(12) << Wall.str();
    if (E.Solved == 0)
      Os << "  UNSOLVED";
    Os << "\n";
  }
}

std::string driver::benchReportJson(const BenchReport &Report) {
  support::Json Root = support::Json::object();
  Root.set("schema", support::Json::str("stagg-bench"));
  Root.set("version", support::Json::integer(1));
  Root.set("config_fingerprint",
           support::Json::str(Report.ConfigFingerprint));
  Root.set("suite", support::Json::str(Report.Suite));
  Root.set("threads", support::Json::integer(Report.Threads));
  support::Json Benchmarks = support::Json::array();
  for (const BenchEntry &E : Report.Entries) {
    support::Json Entry = support::Json::object();
    Entry.set("name", support::Json::str(E.Name));
    Entry.set("wall_seconds", support::Json::number(E.WallSeconds));
    Entry.set("iterations", support::Json::integer(E.Iterations));
    Entry.set("per_iter_seconds", support::Json::number(E.perIterSeconds()));
    if (E.Solved >= 0)
      Entry.set("solved", support::Json::boolean(E.Solved == 1));
    Benchmarks.push(std::move(Entry));
  }
  Root.set("benchmarks", std::move(Benchmarks));
  return Root.dump();
}

int driver::runBenchCommand(const CliOptions &Options) {
  BenchReport Report =
      runBench(Options, Options.Verbose ? &std::cerr : nullptr);
  printBenchTable(std::cout, Report);
  if (!Options.JsonPath.empty()) {
    std::ofstream Out(Options.JsonPath);
    if (!Out) {
      std::cerr << "stagg: cannot write '" << Options.JsonPath << "'\n";
      return 1;
    }
    Out << benchReportJson(Report) << "\n";
  }
  return 0;
}
