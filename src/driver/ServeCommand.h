//===- driver/ServeCommand.h - stagg serve loop -----------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `stagg serve` session: one persistent api::Endpoint answering a
/// stream of newline-delimited lift requests (blank lines and `#` comments
/// are skipped). Two request formats coexist per line, auto-detected:
///
///  * protocol v1 JSON objects (api/Protocol.h) — registry names *or*
///    inline C kernels, with per-request config overrides; answered with
///    one-line JSON responses;
///
///  * legacy bare benchmark names — answered with the original text lines
///    (`name: OK expr ... [cached]`), unchanged for existing clients.
///
/// Results stream back one line per request in request order; repeated
/// identical kernels never re-run the pipeline. Requests keep being read
/// while earlier lifts are in flight, so the worker pool stays busy up to
/// the queue bound.
///
/// Exit codes (documented in --help and README): 0 all requests served (a
/// FAILed lift is a result, not an error); 2 some request named an unknown
/// benchmark; 3 some line was malformed JSON or violated the protocol;
/// 4 some inline kernel failed C parsing or ingestion; 5 the static checker
/// refused some inline kernel with hard safety findings (the response
/// carries a structured "diagnostics" array). Higher-numbered conditions
/// win when several occur; each also gets a stderr diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_SERVECOMMAND_H
#define STAGG_DRIVER_SERVECOMMAND_H

#include "api/Endpoint.h"
#include "driver/Cli.h"
#include "serve/BatchingOracle.h"
#include "serve/ResultCache.h"

#include <iosfwd>

namespace stagg {
namespace driver {

/// Exit codes of `stagg serve`, from the contract above.
enum ServeExitCode {
  ServeExitOk = 0,
  ServeExitUnknownName = 2,
  ServeExitBadRequest = 3,
  ServeExitIngestFailure = 4,
  ServeExitUnsafeKernel = 5,
};

/// Renders the --cache-stats report: the cache counter line, plus the
/// batching counter line when batching is enabled, plus (serve sessions
/// only) the execute-path compiled-program cache counters when \p Vm is
/// non-null. Shared by batch mode (Main) and the serve loop so the two
/// reports can never drift apart.
void printServeStats(std::ostream &Err, const serve::CacheStats &Cache,
                     const serve::BatchingStats &Batching, int BatchSize,
                     const api::Endpoint::VmCacheStats *Vm = nullptr);

/// Runs the serving loop over \p In, streaming result lines to \p Out and
/// diagnostics (and --cache-stats counters) to \p Err. Returns the exit
/// code per the contract above; the loop serves every remaining request
/// even after a failed one.
int runServeLoop(const CliOptions &Options, std::istream &In,
                 std::ostream &Out, std::ostream &Err);

/// Entry point used by Main: opens Options.InputPath (or stdin) and calls
/// runServeLoop on the standard streams — or, with --listen, runs the
/// socket transport (serve::SocketServer + api::SocketService) until a
/// SIGTERM/SIGINT drain completes. The socket session prints
/// `stagg serve: listening on HOST:PORT` to stdout once bound (the port-0
/// convention networked tests rely on) and exits 0 after a clean drain.
int runServeCommand(const CliOptions &Options);

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_SERVECOMMAND_H
