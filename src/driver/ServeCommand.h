//===- driver/ServeCommand.h - stagg serve loop -----------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `stagg serve` session: one persistent serve::LiftService answering a
/// stream of newline-delimited lift requests (benchmark names; blank lines
/// and `#` comments are skipped). Results stream back one line per request
/// in request order, with `[cached]` marking cache hits; repeated identical
/// kernels never re-run the pipeline. Requests keep being read while
/// earlier lifts are still in flight, so the worker pool stays busy up to
/// the queue bound.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_SERVECOMMAND_H
#define STAGG_DRIVER_SERVECOMMAND_H

#include "driver/Cli.h"
#include "serve/BatchingOracle.h"
#include "serve/ResultCache.h"

#include <iosfwd>

namespace stagg {
namespace driver {

/// Renders the --cache-stats report: the cache counter line, plus the
/// batching counter line when batching is enabled. Shared by batch mode
/// (Main) and the serve loop so the two reports can never drift apart.
void printServeStats(std::ostream &Err, const serve::CacheStats &Cache,
                     const serve::BatchingStats &Batching, int BatchSize);

/// Runs the serving loop over \p In, streaming result lines to \p Out and
/// diagnostics (and --cache-stats counters) to \p Err. Returns the process
/// exit code: 0 even when individual lifts FAIL (a failed lift is a result,
/// not an error); 2 when any request named an unknown benchmark — the loop
/// still serves every other request before exiting.
int runServeLoop(const CliOptions &Options, std::istream &In,
                 std::ostream &Out, std::ostream &Err);

/// Entry point used by Main: opens Options.InputPath (or stdin) and calls
/// runServeLoop on the standard streams.
int runServeCommand(const CliOptions &Options);

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_SERVECOMMAND_H
