//===- driver/SuiteRunner.cpp - Parallel pipeline execution ---------------===//

#include "driver/SuiteRunner.h"

#include "support/Timer.h"
#include "taco/Printer.h"

#include <algorithm>
#include <fstream>
#include <future>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

using namespace stagg;
using namespace stagg::driver;

int SuiteReport::solvedCount() const {
  int Count = 0;
  for (const RunRow &Row : Rows)
    Count += Row.Result.Solved;
  return Count;
}

double SuiteReport::solvedPercent() const {
  if (Rows.empty())
    return 0;
  return 100.0 * solvedCount() / static_cast<double>(Rows.size());
}

double SuiteReport::avgSecondsSolved() const {
  double Total = 0;
  int Count = 0;
  for (const RunRow &Row : Rows)
    if (Row.Result.Solved) {
      Total += Row.Result.Seconds;
      ++Count;
    }
  return Count ? Total / Count : 0;
}

double SuiteReport::avgAttemptsSolved() const {
  double Total = 0;
  int Count = 0;
  for (const RunRow &Row : Rows)
    if (Row.Result.Solved) {
      Total += Row.Result.Attempts;
      ++Count;
    }
  return Count ? Total / Count : 0;
}

SuiteReport driver::runSuite(const std::vector<const bench::Benchmark *> &Suite,
                             const CliOptions &Options,
                             std::ostream *Progress) {
  SuiteReport Report;
  Report.Rows.resize(Suite.size());

  int Threads = Options.Threads;
  if (Threads <= 0)
    Threads = static_cast<int>(std::thread::hardware_concurrency());
  if (Threads <= 0)
    Threads = 1;
  Threads = std::min<int>(Threads, std::max<size_t>(Suite.size(), 1));
  Report.Threads = Threads;

  serve::ServiceConfig Service;
  Service.Config = Options.Config;
  Service.Threads = Threads;
  Service.OracleSeed = Options.OracleSeed;

  Timer Wall;
  api::Endpoint Lifter(Service);

  // Submission applies backpressure: once the bounded queue fills, push
  // blocks until a worker drains a slot. Collection happens in suite order,
  // which is also where verbose progress is emitted — response order is a
  // scheduling artifact, row order never is.
  std::vector<api::PendingLift> Replies;
  Replies.reserve(Suite.size());
  for (const bench::Benchmark *B : Suite) {
    api::LiftRequest Request;
    Request.RegistryName = B->Name;
    Replies.push_back(Lifter.submit(Request));
  }

  for (size_t Index = 0; Index < Replies.size(); ++Index) {
    api::LiftResponse Response = Replies[Index].get();
    RunRow &Row = Report.Rows[Index];
    Row.Benchmark = Response.Name;
    Row.Category = Response.Category;
    Row.Result = std::move(Response.Result);
    Row.CacheHit = Response.CacheHit;
    if (Progress && Options.Verbose)
      *Progress << core::describeResult(*Suite[Index], Row.Result) << "\n";
  }

  Report.WallSeconds = Wall.seconds();
  Report.Cache = Lifter.cacheStats();
  Report.Batching = Lifter.batchingStats();
  return Report;
}

namespace {

std::string formatSeconds(double Seconds) {
  std::ostringstream Os;
  Os << std::fixed << std::setprecision(3) << Seconds;
  return Os.str();
}

/// The detail column: the lifted program on success, the reason otherwise.
std::string detailOf(const RunRow &Row) {
  if (Row.Result.Solved)
    return taco::printProgram(Row.Result.Concrete);
  return Row.Result.FailReason;
}

/// CSV/TSV field quoting: quote when the separator, a quote or a newline
/// appears (lifted programs contain commas in access expressions).
std::string quoted(const std::string &Field, char Separator) {
  if (Field.find(Separator) == std::string::npos &&
      Field.find('"') == std::string::npos &&
      Field.find('\n') == std::string::npos)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

void driver::printTable(std::ostream &Os, const SuiteReport &Report) {
  size_t NameWidth = 9; // "benchmark"
  size_t CategoryWidth = 8;
  for (const RunRow &Row : Report.Rows) {
    NameWidth = std::max(NameWidth, Row.Benchmark.size());
    CategoryWidth = std::max(CategoryWidth, Row.Category.size());
  }

  Os << std::left << std::setw(static_cast<int>(NameWidth + 2)) << "benchmark"
     << std::setw(static_cast<int>(CategoryWidth + 2)) << "category"
     << std::setw(8) << "status" << std::right << std::setw(10) << "seconds"
     << std::setw(10) << "attempts" << std::setw(12) << "expansions"
     << "  " << std::left << "detail\n";

  for (const RunRow &Row : Report.Rows) {
    Os << std::left << std::setw(static_cast<int>(NameWidth + 2))
       << Row.Benchmark << std::setw(static_cast<int>(CategoryWidth + 2))
       << Row.Category << std::setw(8)
       << (Row.Result.Solved ? "OK" : "FAIL") << std::right << std::setw(10)
       << formatSeconds(Row.Result.Seconds) << std::setw(10)
       << Row.Result.Attempts << std::setw(12) << Row.Result.Expansions
       << "  " << std::left << detailOf(Row) << "\n";
  }

  Os << "\nsolved " << Report.solvedCount() << "/" << Report.Rows.size()
     << " (" << formatSeconds(Report.solvedPercent()) << "%)"
     << "  avg-time-solved " << formatSeconds(Report.avgSecondsSolved())
     << "s  avg-attempts-solved "
     << formatSeconds(Report.avgAttemptsSolved()) << "  wall "
     << formatSeconds(Report.WallSeconds) << "s  threads " << Report.Threads
     << "\n";
}

void driver::printDelimited(std::ostream &Os, const SuiteReport &Report,
                            char Separator) {
  const char *Header[] = {"benchmark", "category",   "solved", "seconds",
                          "attempts",  "expansions", "detail"};
  for (size_t I = 0; I < sizeof(Header) / sizeof(Header[0]); ++I)
    Os << (I ? std::string(1, Separator) : "") << Header[I];
  Os << "\n";

  for (const RunRow &Row : Report.Rows) {
    Os << quoted(Row.Benchmark, Separator) << Separator
       << quoted(Row.Category, Separator) << Separator
       << (Row.Result.Solved ? 1 : 0) << Separator
       << formatSeconds(Row.Result.Seconds) << Separator
       << Row.Result.Attempts << Separator << Row.Result.Expansions
       << Separator << quoted(detailOf(Row), Separator) << "\n";
  }
}

bool driver::writeCsv(const std::string &Path, const SuiteReport &Report) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  printDelimited(Os, Report, ',');
  return static_cast<bool>(Os);
}
