//===- driver/ServeCommand.cpp - stagg serve loop -------------------------===//

#include "driver/ServeCommand.h"

#include "serve/LiftService.h"
#include "support/StringUtils.h"

#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>

using namespace stagg;
using namespace stagg::driver;

namespace {

/// A request admitted to the service, remembered until its reply is
/// printed. Replies are printed in admission order.
struct InFlight {
  const bench::Benchmark *Query = nullptr;
  std::future<serve::LiftResponse> Reply;
};

void printResponse(std::ostream &Out, const bench::Benchmark &B,
                   const serve::LiftResponse &Response) {
  Out << core::describeResult(B, Response.Result)
      << (Response.CacheHit ? " [cached]" : "") << "\n"
      << std::flush;
}

/// Prints every leading in-flight entry whose reply is already available.
void flushReady(std::deque<InFlight> &Window, std::ostream &Out) {
  while (!Window.empty() &&
         Window.front().Reply.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready) {
    printResponse(Out, *Window.front().Query, Window.front().Reply.get());
    Window.pop_front();
  }
}

} // namespace

void driver::printServeStats(std::ostream &Err,
                             const serve::CacheStats &Cache,
                             const serve::BatchingStats &Batching,
                             int BatchSize) {
  Err << serve::formatCacheStats(Cache) << "\n";
  if (BatchSize > 1)
    Err << "batching: " << Batching.ProposeCalls << " oracle calls in "
        << Batching.Rounds << " rounds (max batch " << Batching.MaxBatch
        << ")\n";
}

int driver::runServeLoop(const CliOptions &Options, std::istream &In,
                         std::ostream &Out, std::ostream &Err) {
  serve::ServiceConfig Service;
  Service.Config = Options.Config;
  Service.Threads = Options.Threads;
  Service.OracleSeed = Options.OracleSeed;
  serve::LiftService Lifter(Service);

  if (Options.Verbose)
    Err << "stagg serve: " << Lifter.threads() << " workers, queue depth "
        << Lifter.queueDepth() << ", batch "
        << Options.Config.Serve.BatchSize << ", cache "
        << Options.Config.Serve.CacheCapacity << " entries\n";

  std::deque<InFlight> Window;
  // In-order printing means a slow request at the front can pile finished
  // replies up behind it; cap the pile so memory stays bounded by the
  // configured in-flight work, not by the input length.
  const size_t WindowCap =
      static_cast<size_t>(Lifter.queueDepth() + Lifter.threads()) + 1;
  bool SawUnknown = false;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Name = trim(Line);
    if (Name.empty() || Name[0] == '#')
      continue;
    const bench::Benchmark *B = bench::findBenchmark(Name);
    if (!B) {
      // Keep serving; the bad request gets an error line in stream order.
      flushReady(Window, Out);
      while (!Window.empty()) {
        printResponse(Out, *Window.front().Query, Window.front().Reply.get());
        Window.pop_front();
      }
      Out << Name << ": ERROR unknown benchmark (try `stagg --list`)\n"
          << std::flush;
      SawUnknown = true;
      continue;
    }
    InFlight Entry;
    Entry.Query = B;
    Entry.Reply = Lifter.submit(*B); // blocks on queue backpressure
    Window.push_back(std::move(Entry));
    flushReady(Window, Out);
    while (Window.size() >= WindowCap) {
      printResponse(Out, *Window.front().Query, Window.front().Reply.get());
      Window.pop_front();
    }
  }

  while (!Window.empty()) {
    printResponse(Out, *Window.front().Query, Window.front().Reply.get());
    Window.pop_front();
  }

  if (Options.ShowCacheStats)
    printServeStats(Err, Lifter.cacheStats(), Lifter.batchingStats(),
                    Options.Config.Serve.BatchSize);
  return SawUnknown ? 2 : 0;
}

int driver::runServeCommand(const CliOptions &Options) {
  if (!Options.InputPath.empty()) {
    std::ifstream File(Options.InputPath);
    if (!File) {
      std::cerr << "stagg: cannot read '" << Options.InputPath << "'\n";
      return 2;
    }
    return runServeLoop(Options, File, std::cout, std::cerr);
  }
  return runServeLoop(Options, std::cin, std::cout, std::cerr);
}
