//===- driver/ServeCommand.cpp - stagg serve loop -------------------------===//

#include "driver/ServeCommand.h"

#include "api/Endpoint.h"
#include "api/Protocol.h"
#include "api/SocketService.h"
#include "serve/SocketServer.h"
#include "support/StringUtils.h"

#include <csignal>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>

using namespace stagg;
using namespace stagg::driver;

namespace {

/// A request admitted to the endpoint — or a protocol error standing in
/// for one — remembered until its reply is printed. Replies are printed in
/// admission order, each in the format its request used.
struct InFlight {
  api::PendingLift Pending;
  api::RequestFormat Format = api::RequestFormat::LegacyName;

  /// Non-empty for lines that never became requests: the pre-rendered
  /// protocol-error response, printed in stream order like any reply.
  std::string ProtocolError;
};

/// Tracks the worst protocol condition seen, for the exit code, and emits
/// one stderr diagnostic per failed request.
class ExitTracker {
public:
  explicit ExitTracker(std::ostream &Err) : Err(Err) {}

  void note(const api::LiftResponse &Response) {
    switch (Response.St) {
    case api::Status::Ok:
      return;
    case api::Status::UnknownBenchmark:
      raise(ServeExitUnknownName);
      break;
    case api::Status::BadRequest:
      raise(ServeExitBadRequest);
      break;
    case api::Status::KernelParseError:
    case api::Status::IngestError:
      raise(ServeExitIngestFailure);
      break;
    case api::Status::UnsafeKernel:
      raise(ServeExitUnsafeKernel);
      break;
    case api::Status::ShuttingDown:
      // A drain refusal is a service condition, not a client mistake; it
      // leaves the exit code alone (and cannot occur on the stdin path).
      break;
    }
    Err << "stagg serve: " << api::statusName(Response.St) << ": "
        << Response.Error << "\n";
  }

  void noteProtocolError(const std::string &Message) {
    raise(ServeExitBadRequest);
    Err << "stagg serve: bad_request: " << Message << "\n";
  }

  int exitCode() const { return Code; }

private:
  void raise(int Candidate) { Code = std::max(Code, Candidate); }

  std::ostream &Err;
  int Code = ServeExitOk;
};

void printEntry(std::ostream &Out, InFlight &Entry, ExitTracker &Tracker) {
  if (!Entry.ProtocolError.empty()) {
    Out << Entry.ProtocolError << "\n" << std::flush;
    return;
  }
  api::LiftResponse Response = Entry.Pending.get();
  Tracker.note(Response);
  if (Entry.Format == api::RequestFormat::JsonV1) {
    Out << api::renderResponse(Response) << "\n" << std::flush;
    return;
  }
  // Legacy text rendering, byte-compatible with pre-protocol sessions.
  if (!Response.ok()) {
    Out << Response.Name << ": ERROR unknown benchmark (try `stagg --list`)\n"
        << std::flush;
    return;
  }
  Out << core::describeResult(Response.Name, Response.Result)
      << (Response.CacheHit ? " [cached]" : "") << "\n"
      << std::flush;
}

/// The `--listen` session: the same Endpoint behind the epoll transport
/// instead of stdin. SIGTERM and SIGINT begin a graceful drain, and a clean
/// drain exits 0 — request-level failures travel in response lines to the
/// clients that caused them, never into the server's exit code.
int runServeListen(const CliOptions &Options) {
  const core::ServeOptions &Serve = Options.Config.Serve;
  std::string::size_type Colon = Serve.ListenAddr.rfind(':');
  serve::SocketServerOptions Sock;
  Sock.Host = Serve.ListenAddr.substr(0, Colon);
  Sock.Port = std::atoi(Serve.ListenAddr.c_str() + Colon + 1);
  Sock.MaxConns = Serve.MaxConns;
  Sock.MaxInFlight = Serve.MaxInFlight;
  Sock.IdleTimeoutSeconds = Serve.IdleTimeoutSeconds;
  Sock.Verbose = Options.Verbose;

  serve::ServiceConfig Service;
  Service.Config = Options.Config;
  Service.Threads = Options.Threads;
  Service.OracleSeed = Options.OracleSeed;
  api::Endpoint Lifter(Service);
  api::SocketService Proto(Lifter);
  serve::SocketServer Server(Proto, Sock);
  Proto.attach(Server);

  std::string Error;
  if (!Server.start(Error)) {
    std::cerr << "stagg serve: " << Error << "\n";
    return 2;
  }

  std::signal(SIGTERM, [](int) { serve::SocketServer::signalShutdown(); });
  std::signal(SIGINT, [](int) { serve::SocketServer::signalShutdown(); });
  std::signal(SIGPIPE, SIG_IGN);

  // The port-0 convention: tests and the soak harness bind port 0 and
  // learn the kernel's pick from this line, so parallel jobs never race
  // for a port. It must be on stdout and flushed before the loop blocks.
  std::cout << "stagg serve: listening on " << Sock.Host << ":"
            << Server.port() << "\n"
            << std::flush;

  int Rc = Server.run();

  // Join the workers while the transport and protocol still exist: a
  // completion hook fired after ~SocketServer would post into a dead loop.
  // Same for the protocol's execute worker, which posts result lines.
  Proto.shutdown();
  Lifter.shutdown();

  if (Options.Verbose) {
    serve::SocketServerStats Stats = Server.stats();
    std::cerr << "stagg serve: drained; " << Stats.Accepted
              << " connections, " << Stats.FramesIn << " frames in, "
              << Stats.LinesOut << " lines out\n";
  }
  if (Options.ShowCacheStats) {
    api::Endpoint::VmCacheStats Vm = Lifter.vmCacheStats();
    printServeStats(std::cerr, Lifter.cacheStats(), Lifter.batchingStats(),
                    Options.Config.Serve.BatchSize, &Vm);
  }
  return Rc == 0 ? ServeExitOk : 2;
}

/// Prints every leading in-flight entry whose reply is already available.
void flushReady(std::deque<InFlight> &Window, std::ostream &Out,
                ExitTracker &Tracker) {
  while (!Window.empty() && (!Window.front().ProtocolError.empty() ||
                             Window.front().Pending.ready())) {
    printEntry(Out, Window.front(), Tracker);
    Window.pop_front();
  }
}

} // namespace

void driver::printServeStats(std::ostream &Err,
                             const serve::CacheStats &Cache,
                             const serve::BatchingStats &Batching,
                             int BatchSize,
                             const api::Endpoint::VmCacheStats *Vm) {
  Err << serve::formatCacheStats(Cache) << "\n";
  if (BatchSize > 1)
    Err << "batching: " << Batching.ProposeCalls << " oracle calls in "
        << Batching.Rounds << " rounds (max batch " << Batching.MaxBatch
        << ")\n";
  if (Vm)
    Err << "vm cache: " << Vm->Hits << " hits, " << Vm->Misses
        << " misses, " << Vm->Evictions << " evictions, " << Vm->Entries
        << "/" << Vm->Capacity << " entries\n";
}

int driver::runServeLoop(const CliOptions &Options, std::istream &In,
                         std::ostream &Out, std::ostream &Err) {
  serve::ServiceConfig Service;
  Service.Config = Options.Config;
  Service.Threads = Options.Threads;
  Service.OracleSeed = Options.OracleSeed;
  api::Endpoint Lifter(Service);

  if (Options.Verbose)
    Err << "stagg serve: " << Lifter.threads() << " workers, queue depth "
        << Lifter.queueDepth() << ", batch "
        << Options.Config.Serve.BatchSize << ", cache "
        << Options.Config.Serve.CacheCapacity
        << " entries, protocol v1 + legacy names\n";

  ExitTracker Tracker(Err);
  std::deque<InFlight> Window;
  // In-order printing means a slow request at the front can pile finished
  // replies up behind it; cap the pile so memory stays bounded by the
  // configured in-flight work, not by the input length.
  const size_t WindowCap =
      static_cast<size_t>(Lifter.queueDepth() + Lifter.threads()) + 1;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '#')
      continue;

    InFlight Entry;
    api::ParsedRequest Parsed = api::parseRequestLine(Trimmed);
    if (!Parsed.ok()) {
      // The line never became a request; it joins the window as an already-
      // rendered error so it prints in stream order without blocking the
      // admission of later requests behind in-flight lifts.
      Tracker.noteProtocolError(Parsed.Error);
      Entry.ProtocolError = api::renderProtocolError(Parsed.Error);
    } else {
      Entry.Format = Parsed.Format;
      Entry.Pending = Lifter.submit(Parsed.Request); // blocks on backpressure
    }
    Window.push_back(std::move(Entry));
    flushReady(Window, Out, Tracker);
    while (Window.size() >= WindowCap) {
      printEntry(Out, Window.front(), Tracker);
      Window.pop_front();
    }
  }

  while (!Window.empty()) {
    printEntry(Out, Window.front(), Tracker);
    Window.pop_front();
  }

  if (Options.ShowCacheStats) {
    api::Endpoint::VmCacheStats Vm = Lifter.vmCacheStats();
    printServeStats(Err, Lifter.cacheStats(), Lifter.batchingStats(),
                    Options.Config.Serve.BatchSize, &Vm);
  }
  return Tracker.exitCode();
}

int driver::runServeCommand(const CliOptions &Options) {
  if (!Options.Config.Serve.ListenAddr.empty())
    return runServeListen(Options);
  if (!Options.InputPath.empty()) {
    std::ifstream File(Options.InputPath);
    if (!File) {
      std::cerr << "stagg: cannot read '" << Options.InputPath << "'\n";
      return 2;
    }
    return runServeLoop(Options, File, std::cout, std::cerr);
  }
  return runServeLoop(Options, std::cin, std::cout, std::cerr);
}
