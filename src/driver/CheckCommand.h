//===- driver/CheckCommand.h - stagg check lint -----------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `stagg check` subcommand: runs the static safety & liftability
/// checker (analysis/Checker.h) over registry kernels and/or C source
/// files without lifting anything. Registry kernels are checked against
/// their declared argument shapes; files go through api::ingestKernel, so
/// the verdict matches exactly what the serving layer's ingestion gate
/// would decide for the same source.
///
/// Output is a human table (default) or one JSON report object
/// (--format json):
///
///   {"v":1,"checked":3,"hard":1,"warnings":0,
///    "kernels":[{"name":"blas_gemv","bounds_proven":true,"findings":[]},
///               {"name":"bad","bounds_proven":false,
///                "findings":[{"code":"SK001","severity":"error",...}]}]}
///
/// Exit codes: 0 every target is clean (warnings allowed unless --Werror),
/// 1 some target has hard findings (or warnings under --Werror, or could
/// not be parsed), 2 a target or suite name was unusable.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_CHECKCOMMAND_H
#define STAGG_DRIVER_CHECKCOMMAND_H

#include "driver/Cli.h"

namespace stagg {
namespace driver {

/// Exit codes of `stagg check`, from the contract above.
enum CheckExitCode {
  CheckExitClean = 0,
  CheckExitFindings = 1,
  CheckExitBadTarget = 2,
};

/// Entry point used by Main. Prints the report to stdout and diagnostics
/// to stderr; returns the exit code per the contract above.
int runCheckCommand(const CliOptions &Options);

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_CHECKCOMMAND_H
