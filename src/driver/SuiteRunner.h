//===- driver/SuiteRunner.h - Parallel pipeline execution -------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch-mode client of the lift API: submits a benchmark selection through
/// api::Endpoint and renders the responses as a results table (human table,
/// CSV or TSV). Batch runs and `stagg serve` sessions execute the identical
/// api path — every worker's oracle is seeded identically, so worker count,
/// batching, and caching never change the per-benchmark results, only the
/// wall clock.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_DRIVER_SUITERUNNER_H
#define STAGG_DRIVER_SUITERUNNER_H

#include "api/Endpoint.h"
#include "driver/Cli.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace stagg {
namespace driver {

/// One benchmark's outcome, in suite order.
struct RunRow {
  std::string Benchmark;
  std::string Category;
  core::LiftResult Result;

  /// Served from the kernel-text cache (duplicate kernel in the suite).
  bool CacheHit = false;
};

/// A whole suite pass.
struct SuiteReport {
  std::vector<RunRow> Rows;

  /// Wall-clock seconds for the whole pool (not the sum of per-benchmark
  /// times).
  double WallSeconds = 0;

  /// Worker-pool width actually used.
  int Threads = 1;

  /// Serving-layer counters for --cache-stats.
  serve::CacheStats Cache;
  serve::BatchingStats Batching;

  int solvedCount() const;
  double solvedPercent() const;
  double avgSecondsSolved() const;
  double avgAttemptsSolved() const;
};

/// Runs \p Suite under \p Options. Progress lines (when Options.Verbose) go
/// to \p Progress; pass nullptr for silence.
SuiteReport runSuite(const std::vector<const bench::Benchmark *> &Suite,
                     const CliOptions &Options, std::ostream *Progress);

/// Renders the aligned human-readable table plus a summary footer.
void printTable(std::ostream &Os, const SuiteReport &Report);

/// Renders machine-readable rows (header + one line per benchmark) with
/// \p Separator, followed by no footer — consumers aggregate themselves.
void printDelimited(std::ostream &Os, const SuiteReport &Report,
                    char Separator);

/// Writes printDelimited(',') to \p Path; returns false on I/O failure.
bool writeCsv(const std::string &Path, const SuiteReport &Report);

} // namespace driver
} // namespace stagg

#endif // STAGG_DRIVER_SUITERUNNER_H
