//===- search/BottomUp.h - Bottom-up weighted A* enumeration ----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2 of the paper: A\*-guided bottom-up enumeration over the tail
/// grammar of §5.2. Expressions grow only by appending `OP TENSOR` at the
/// end, so every state is a left-associated operator chain; whenever a state
/// is dequeued its tail nonterminal is stripped and the resulting complete
/// template is probed against the specification. By construction this search
/// can never produce parenthesized / right-balanced ASTs — the structural
/// limitation RQ2 attributes BU's lower coverage to.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_BOTTOMUP_H
#define STAGG_SEARCH_BOTTOMUP_H

#include "grammar/Pcfg.h"
#include "search/SearchTypes.h"

#include <memory>

namespace stagg {
namespace search {

class CandidateStream;

/// Runs the bottom-up enumeration. \p Probe is invoked on each dequeued
/// (tail-stripped) chain; returning true ends the search successfully. The
/// single probe is shared across workers, so with Config.Threads != 1 it
/// must be thread-safe; stateful probes should use the factory overload.
SearchResult runBottomUp(const grammar::TemplateGrammar &G,
                         const SearchConfig &Config,
                         const TemplateProbe &Probe);

/// Same search with one probe per worker (see TemplateProbeFactory).
SearchResult runBottomUp(const grammar::TemplateGrammar &G,
                         const SearchConfig &Config,
                         const TemplateProbeFactory &Factory);

/// The bare enumeration as a stream of complete candidates in serial probe
/// order, for callers that drive the frontier themselves.
std::unique_ptr<CandidateStream>
makeBottomUpStream(const grammar::TemplateGrammar &G,
                   const SearchConfig &Config);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_BOTTOMUP_H
