//===- search/TemplateState.cpp - Partial template trees ------------------===//

#include "search/TemplateState.h"

#include <algorithm>

using namespace stagg;
using namespace stagg::search;
using namespace stagg::taco;

std::unique_ptr<TNode> TNode::clone() const {
  auto Copy = std::make_unique<TNode>();
  Copy->K = K;
  Copy->Rule = Rule;
  Copy->Op = Op;
  Copy->OpKnown = OpKnown;
  if (Lhs)
    Copy->Lhs = Lhs->clone();
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  return Copy;
}

Frontier search::leftmostNonterminal(TNode &Root) {
  switch (Root.K) {
  case TNode::Kind::Hole: {
    Frontier F;
    F.K = Frontier::Kind::ExprHole;
    F.Node = &Root;
    return F;
  }
  case TNode::Kind::Leaf:
    return {};
  case TNode::Kind::Bin: {
    Frontier F = leftmostNonterminal(*Root.Lhs);
    if (F.K != Frontier::Kind::None)
      return F;
    if (!Root.OpKnown) {
      F.K = Frontier::Kind::OpHole;
      F.Node = &Root;
      return F;
    }
    return leftmostNonterminal(*Root.Rhs);
  }
  case TNode::Kind::Max: {
    Frontier F = leftmostNonterminal(*Root.Lhs);
    if (F.K != Frontier::Kind::None)
      return F;
    return leftmostNonterminal(*Root.Rhs);
  }
  }
  return {};
}

namespace {

void collectMetrics(const TNode &Node, StateMetrics &M, int Depth) {
  M.Depth = std::max(M.Depth, Depth);
  switch (Node.K) {
  case TNode::Kind::Hole:
    ++M.Holes;
    return;
  case TNode::Kind::Leaf: {
    ++M.Leaves;
    const grammar::TensorRule *R = Node.Rule;
    if (R->IsConst) {
      ++M.ConstLeaves;
      return;
    }
    if (std::find(R->Indices.begin(), R->Indices.end(), "i") !=
        R->Indices.end())
      ++M.TensorsWithI;
    if (std::find(M.TensorOrder.begin(), M.TensorOrder.end(), R->Symbol) ==
        M.TensorOrder.end())
      M.TensorOrder.push_back(R->Symbol);
    return;
  }
  case TNode::Kind::Bin: {
    if (Node.OpKnown) {
      if (std::find(M.OpsUsed.begin(), M.OpsUsed.end(), Node.Op) ==
          M.OpsUsed.end())
        M.OpsUsed.push_back(Node.Op);
      // Penalty a4: + - / applied to the identical access on both sides.
      if (Node.Op != BinOpKind::Mul && Node.Lhs->K == TNode::Kind::Leaf &&
          Node.Rhs->K == TNode::Kind::Leaf && Node.Lhs->Rule == Node.Rhs->Rule &&
          !Node.Lhs->Rule->IsConst)
        M.DegenerateOp = true;
    } else {
      ++M.OpHoles;
    }
    collectMetrics(*Node.Lhs, M, Depth + 1);
    collectMetrics(*Node.Rhs, M, Depth + 1);
    return;
  }
  case TNode::Kind::Max:
    // max(x, x) is as degenerate as x - x: it enumerates a plain copy.
    if (Node.Lhs->K == TNode::Kind::Leaf && Node.Rhs->K == TNode::Kind::Leaf &&
        Node.Lhs->Rule == Node.Rhs->Rule && !Node.Lhs->Rule->IsConst)
      M.DegenerateOp = true;
    collectMetrics(*Node.Lhs, M, Depth + 1);
    collectMetrics(*Node.Rhs, M, Depth + 1);
    return;
  }
}

} // namespace

StateMetrics search::computeMetrics(const TNode &Root) {
  StateMetrics M;
  collectMetrics(Root, M, 1);
  M.Complete = M.Holes == 0 && M.OpHoles == 0;
  return M;
}

ExprPtr search::treeToExpr(const TNode &Root) {
  switch (Root.K) {
  case TNode::Kind::Hole:
    assert(false && "treeToExpr on an incomplete tree");
    return nullptr;
  case TNode::Kind::Leaf:
    if (Root.Rule->IsConst)
      return ConstantExpr::symbolic();
    return std::make_unique<AccessExpr>(Root.Rule->Symbol, Root.Rule->Indices);
  case TNode::Kind::Bin: {
    assert(Root.OpKnown && "treeToExpr on an incomplete tree");
    return std::make_unique<BinaryExpr>(Root.Op, treeToExpr(*Root.Lhs),
                                        treeToExpr(*Root.Rhs));
  }
  case TNode::Kind::Max:
    return std::make_unique<MaxExpr>(treeToExpr(*Root.Lhs),
                                     treeToExpr(*Root.Rhs));
  }
  return nullptr;
}
