//===- search/TopDown.cpp - Top-down weighted A* enumeration --------------===//

#include "search/TopDown.h"

#include "search/CostModel.h"
#include "search/Penalty.h"
#include "search/TemplateState.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace stagg;
using namespace stagg::search;

namespace {

struct Item {
  double F = 0;
  double C = 0;
  uint64_t Seq = 0;
  std::unique_ptr<TNode> Root;
};

/// Min-heap ordering on F with FIFO tie-breaking (std::*_heap builds a
/// max-heap, so the comparison is inverted).
struct ItemGreater {
  bool operator()(const Item &A, const Item &B) const {
    if (A.F != B.F)
      return A.F > B.F;
    return A.Seq > B.Seq;
  }
};

} // namespace

SearchResult search::runTopDown(const grammar::TemplateGrammar &G,
                                const SearchConfig &Config,
                                const TemplateProbe &Probe) {
  SearchResult Result;
  Timer Clock;

  if (G.DimList.empty() || G.TensorRules.empty()) {
    Result.FailReason = "empty grammar (no usable LLM candidates)";
    return Result;
  }

  CostModel Costs(G);
  std::vector<Item> Heap;
  ItemGreater Cmp;
  uint64_t NextSeq = 0;

  auto Push = [&](double C, std::unique_ptr<TNode> Root) {
    StateMetrics M = computeMetrics(*Root);
    double Penalty = topDownPenalty(M, G, Config);
    if (std::isinf(Penalty))
      return;
    double G2 = M.Holes * Costs.holeCharge() + M.OpHoles * Costs.opHoleCharge();
    Item It;
    It.F = C + G2 + Penalty;
    It.C = C;
    It.Seq = NextSeq++;
    It.Root = std::move(Root);
    if (std::isinf(It.F))
      return;
    Heap.push_back(std::move(It));
    std::push_heap(Heap.begin(), Heap.end(), Cmp);
  };

  Push(0, TNode::hole());

  while (!Heap.empty()) {
    if (Clock.seconds() > Config.TimeoutSeconds) {
      Result.FailReason = "timeout";
      break;
    }
    if (Result.Expansions >= Config.MaxExpansions ||
        Result.Attempts >= Config.MaxAttempts) {
      Result.FailReason = "budget exhausted";
      break;
    }

    std::pop_heap(Heap.begin(), Heap.end(), Cmp);
    Item Current = std::move(Heap.back());
    Heap.pop_back();
    ++Result.Expansions;

    StateMetrics M = computeMetrics(*Current.Root);
    if (M.Depth > Config.MaxDepth)
      continue; // Algorithm 1, line 5.

    Frontier F = leftmostNonterminal(*Current.Root);
    if (F.K == Frontier::Kind::None) {
      // Complete template: submit to validation + verification.
      taco::Program Candidate(G.Lhs, treeToExpr(*Current.Root));
      ++Result.Attempts;
      if (Probe(Candidate)) {
        Result.Solved = true;
        Result.SolvedTemplate = std::move(Candidate);
        break;
      }
      continue;
    }

    if (F.K == Frontier::Kind::OpHole) {
      static const taco::BinOpKind Ops[] = {
          taco::BinOpKind::Add, taco::BinOpKind::Sub, taco::BinOpKind::Mul,
          taco::BinOpKind::Div};
      for (taco::BinOpKind Op : Ops) {
        std::unique_ptr<TNode> Child = Current.Root->clone();
        Frontier CF = leftmostNonterminal(*Child);
        CF.Node->Op = Op;
        CF.Node->OpKnown = true;
        Push(Current.C + Costs.costOp(Op), std::move(Child));
      }
      continue;
    }

    // EXPR hole: TENSOR / CONSTANT / EXPR OP EXPR.
    for (const grammar::TensorRule &Rule : G.TensorRules) {
      std::unique_ptr<TNode> Child = Current.Root->clone();
      Frontier CF = leftmostNonterminal(*Child);
      CF.Node->K = TNode::Kind::Leaf;
      CF.Node->Rule = &Rule;
      double RuleCost = Rule.IsConst ? Costs.costExprConst()
                                     : Costs.costExprTensor() + Rule.Cost;
      Push(Current.C + RuleCost, std::move(Child));
    }
    {
      std::unique_ptr<TNode> Child = Current.Root->clone();
      Frontier CF = leftmostNonterminal(*Child);
      CF.Node->K = TNode::Kind::Bin;
      CF.Node->OpKnown = false;
      CF.Node->Lhs = TNode::hole();
      CF.Node->Rhs = TNode::hole();
      Push(Current.C + Costs.costExprBin(), std::move(Child));
    }
    // EXPR -> max(EXPR, EXPR), only when candidates supplied the evidence —
    // max-free grammars expand exactly the pre-max state space in the same
    // order.
    if (G.HasMaxRule) {
      std::unique_ptr<TNode> Child = Current.Root->clone();
      Frontier CF = leftmostNonterminal(*Child);
      CF.Node->K = TNode::Kind::Max;
      CF.Node->Lhs = TNode::hole();
      CF.Node->Rhs = TNode::hole();
      Push(Current.C + Costs.costExprMax(), std::move(Child));
    }
  }

  if (!Result.Solved && Result.FailReason.empty())
    Result.FailReason = "search space exhausted";
  Result.Seconds = Clock.seconds();
  return Result;
}
