//===- search/TopDown.cpp - Top-down weighted A* enumeration --------------===//

#include "search/TopDown.h"

#include "search/CostModel.h"
#include "search/Frontier.h"
#include "search/Penalty.h"
#include "search/TemplateState.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

using namespace stagg;
using namespace stagg::search;

namespace {

struct Item {
  double F = 0;
  double C = 0;
  uint64_t Seq = 0;
  std::unique_ptr<TNode> Root;
};

/// Min-heap ordering on F with FIFO tie-breaking (std::*_heap builds a
/// max-heap, so the comparison is inverted).
struct ItemGreater {
  bool operator()(const Item &A, const Item &B) const {
    if (A.F != B.F)
      return A.F > B.F;
    return A.Seq > B.Seq;
  }
};

/// Algorithm 1 as a resumable generator: the probe call sites of the old
/// serial loop become yield points. Probe outcomes never touched the heap,
/// so the pop/expand order — and with it every counter — is exactly the
/// serial loop's regardless of who consumes the stream.
class TopDownEnumerator : public CandidateStream {
public:
  TopDownEnumerator(const grammar::TemplateGrammar &G,
                    const SearchConfig &Config)
      : G(G), Config(Config), Costs(G) {
    if (G.DimList.empty() || G.TensorRules.empty()) {
      Done = true;
      Reason = "empty grammar (no usable LLM candidates)";
      return;
    }
    push(0, TNode::hole());
  }

  bool next(Candidate &Out) override {
    if (Done)
      return false;
    while (!Heap.empty()) {
      if (Clock.seconds() > Config.TimeoutSeconds)
        return fail("timeout");
      if (Expansions >= Config.MaxExpansions ||
          Attempts >= Config.MaxAttempts)
        return fail("budget exhausted");

      std::pop_heap(Heap.begin(), Heap.end(), Cmp);
      Item Current = std::move(Heap.back());
      Heap.pop_back();
      ++Expansions;

      StateMetrics M = computeMetrics(*Current.Root);
      if (M.Depth > Config.MaxDepth)
        continue; // Algorithm 1, line 5.

      Frontier F = leftmostNonterminal(*Current.Root);
      if (F.K == Frontier::Kind::None) {
        // Complete template: yield it for validation + verification.
        Out.Ticket = NextTicket++;
        Out.Program = taco::Program(G.Lhs, treeToExpr(*Current.Root));
        Out.AttemptsAtYield = ++Attempts;
        Out.ExpansionsAtYield = Expansions;
        return true;
      }

      if (F.K == Frontier::Kind::OpHole) {
        static const taco::BinOpKind Ops[] = {
            taco::BinOpKind::Add, taco::BinOpKind::Sub, taco::BinOpKind::Mul,
            taco::BinOpKind::Div};
        for (taco::BinOpKind Op : Ops) {
          std::unique_ptr<TNode> Child = Current.Root->clone();
          Frontier CF = leftmostNonterminal(*Child);
          CF.Node->Op = Op;
          CF.Node->OpKnown = true;
          push(Current.C + Costs.costOp(Op), std::move(Child));
        }
        continue;
      }

      // EXPR hole: TENSOR / CONSTANT / EXPR OP EXPR.
      for (const grammar::TensorRule &Rule : G.TensorRules) {
        std::unique_ptr<TNode> Child = Current.Root->clone();
        Frontier CF = leftmostNonterminal(*Child);
        CF.Node->K = TNode::Kind::Leaf;
        CF.Node->Rule = &Rule;
        double RuleCost = Rule.IsConst ? Costs.costExprConst()
                                       : Costs.costExprTensor() + Rule.Cost;
        push(Current.C + RuleCost, std::move(Child));
      }
      {
        std::unique_ptr<TNode> Child = Current.Root->clone();
        Frontier CF = leftmostNonterminal(*Child);
        CF.Node->K = TNode::Kind::Bin;
        CF.Node->OpKnown = false;
        CF.Node->Lhs = TNode::hole();
        CF.Node->Rhs = TNode::hole();
        push(Current.C + Costs.costExprBin(), std::move(Child));
      }
      // EXPR -> max(EXPR, EXPR), only when candidates supplied the
      // evidence — max-free grammars expand exactly the pre-max state space
      // in the same order.
      if (G.HasMaxRule) {
        std::unique_ptr<TNode> Child = Current.Root->clone();
        Frontier CF = leftmostNonterminal(*Child);
        CF.Node->K = TNode::Kind::Max;
        CF.Node->Lhs = TNode::hole();
        CF.Node->Rhs = TNode::hole();
        push(Current.C + Costs.costExprMax(), std::move(Child));
      }
    }
    return fail("search space exhausted");
  }

  const std::string &failReason() const override { return Reason; }
  int attempts() const override { return Attempts; }
  int64_t expansions() const override { return Expansions; }
  double seconds() const override { return Clock.seconds(); }

private:
  void push(double C, std::unique_ptr<TNode> Root) {
    StateMetrics M = computeMetrics(*Root);
    double Penalty = topDownPenalty(M, G, Config);
    if (std::isinf(Penalty))
      return;
    double G2 = M.Holes * Costs.holeCharge() + M.OpHoles * Costs.opHoleCharge();
    Item It;
    It.F = C + G2 + Penalty;
    It.C = C;
    It.Seq = NextSeq++;
    It.Root = std::move(Root);
    if (std::isinf(It.F))
      return;
    Heap.push_back(std::move(It));
    std::push_heap(Heap.begin(), Heap.end(), Cmp);
  }

  bool fail(const char *Why) {
    Done = true;
    Reason = Why;
    return false;
  }

  const grammar::TemplateGrammar &G;
  const SearchConfig &Config;
  Timer Clock;
  CostModel Costs;
  std::vector<Item> Heap;
  ItemGreater Cmp;
  uint64_t NextSeq = 0;
  uint64_t NextTicket = 0;
  int Attempts = 0;
  int64_t Expansions = 0;
  bool Done = false;
  std::string Reason;
};

} // namespace

std::unique_ptr<CandidateStream>
search::makeTopDownStream(const grammar::TemplateGrammar &G,
                          const SearchConfig &Config) {
  return std::make_unique<TopDownEnumerator>(G, Config);
}

SearchResult search::runTopDown(const grammar::TemplateGrammar &G,
                                const SearchConfig &Config,
                                const TemplateProbeFactory &Factory) {
  TopDownEnumerator Stream(G, Config);
  return runFrontier(Stream, Config, Factory);
}

SearchResult search::runTopDown(const grammar::TemplateGrammar &G,
                                const SearchConfig &Config,
                                const TemplateProbe &Probe) {
  return runTopDown(G, Config,
                    TemplateProbeFactory([&Probe](int) { return Probe; }));
}
