//===- search/SearchTypes.h - Shared search configuration -------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration and result types shared by the top-down and bottom-up
/// weighted A\* searches, including the per-penalty ablation switches that
/// drive the Table 2 experiments.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_SEARCHTYPES_H
#define STAGG_SEARCH_SEARCHTYPES_H

#include "taco/Ast.h"

#include <cstdint>
#include <functional>
#include <string>

namespace stagg {
namespace search {

/// Ablation switches and resource limits for the searches.
struct SearchConfig {
  /// Top-down penalty criteria a1..a5 (§5.1).
  bool PenaltyA1 = true;
  bool PenaltyA2 = true;
  bool PenaltyA3 = true;
  bool PenaltyA4 = true;
  bool PenaltyA5 = true;

  /// Bottom-up penalty criteria b1..b2 (§5.2).
  bool PenaltyB1 = true;
  bool PenaltyB2 = true;

  /// Maximum expression depth for the top-down search (§5.1).
  int MaxDepth = 6;

  /// Wall-clock budget per query in seconds (the paper uses 60 minutes on a
  /// laptop; the simulated substrate is far faster).
  double TimeoutSeconds = 5.0;

  /// Safety caps so ablated configurations terminate.
  int64_t MaxExpansions = 2'000'000;
  int MaxAttempts = 20'000;

  /// Probe workers for the parallel frontier (search/Frontier.h). 1 keeps
  /// the search serial; 0 resolves to one per hardware thread; N > 1 probes
  /// up to N candidates concurrently. The accepted candidate, counters, and
  /// fail reason are bit-identical for every value — parallelism only
  /// changes wall-clock time.
  int Threads = 1;

  /// Convenience: disables all penalties of one search (Drop(A)/Drop(B)).
  void dropAllTopDownPenalties() {
    PenaltyA1 = PenaltyA2 = PenaltyA3 = PenaltyA4 = PenaltyA5 = false;
  }
  void dropAllBottomUpPenalties() { PenaltyB1 = PenaltyB2 = false; }
};

/// Callback deciding whether a complete template solves the query (the
/// pipeline's validate-then-verify step). Returning true stops the search.
using TemplateProbe = std::function<bool(const taco::Program &Template)>;

/// Probe maker for the parallel frontier: called once per worker (with the
/// worker index) before that worker probes its first candidate, on the
/// worker's own thread. Each returned probe is only ever invoked from its
/// worker, so it may own mutable state (validator, reference cache, result
/// slot) without synchronization. Probe outcomes must depend only on the
/// template — never on call order or on which worker asks — or the
/// determinism contract of SearchConfig::Threads breaks.
using TemplateProbeFactory = std::function<TemplateProbe(int Worker)>;

/// Outcome of one search run.
struct SearchResult {
  bool Solved = false;
  taco::Program SolvedTemplate;

  /// Number of complete templates submitted to validation ("attempts").
  /// Reported as the serial search would count it regardless of Threads: on
  /// success this is the accepted candidate's 1-based enumeration ticket.
  int Attempts = 0;

  /// Number of queue pops (enumerated partial templates). Like Attempts,
  /// bit-identical across thread counts.
  int64_t Expansions = 0;

  double Seconds = 0;
  std::string FailReason;

  /// Parallel-frontier diagnostics. Unlike the counters above these may
  /// vary run to run (they describe scheduling, not the result): probes
  /// actually executed (>= Attempts on parallel success, since in-flight
  /// lookahead overshoots the winner), tasks taken from another worker's
  /// deque, and the worker that produced the accepted candidate (0 for a
  /// serial run, -1 when unsolved).
  int64_t ProbesExecuted = 0;
  int64_t Steals = 0;
  int WinnerWorker = -1;
};

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_SEARCHTYPES_H
