//===- search/Frontier.cpp - Deterministic parallel frontier --------------===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
//
// Executor layout: worker 0 is the sequencer — it owns the CandidateStream,
// replays the serial enumeration, and deals tickets round-robin into
// per-worker deques (a bounded lookahead window past the oldest unresolved
// ticket caps how far probing may overshoot the serial accept point). Every
// worker, sequencer included, then probes: pop the front of your own deque
// (oldest first, so the resolved prefix keeps advancing), steal from the
// back of a victim's when yours is empty. A success at ticket T only becomes
// the answer once tickets 0..T-1 have all resolved as failures — which is
// precisely the candidate the serial loop would accept, with the serial
// counters stamped on the ticket at enumeration time.
//
// Wall-clock timeouts are inherently schedule-dependent; the frontier
// handles them conservatively: once a solution has been found it is never
// discarded (the bounded set of earlier tickets is drained to decide), but a
// timeout with no solution in hand stops immediately, like the serial loop.
//
//===----------------------------------------------------------------------===//

#include "search/Frontier.h"

#include "search/WorkerPool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace stagg {
namespace search {

CandidateStream::~CandidateStream() = default;

namespace {

constexpr uint64_t NoTicket = std::numeric_limits<uint64_t>::max();

struct Task {
  uint64_t Ticket = 0;
  taco::Program Program;
  int AttemptsAtYield = 0;
  int64_t ExpansionsAtYield = 0;
};

/// Cache-line-separated per-worker deque. The owner pops the front; thieves
/// take the back, so contention between an owner and its thieves only
/// meets at a single-element queue.
struct alignas(64) WorkerDeque {
  std::mutex Mu;
  std::deque<Task> Q;
};

class Frontier {
public:
  Frontier(CandidateStream &Stream, const SearchConfig &Config,
           const TemplateProbeFactory &Factory, int Workers)
      : Stream(Stream), Config(Config), Factory(Factory), Workers(Workers),
        Window(Workers * 8 < 16 ? 16 : Workers * 8), Deques(Workers) {}

  SearchResult run() {
    WorkerPool Pool;
    Pool.run(Workers, [this](int W) { workerBody(W); });
    if (Error)
      std::rethrow_exception(Error);

    SearchResult R;
    R.Seconds = Stream.seconds();
    R.ProbesExecuted = Probes.load();
    R.Steals = Steals.load();
    if (Accepted) {
      R.Solved = true;
      R.SolvedTemplate = std::move(Best.Program);
      R.Attempts = Best.AttemptsAtYield;
      R.Expansions = Best.ExpansionsAtYield;
      R.WinnerWorker = BestWorker;
    } else {
      R.FailReason = TerminalReason;
      R.Attempts = TerminalAttempts;
      R.Expansions = TerminalExpansions;
    }
    return R;
  }

private:
  void workerBody(int W) {
    TemplateProbe Probe = Factory(W);
    for (;;) {
      if (W == 0)
        sequence();
      Task T;
      if (takeTask(W, T)) {
        bool Probing;
        {
          std::lock_guard<std::mutex> Lock(Mu);
          if (Stop)
            break;
          // Tickets above the best success can no longer win; resolve them
          // without probing.
          Probing = T.Ticket < BestTicket;
          if (!Probing) {
            resolveLocked(T.Ticket);
            Cv.notify_all();
          }
        }
        if (!Probing)
          continue;
        uint64_t Ticket = T.Ticket;
        bool Ok;
        try {
          Ok = Probe(T.Program);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(Mu);
          if (!Error)
            Error = std::current_exception();
          Stop = true;
          Cv.notify_all();
          break;
        }
        Probes.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> Lock(Mu);
          if (Stop)
            break;
          if (Ok && Ticket < BestTicket) {
            BestTicket = Ticket;
            Best = std::move(T);
            BestWorker = W;
          }
          resolveLocked(Ticket);
          Cv.notify_all();
        }
        continue;
      }

      std::unique_lock<std::mutex> Lock(Mu);
      if (Stop || (Terminal && ResolvedPrefix >= Issued))
        break;
      if (Pending > 0)
        continue; // a task landed between our scan and this lock
      if (W == 0) {
        // The sequencer may have window space again (a resolution freed
        // it) or a pending timeout check; poll rather than park.
        if (!Terminal && Issued - ResolvedPrefix < Window)
          continue;
        Cv.wait_for(Lock, std::chrono::milliseconds(10));
      } else {
        Cv.wait(Lock);
      }
    }
  }

  /// Worker 0 only: checks the wall clock and refills the lookahead window
  /// from the stream. The stream is single-owner, so no lock is held while
  /// it runs; bookkeeping transitions happen under Mu.
  void sequence() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Stop || Terminal)
        return;
    }
    if (Stream.seconds() > Config.TimeoutSeconds) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!Terminal) {
        Terminal = true;
        TerminalReason = "timeout";
        TerminalAttempts = Stream.attempts();
        TerminalExpansions = Stream.expansions();
        // No solution in hand: stop like the serial loop would. (With a
        // solution in hand the frontier drains the earlier tickets
        // instead — a found candidate is never thrown away.)
        if (BestTicket == NoTicket)
          Stop = true;
        Cv.notify_all();
      }
      return;
    }
    for (;;) {
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (Stop || Terminal || Issued - ResolvedPrefix >= Window)
          return;
      }
      Candidate C;
      if (!Stream.next(C)) {
        std::lock_guard<std::mutex> Lock(Mu);
        Terminal = true;
        TerminalReason = Stream.failReason();
        TerminalAttempts = Stream.attempts();
        TerminalExpansions = Stream.expansions();
        if (TerminalReason == "timeout" && BestTicket == NoTicket)
          Stop = true;
        Cv.notify_all();
        return;
      }
      Task T;
      T.Ticket = C.Ticket;
      T.Program = std::move(C.Program);
      T.AttemptsAtYield = C.AttemptsAtYield;
      T.ExpansionsAtYield = C.ExpansionsAtYield;
      size_t Dst = static_cast<size_t>(T.Ticket % Workers);
      {
        std::lock_guard<std::mutex> DequeLock(Deques[Dst].Mu);
        Deques[Dst].Q.push_back(std::move(T));
      }
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Issued;
        ++Pending;
        Cv.notify_all();
      }
    }
  }

  bool takeTask(int W, Task &Out) {
    bool Taken = false;
    {
      std::lock_guard<std::mutex> Lock(Deques[W].Mu);
      if (!Deques[W].Q.empty()) {
        Out = std::move(Deques[W].Q.front());
        Deques[W].Q.pop_front();
        Taken = true;
      }
    }
    for (int I = 1; !Taken && I < Workers; ++I) {
      WorkerDeque &Victim = Deques[(W + I) % Workers];
      std::lock_guard<std::mutex> Lock(Victim.Mu);
      if (!Victim.Q.empty()) {
        Out = std::move(Victim.Q.back());
        Victim.Q.pop_back();
        Steals.fetch_add(1, std::memory_order_relaxed);
        Taken = true;
      }
    }
    if (Taken) {
      std::lock_guard<std::mutex> Lock(Mu);
      --Pending;
    }
    return Taken;
  }

  /// Marks \p Ticket resolved and advances the resolved prefix. Accepts the
  /// best success once every earlier ticket has resolved (necessarily as a
  /// failure — a success below BestTicket would have replaced it first).
  /// Caller holds Mu.
  void resolveLocked(uint64_t Ticket) {
    if (Ticket == ResolvedPrefix) {
      ++ResolvedPrefix;
      auto It = ResolvedAbove.begin();
      while (It != ResolvedAbove.end() && *It == ResolvedPrefix) {
        ++ResolvedPrefix;
        It = ResolvedAbove.erase(It);
      }
    } else {
      ResolvedAbove.insert(Ticket);
    }
    if (BestTicket != NoTicket && ResolvedPrefix > BestTicket) {
      Accepted = true;
      Stop = true;
    }
  }

  CandidateStream &Stream;
  const SearchConfig &Config;
  const TemplateProbeFactory &Factory;
  const int Workers;
  const uint64_t Window;

  std::vector<WorkerDeque> Deques;

  std::mutex Mu;
  std::condition_variable Cv;
  uint64_t Issued = 0;
  uint64_t Pending = 0; ///< Tasks pushed but not yet taken from a deque.
  uint64_t ResolvedPrefix = 0;
  std::set<uint64_t> ResolvedAbove;
  bool Terminal = false;
  std::string TerminalReason;
  int TerminalAttempts = 0;
  int64_t TerminalExpansions = 0;
  uint64_t BestTicket = NoTicket;
  Task Best;
  int BestWorker = -1;
  bool Accepted = false;
  bool Stop = false;
  std::exception_ptr Error;

  std::atomic<int64_t> Probes{0};
  std::atomic<int64_t> Steals{0};
};

SearchResult driveSerial(CandidateStream &Stream,
                         const TemplateProbeFactory &Factory) {
  SearchResult R;
  TemplateProbe Probe = Factory(0);
  Candidate C;
  while (Stream.next(C)) {
    ++R.ProbesExecuted;
    if (Probe(C.Program)) {
      R.Solved = true;
      R.SolvedTemplate = std::move(C.Program);
      R.Attempts = C.AttemptsAtYield;
      R.Expansions = C.ExpansionsAtYield;
      R.WinnerWorker = 0;
      break;
    }
  }
  if (!R.Solved) {
    R.FailReason = Stream.failReason();
    R.Attempts = Stream.attempts();
    R.Expansions = Stream.expansions();
  }
  R.Seconds = Stream.seconds();
  return R;
}

} // namespace

SearchResult runFrontier(CandidateStream &Stream, const SearchConfig &Config,
                         const TemplateProbeFactory &Factory) {
  int Workers = resolveThreads(Config.Threads);
  if (Workers == 1)
    return driveSerial(Stream, Factory);
  Frontier F(Stream, Config, Factory, Workers);
  return F.run();
}

} // namespace search
} // namespace stagg
