//===- search/Penalty.cpp - Domain-specific penalty functions -------------===//

#include "search/Penalty.h"

#include "grammar/Template.h"

#include <limits>

using namespace stagg;
using namespace stagg::search;

double search::infinitePenalty() {
  return std::numeric_limits<double>::infinity();
}

bool search::tensorsInCanonicalOrder(
    const std::vector<std::string> &TensorOrder) {
  for (size_t I = 0; I < TensorOrder.size(); ++I)
    if (TensorOrder[I] !=
        grammar::tensorSymbolForPosition(static_cast<int>(I) + 2))
      return false;
  return true;
}

bool search::tensorsInCanonicalOrder(const std::vector<std::string> &TensorOrder,
                                     const grammar::TemplateGrammar &G) {
  if (!G.PositionalSymbols)
    return tensorsInCanonicalOrder(TensorOrder);

  // Grammar symbols per dimension class, in minting (= alphabetical) order.
  std::map<int, std::vector<std::string>> ClassSymbols;
  for (size_t Position = 2; Position <= G.DimList.size(); ++Position)
    ClassSymbols[G.DimList[Position - 1]].push_back(
        grammar::tensorSymbolForPosition(static_cast<int>(Position)));

  // The template's distinct symbols, grouped by their class.
  std::map<int, std::vector<std::string>> Used;
  for (const std::string &Symbol : TensorOrder) {
    if (Symbol.size() != 1 || Symbol[0] < 'b')
      return false; // Not a positional symbol: treat as out of order.
    size_t Position = static_cast<size_t>(Symbol[0] - 'a') + 1;
    if (Position < 2 || Position > G.DimList.size())
      return false;
    Used[G.DimList[Position - 1]].push_back(Symbol);
  }

  // Within each class, the used symbols must be exactly the class's first
  // N symbols in order; anything else is a rename-duplicate.
  for (const auto &[Dim, Sequence] : Used) {
    const std::vector<std::string> &Canon = ClassSymbols[Dim];
    if (Sequence.size() > Canon.size())
      return false;
    for (size_t I = 0; I < Sequence.size(); ++I)
      if (Sequence[I] != Canon[I])
        return false;
  }
  return true;
}

double search::topDownPenalty(const StateMetrics &M,
                              const grammar::TemplateGrammar &G,
                              const SearchConfig &Config) {
  double Penalty = 0;
  // Template length counts the LHS tensor, matching |L|.
  int Length = M.Leaves + 1;
  int MinFinalLength = M.Leaves + M.Holes + 1;
  int DimLen = static_cast<int>(G.DimList.size());

  // a1: grammars with constants bias toward expressions that actually use
  // them and that reuse the primary index.
  if (Config.PenaltyA1 && G.HasConstRule && Length > 3 &&
      (M.TensorsWithI < 2 || M.ConstLeaves == 0))
    Penalty += 10;

  // a2: length must match the dimension list. Partial templates are charged
  // only once they can no longer reach the target length.
  if (Config.PenaltyA2 && DimLen > 0) {
    if (M.Complete ? (Length != DimLen) : (MinFinalLength > DimLen))
      Penalty += 100;
  }

  // a3: tensor symbols must appear in alphabetical order of first
  // appearance (within their dimension class); violating templates
  // duplicate already-enumerated structures.
  if (Config.PenaltyA3 && !tensorsInCanonicalOrder(M.TensorOrder, G))
    return infinitePenalty();

  // a4: complete templates must not apply + - / to the same access.
  if (Config.PenaltyA4 && M.Complete && M.DegenerateOp)
    return infinitePenalty();

  // a5: complete templates must employ at least half of the operations
  // defined in the (refined) grammar, i.e. those with learned evidence.
  // "Half" is integer (floor) division: a grammar with one learned operator
  // admits operator-free templates, and the motivating one-operator
  // solution survives a three-operator grammar.
  if (Config.PenaltyA5 && M.Complete &&
      static_cast<int>(M.OpsUsed.size()) <
          static_cast<int>(G.LearnedOps.size()) / 2)
    return infinitePenalty();

  return Penalty;
}

double search::bottomUpPenalty(const std::vector<std::string> &TensorSymbols,
                               const std::vector<taco::BinOpKind> &OpsUsed,
                               int RhsLeaves,
                               const grammar::TemplateGrammar &G,
                               const SearchConfig &Config) {
  double Penalty = 0;

  // Distinct symbols in first-appearance order.
  std::vector<std::string> Order;
  for (const std::string &S : TensorSymbols)
    if (std::find(Order.begin(), Order.end(), S) == Order.end())
      Order.push_back(S);

  // b1: out-of-order tensor symbols are structural duplicates.
  if (Config.PenaltyB1 && !tensorsInCanonicalOrder(Order, G))
    Penalty += 100;

  // b2: once the chain is as long as predicted it must use at least half
  // (floor, as in a5) of the learned operations.
  int DimLen = static_cast<int>(G.DimList.size());
  if (Config.PenaltyB2 && DimLen > 0 && RhsLeaves + 1 >= DimLen &&
      static_cast<int>(OpsUsed.size()) <
          static_cast<int>(G.LearnedOps.size()) / 2)
    return infinitePenalty();

  return Penalty;
}
