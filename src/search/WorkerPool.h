//===- search/WorkerPool.h - Fork/join worker pool --------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fork/join pool shared by the parallel search frontiers (top-down and
/// bottom-up). Each run() is one session: worker 0 executes on the calling
/// thread, workers 1..K-1 on freshly spawned std::threads, and run() returns
/// only after every participant has — a session barrier, so a cancelled or
/// failed search can never leave a detached worker behind. The first
/// exception thrown by any participant is rethrown on the caller after the
/// barrier.
///
/// Spawning per session keeps the pool stateless: a serve process running W
/// concurrent lifts holds exactly the threads those lifts need, and tests
/// can assert quiescence simply by returning from run().
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_WORKERPOOL_H
#define STAGG_SEARCH_WORKERPOOL_H

#include <functional>

namespace stagg {
namespace search {

/// Resolves a thread-count knob: N > 0 is taken literally, 0 (or negative)
/// means "one per hardware thread" (at least 1).
int resolveThreads(int Requested);

class WorkerPool {
public:
  /// Runs Body(0..Participants-1) concurrently and joins all of them before
  /// returning. Body(0) runs on the calling thread. If any participant
  /// throws, the remaining participants still run to completion (Body is
  /// responsible for observing its own cancellation signal) and the first
  /// captured exception is rethrown here.
  void run(int Participants, const std::function<void(int Worker)> &Body);
};

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_WORKERPOOL_H
