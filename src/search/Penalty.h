//===- search/Penalty.h - Domain-specific penalty functions -----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The penalty terms X(x) of §5.1 (top-down criteria a1..a5) and §5.2
/// (bottom-up criteria b1..b2). An infinite penalty means the expression is
/// pruned outright; finite penalties deprioritize it. Template length is
/// measured as the number of tensor symbols *including* the LHS, matching
/// the dimension list whose first entry is the LHS.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_PENALTY_H
#define STAGG_SEARCH_PENALTY_H

#include "grammar/Pcfg.h"
#include "search/SearchTypes.h"
#include "search/TemplateState.h"

namespace stagg {
namespace search {

/// The "infinite" penalty.
double infinitePenalty();

/// Top-down penalty X(x) over the metrics of a partial or complete template.
double topDownPenalty(const StateMetrics &M, const grammar::TemplateGrammar &G,
                      const SearchConfig &Config);

/// Bottom-up penalty over the flat chain state: \p TensorSymbols is the
/// in-order list of non-constant tensor symbols chosen so far, \p OpsUsed the
/// distinct operators, \p RhsLeaves the number of leaves placed.
double bottomUpPenalty(const std::vector<std::string> &TensorSymbols,
                       const std::vector<taco::BinOpKind> &OpsUsed,
                       int RhsLeaves, const grammar::TemplateGrammar &G,
                       const SearchConfig &Config);

/// Shared helper: true when the distinct symbols of \p TensorOrder appear in
/// canonical alphabetical order (first new symbol is `b`, second `c`, ...).
bool tensorsInCanonicalOrder(const std::vector<std::string> &TensorOrder);

/// Class-aware canonical-order check used by penalties a3/b1. With the
/// refined grammar, symbols are interchangeable only within a dimension
/// class, so the order requirement applies per class: a template may use
/// the 1-D symbol `c` without the 0-D symbol `b`, but using `e` before `c`
/// (both 1-D) duplicates an already-enumerated structure. With the full
/// grammar every symbol is equivalent and the global rule applies.
bool tensorsInCanonicalOrder(const std::vector<std::string> &TensorOrder,
                             const grammar::TemplateGrammar &G);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_PENALTY_H
