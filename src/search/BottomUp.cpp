//===- search/BottomUp.cpp - Bottom-up weighted A* enumeration ------------===//

#include "search/BottomUp.h"

#include "search/CostModel.h"
#include "search/Frontier.h"
#include "search/Penalty.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

using namespace stagg;
using namespace stagg::search;
using namespace stagg::taco;

namespace {

struct ChainState {
  double F = 0;
  double C = 0;
  uint64_t Seq = 0;
  std::vector<const grammar::TensorRule *> Leaves;
  std::vector<BinOpKind> Ops; ///< Ops.size() == Leaves.size() - 1.
};

struct ChainGreater {
  bool operator()(const ChainState &A, const ChainState &B) const {
    if (A.F != B.F)
      return A.F > B.F;
    return A.Seq > B.Seq;
  }
};

/// Folds the chain into a TACO expression. The tail grammar of §5.2 derives
/// *flat strings* (`TENSOR2 OP TENSOR3 OP ...`), so the resulting template
/// is the string's parse under standard precedence: `*`/`/` bind tighter
/// than `+`/`-`. This is precisely why the bottom-up search cannot reach
/// parenthesized shapes like `(b + c) * d`.
ExprPtr chainToExpr(const ChainState &S) {
  assert(!S.Leaves.empty() && "empty chain has no expression");
  std::vector<ExprPtr> Leaves;
  Leaves.reserve(S.Leaves.size());
  for (const grammar::TensorRule *R : S.Leaves) {
    if (R->IsConst)
      Leaves.push_back(ConstantExpr::symbolic());
    else
      Leaves.push_back(std::make_unique<AccessExpr>(R->Symbol, R->Indices));
  }
  return foldPrecedenceChain(std::move(Leaves), S.Ops);
}

std::vector<std::string> chainSymbols(const ChainState &S) {
  std::vector<std::string> Symbols;
  for (const grammar::TensorRule *R : S.Leaves)
    if (!R->IsConst)
      Symbols.push_back(R->Symbol);
  return Symbols;
}

std::vector<BinOpKind> chainDistinctOps(const ChainState &S) {
  std::vector<BinOpKind> Ops;
  for (BinOpKind Op : S.Ops)
    if (std::find(Ops.begin(), Ops.end(), Op) == Ops.end())
      Ops.push_back(Op);
  return Ops;
}

/// Algorithm 2 as a resumable generator — same mechanics as the top-down
/// TopDownEnumerator: probe call sites become yield points, and since probe
/// outcomes never fed back into the queue, the pop order and counters are
/// the serial loop's for any consumer.
class BottomUpEnumerator : public CandidateStream {
public:
  BottomUpEnumerator(const grammar::TemplateGrammar &G,
                     const SearchConfig &Config)
      : G(G), Config(Config), Costs(G),
        RhsSlots(static_cast<int>(G.DimList.size()) - 1) {
    if (G.DimList.empty() || G.TensorRules.empty()) {
      Done = true;
      Reason = "empty grammar (no usable LLM candidates)";
      return;
    }

    // Suffix sums of m(L[pos]) for the heuristic g(x) = sum of the cheapest
    // still-missing tensors.
    SuffixCost.assign(static_cast<size_t>(RhsSlots) + 1, 0);
    for (int Slot = RhsSlots - 1; Slot >= 0; --Slot) {
      double M = Costs.minTensorCost(G.DimList[static_cast<size_t>(Slot) + 1]);
      if (std::isinf(M))
        M = 60; // Unfillable slot: large but finite so the search still runs.
      SuffixCost[static_cast<size_t>(Slot)] =
          SuffixCost[static_cast<size_t>(Slot) + 1] + M;
    }

    push(ChainState());
  }

  bool next(Candidate &Out) override {
    if (Done)
      return false;
    static const BinOpKind AllOps[] = {BinOpKind::Add, BinOpKind::Sub,
                                       BinOpKind::Mul, BinOpKind::Div};
    while (!Queue.empty()) {
      if (Clock.seconds() > Config.TimeoutSeconds)
        return fail("timeout");
      if (Expansions >= Config.MaxExpansions ||
          Attempts >= Config.MaxAttempts)
        return fail("budget exhausted");

      ChainState Current = Queue.top();
      Queue.pop();
      ++Expansions;

      // Algorithm 2, line 5: once the chain holds as many tensors as the
      // dimension list predicts, strip the tail nonterminal and yield for
      // probing. No expansion follows a complete chain, so resuming at the
      // loop top is exactly the serial continue.
      if (static_cast<int>(Current.Leaves.size()) == RhsSlots) {
        Out.Ticket = NextTicket++;
        Out.Program = taco::Program(G.Lhs, chainToExpr(Current));
        Out.AttemptsAtYield = ++Attempts;
        Out.ExpansionsAtYield = Expansions;
        return true;
      }

      // Re-append the tail and expand: the grammar only allows growth while
      // fewer tensors than the dimension list predicts are present.
      if (static_cast<int>(Current.Leaves.size()) >= RhsSlots)
        continue;
      int NextPosition = static_cast<int>(Current.Leaves.size()) + 2;
      std::vector<const grammar::TensorRule *> Rules =
          G.rulesForPosition(NextPosition);
      if (Current.Leaves.empty()) {
        for (const grammar::TensorRule *Rule : Rules) {
          ChainState Child = Current;
          Child.Leaves.push_back(Rule);
          Child.C += Rule->Cost;
          push(std::move(Child));
        }
        continue;
      }
      for (BinOpKind Op : AllOps) {
        double OpCost = Costs.costOp(Op);
        if (std::isinf(OpCost))
          continue;
        for (const grammar::TensorRule *Rule : Rules) {
          ChainState Child = Current;
          Child.Ops.push_back(Op);
          Child.Leaves.push_back(Rule);
          Child.C += OpCost + Rule->Cost;
          push(std::move(Child));
        }
      }
    }
    return fail("search space exhausted");
  }

  const std::string &failReason() const override { return Reason; }
  int attempts() const override { return Attempts; }
  int64_t expansions() const override { return Expansions; }
  double seconds() const override { return Clock.seconds(); }

private:
  void push(ChainState S) {
    double Penalty = bottomUpPenalty(chainSymbols(S), chainDistinctOps(S),
                                     static_cast<int>(S.Leaves.size()), G,
                                     Config);
    if (std::isinf(Penalty))
      return;
    size_t Filled = S.Leaves.size();
    double Remaining =
        Filled <= static_cast<size_t>(RhsSlots) ? SuffixCost[Filled] : 0;
    S.F = S.C + Remaining + Penalty;
    S.Seq = NextSeq++;
    Queue.push(std::move(S));
  }

  bool fail(const char *Why) {
    Done = true;
    Reason = Why;
    return false;
  }

  const grammar::TemplateGrammar &G;
  const SearchConfig &Config;
  Timer Clock;
  CostModel Costs;
  const int RhsSlots;
  std::vector<double> SuffixCost;
  std::priority_queue<ChainState, std::vector<ChainState>, ChainGreater> Queue;
  uint64_t NextSeq = 0;
  uint64_t NextTicket = 0;
  int Attempts = 0;
  int64_t Expansions = 0;
  bool Done = false;
  std::string Reason;
};

} // namespace

std::unique_ptr<CandidateStream>
search::makeBottomUpStream(const grammar::TemplateGrammar &G,
                           const SearchConfig &Config) {
  return std::make_unique<BottomUpEnumerator>(G, Config);
}

SearchResult search::runBottomUp(const grammar::TemplateGrammar &G,
                                 const SearchConfig &Config,
                                 const TemplateProbeFactory &Factory) {
  BottomUpEnumerator Stream(G, Config);
  return runFrontier(Stream, Config, Factory);
}

SearchResult search::runBottomUp(const grammar::TemplateGrammar &G,
                                 const SearchConfig &Config,
                                 const TemplateProbe &Probe) {
  return runBottomUp(G, Config,
                     TemplateProbeFactory([&Probe](int) { return Probe; }));
}
