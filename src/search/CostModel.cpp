//===- search/CostModel.cpp - A* cost and heuristic functions -------------===//

#include "search/CostModel.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace stagg;
using namespace stagg::search;

static double negLog2(double P) {
  if (P <= 0)
    return std::numeric_limits<double>::infinity();
  return -std::log2(P);
}

CostModel::CostModel(const grammar::TemplateGrammar &G) : G(G) {
  CExprTensor = negLog2(G.PExprTensor);
  CExprConst = negLog2(G.PExprConst);
  CExprBin = negLog2(G.PExprBin);
  CExprMax = negLog2(G.PExprMax);
  for (int I = 0; I < 4; ++I)
    COp[I] = negLog2(G.POp[I]);

  // h(TENSOR): maximal production probability; h(CONSTANT) = 1.
  double HTensor = 0;
  for (const grammar::TensorRule &R : G.TensorRules)
    if (!R.IsConst)
      HTensor = std::max(HTensor, R.Prob);
  double HOp = 0;
  for (double P : G.POp)
    HOp = std::max(HOp, P);

  // h(EXPR) fixpoint: h = max(Pt*h(TENSOR), Pc*1, Pb*h*h(OP)*h). Iterating
  // from the leaf-only value converges because the recursive term is
  // monotone and bounded by 1.
  double HExpr = std::max(G.PExprTensor * HTensor,
                          G.HasConstRule ? G.PExprConst : 0.0);
  for (int Iter = 0; Iter < 200; ++Iter) {
    double Next =
        std::max(std::max(G.PExprTensor * HTensor,
                          G.HasConstRule ? G.PExprConst : 0.0),
                 std::max(G.PExprBin * HExpr * HOp * HExpr,
                          G.PExprMax * HExpr * HExpr));
    if (std::abs(Next - HExpr) < 1e-12)
      break;
    HExpr = Next;
  }
  HoleCharge = negLog2(HExpr);
  OpHoleCharge = negLog2(HOp);
}

double CostModel::minTensorCost(int Dim) const {
  double Best = std::numeric_limits<double>::infinity();
  for (const grammar::TensorRule &R : G.TensorRules)
    if (R.dim() == Dim)
      Best = std::min(Best, R.Cost);
  return Best;
}
