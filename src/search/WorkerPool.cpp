//===- search/WorkerPool.cpp - Fork/join worker pool ----------------------===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "search/WorkerPool.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace stagg {
namespace search {

int resolveThreads(int Requested) {
  if (Requested > 0)
    return Requested;
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware > 0 ? static_cast<int>(Hardware) : 1;
}

void WorkerPool::run(int Participants,
                     const std::function<void(int Worker)> &Body) {
  int K = Participants < 1 ? 1 : Participants;
  if (K == 1) {
    Body(0);
    return;
  }

  std::mutex Mu;
  std::exception_ptr First;
  auto Guarded = [&](int Worker) {
    try {
      Body(Worker);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!First)
        First = std::current_exception();
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(K) - 1);
  for (int W = 1; W < K; ++W)
    Threads.emplace_back(Guarded, W);
  Guarded(0);
  for (std::thread &T : Threads)
    T.join();
  if (First)
    std::rethrow_exception(First);
}

} // namespace search
} // namespace stagg
