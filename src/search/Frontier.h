//===- search/Frontier.h - Deterministic parallel frontier ------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel candidate frontier shared by the top-down and bottom-up
/// searches. The key observation making it deterministic: in both serial
/// loops the probe outcome never feeds back into the priority queue —
/// enumeration order of complete candidates is a pure function of (grammar,
/// config). So the frontier splits each search into
///
///   * a CandidateStream: the search's own enumeration loop, refactored
///     into a resumable generator that replays the serial pop order exactly
///     and stamps every complete candidate with a ticket (its 0-based
///     probe index in the serial schedule) plus the serial Attempts /
///     Expansions counters at the moment of the yield; and
///
///   * runFrontier: a work-stealing executor that probes tickets on N
///     workers and accepts the lowest successful ticket only after every
///     earlier ticket has resolved as a failure — i.e. exactly the
///     candidate serial search would accept, with the serial counters.
///
/// With Threads == 1 the frontier degenerates to driving the stream on the
/// calling thread, which is the serial loop verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_FRONTIER_H
#define STAGG_SEARCH_FRONTIER_H

#include "search/SearchTypes.h"
#include "taco/Ast.h"

#include <cstdint>
#include <string>

namespace stagg {
namespace search {

/// One complete template as the serial schedule would probe it.
struct Candidate {
  /// 0-based position in the serial probe order.
  uint64_t Ticket = 0;

  taco::Program Program;

  /// Serial counters immediately after this candidate was popped: Attempts
  /// includes this candidate (== Ticket + 1), Expansions counts every queue
  /// pop up to and including the pop that completed it. A run accepting
  /// this candidate reports exactly these values.
  int AttemptsAtYield = 0;
  int64_t ExpansionsAtYield = 0;
};

/// Resumable enumeration of complete candidates in serial probe order.
/// next() returns false once the search is exhausted or a budget/timeout
/// fires, after which the terminal accessors are valid. Streams are
/// single-owner: only one thread (the frontier's sequencer) may touch one.
class CandidateStream {
public:
  virtual ~CandidateStream();

  /// Yields the next candidate the serial loop would probe. Performs the
  /// same per-pop timeout/budget checks as the serial loop, in the same
  /// order.
  virtual bool next(Candidate &Out) = 0;

  /// Why enumeration stopped ("timeout", "budget exhausted", "search space
  /// exhausted", ...). Valid once next() has returned false.
  virtual const std::string &failReason() const = 0;

  /// Running serial counters (terminal values once next() returned false).
  virtual int attempts() const = 0;
  virtual int64_t expansions() const = 0;

  /// Wall-clock seconds since the stream was created — the same clock the
  /// per-pop timeout checks read.
  virtual double seconds() const = 0;
};

/// Drives \p Stream with Config.Threads workers (resolveThreads applied).
/// Each worker obtains its probe from \p Factory exactly once, on its own
/// thread, before its first probe. Returns the result the serial search
/// would return: the lowest-ticket successful candidate with serial
/// Attempts/Expansions, or the stream's terminal fail reason. Exceptions
/// thrown by probes propagate to the caller after all workers have joined.
SearchResult runFrontier(CandidateStream &Stream, const SearchConfig &Config,
                         const TemplateProbeFactory &Factory);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_FRONTIER_H
