//===- search/CostModel.h - A* cost and heuristic functions -----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The A\* cost machinery of §5.1/§5.2: rule costs are -log2 of rule
/// probabilities, the top-down heuristic g(x) charges each open nonterminal
/// with the -log2 of the maximal derivable probability h(α) (computed as a
/// fixpoint), and the bottom-up heuristic charges the cheapest tensor of each
/// still-missing dimension m(d).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_COSTMODEL_H
#define STAGG_SEARCH_COSTMODEL_H

#include "grammar/Pcfg.h"

namespace stagg {
namespace search {

/// Precomputed additive costs for one grammar.
///
/// Thread-safety: all state is computed in the constructor; the accessors
/// (including minTensorCost, which scans the referenced grammar) are pure
/// reads, so one CostModel may be shared across the parallel frontier's
/// workers as long as the grammar it references outlives the search.
class CostModel {
public:
  explicit CostModel(const grammar::TemplateGrammar &G);

  /// Costs of the EXPR productions (-log2 P; infinity when P = 0).
  double costExprTensor() const { return CExprTensor; }
  double costExprConst() const { return CExprConst; }
  double costExprBin() const { return CExprBin; }
  double costExprMax() const { return CExprMax; }

  /// Cost of OP -> op.
  double costOp(taco::BinOpKind Op) const {
    return COp[static_cast<int>(Op)];
  }

  /// -log2 h(EXPR): heuristic charge of one open EXPR hole.
  double holeCharge() const { return HoleCharge; }

  /// -log2 h(OP): heuristic charge of one open OP slot.
  double opHoleCharge() const { return OpHoleCharge; }

  /// Bottom-up m(d): cheapest way to add a tensor of dimension \p Dim
  /// (infinity when the grammar offers none).
  double minTensorCost(int Dim) const;

private:
  const grammar::TemplateGrammar &G;
  double CExprTensor, CExprConst, CExprBin, CExprMax;
  double COp[4];
  double HoleCharge, OpHoleCharge;
};

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_COSTMODEL_H
