//===- search/TopDown.h - Top-down weighted A* enumeration ------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: weighted A\* over the template grammar,
/// expanding the leftmost nonterminal of partial templates, ordered by
/// f(x) = c(x) + g(x) + X(x), with a depth limit of 6. Probing runs on the
/// parallel frontier (search/Frontier.h) when Config.Threads != 1; results
/// are bit-identical for every thread count.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_TOPDOWN_H
#define STAGG_SEARCH_TOPDOWN_H

#include "grammar/Pcfg.h"
#include "search/SearchTypes.h"

#include <memory>

namespace stagg {
namespace search {

class CandidateStream;

/// Runs the top-down enumeration. \p Probe is invoked on every complete
/// template; returning true ends the search successfully. The single probe
/// is shared across workers, so with Config.Threads != 1 it must be
/// thread-safe; stateful probes should use the factory overload instead.
SearchResult runTopDown(const grammar::TemplateGrammar &G,
                        const SearchConfig &Config, const TemplateProbe &Probe);

/// Same search with one probe per worker (see TemplateProbeFactory).
SearchResult runTopDown(const grammar::TemplateGrammar &G,
                        const SearchConfig &Config,
                        const TemplateProbeFactory &Factory);

/// The bare enumeration as a stream of complete candidates in serial probe
/// order, for callers that drive the frontier themselves.
std::unique_ptr<CandidateStream>
makeTopDownStream(const grammar::TemplateGrammar &G, const SearchConfig &Config);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_TOPDOWN_H
