//===- search/TopDown.h - Top-down weighted A* enumeration ------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: weighted A\* over the template grammar,
/// expanding the leftmost nonterminal of partial templates, ordered by
/// f(x) = c(x) + g(x) + X(x), with a depth limit of 6.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_TOPDOWN_H
#define STAGG_SEARCH_TOPDOWN_H

#include "grammar/Pcfg.h"
#include "search/SearchTypes.h"

namespace stagg {
namespace search {

/// Runs the top-down enumeration. \p Probe is invoked on every complete
/// template; returning true ends the search successfully.
SearchResult runTopDown(const grammar::TemplateGrammar &G,
                        const SearchConfig &Config, const TemplateProbe &Probe);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_TOPDOWN_H
