//===- search/TemplateState.h - Partial template trees ----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-down search state: a partial abstract syntax tree over the
/// template grammar. Unexpanded EXPR nonterminals appear as holes; a binary
/// node whose OP nonterminal has not been expanded yet carries an "op hole".
/// Expansion always rewrites the *leftmost* nonterminal (matching the
/// leftmost-derivation convention used when learning weights).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SEARCH_TEMPLATESTATE_H
#define STAGG_SEARCH_TEMPLATESTATE_H

#include "grammar/Pcfg.h"
#include "taco/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace stagg {
namespace search {

/// One node of a partial template tree.
struct TNode {
  enum class Kind {
    Hole, ///< Unexpanded EXPR nonterminal.
    Leaf, ///< TENSOR or CONSTANT production applied (Rule set).
    Bin,  ///< EXPR OP EXPR; OpKnown says whether OP was expanded.
    Max,  ///< max(EXPR, EXPR); only reachable when the grammar has the rule.
  };

  Kind K = Kind::Hole;
  const grammar::TensorRule *Rule = nullptr;
  taco::BinOpKind Op = taco::BinOpKind::Add;
  bool OpKnown = false;
  std::unique_ptr<TNode> Lhs, Rhs;

  static std::unique_ptr<TNode> hole() { return std::make_unique<TNode>(); }

  std::unique_ptr<TNode> clone() const;
};

/// Identifies the leftmost nonterminal in a tree.
struct Frontier {
  enum class Kind { None, ExprHole, OpHole };
  Kind K = Kind::None;
  TNode *Node = nullptr; ///< The hole itself, or the Bin node missing its op.
};

/// In-order scan for the leftmost nonterminal.
Frontier leftmostNonterminal(TNode &Root);

/// Structural metrics consumed by the penalty functions.
struct StateMetrics {
  int Leaves = 0;        ///< Tensor/constant leaves placed so far.
  int Holes = 0;         ///< Unexpanded EXPR holes.
  int OpHoles = 0;       ///< Unexpanded OP slots.
  int Depth = 1;         ///< Paper depth (accesses depth 1, holes too).
  int ConstLeaves = 0;   ///< Leaves that are the symbolic constant.
  int TensorsWithI = 0;  ///< Leaves indexed by the first canonical variable.
  bool Complete = false; ///< No nonterminals remain.

  /// Distinct non-constant tensor symbols in order of first appearance.
  std::vector<std::string> TensorOrder;

  /// Distinct operators already fixed.
  std::vector<taco::BinOpKind> OpsUsed;

  /// True if some binary node with + - or / has structurally identical
  /// access leaves on both sides (penalty a4).
  bool DegenerateOp = false;
};

/// Computes metrics for a partial tree.
StateMetrics computeMetrics(const TNode &Root);

/// Converts a complete tree into a TACO expression. Must only be called when
/// the tree has no nonterminals.
taco::ExprPtr treeToExpr(const TNode &Root);

} // namespace search
} // namespace stagg

#endif // STAGG_SEARCH_TEMPLATESTATE_H
