//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared across the front ends and the response parser.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_STRINGUTILS_H
#define STAGG_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace stagg {

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// Splits \p Text on \p Separator, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Separator);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To);

/// Joins \p Parts with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Separator);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Canonicalizes C kernel text for use as a cache key: strips `//` and
/// `/* */` comments (string/char literals are preserved verbatim),
/// collapses every whitespace *run* to a single space, and trims the ends.
/// Formattings that differ only in comments, indentation, or the width of
/// existing separators normalize identically; inserting or removing a
/// separator between tokens (`y[i]=x` vs `y[i] = x`), like any token
/// change, produces a different key — a conservative miss, never a wrong
/// hit.
std::string normalizeKernelText(const std::string &Source);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t editDistance(const std::string &A, const std::string &B);

/// The closest candidate to \p Unknown by edit distance, for "did you
/// mean" hints, or "" when nothing is near enough to be a plausible typo
/// (a typo shares most of its letters with the intended spelling; anything
/// further than max(2, |Unknown|/3) away is noise, not a suggestion).
std::string closestMatch(const std::string &Unknown,
                         const std::vector<std::string> &Candidates);

} // namespace stagg

#endif // STAGG_SUPPORT_STRINGUTILS_H
