//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared across the front ends and the response parser.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_STRINGUTILS_H
#define STAGG_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace stagg {

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// Splits \p Text on \p Separator, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Separator);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To);

/// Joins \p Parts with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Separator);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

} // namespace stagg

#endif // STAGG_SUPPORT_STRINGUTILS_H
