//===- support/Rng.cpp - Deterministic pseudo-random numbers --------------===//

#include "support/Rng.h"

using namespace stagg;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t Rng::weightedIndex(const std::vector<double> &Weights) {
  double Total = 0;
  for (double W : Weights)
    Total += W;
  assert(Total > 0 && "weights must have positive mass");
  double Target = uniform() * Total;
  double Acc = 0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
