//===- support/Fd.h - File-descriptor RAII ----------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UniqueFd: exclusive ownership of one POSIX file descriptor. The socket
/// transport (serve/SocketServer) juggles a listening socket, dozens of
/// connection sockets, an epoll instance, and an eventfd; every one of them
/// leaks on any early-return path unless closing is tied to scope. This is
/// the one place descriptor lifetime lives — nothing in the transport calls
/// ::close() directly.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_FD_H
#define STAGG_SUPPORT_FD_H

#include <unistd.h>

#include <utility>

namespace stagg {
namespace support {

/// Move-only owner of a file descriptor; closes it on destruction.
class UniqueFd {
public:
  UniqueFd() = default;
  explicit UniqueFd(int Fd) : Fd(Fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd &) = delete;
  UniqueFd &operator=(const UniqueFd &) = delete;

  UniqueFd(UniqueFd &&Other) noexcept : Fd(Other.release()) {}
  UniqueFd &operator=(UniqueFd &&Other) noexcept {
    if (this != &Other)
      reset(Other.release());
    return *this;
  }

  /// The owned descriptor, or -1.
  int get() const { return Fd; }

  bool valid() const { return Fd >= 0; }
  explicit operator bool() const { return valid(); }

  /// Gives up ownership without closing.
  int release() { return std::exchange(Fd, -1); }

  /// Closes the current descriptor (if any) and adopts \p NewFd.
  void reset(int NewFd = -1) {
    if (Fd >= 0 && Fd != NewFd)
      ::close(Fd);
    Fd = NewFd;
  }

private:
  int Fd = -1;
};

} // namespace support
} // namespace stagg

#endif // STAGG_SUPPORT_FD_H
