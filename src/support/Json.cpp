//===- support/Json.cpp - Minimal JSON reader/writer ----------------------===//

#include "support/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace stagg;
using namespace stagg::support;

//===----------------------------------------------------------------------===//
// Value accessors and builders
//===----------------------------------------------------------------------===//

const Json *Json::find(const std::string &Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

Json &Json::push(Json Value) {
  Items.push_back(std::move(Value));
  return *this;
}

Json &Json::set(const std::string &Key, Json Value) {
  for (auto &[Name, Existing] : Members)
    if (Name == Key) {
      Existing = std::move(Value);
      return *this;
    }
  Members.emplace_back(Key, std::move(Value));
  return *this;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

/// Length of the valid UTF-8 sequence starting at \p At (0 when the bytes
/// there are not well-formed UTF-8: bad lead byte, truncated or wrong
/// continuations, overlong encodings, surrogates, beyond U+10FFFF).
size_t utf8SequenceLength(const std::string &Text, size_t At) {
  unsigned char Lead = static_cast<unsigned char>(Text[At]);
  size_t Length;
  uint32_t Code;
  if (Lead < 0x80)
    return 1;
  if (Lead >= 0xC2 && Lead <= 0xDF) {
    Length = 2;
    Code = Lead & 0x1Fu;
  } else if (Lead >= 0xE0 && Lead <= 0xEF) {
    Length = 3;
    Code = Lead & 0x0Fu;
  } else if (Lead >= 0xF0 && Lead <= 0xF4) {
    Length = 4;
    Code = Lead & 0x07u;
  } else {
    return 0; // continuation byte or 0xC0/0xC1/0xF5+ lead
  }
  if (At + Length > Text.size())
    return 0;
  for (size_t I = 1; I < Length; ++I) {
    unsigned char C = static_cast<unsigned char>(Text[At + I]);
    if ((C & 0xC0) != 0x80)
      return 0;
    Code = (Code << 6) | (C & 0x3Fu);
  }
  if (Length == 3 && (Code < 0x800 || (Code >= 0xD800 && Code <= 0xDFFF)))
    return 0;
  if (Length == 4 && (Code < 0x10000 || Code > 0x10FFFF))
    return 0;
  return Length;
}

} // namespace

std::string support::escapeJsonString(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t At = 0; At < Text.size();) {
    unsigned char C = static_cast<unsigned char>(Text[At]);
    switch (C) {
    case '"':
      Out += "\\\"";
      ++At;
      continue;
    case '\\':
      Out += "\\\\";
      ++At;
      continue;
    case '\b':
      Out += "\\b";
      ++At;
      continue;
    case '\f':
      Out += "\\f";
      ++At;
      continue;
    case '\n':
      Out += "\\n";
      ++At;
      continue;
    case '\r':
      Out += "\\r";
      ++At;
      continue;
    case '\t':
      Out += "\\t";
      ++At;
      continue;
    default:
      break;
    }
    if (C < 0x20) {
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
      Out += Buffer;
      ++At;
      continue;
    }
    // Emitted output must stay valid UTF-8 whatever bytes arrived (strings
    // can carry raw kernel text from hostile clients): well-formed
    // sequences pass through verbatim, anything else becomes U+FFFD so the
    // response line always parses downstream.
    size_t Length = utf8SequenceLength(Text, At);
    if (Length == 0) {
      Out += "\xEF\xBF\xBD";
      ++At;
      continue;
    }
    Out.append(Text, At, Length);
    At += Length;
  }
  return Out;
}

namespace {

void dumpTo(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    return;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    return;
  case Json::Kind::Number: {
    if (J.isInteger()) {
      Out += std::to_string(J.asInteger());
      return;
    }
    double Value = J.asNumber();
    if (!std::isfinite(Value)) {
      // JSON has no Inf/NaN; null is the least-wrong rendering.
      Out += "null";
      return;
    }
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%.12g", Value);
    Out += Buffer;
    return;
  }
  case Json::Kind::String:
    Out += '"';
    Out += escapeJsonString(J.asString());
    Out += '"';
    return;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &Item : J.items()) {
      if (!First)
        Out += ',';
      First = false;
      dumpTo(Item, Out);
    }
    Out += ']';
    return;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Value] : J.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escapeJsonString(Key);
      Out += "\":";
      dumpTo(Value, Out);
    }
    Out += '}';
    return;
  }
  }
}

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpTo(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

std::string JsonError::describe() const {
  return "malformed JSON at line " + std::to_string(Line) + " column " +
         std::to_string(Column) + ": " + Message;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult Result;
    skipWhitespace();
    if (!parseValue(Result.Value, 0))
      return fail(Result);
    skipWhitespace();
    if (At < Text.size()) {
      setError("unexpected trailing content");
      return fail(Result);
    }
    Result.Ok = true;
    return Result;
  }

private:
  static constexpr int MaxDepth = 64;

  JsonParseResult fail(JsonParseResult &Result) {
    Result.Error = Error;
    Result.Ok = false;
    return Result;
  }

  void setError(const std::string &Message) {
    if (!Error.Message.empty())
      return; // keep the innermost (first) diagnostic
    Error.Message = Message;
    Error.Offset = At;
    Error.Line = 1;
    Error.Column = 1;
    for (size_t I = 0; I < At && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Error.Line;
        Error.Column = 1;
      } else {
        ++Error.Column;
      }
    }
  }

  void skipWhitespace() {
    while (At < Text.size() &&
           (Text[At] == ' ' || Text[At] == '\t' || Text[At] == '\n' ||
            Text[At] == '\r'))
      ++At;
  }

  bool consume(char C) {
    if (At < Text.size() && Text[At] == C) {
      ++At;
      return true;
    }
    return false;
  }

  bool parseLiteral(const char *Word, size_t Length) {
    if (Text.compare(At, Length, Word) != 0)
      return false;
    At += Length;
    return true;
  }

  bool parseValue(Json &Out, int Depth) {
    if (Depth > MaxDepth) {
      setError("nesting deeper than 64 levels");
      return false;
    }
    skipWhitespace();
    if (At >= Text.size()) {
      setError("unexpected end of input");
      return false;
    }
    char C = Text[At];
    switch (C) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::str(std::move(S));
      return true;
    }
    case 't':
      if (parseLiteral("true", 4)) {
        Out = Json::boolean(true);
        return true;
      }
      setError("expected 'true'");
      return false;
    case 'f':
      if (parseLiteral("false", 5)) {
        Out = Json::boolean(false);
        return true;
      }
      setError("expected 'false'");
      return false;
    case 'n':
      if (parseLiteral("null", 4)) {
        Out = Json::null();
        return true;
      }
      setError("expected 'null'");
      return false;
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(Out);
      setError(std::string("unexpected character '") + C + "'");
      return false;
    }
  }

  bool parseObject(Json &Out, int Depth) {
    ++At; // '{'
    Out = Json::object();
    skipWhitespace();
    if (consume('}'))
      return true;
    while (true) {
      skipWhitespace();
      if (At >= Text.size() || Text[At] != '"') {
        setError("expected a string key");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      if (Out.find(Key)) {
        setError("duplicate key \"" + Key + "\"");
        return false;
      }
      skipWhitespace();
      if (!consume(':')) {
        setError("expected ':'");
        return false;
      }
      Json Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.set(Key, std::move(Value));
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      setError("expected ',' or '}'");
      return false;
    }
  }

  bool parseArray(Json &Out, int Depth) {
    ++At; // '['
    Out = Json::array();
    skipWhitespace();
    if (consume(']'))
      return true;
    while (true) {
      Json Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.push(std::move(Value));
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      setError("expected ',' or ']'");
      return false;
    }
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (At + 4 > Text.size()) {
      setError("truncated \\u escape");
      return false;
    }
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[At + static_cast<size_t>(I)];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else {
        setError("invalid \\u escape digit");
        return false;
      }
    }
    At += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++At; // opening quote
    Out.clear();
    while (true) {
      if (At >= Text.size()) {
        setError("unterminated string");
        return false;
      }
      unsigned char C = static_cast<unsigned char>(Text[At]);
      if (C == '"') {
        ++At;
        return true;
      }
      if (C < 0x20) {
        setError("unescaped control character in string");
        return false;
      }
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++At;
        continue;
      }
      ++At; // backslash
      if (At >= Text.size()) {
        setError("unterminated escape");
        return false;
      }
      char E = Text[At++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Code = 0;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair?
        if (Code >= 0xD800 && Code <= 0xDBFF && At + 1 < Text.size() &&
            Text[At] == '\\' && Text[At + 1] == 'u') {
          size_t Save = At;
          At += 2;
          uint32_t Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            At = Save; // lone high surrogate, handled below
        }
        // A lone surrogate has no UTF-8 encoding; substitute U+FFFD so the
        // stored string stays valid UTF-8.
        if (Code >= 0xD800 && Code <= 0xDFFF)
          Code = 0xFFFD;
        appendUtf8(Out, Code);
        break;
      }
      default:
        --At;
        setError(std::string("invalid escape '\\") + E + "'");
        return false;
      }
    }
  }

  bool parseNumber(Json &Out) {
    size_t Start = At;
    if (consume('-')) {
    }
    if (At >= Text.size() || Text[At] < '0' || Text[At] > '9') {
      At = Start;
      setError("invalid number");
      return false;
    }
    if (Text[At] == '0') {
      ++At; // strict JSON: no leading zeros
      if (At < Text.size() && Text[At] >= '0' && Text[At] <= '9') {
        setError("leading zeros are not allowed");
        return false;
      }
    } else {
      while (At < Text.size() && Text[At] >= '0' && Text[At] <= '9')
        ++At;
    }
    bool Integral = true;
    if (At < Text.size() && Text[At] == '.') {
      Integral = false;
      ++At;
      if (At >= Text.size() || Text[At] < '0' || Text[At] > '9') {
        setError("digits must follow the decimal point");
        return false;
      }
      while (At < Text.size() && Text[At] >= '0' && Text[At] <= '9')
        ++At;
    }
    if (At < Text.size() && (Text[At] == 'e' || Text[At] == 'E')) {
      Integral = false;
      ++At;
      if (At < Text.size() && (Text[At] == '+' || Text[At] == '-'))
        ++At;
      if (At >= Text.size() || Text[At] < '0' || Text[At] > '9') {
        setError("digits must follow the exponent");
        return false;
      }
      while (At < Text.size() && Text[At] >= '0' && Text[At] <= '9')
        ++At;
    }
    std::string Token = Text.substr(Start, At - Start);
    if (Integral) {
      // Integer tokens too wide for int64 degrade to double.
      errno = 0;
      char *End = nullptr;
      long long Value = std::strtoll(Token.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Json::integer(Value);
        return true;
      }
    }
    Out = Json::number(std::strtod(Token.c_str(), nullptr));
    return true;
  }

  const std::string &Text;
  size_t At = 0;
  JsonError Error;
};

} // namespace

JsonParseResult support::parseJson(const std::string &Text) {
  return Parser(Text).run();
}
