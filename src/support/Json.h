//===- support/Json.h - Minimal JSON reader/writer --------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value with a strict parser and a compact
/// writer, backing the versioned wire protocol of `stagg serve` (api/
/// Protocol.h). Design points:
///
///  * Objects preserve insertion order (responses render in a stable field
///    order, so logs diff cleanly) and reject duplicate keys on parse.
///  * Numbers remember whether they were written as integers, so counters
///    like "expansions" round-trip without a decimal point.
///  * Parse failures carry the 1-based line/column of the offending byte —
///    surfaced verbatim to serve clients, who edit their request bodies by
///    hand more often than not.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_JSON_H
#define STAGG_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stagg {
namespace support {

/// One JSON value (null, bool, number, string, array, or object).
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}

  static Json null() { return Json(); }
  static Json boolean(bool Value) {
    Json J;
    J.K = Kind::Bool;
    J.BoolValue = Value;
    return J;
  }
  static Json number(double Value) {
    Json J;
    J.K = Kind::Number;
    J.NumValue = Value;
    return J;
  }
  static Json integer(int64_t Value) {
    Json J;
    J.K = Kind::Number;
    J.NumValue = static_cast<double>(Value);
    J.IntValue = Value;
    J.IsInteger = true;
    return J;
  }
  static Json str(std::string Value) {
    Json J;
    J.K = Kind::String;
    J.StrValue = std::move(Value);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isInteger() const { return K == Kind::Number && IsInteger; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolValue; }
  double asNumber() const { return NumValue; }
  int64_t asInteger() const {
    return IsInteger ? IntValue : static_cast<int64_t>(NumValue);
  }
  const std::string &asString() const { return StrValue; }

  /// Array elements (valid for arrays only).
  const std::vector<Json> &items() const { return Items; }

  /// Object members in insertion order (valid for objects only).
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Object lookup; nullptr when absent (or not an object).
  const Json *find(const std::string &Key) const;

  /// Appends to an array.
  Json &push(Json Value);

  /// Sets (or replaces) an object member, keeping first-insertion order.
  Json &set(const std::string &Key, Json Value);

  /// Renders the value as compact single-line JSON (no trailing newline).
  std::string dump() const;

private:
  Kind K;
  bool BoolValue = false;
  double NumValue = 0;
  int64_t IntValue = 0;
  bool IsInteger = false;
  std::string StrValue;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Where and why a parse failed. Line/Column are 1-based.
struct JsonError {
  std::string Message;
  size_t Offset = 0;
  int Line = 1;
  int Column = 1;

  /// "malformed JSON at line 1 column 7: expected ':'".
  std::string describe() const;
};

/// Outcome of parseJson.
struct JsonParseResult {
  Json Value;
  JsonError Error;
  bool Ok = false;

  bool ok() const { return Ok; }
};

/// Parses exactly one JSON value from \p Text (leading/trailing whitespace
/// allowed, anything else after the value is an error). Rejects duplicate
/// object keys and nesting deeper than 64 levels.
JsonParseResult parseJson(const std::string &Text);

/// Escapes \p Text as the *inside* of a JSON string literal (no quotes).
std::string escapeJsonString(const std::string &Text);

} // namespace support
} // namespace stagg

#endif // STAGG_SUPPORT_JSON_H
