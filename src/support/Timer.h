//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple monotonic wall-clock timer and a deadline type used to implement
/// the per-query synthesis timeout from the paper's evaluation setup.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_TIMER_H
#define STAGG_SUPPORT_TIMER_H

#include <chrono>

namespace stagg {

/// Measures elapsed wall-clock time from construction (or last restart).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A wall-clock budget. A default-constructed deadline never expires.
class Deadline {
public:
  Deadline() : LimitSeconds(-1) {}
  explicit Deadline(double Seconds) : LimitSeconds(Seconds) {}

  bool expired() const {
    return LimitSeconds >= 0 && Elapsed.seconds() > LimitSeconds;
  }

  double remainingSeconds() const {
    if (LimitSeconds < 0)
      return 1e30;
    return LimitSeconds - Elapsed.seconds();
  }

private:
  Timer Elapsed;
  double LimitSeconds;
};

} // namespace stagg

#endif // STAGG_SUPPORT_TIMER_H
