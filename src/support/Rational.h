//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over 64-bit components. The paper extends CBMC with
/// rational datatypes so that equivalence of lifted programs is checked
/// without floating-point noise; our bounded verifier uses this class for the
/// same purpose. Overflow is guarded by assertions: the verifier only feeds
/// small bounded inputs, so intermediate values stay tiny.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_RATIONAL_H
#define STAGG_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>

namespace stagg {

/// An exact rational number, always kept in lowest terms with a positive
/// denominator. Division by zero yields a dedicated "undefined" state rather
/// than trapping, because the einsum evaluator may legitimately divide by a
/// zero tensor entry during candidate validation; undefined values compare
/// equal only to other undefined values.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  /*implicit*/ Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Numerator, int64_t Denominator);

  /// Builds the canonical undefined value (result of division by zero).
  static Rational undefined();

  bool isUndefined() const { return Den == 0; }
  bool isZero() const { return !isUndefined() && Num == 0; }

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  Rational operator+(const Rational &Other) const;
  Rational operator-(const Rational &Other) const;
  Rational operator*(const Rational &Other) const;
  Rational operator/(const Rational &Other) const;
  Rational operator-() const;

  Rational &operator+=(const Rational &Other) { return *this = *this + Other; }
  Rational &operator-=(const Rational &Other) { return *this = *this - Other; }
  Rational &operator*=(const Rational &Other) { return *this = *this * Other; }
  Rational &operator/=(const Rational &Other) { return *this = *this / Other; }

  bool operator==(const Rational &Other) const {
    return Num == Other.Num && Den == Other.Den;
  }
  bool operator!=(const Rational &Other) const { return !(*this == Other); }
  bool operator<(const Rational &Other) const;

  /// Converts to double for diagnostics only; undefined maps to NaN.
  double toDouble() const;

  /// Renders as "n", "n/d", or "undef".
  std::string str() const;

private:
  void normalize();

  int64_t Num;
  /// Zero denominator encodes the undefined state.
  int64_t Den;
};

} // namespace stagg

#endif // STAGG_SUPPORT_RATIONAL_H
