//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64-seeded xoshiro256**).
/// Every stochastic component of the system (I/O example generation, the
/// simulated LLM's noise model) draws from an explicitly seeded Rng so that
/// experiments are reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_SUPPORT_RNG_H
#define STAGG_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stagg {

/// Deterministic xoshiro256** generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound) for Bound > 0.
  uint64_t below(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "picking from an empty vector");
    return Items[below(Items.size())];
  }

  /// Samples an index according to non-negative \p Weights (at least one must
  /// be positive).
  size_t weightedIndex(const std::vector<double> &Weights);

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[below(I)]);
  }

private:
  uint64_t State[4];
};

} // namespace stagg

#endif // STAGG_SUPPORT_RNG_H
