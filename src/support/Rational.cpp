//===- support/Rational.cpp - Exact rational arithmetic -------------------===//

#include "support/Rational.h"

#include <cmath>
#include <limits>

using namespace stagg;

Rational::Rational(int64_t Numerator, int64_t Denominator)
    : Num(Numerator), Den(Denominator) {
  normalize();
}

Rational Rational::undefined() {
  Rational R;
  R.Num = 0;
  R.Den = 0;
  return R;
}

void Rational::normalize() {
  if (Den == 0) {
    Num = 0;
    return;
  }
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
}

Rational Rational::operator+(const Rational &Other) const {
  if (isUndefined() || Other.isUndefined())
    return undefined();
  return Rational(Num * Other.Den + Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator-(const Rational &Other) const {
  if (isUndefined() || Other.isUndefined())
    return undefined();
  return Rational(Num * Other.Den - Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator*(const Rational &Other) const {
  if (isUndefined() || Other.isUndefined())
    return undefined();
  return Rational(Num * Other.Num, Den * Other.Den);
}

Rational Rational::operator/(const Rational &Other) const {
  if (isUndefined() || Other.isUndefined() || Other.Num == 0)
    return undefined();
  return Rational(Num * Other.Den, Den * Other.Num);
}

Rational Rational::operator-() const {
  if (isUndefined())
    return undefined();
  Rational R(*this);
  R.Num = -R.Num;
  return R;
}

bool Rational::operator<(const Rational &Other) const {
  assert(!isUndefined() && !Other.isUndefined() &&
         "ordering undefined rationals");
  return Num * Other.Den < Other.Num * Den;
}

double Rational::toDouble() const {
  if (isUndefined())
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(Num) / static_cast<double>(Den);
}

std::string Rational::str() const {
  if (isUndefined())
    return "undef";
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
