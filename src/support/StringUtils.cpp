//===- support/StringUtils.cpp - Small string helpers ---------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace stagg;

std::string stagg::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> stagg::splitString(const std::string &Text,
                                            char Separator) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string stagg::replaceAll(std::string Text, const std::string &From,
                              const std::string &To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

std::string stagg::joinStrings(const std::vector<std::string> &Parts,
                               const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

bool stagg::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}
