//===- support/StringUtils.cpp - Small string helpers ---------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>

using namespace stagg;

std::string stagg::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> stagg::splitString(const std::string &Text,
                                            char Separator) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string stagg::replaceAll(std::string Text, const std::string &From,
                              const std::string &To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

std::string stagg::joinStrings(const std::vector<std::string> &Parts,
                               const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Parts[I];
  }
  return Result;
}

bool stagg::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string stagg::normalizeKernelText(const std::string &Source) {
  std::string Out;
  Out.reserve(Source.size());
  bool PendingSpace = false;
  for (size_t I = 0; I < Source.size();) {
    char C = Source[I];
    // String and character literals are copied verbatim — a `//` or
    // whitespace inside one is content, not a comment or separator.
    if (C == '"' || C == '\'') {
      if (PendingSpace && !Out.empty())
        Out += ' ';
      PendingSpace = false;
      char Quote = C;
      Out += Source[I++];
      while (I < Source.size()) {
        Out += Source[I];
        if (Source[I] == '\\' && I + 1 < Source.size()) {
          Out += Source[I + 1];
          I += 2;
          continue;
        }
        if (Source[I] == Quote) {
          ++I;
          break;
        }
        ++I;
      }
      continue;
    }
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '/') {
      while (I < Source.size() && Source[I] != '\n')
        ++I;
      PendingSpace = true;
      continue;
    }
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < Source.size() &&
             !(Source[I] == '*' && Source[I + 1] == '/'))
        ++I;
      I = I + 1 < Source.size() ? I + 2 : Source.size();
      PendingSpace = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      PendingSpace = true;
      ++I;
      continue;
    }
    if (PendingSpace && !Out.empty())
      Out += ' ';
    PendingSpace = false;
    Out += C;
    ++I;
  }
  return Out;
}

size_t stagg::editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diagonal = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Above = Row[J];
      size_t Substitute = Diagonal + (A[I - 1] == B[J - 1] ? 0 : 1);
      Row[J] = std::min({Above + 1, Row[J - 1] + 1, Substitute});
      Diagonal = Above;
    }
  }
  return Row[B.size()];
}

std::string stagg::closestMatch(const std::string &Unknown,
                                const std::vector<std::string> &Candidates) {
  std::string Best;
  size_t BestDistance = std::string::npos;
  for (const std::string &Candidate : Candidates) {
    size_t Distance = editDistance(Unknown, Candidate);
    if (Distance < BestDistance) {
      BestDistance = Distance;
      Best = Candidate;
    }
  }
  if (BestDistance <= std::max<size_t>(2, Unknown.size() / 3))
    return Best;
  return std::string();
}
