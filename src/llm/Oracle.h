//===- llm/Oracle.h - Candidate-solution oracle interface -------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle abstraction over "ask a large language model for 10 candidate
/// TACO translations". The paper queries GPT-4 at temperature 1.0; offline we
/// substitute a seeded noise model (llm/SimulatedLlm.h) that produces the
/// same statistical situation — see DESIGN.md for the substitution argument.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_LLM_ORACLE_H
#define STAGG_LLM_ORACLE_H

#include "benchsuite/Benchmark.h"

#include <string>
#include <vector>

namespace stagg {
namespace llm {

/// A lifting task as presented to the oracle.
struct OracleTask {
  const bench::Benchmark *Query = nullptr;

  /// The rendered prompt (llm/Prompt.h); real backends would send this.
  std::string Prompt;

  /// How many candidate expressions to request (the paper asks for 10).
  int NumCandidates = 10;
};

/// Produces raw candidate lines for a task. Implementations may return more
/// or fewer lines than requested, and lines may be syntactically invalid —
/// the response parser deals with both, exactly as the paper describes.
class CandidateOracle {
public:
  virtual ~CandidateOracle() = default;

  virtual std::vector<std::string> propose(const OracleTask &Task) = 0;

protected:
  CandidateOracle() = default;
};

} // namespace llm
} // namespace stagg

#endif // STAGG_LLM_ORACLE_H
