//===- llm/SimulatedLlm.h - Deterministic LLM stand-in ----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded noise model standing in for GPT-4 at temperature 1.0 (see
/// DESIGN.md for the substitution rationale). Given a benchmark's ground
/// truth, it emits candidate translations drawn from an error distribution
/// calibrated to the paper's observations:
///
///  * easy kernels are often translated exactly (modulo naming — tensor and
///    index names are freely invented, `:=` appears, list numbering leaks);
///  * harder kernels keep the right *neighborhood* — operand dimensions and
///    most access patterns are correct — while the exact program is wrong
///    (a swapped operator, a transposed access, a dropped or spurious term);
///  * the hardest kernels are systematically misunderstood: operand ranks
///    are wrong, so even the learned grammar cannot contain the solution;
///  * a fraction of lines is syntactically unusable (`sum(i, ...)` pseudo
///    notation, fractional constants) and gets discarded by the parser.
///
/// Every benchmark derives its candidate stream deterministically from the
/// oracle seed and the benchmark name, so experiments are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_LLM_SIMULATEDLLM_H
#define STAGG_LLM_SIMULATEDLLM_H

#include "llm/Oracle.h"
#include "support/Rng.h"

namespace stagg {
namespace llm {

/// Tunable parameters of the error model.
struct NoiseModel {
  /// P(candidate is structurally exact) = ExactBase * exp(-ExactDecay * d).
  /// High base + steep decay: trivial elementwise kernels are translated
  /// exactly most of the time (as GPT-4 does), while anything with
  /// reductions, permutations or obfuscated C quickly drops to near-zero
  /// exactness — which reproduces the paper's direct-LLM success rate
  /// (~44% of the suite) while keeping the guess *neighborhood* right.
  double ExactBase = 0.85;
  double ExactDecay = 16.0;

  /// Among non-exact candidates, fraction receiving a *minor* perturbation
  /// (operator swap, index permutation/redirection — all rank-preserving)
  /// rather than a major one.
  double MinorShare = 0.65;

  /// Within major perturbations, probability of corrupting an operand's
  /// rank grows with difficulty: DimBase + DimSlope * d.
  double DimBase = 0.25;
  double DimSlope = 0.5;

  /// Difficulty at which the model becomes systematically confused about
  /// ranks (most candidates rank-corrupted, so the dimension-list vote
  /// fails).
  double SystematicThreshold = 0.95;

  /// Surface-noise rates.
  double AssignColonProb = 0.10; ///< emit `:=`
  double SumWrapperProb = 0.07;  ///< emit `sum(i, ...)` (unparsable)
  double FloatConstProb = 0.04;  ///< emit `0.5 * ...` (unparsable)
  double RenameTensorProb = 0.45;
  double RenameIndexProb = 0.35;
  double ListNumberProb = 0.5;
};

/// The deterministic GPT-4 stand-in.
class SimulatedLlm : public CandidateOracle {
public:
  explicit SimulatedLlm(uint64_t Seed, NoiseModel Model = NoiseModel())
      : Seed(Seed), Model(Model) {}

  std::vector<std::string> propose(const OracleTask &Task) override;

  const NoiseModel &noiseModel() const { return Model; }

private:
  uint64_t Seed;
  NoiseModel Model;
};

} // namespace llm
} // namespace stagg

#endif // STAGG_LLM_SIMULATEDLLM_H
