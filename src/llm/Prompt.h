//===- llm/Prompt.h - Prompt construction -----------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the exact prompt of the paper's Prompt 1. Kept verbatim so that a
/// real LLM backend can be dropped in behind the CandidateOracle interface
/// without touching the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_LLM_PROMPT_H
#define STAGG_LLM_PROMPT_H

#include <string>

namespace stagg {
namespace llm {

/// The system role string of Prompt 1.
std::string promptRole();

/// Renders Prompt 1 for \p CSource, requesting \p NumCandidates expressions.
std::string buildPrompt(const std::string &CSource, int NumCandidates = 10);

} // namespace llm
} // namespace stagg

#endif // STAGG_LLM_PROMPT_H
