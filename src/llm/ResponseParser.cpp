//===- llm/ResponseParser.cpp - Parsing LLM responses ---------------------===//

#include "llm/ResponseParser.h"

#include "support/StringUtils.h"
#include "taco/Parser.h"

#include <cctype>

using namespace stagg;
using namespace stagg::llm;

std::string llm::preprocessResponseLine(const std::string &Line) {
  std::string Text = trim(Line);

  // Strip markdown fences and quotes.
  while (!Text.empty() && (Text.front() == '`' || Text.front() == '"' ||
                           Text.front() == '\''))
    Text.erase(Text.begin());
  while (!Text.empty() && (Text.back() == '`' || Text.back() == '"' ||
                           Text.back() == '\'' || Text.back() == ','))
    Text.pop_back();

  // Strip list numbering: "3. expr", "3) expr", "- expr", "* expr" (only
  // when the star is followed by a space, to avoid eating multiplication).
  size_t I = 0;
  while (I < Text.size() && std::isdigit(static_cast<unsigned char>(Text[I])))
    ++I;
  if (I > 0 && I < Text.size() && (Text[I] == '.' || Text[I] == ')'))
    Text = trim(Text.substr(I + 1));
  else if (Text.size() > 1 && (Text[0] == '-' || Text[0] == '*') &&
           Text[1] == ' ')
    Text = trim(Text.substr(2));

  // Normalize `:=` (and the unicode-ish variants LLMs emit) to `=`.
  Text = replaceAll(Text, ":=", "=");

  return trim(Text);
}

ParsedResponses llm::parseResponses(const std::vector<std::string> &Lines) {
  ParsedResponses Result;
  for (const std::string &Raw : Lines) {
    std::string Line = preprocessResponseLine(Raw);
    if (Line.empty())
      continue;
    ++Result.TotalLines;
    taco::ParseResult Parsed = taco::parseTacoProgram(Line);
    if (!Parsed.ok()) {
      ++Result.Discarded;
      continue;
    }
    Result.Programs.push_back(std::move(*Parsed.Prog));
  }
  return Result;
}
