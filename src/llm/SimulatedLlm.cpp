//===- llm/SimulatedLlm.cpp - Deterministic LLM stand-in ------------------===//

#include "llm/SimulatedLlm.h"

#include "taco/Parser.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

using namespace stagg;
using namespace stagg::llm;
using namespace stagg::taco;

namespace {

/// FNV-1a over the benchmark name, so each query gets its own stream.
uint64_t hashName(const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Name)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ULL;
  return H;
}

/// Collects mutable pointers to all accesses in an expression.
void collectAccesses(Expr &E, std::vector<AccessExpr *> &Out) {
  switch (E.kind()) {
  case Expr::Kind::Access:
    Out.push_back(static_cast<AccessExpr *>(&E));
    return;
  case Expr::Kind::Constant:
    return;
  case Expr::Kind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    collectAccesses(B.lhs(), Out);
    collectAccesses(B.rhs(), Out);
    return;
  }
  case Expr::Kind::Negate:
    collectAccesses(static_cast<NegateExpr &>(E).operand(), Out);
    return;
  case Expr::Kind::Max: {
    auto &M = static_cast<MaxExpr &>(E);
    collectAccesses(M.lhs(), Out);
    collectAccesses(M.rhs(), Out);
    return;
  }
  }
}

/// Collects mutable pointers to binary nodes (descending through max calls,
/// whose own node carries no swappable operator).
void collectBinaries(Expr &E, std::vector<BinaryExpr *> &Out) {
  if (E.kind() == Expr::Kind::Max) {
    auto &M = static_cast<MaxExpr &>(E);
    collectBinaries(M.lhs(), Out);
    collectBinaries(M.rhs(), Out);
    return;
  }
  if (E.kind() != Expr::Kind::Binary)
    return;
  auto &B = static_cast<BinaryExpr &>(E);
  Out.push_back(&B);
  collectBinaries(B.lhs(), Out);
  collectBinaries(B.rhs(), Out);
}

/// One candidate generator run.
class CandidateMutator {
public:
  CandidateMutator(const Program &Truth, Rng &R, const NoiseModel &Model,
                   double Difficulty)
      : Truth(Truth), R(R), Model(Model), Difficulty(Difficulty) {}

  /// Produces one raw response line.
  std::string generate(int ListIndex) {
    Program Candidate = Truth;
    bool Systematic = Difficulty >= Model.SystematicThreshold;

    double PExact = Model.ExactBase * std::exp(-Model.ExactDecay * Difficulty);
    double Roll = R.uniform();
    if (Systematic) {
      // The model has misunderstood the data layout: *every* candidate
      // carries rank corruption on one or two distinct operands (distinct,
      // so a second corruption can never undo the first), and often some
      // structural noise on top. No guess carries the true dimension list,
      // so the vote of §4.2.3 fails.
      corruptDistinctRanks(Candidate, R.chance(0.55) ? 2 : 1);
      if (R.chance(0.4))
        applyMinor(Candidate);
    } else if (Roll >= PExact) {
      // A minor perturbation is guaranteed to change the structure; when no
      // minor mutation applies (e.g. a bare copy), fall through to a major
      // one so no "noisy" candidate silently stays exact.
      bool Changed = false;
      if (R.chance(Model.MinorShare))
        Changed = applyMinor(Candidate);
      if (!Changed) {
        applyMajor(Candidate);
        if (R.chance(0.3))
          applyMinor(Candidate);
      }
    }

    return render(Candidate, ListIndex);
  }

private:
  //===------------------------------------------------------------------===//
  // Structural perturbations
  //===------------------------------------------------------------------===//

  std::vector<std::string> programIndexVars(const Program &P) {
    return indexVariables(P);
  }

  /// Applies one rank-preserving structural perturbation; returns false when
  /// nothing applicable changed the program (e.g. a bare copy kernel).
  bool applyMinor(Program &P) {
    if (!P.Rhs)
      return false;
    std::string Before = printProgram(P);
    for (int Attempt = 0; Attempt < 6; ++Attempt) {
      std::vector<BinaryExpr *> Bins;
      collectBinaries(*P.Rhs, Bins);
      std::vector<AccessExpr *> Accesses;
      collectAccesses(*P.Rhs, Accesses);
      switch (R.below(6)) {
      case 0: {
        // Swap one operator (kept rare relative to index noise so that a
        // run of wrong-operator guesses cannot form a false consensus that
        // outweighs the true operator in the learned grammar).
        if (Bins.empty())
          break;
        BinaryExpr *B = R.pick(Bins);
        static const BinOpKind Ops[] = {BinOpKind::Add, BinOpKind::Sub,
                                        BinOpKind::Mul, BinOpKind::Div};
        BinOpKind NewOp = Ops[R.below(4)];
        if (NewOp != B->op())
          B->setOp(NewOp);
        break;
      }
      case 1:
      case 2: {
        // Permute the indices of one multi-index access.
        std::vector<AccessExpr *> Multi;
        for (AccessExpr *A : Accesses)
          if (A->order() >= 2)
            Multi.push_back(A);
        if (Multi.empty())
          break;
        AccessExpr *A = R.pick(Multi);
        std::vector<std::string> Indices = A->indices();
        size_t X = R.below(Indices.size());
        size_t Y = (X + 1 + R.below(Indices.size() - 1)) % Indices.size();
        std::swap(Indices[X], Indices[Y]);
        A->setIndices(std::move(Indices));
        break;
      }
      case 3:
      case 4:
        redirectIndex(P, Accesses);
        break;
      default: {
        // Mis-rank the *output* ("out(i) = ..." for a reduction) — the
        // classic LLM slip; static analysis neutralizes it downstream, so
        // for the pipeline this is benign noise that preserves operators
        // and operand ranks.
        std::vector<std::string> Indices = P.Lhs.indices();
        if (!Indices.empty() && R.chance(0.6))
          Indices.pop_back();
        else
          Indices.push_back(freshIndexVar(P));
        P.Lhs.setIndices(std::move(Indices));
        break;
      }
      }
      if (printProgram(P) != Before)
        return true;
    }
    return false;
  }

  void redirectIndex(Program &P, std::vector<AccessExpr *> &Accesses) {
    std::vector<std::string> Vars = programIndexVars(P);
    if (Vars.size() < 2 || Accesses.empty())
      return;
    AccessExpr *A = R.pick(Accesses);
    if (A->order() == 0)
      return;
    std::vector<std::string> Indices = A->indices();
    size_t Slot = R.below(Indices.size());
    Indices[Slot] = R.pick(Vars);
    A->setIndices(std::move(Indices));
  }

  /// Corrupts the rank of \p Count distinct RHS accesses (or the LHS when
  /// the RHS runs out), so corruptions can never cancel each other.
  void corruptDistinctRanks(Program &P, int Count) {
    if (!P.Rhs)
      return;
    std::vector<AccessExpr *> Accesses;
    collectAccesses(*P.Rhs, Accesses);
    R.shuffle(Accesses);
    int Done = 0;
    for (AccessExpr *A : Accesses) {
      if (Done >= Count)
        break;
      std::vector<std::string> Indices = A->indices();
      if (!Indices.empty() && R.chance(0.5))
        Indices.pop_back();
      else
        Indices.push_back(freshIndexVar(P));
      A->setIndices(std::move(Indices));
      ++Done;
    }
    if (Done < Count) {
      std::vector<std::string> Indices = P.Lhs.indices();
      if (!Indices.empty() && R.chance(0.5))
        Indices.pop_back();
      else
        Indices.push_back(freshIndexVar(P));
      P.Lhs.setIndices(std::move(Indices));
    }
  }

  void corruptRank(Program &P) {
    if (!P.Rhs)
      return;
    std::vector<AccessExpr *> Accesses;
    collectAccesses(*P.Rhs, Accesses);
    // Rank confusion most often shows on the *output* ("out(i) = x(i)" for
    // a reduction) — which the pipeline neutralizes via static analysis —
    // and when it hits an operand, dropped indices are far more common than
    // invented ones.
    if (Accesses.empty() || R.chance(0.45)) {
      std::vector<std::string> Indices = P.Lhs.indices();
      if (!Indices.empty() && R.chance(0.6))
        Indices.pop_back();
      else
        Indices.push_back(freshIndexVar(P));
      P.Lhs.setIndices(std::move(Indices));
      return;
    }
    AccessExpr *A = R.pick(Accesses);
    std::vector<std::string> Indices = A->indices();
    if (!Indices.empty() && R.chance(0.5))
      Indices.pop_back();
    else
      Indices.push_back(freshIndexVar(P));
    A->setIndices(std::move(Indices));
  }

  std::string freshIndexVar(const Program &P) {
    std::vector<std::string> Vars = programIndexVars(P);
    static const char *Pool[] = {"i", "j", "k", "l"};
    for (const char *V : Pool)
      if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
        return V;
    return "l";
  }

  void applyMajor(Program &P) {
    if (!P.Rhs)
      return;
    std::string Before = printProgram(P);
    double DimProb = Model.DimBase + Model.DimSlope * Difficulty;
    if (R.chance(DimProb))
      return corruptRank(P);

    for (int Attempt = 0; Attempt < 4; ++Attempt) {
      double Roll = R.uniform();
      if (Roll < 0.35) {
        // Drop one side of the root operator (shortens the dimension list;
        // the max-length filter of §4.2.3 discards such guesses harmlessly).
        if (auto *B = exprDynCast<BinaryExpr>(P.Rhs.get()))
          P.Rhs = R.chance(0.5) ? B->lhs().clone() : B->rhs().clone();
      } else if (Roll < 0.40) {
        // Append a spurious (mostly additive) term. Kept rare: a longer
        // guess *lengthens* its dimension list, and the paper's max-length
        // filter would then discard every correct-length guess.
        std::vector<AccessExpr *> Accesses;
        collectAccesses(*P.Rhs, Accesses);
        ExprPtr Extra;
        if (!Accesses.empty() && R.chance(0.7))
          Extra = Accesses[R.below(Accesses.size())]->clone();
        else
          Extra = std::make_unique<AccessExpr>(
              "tmp" + std::to_string(R.below(3)),
              std::vector<std::string>{freshIndexVar(P)});
        BinOpKind Op = R.chance(0.7) ? BinOpKind::Add : BinOpKind::Mul;
        P.Rhs = std::make_unique<BinaryExpr>(Op, std::move(P.Rhs),
                                             std::move(Extra));
      } else {
        // Replace the RHS by a fresh small guess over the same leaves.
        std::vector<AccessExpr *> Accesses;
        collectAccesses(*P.Rhs, Accesses);
        if (Accesses.size() < 2)
          return corruptRank(P);
        ExprPtr A = Accesses[0]->clone();
        ExprPtr B = Accesses[R.below(Accesses.size())]->clone();
        BinOpKind Op = R.chance(0.6) ? BinOpKind::Add : BinOpKind::Mul;
        P.Rhs =
            std::make_unique<BinaryExpr>(Op, std::move(A), std::move(B));
      }
      if (printProgram(P) != Before)
        return;
    }
    corruptRank(P);
  }

  //===------------------------------------------------------------------===//
  // Surface rendering
  //===------------------------------------------------------------------===//

  std::string render(Program &P, int ListIndex) {
    // Rename tensors to invented identifiers some of the time.
    if (R.chance(Model.RenameTensorProb)) {
      static const char *Pool[] = {"t",   "r",    "res", "m1",  "m2",
                                   "vec", "mat",  "dst", "src", "acc",
                                   "w1",  "out1", "v1",  "v2"};
      std::map<std::string, std::string> Renames;
      std::vector<AccessExpr *> Accesses;
      if (P.Rhs)
        collectAccesses(*P.Rhs, Accesses);
      size_t PoolAt = R.below(8);
      auto RenameOf = [&](const std::string &Old) {
        auto [It, Inserted] = Renames.emplace(
            Old, Pool[PoolAt % std::size(Pool)] +
                     (PoolAt >= std::size(Pool) ? std::to_string(PoolAt) : ""));
        if (Inserted)
          ++PoolAt;
        return It->second;
      };
      P.Lhs.setName(RenameOf(P.Lhs.name()));
      for (AccessExpr *A : Accesses)
        A->setName(RenameOf(A->name()));
    }

    // Rename index variables some of the time.
    if (R.chance(Model.RenameIndexProb)) {
      static const char *Pool[] = {"f", "g", "p", "q", "x", "y"};
      std::map<std::string, std::string> Renames;
      size_t PoolAt = R.below(3);
      auto RenameOf = [&](const std::string &Old) {
        auto [It, Inserted] =
            Renames.emplace(Old, Pool[PoolAt % std::size(Pool)]);
        if (Inserted)
          ++PoolAt;
        return It->second;
      };
      auto RenameAccess = [&](AccessExpr &A) {
        std::vector<std::string> Indices;
        for (const std::string &V : A.indices())
          Indices.push_back(RenameOf(V));
        A.setIndices(std::move(Indices));
      };
      RenameAccess(P.Lhs);
      std::vector<AccessExpr *> Accesses;
      if (P.Rhs)
        collectAccesses(*P.Rhs, Accesses);
      for (AccessExpr *A : Accesses)
        RenameAccess(*A);
    }

    std::string Lhs = printAccess(P.Lhs);
    std::string Rhs = P.Rhs ? printExpr(*P.Rhs) : "0";

    // Occasional unparsable pseudo-notation, discarded downstream.
    if (R.chance(Model.SumWrapperProb)) {
      std::vector<std::string> Vars = indexVariables(P);
      std::string Var = Vars.empty() ? "i" : Vars.back();
      Rhs = "sum(" + Var + ", " + Rhs + ")";
    } else if (R.chance(Model.FloatConstProb)) {
      Rhs = "0.5 * " + Rhs;
    }

    std::string Assign = R.chance(Model.AssignColonProb) ? " := " : " = ";
    std::string Line = Lhs + Assign + Rhs;
    if (R.chance(Model.ListNumberProb))
      Line = std::to_string(ListIndex + 1) + ". " + Line;
    return Line;
  }

  const Program &Truth;
  Rng &R;
  const NoiseModel &Model;
  double Difficulty;
};

} // namespace

std::vector<std::string> SimulatedLlm::propose(const OracleTask &Task) {
  assert(Task.Query && "oracle task needs a benchmark");
  const bench::Benchmark &B = *Task.Query;

  ParseResult Truth = parseTacoProgram(B.GroundTruth);
  assert(Truth.ok() && "benchmark ground truth must parse");

  Rng R(Seed ^ hashName(B.Name));
  double Difficulty = B.computedDifficulty();

  std::vector<std::string> Lines;
  CandidateMutator Mutator(*Truth.Prog, R, Model, Difficulty);
  for (int I = 0; I < Task.NumCandidates; ++I)
    Lines.push_back(Mutator.generate(I));
  // Like the real model, occasionally volunteer an extra guess.
  if (R.chance(0.15))
    Lines.push_back(Mutator.generate(Task.NumCandidates));
  return Lines;
}
