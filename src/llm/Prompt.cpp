//===- llm/Prompt.cpp - Prompt construction -------------------------------===//

#include "llm/Prompt.h"

using namespace stagg;

std::string llm::promptRole() {
  return "You are a scientific assistant that knows a lot about "
         "transpilation";
}

std::string llm::buildPrompt(const std::string &CSource, int NumCandidates) {
  std::string Prompt;
  Prompt += "You are a scientific assistant that knows a lot about "
            "transpilation. Translate the following C code to an expression "
            "in the TACO tensor index notation. The expression must be valid "
            "as input to the taco compiler. Return a list with " +
            std::to_string(NumCandidates) +
            " possible expressions. Return the list and only the list, no "
            "explanations.\n\n";
  Prompt += CSource;
  Prompt += "\n";
  return Prompt;
}
