//===- llm/ResponseParser.h - Parsing LLM responses -------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns raw oracle lines into parsed TACO programs. Mirrors the paper's
/// preprocessing: `:=` is normalized to `=` before parsing (§4.2), list
/// numbering/bullets are stripped, and any line that still fails to parse is
/// discarded ("we parse in as many solutions as the LLM gives us ... and
/// discard any syntactically incorrect solutions").
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_LLM_RESPONSEPARSER_H
#define STAGG_LLM_RESPONSEPARSER_H

#include "taco/Ast.h"

#include <string>
#include <vector>

namespace stagg {
namespace llm {

/// Result of parsing one response batch.
struct ParsedResponses {
  std::vector<taco::Program> Programs;
  int TotalLines = 0;
  int Discarded = 0;
};

/// Normalizes one raw line: strips list numbering ("3. "), bullets, backtick
/// fences, and rewrites `:=` to `=`. Returns the cleaned line.
std::string preprocessResponseLine(const std::string &Line);

/// Parses all lines, discarding invalid candidates.
ParsedResponses parseResponses(const std::vector<std::string> &Lines);

} // namespace llm
} // namespace stagg

#endif // STAGG_LLM_RESPONSEPARSER_H
