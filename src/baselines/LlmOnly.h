//===- baselines/LlmOnly.h - Direct-LLM baseline ----------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "LLM" baseline of the evaluation: the oracle's candidates are taken
/// at face value — each parsed guess is normalized (templatized) and checked
/// for a consistent operand binding directly, with no grammar learning and
/// no enumerative search. Succeeds only when one of the raw guesses is
/// structurally correct.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_BASELINES_LLMONLY_H
#define STAGG_BASELINES_LLMONLY_H

#include "benchsuite/Benchmark.h"
#include "core/Stagg.h"
#include "llm/Oracle.h"

namespace stagg {
namespace baselines {

/// Baseline configuration.
struct LlmOnlyConfig {
  int NumCandidates = 10;
  int NumIoExamples = 3;
  uint64_t ExampleSeed = 0xE9A3;
  verify::VerifyOptions Verify;
};

/// Runs the baseline on one benchmark using \p Oracle.
core::LiftResult runLlmOnly(const bench::Benchmark &B,
                            llm::CandidateOracle &Oracle,
                            const LlmOnlyConfig &Config);

} // namespace baselines
} // namespace stagg

#endif // STAGG_BASELINES_LLMONLY_H
