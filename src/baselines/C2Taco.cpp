//===- baselines/C2Taco.cpp - C2TACO-style enumerative lifter -------------===//

#include "baselines/C2Taco.h"

#include "analysis/KernelAnalysis.h"
#include "cfront/Parser.h"
#include "support/Timer.h"
#include "taco/Printer.h"
#include "validate/Validator.h"

#include <algorithm>
#include <set>

using namespace stagg;
using namespace stagg::baselines;
using namespace stagg::taco;

namespace {

/// One enumerable leaf: a concrete access or a literal constant.
struct Leaf {
  std::string Name; ///< Argument name; empty for constants.
  std::vector<std::string> Indices;
  int64_t Constant = 0;
  bool IsConst = false;

  ExprPtr toExpr() const {
    if (IsConst)
      return std::make_unique<ConstantExpr>(Constant);
    return std::make_unique<AccessExpr>(Name, Indices);
  }
};

/// All index tuples of length \p Rank over \p Vars.
void appendTuples(const std::string &Name, int Rank,
                  const std::vector<std::string> &Vars, bool AllowRepeats,
                  std::vector<Leaf> &Out) {
  if (Rank == 0) {
    Leaf L;
    L.Name = Name;
    Out.push_back(std::move(L));
    return;
  }
  std::vector<int> Tuple(static_cast<size_t>(Rank), 0);
  const int NumVars = static_cast<int>(Vars.size());
  if (NumVars == 0)
    return;
  for (;;) {
    bool HasRepeat = false;
    for (size_t A = 0; A < Tuple.size() && !HasRepeat; ++A)
      for (size_t C = A + 1; C < Tuple.size() && !HasRepeat; ++C)
        HasRepeat = Tuple[A] == Tuple[C];
    if (AllowRepeats || !HasRepeat) {
      Leaf L;
      L.Name = Name;
      for (int V : Tuple)
        L.Indices.push_back(Vars[static_cast<size_t>(V)]);
      Out.push_back(std::move(L));
    }
    size_t Axis = Tuple.size();
    for (;;) {
      if (Axis == 0)
        return;
      --Axis;
      if (++Tuple[Axis] < NumVars)
        break;
      Tuple[Axis] = 0;
      if (Axis == 0)
        return;
    }
  }
}

} // namespace

core::LiftResult baselines::runC2Taco(const bench::Benchmark &B,
                                      const C2TacoConfig &Config) {
  core::LiftResult Result;
  Timer Clock;

  cfront::CParseResult Parsed = cfront::parseCFunction(B.CSource);
  if (!Parsed.ok()) {
    Result.FailReason = "C parse error: " + Parsed.Error;
    return Result;
  }
  const cfront::CFunction &Fn = *Parsed.Function;
  analysis::KernelSummary Summary = analysis::analyzeKernel(Fn);

  Rng ExampleRng(Config.ExampleSeed);
  std::vector<validate::IoExample> Examples =
      validate::generateExamples(B, Fn, Config.NumIoExamples, ExampleRng);
  if (Examples.empty()) {
    Result.FailReason = "failed to execute the legacy kernel";
    return Result;
  }

  const bench::ArgSpec *OutArg = B.outputArg();
  if (!OutArg) {
    Result.FailReason = "no output argument";
    return Result;
  }

  // Index pool and per-argument ranks.
  static const char *Canonical[] = {"i", "j", "k", "l"};
  int LhsRank = Config.UseHeuristics ? Summary.LhsDim : OutArg->rank();
  int MaxRank = LhsRank;
  for (const bench::ArgSpec &Arg : B.Args)
    MaxRank = std::max(MaxRank, Arg.rank());

  // Heuristic pool: just enough variables for the highest-rank contraction
  // (one spare summation variable). Unpruned pool: all four.
  int PoolSize = Config.UseHeuristics ? std::min(4, MaxRank + 1) : 4;
  PoolSize = std::max(PoolSize, LhsRank);
  std::vector<std::string> Vars(Canonical, Canonical + PoolSize);

  // LHS access: the output argument with canonical indices.
  std::vector<std::string> LhsIndices(Vars.begin(), Vars.begin() + LhsRank);
  AccessExpr Lhs(OutArg->Name, LhsIndices);

  // Leaves: every non-output argument at its declared rank. The dimension
  // heuristic restricts index tuples to distinct variables and adds diagonal
  // accesses (e.g. A(i,i)) only when the analysis sees fewer distinct loop
  // variables in an argument's subscript than its rank (A[i*N+i]).
  std::vector<Leaf> Leaves;
  for (const bench::ArgSpec &Arg : B.Args) {
    if (Arg.IsOutput)
      continue;
    appendTuples(Arg.Name, Arg.rank(), Vars,
                 /*AllowRepeats=*/!Config.UseHeuristics, Leaves);
    if (Config.UseHeuristics && Arg.rank() >= 2) {
      bool Diagonal = false;
      for (const analysis::AccessRecord &Rec : Summary.Accesses)
        if (Rec.Param == Arg.Name)
          Diagonal |= Rec.subscriptArity(Summary.LoopSymbols) < Arg.rank();
      if (Diagonal)
        for (const std::string &V : Vars) {
          Leaf L;
          L.Name = Arg.Name;
          L.Indices.assign(static_cast<size_t>(Arg.rank()), V);
          Leaves.push_back(std::move(L));
        }
    }
  }
  {
    std::set<int64_t> Pool(Summary.Constants.begin(), Summary.Constants.end());
    if (!Config.UseHeuristics) {
      Pool.insert(0);
      Pool.insert(1);
      Pool.insert(2);
    }
    for (int64_t C : Pool) {
      Leaf L;
      L.IsConst = true;
      L.Constant = C;
      Leaves.push_back(std::move(L));
    }
  }
  if (Leaves.empty()) {
    Result.FailReason = "no enumerable leaves";
    return Result;
  }

  // Length heuristic: at most one leaf per referenced data argument or
  // constant (plus one slack).
  int MaxLen = Config.MaxLeaves;
  if (Config.UseHeuristics) {
    int DataRefs = 0;
    for (const bench::ArgSpec &Arg : B.Args)
      if (!Arg.IsOutput && Arg.K != bench::ArgSpec::Kind::SizeScalar)
        ++DataRefs;
    DataRefs += static_cast<int>(Summary.Constants.size());
    MaxLen = std::min(MaxLen, std::max(1, DataRefs + 1));
  }

  static const BinOpKind AllOps[] = {BinOpKind::Add, BinOpKind::Sub,
                                     BinOpKind::Mul, BinOpKind::Div};

  // Size-ordered enumeration of left-associated chains.
  for (int Len = 1; Len <= MaxLen; ++Len) {
    std::vector<size_t> LeafPick(static_cast<size_t>(Len), 0);
    std::vector<size_t> OpPick(static_cast<size_t>(Len) - 1, 0);
    for (;;) {
      if (Clock.seconds() > Config.TimeoutSeconds) {
        Result.FailReason = "timeout";
        Result.Seconds = Clock.seconds();
        return Result;
      }
      if (Result.Attempts >= (Config.UseHeuristics
                                  ? Config.MaxTested
                                  : Config.MaxTestedNoHeuristics)) {
        Result.FailReason = "budget exhausted";
        Result.Seconds = Clock.seconds();
        return Result;
      }

      // Build and test the candidate (a flat expression string folded under
      // standard precedence, as C2TACO's enumerator emits).
      std::vector<ExprPtr> ChainLeaves;
      std::vector<BinOpKind> ChainOps;
      for (int I = 0; I < Len; ++I) {
        ChainLeaves.push_back(Leaves[LeafPick[static_cast<size_t>(I)]].toExpr());
        if (I > 0)
          ChainOps.push_back(AllOps[OpPick[static_cast<size_t>(I) - 1]]);
      }
      Program Candidate(Lhs,
                        foldPrecedenceChain(std::move(ChainLeaves), ChainOps));
      ++Result.Attempts;
      ++Result.Expansions;
      if (validate::runsConsistently(B, Candidate, Examples)) {
        verify::VerifyResult VR =
            verify::verifyEquivalence(B, Fn, Candidate, Config.Verify);
        if (VR.Equivalent) {
          Result.Solved = true;
          Result.Concrete = std::move(Candidate);
          Result.Seconds = Clock.seconds();
          return Result;
        }
      }

      // Advance the (leaves x ops) odometer.
      size_t Axis = LeafPick.size() + OpPick.size();
      bool Wrapped = true;
      while (Axis > 0) {
        --Axis;
        if (Axis < LeafPick.size()) {
          if (++LeafPick[Axis] < Leaves.size()) {
            Wrapped = false;
            break;
          }
          LeafPick[Axis] = 0;
        } else {
          size_t OpAxis = Axis - LeafPick.size();
          if (++OpPick[OpAxis] < 4) {
            Wrapped = false;
            break;
          }
          OpPick[OpAxis] = 0;
        }
      }
      if (Wrapped)
        break;
    }
  }

  Result.FailReason = "search space exhausted";
  Result.Seconds = Clock.seconds();
  return Result;
}
