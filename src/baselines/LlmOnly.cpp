//===- baselines/LlmOnly.cpp - Direct-LLM baseline ------------------------===//

#include "baselines/LlmOnly.h"

#include "analysis/KernelAnalysis.h"
#include "cfront/Parser.h"
#include "grammar/Template.h"
#include "llm/Prompt.h"
#include "llm/ResponseParser.h"
#include "support/Timer.h"
#include "taco/Semantics.h"
#include "validate/Validator.h"

using namespace stagg;
using namespace stagg::baselines;

core::LiftResult baselines::runLlmOnly(const bench::Benchmark &B,
                                       llm::CandidateOracle &Oracle,
                                       const LlmOnlyConfig &Config) {
  core::LiftResult Result;
  Timer Clock;

  cfront::CParseResult Parsed = cfront::parseCFunction(B.CSource);
  if (!Parsed.ok()) {
    Result.FailReason = "C parse error: " + Parsed.Error;
    return Result;
  }
  const cfront::CFunction &Fn = *Parsed.Function;
  analysis::KernelSummary Summary = analysis::analyzeKernel(Fn);

  llm::OracleTask Task;
  Task.Query = &B;
  Task.Prompt = llm::buildPrompt(B.CSource, Config.NumCandidates);
  Task.NumCandidates = Config.NumCandidates;
  llm::ParsedResponses Responses = llm::parseResponses(Oracle.propose(Task));
  Result.CandidatesParsed = static_cast<int>(Responses.Programs.size());
  Result.CandidatesDiscarded = Responses.Discarded;

  Rng ExampleRng(Config.ExampleSeed);
  std::vector<validate::IoExample> Examples =
      validate::generateExamples(B, Fn, Config.NumIoExamples, ExampleRng);
  if (Examples.empty()) {
    Result.FailReason = "failed to execute the legacy kernel";
    return Result;
  }
  validate::Validator V(B, std::move(Examples), Summary.Constants);

  for (const taco::Program &Guess : Responses.Programs) {
    if (!taco::checkWellFormed(Guess).empty())
      continue;
    grammar::Templatized T = grammar::templatize(Guess);
    ++Result.Attempts;
    std::vector<validate::Instantiation> Valid = V.validate(T.Template);
    for (validate::Instantiation &Inst : Valid) {
      verify::VerifyResult VR =
          verify::verifyEquivalence(B, Fn, Inst.Concrete, Config.Verify);
      if (VR.Equivalent) {
        Result.Solved = true;
        Result.Template = std::move(T.Template);
        Result.Concrete = std::move(Inst.Concrete);
        Result.Seconds = Clock.seconds();
        return Result;
      }
    }
  }

  Result.FailReason = "no raw LLM guess is correct";
  Result.Seconds = Clock.seconds();
  return Result;
}
