//===- baselines/Tenspiler.h - Tenspiler-style sketch lifter ----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of the Tenspiler baseline (Qiu et al., ECOOP 2024):
/// verified lifting against a *fixed library of user-provided templates*
/// (sketches). Each sketch is a TACO template with symbolic operands; the
/// tool tries them in order, searching for a symbol substitution that
/// matches the I/O behaviour, then verifies. The approach is fast and
/// precise on kernels its library anticipates and — the paper's point —
/// cannot solve anything outside it (52 of the 67 real-world queries).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_BASELINES_TENSPILER_H
#define STAGG_BASELINES_TENSPILER_H

#include "benchsuite/Benchmark.h"
#include "core/Stagg.h"

#include <string>
#include <vector>

namespace stagg {
namespace baselines {

/// Baseline configuration.
struct TenspilerConfig {
  double TimeoutSeconds = 5.0;
  int NumIoExamples = 3;
  uint64_t ExampleSeed = 0xE9A3;
  verify::VerifyOptions Verify;
};

/// The built-in sketch library (TACO template strings over symbols
/// a, b, c, ... and Const).
const std::vector<std::string> &tenspilerSketches();

/// Runs the baseline on one benchmark.
core::LiftResult runTenspiler(const bench::Benchmark &B,
                              const TenspilerConfig &Config);

} // namespace baselines
} // namespace stagg

#endif // STAGG_BASELINES_TENSPILER_H
