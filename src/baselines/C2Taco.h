//===- baselines/C2Taco.h - C2TACO-style enumerative lifter -----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of the C2TACO baseline (Magalhães et al., GPCE 2023):
/// bottom-up, size-ordered enumeration of concrete TACO expressions over the
/// kernel's arguments, checked against I/O examples, with hard-wired
/// *analysis-derived* heuristics pruning the space:
///
///  * dimension analysis — each argument is only indexed at its delinearized
///    rank, and the index-variable pool is as small as those ranks allow;
///  * length analysis — expressions use at most as many leaves as the source
///    kernel references distinct arrays/constants.
///
/// With heuristics disabled (`C2TACO.NoHeuristics`), every argument is tried
/// at its spec rank but with the full four-variable index pool, repeated
/// index variables, and a generous length cap — same coverage on small
/// queries, markedly slower, mirroring the paper's Table 1/3 rows.
///
/// Like the original tool, correctness is established by I/O testing; for
/// comparable scoring the harness verifies accepted solutions with the
/// bounded checker afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_BASELINES_C2TACO_H
#define STAGG_BASELINES_C2TACO_H

#include "benchsuite/Benchmark.h"
#include "core/Stagg.h"

namespace stagg {
namespace baselines {

/// Baseline configuration.
struct C2TacoConfig {
  bool UseHeuristics = true;
  double TimeoutSeconds = 5.0;

  /// I/O-tested candidates cap, modelling the original tool's fixed
  /// wall-clock budget (each of its tests runs the real TACO compiler, so
  /// the budget is small in candidate count).
  int64_t MaxTested = 20'000;

  /// Budget used when heuristics are disabled. The paper gives both
  /// variants the same wall clock; the unpruned enumerator simply spends
  /// much longer (49s vs 21s average) to reach the same coverage, which a
  /// pure candidate-count budget must reflect with a larger cap.
  int64_t MaxTestedNoHeuristics = 160'000;
  int MaxLeaves = 4;           ///< Hard cap on expression leaves.
  int NumIoExamples = 3;
  uint64_t ExampleSeed = 0xE9A3;
  verify::VerifyOptions Verify;
};

/// Runs the baseline on one benchmark.
core::LiftResult runC2Taco(const bench::Benchmark &B,
                           const C2TacoConfig &Config);

} // namespace baselines
} // namespace stagg

#endif // STAGG_BASELINES_C2TACO_H
