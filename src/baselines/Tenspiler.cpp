//===- baselines/Tenspiler.cpp - Tenspiler-style sketch lifter ------------===//

#include "baselines/Tenspiler.h"

#include "analysis/KernelAnalysis.h"
#include "cfront/Parser.h"
#include "support/Timer.h"
#include "taco/Parser.h"
#include "validate/Validator.h"

using namespace stagg;
using namespace stagg::baselines;

const std::vector<std::string> &baselines::tenspilerSketches() {
  // The library mirrors Tenspiler's published operator set: elementwise
  // map/zip families over vectors and matrices, scalar broadcasts,
  // reductions, and the dense matrix primitives its DSL backends expose.
  static const std::vector<std::string> Sketches = {
      // Scalar-producing reductions.
      "a = b(i)",
      "a = b(i) * c(i)",
      "a = b(i) / c",
      "a = b(i,j)",
      "a = b(i,i)",
      "a = b(i) * c(i) * d(i)",
      // Vector elementwise / broadcast.
      "a(i) = b(i)",
      "a(i) = b",
      "a(i) = Const",
      "a(i) = b * c(i)",
      "a(i) = b(i) / c",
      "a(i) = b(i) + c(i)",
      "a(i) = b(i) - c(i)",
      "a(i) = b(i) * c(i)",
      "a(i) = b(i) / c(i)",
      "a(i) = b(i) + Const",
      "a(i) = b(i) - Const",
      "a(i) = b(i) * Const",
      "a(i) = b(i) / Const",
      "a(i) = b(i) * Const + Const",
      "a(i) = (b(i) - c(i)) / d(i)",
      "a(i) = b * c(i) + d(i)",
      "a(i) = b(i) * c(i) + d(i)",
      "a(i) = b(i) + c(i) + d(i)",
      // Matrix-vector and reductions over rows/columns.
      "a(i) = b(i,j) * c(j)",
      "a(i) = b(j) * c(j,i)",
      "a(i) = b(i,j)",
      "a(i) = b(j,i)",
      "a(i) = b(i,j) * c(j) + d(i)",
      "a(i) = b(i) - c(i,j) * d(j)",
      // Matrix elementwise / broadcast.
      "a(i,j) = b(i,j) + c(i,j)",
      "a(i,j) = b(i,j) - c(i,j)",
      "a(i,j) = b(i,j) * c(i,j)",
      "a(i,j) = b(i,j) * c",
      "a(i,j) = b(i,j) / c",
      "a(i,j) = b(j,i)",
      // Dense matrix/tensor primitives.
      "a(i,j) = b(i) * c(j)",
      "a(i,j) = b(i,k) * c(k,j)",
      "a(i,j) = b(i,j,k) * c(k)",
  };
  return Sketches;
}

core::LiftResult baselines::runTenspiler(const bench::Benchmark &B,
                                         const TenspilerConfig &Config) {
  core::LiftResult Result;
  Timer Clock;

  cfront::CParseResult Parsed = cfront::parseCFunction(B.CSource);
  if (!Parsed.ok()) {
    Result.FailReason = "C parse error: " + Parsed.Error;
    return Result;
  }
  const cfront::CFunction &Fn = *Parsed.Function;
  analysis::KernelSummary Summary = analysis::analyzeKernel(Fn);

  Rng ExampleRng(Config.ExampleSeed);
  std::vector<validate::IoExample> Examples =
      validate::generateExamples(B, Fn, Config.NumIoExamples, ExampleRng);
  if (Examples.empty()) {
    Result.FailReason = "failed to execute the legacy kernel";
    return Result;
  }
  validate::Validator V(B, std::move(Examples), Summary.Constants);

  for (const std::string &Sketch : tenspilerSketches()) {
    if (Clock.seconds() > Config.TimeoutSeconds) {
      Result.FailReason = "timeout";
      Result.Seconds = Clock.seconds();
      return Result;
    }
    taco::ParseResult Template = taco::parseTacoProgram(Sketch);
    assert(Template.ok() && "sketch library must parse");
    ++Result.Attempts;
    std::vector<validate::Instantiation> Valid = V.validate(*Template.Prog);
    for (validate::Instantiation &Inst : Valid) {
      verify::VerifyResult VR =
          verify::verifyEquivalence(B, Fn, Inst.Concrete, Config.Verify);
      if (VR.Equivalent) {
        Result.Solved = true;
        Result.Template = std::move(*Template.Prog);
        Result.Concrete = std::move(Inst.Concrete);
        Result.Seconds = Clock.seconds();
        return Result;
      }
    }
  }

  Result.FailReason = "no library sketch matches";
  Result.Seconds = Clock.seconds();
  return Result;
}
