//===- grammar/DimensionList.h - Predicting tensor dimensions ---*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dimension-list prediction (paper §4.2.3, Def. 4.5). The RHS dimensions
/// come from the LLM: compute each candidate template's dimension list,
/// filter out lists shorter than the maximum length, and keep the most
/// frequent survivor. The LHS entry is then overridden by the exact result
/// of static analysis (analysis::analyzeKernel), which the paper trusts over
/// the LLM because dataflow on the source is precise for the written tensor.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_GRAMMAR_DIMENSIONLIST_H
#define STAGG_GRAMMAR_DIMENSIONLIST_H

#include "grammar/Template.h"

#include <vector>

namespace stagg {
namespace grammar {

/// Predicts the dimension list from the candidate templates per §4.2.3:
/// mode of the maximal-length per-candidate lists, with L[1] replaced by
/// \p StaticLhsDim. Returns an empty list when \p Templates is empty.
std::vector<int>
predictDimensionList(const std::vector<Templatized> &Templates,
                     int StaticLhsDim);

/// The number of distinct index variables used across all candidate
/// templates — the i(P) bound of §4.2.4.
int countUniqueIndexVars(const std::vector<Templatized> &Templates);

} // namespace grammar
} // namespace stagg

#endif // STAGG_GRAMMAR_DIMENSIONLIST_H
