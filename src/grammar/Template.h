//===- grammar/Template.h - Templatizing candidate solutions ----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Template extraction (paper §4.2.1). A candidate TACO program is
/// standardized in three steps:
///
///  * **Tensor templatization** — tensor names become symbolic variables
///    `a, b, c, ...` assigned alphabetically by first appearance (LHS first).
///  * **Index standardization** — index variables are renamed onto the
///    canonical set `i, j, k, l` in order of first appearance.
///  * **Constant templatization** — literal constants become the symbolic
///    constant `Const`.
///
/// Two syntactically different LLM guesses that share structure (e.g.
/// `t(f) = m1(i,f) * m2(f)` and `Target(i) := Mat1(f,i) * Mat2(i)`) map to
/// the same template, which is what lets the grammar learner pool their
/// evidence.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_GRAMMAR_TEMPLATE_H
#define STAGG_GRAMMAR_TEMPLATE_H

#include "taco/Ast.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace grammar {

/// A templatized candidate plus the bookkeeping of what was renamed.
struct Templatized {
  taco::Program Template;

  /// Original tensor name -> symbolic variable (`a`, `b`, ...).
  std::map<std::string, std::string> TensorRenaming;

  /// Original index variable -> canonical index (`i`, `j`, ...).
  std::map<std::string, std::string> IndexRenaming;

  /// Literal constants that were replaced by `Const`, in appearance order.
  std::vector<int64_t> ReplacedConstants;

  /// Canonical printed form, used as a deduplication key.
  std::string Key;
};

/// The canonical symbolic tensor variable for position \p Position
/// (1-based: 1 -> "a", 2 -> "b", ...).
std::string tensorSymbolForPosition(int Position);

/// The canonical index variable for position \p Position
/// (0-based: 0 -> "i", 1 -> "j", 2 -> "k", 3 -> "l").
std::string indexVarForPosition(int Position);

/// Templatizes \p P per §4.2.1.
Templatized templatize(const taco::Program &P);

/// Deduplicates templates by canonical key, preserving first-seen order.
std::vector<Templatized>
dedupTemplates(const std::vector<Templatized> &Templates);

} // namespace grammar
} // namespace stagg

#endif // STAGG_GRAMMAR_TEMPLATE_H
