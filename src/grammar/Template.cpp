//===- grammar/Template.cpp - Templatizing candidate solutions ------------===//

#include "grammar/Template.h"

#include "taco/Printer.h"

#include <set>

using namespace stagg;
using namespace stagg::grammar;
using namespace stagg::taco;

std::string grammar::tensorSymbolForPosition(int Position) {
  assert(Position >= 1 && Position <= 26 && "tensor position out of range");
  return std::string(1, static_cast<char>('a' + Position - 1));
}

std::string grammar::indexVarForPosition(int Position) {
  static const char *Canonical[] = {"i", "j", "k", "l", "m", "n"};
  assert(Position >= 0 &&
         Position < static_cast<int>(std::size(Canonical)) &&
         "index position out of range");
  return Canonical[Position];
}

namespace {

/// Rewrites an expression bottom-up, renaming tensors/indices and replacing
/// constants.
class TemplatizeRewriter {
public:
  explicit TemplatizeRewriter(Templatized &Out) : Out(Out) {}

  std::string renameTensor(const std::string &Name) {
    auto It = Out.TensorRenaming.find(Name);
    if (It != Out.TensorRenaming.end())
      return It->second;
    std::string Symbol =
        tensorSymbolForPosition(static_cast<int>(Out.TensorRenaming.size()) + 1);
    Out.TensorRenaming.emplace(Name, Symbol);
    return Symbol;
  }

  std::string renameIndex(const std::string &Var) {
    auto It = Out.IndexRenaming.find(Var);
    if (It != Out.IndexRenaming.end())
      return It->second;
    std::string Canonical =
        indexVarForPosition(static_cast<int>(Out.IndexRenaming.size()));
    Out.IndexRenaming.emplace(Var, Canonical);
    return Canonical;
  }

  AccessExpr rewriteAccess(const AccessExpr &A) {
    std::vector<std::string> Indices;
    Indices.reserve(A.order());
    for (const std::string &Var : A.indices())
      Indices.push_back(renameIndex(Var));
    return AccessExpr(renameTensor(A.name()), std::move(Indices));
  }

  ExprPtr rewrite(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access:
      return std::make_unique<AccessExpr>(
          rewriteAccess(exprCast<AccessExpr>(E)));
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      if (!C.isSymbolic())
        Out.ReplacedConstants.push_back(C.value());
      return ConstantExpr::symbolic();
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      ExprPtr Lhs = rewrite(B.lhs());
      ExprPtr Rhs = rewrite(B.rhs());
      return std::make_unique<BinaryExpr>(B.op(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Expr::Kind::Negate:
      return std::make_unique<NegateExpr>(
          rewrite(exprCast<NegateExpr>(E).operand()));
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      ExprPtr Lhs = rewrite(M.lhs());
      ExprPtr Rhs = rewrite(M.rhs());
      return std::make_unique<MaxExpr>(std::move(Lhs), std::move(Rhs));
    }
    }
    return nullptr;
  }

private:
  Templatized &Out;
};

} // namespace

Templatized grammar::templatize(const Program &P) {
  Templatized Out;
  TemplatizeRewriter Rewriter(Out);
  AccessExpr Lhs = Rewriter.rewriteAccess(P.Lhs);
  ExprPtr Rhs = P.Rhs ? Rewriter.rewrite(*P.Rhs) : nullptr;
  Out.Template = Program(std::move(Lhs), std::move(Rhs));
  Out.Key = printProgram(Out.Template);
  return Out;
}

std::vector<Templatized>
grammar::dedupTemplates(const std::vector<Templatized> &Templates) {
  std::vector<Templatized> Unique;
  std::set<std::string> Seen;
  for (const Templatized &T : Templates)
    if (Seen.insert(T.Key).second)
      Unique.push_back(T);
  return Unique;
}
