//===- grammar/Pcfg.cpp - Probabilistic template grammars -----------------===//

#include "grammar/Pcfg.h"

#include "grammar/DimensionList.h"
#include "support/StringUtils.h"
#include "taco/Printer.h"

#include <cmath>
#include <functional>
#include <set>

using namespace stagg;
using namespace stagg::grammar;
using namespace stagg::taco;

std::string TensorRule::spelling() const {
  if (IsConst)
    return "Const";
  if (Indices.empty())
    return Symbol;
  return Symbol + "(" + joinStrings(Indices, ",") + ")";
}

std::vector<const TensorRule *>
TemplateGrammar::rulesForPosition(int Position) const {
  std::vector<const TensorRule *> Rules;
  if (Position < 2 || Position > static_cast<int>(DimList.size())) {
    // Out-of-range slot (FullGrammar mode): every rule is allowed.
    for (const TensorRule &R : TensorRules)
      Rules.push_back(&R);
    return Rules;
  }
  int WantedDim = DimList[Position - 1];
  for (const TensorRule &R : TensorRules)
    if (R.dim() == WantedDim)
      Rules.push_back(&R);
  return Rules;
}

void TemplateGrammar::normalize(bool Uniform) {
  // Default weight 1 keeps unseen rules reachable with low priority (§4.3).
  auto Smooth = [](double W) { return W > 0 ? W : 1.0; };

  // The TENSOR nonterminal covers the non-constant rules; CONSTANT has the
  // single production `Const` with probability 1.
  double TensorTotal = 0;
  for (TensorRule &R : TensorRules)
    if (!R.IsConst)
      TensorTotal += Uniform ? 1.0 : Smooth(R.Weight);
  for (TensorRule &R : TensorRules) {
    if (R.IsConst) {
      R.Prob = 1.0;
      R.Cost = 0.0;
      continue;
    }
    R.Prob = (Uniform ? 1.0 : Smooth(R.Weight)) / TensorTotal;
    R.Cost = -std::log2(R.Prob);
  }

  double E1 = Uniform ? 1.0 : Smooth(WExprTensor);
  double E2 = Uniform ? 1.0 : Smooth(WExprConst);
  double E3 = Uniform ? 1.0 : Smooth(WExprBin);
  double E4 = Uniform ? 1.0 : Smooth(WExprMax);
  if (!HasConstRule)
    E2 = 0;
  if (!HasMaxRule)
    E4 = 0;
  double ETotal = E1 + E2 + E3 + E4;
  PExprTensor = E1 / ETotal;
  PExprConst = E2 / ETotal;
  PExprBin = E3 / ETotal;
  PExprMax = E4 / ETotal;

  // OP rules are *not* smoothed: as in the paper's Fig. 3 (where "-" and
  // "/" carry probability 0), an operator never seen in a candidate is
  // absent from the refined grammar. Degenerate case: no candidate has any
  // operator — fall back to uniform so single-leaf grammars stay usable.
  double OpTotal = 0;
  for (double W : WOp)
    OpTotal += Uniform ? 1.0 : W;
  for (int I = 0; I < 4; ++I)
    POp[I] = OpTotal > 0 ? (Uniform ? 1.0 : WOp[I]) / OpTotal : 0.25;
}

std::string TemplateGrammar::dump() const {
  std::string Out;
  Out += "PROGRAM ::= \"" + printAccess(Lhs) + "\" \"=\" EXPR\n";
  Out += "EXPR ::= TENSOR (" + std::to_string(PExprTensor) + ") | CONSTANT (" +
         std::to_string(PExprConst) + ") | EXPR OP EXPR (" +
         std::to_string(PExprBin) + ")";
  if (HasMaxRule)
    Out += " | max(EXPR, EXPR) (" + std::to_string(PExprMax) + ")";
  Out += "\n";
  Out += "OP ::=";
  static const BinOpKind Ops[] = {BinOpKind::Add, BinOpKind::Sub,
                                  BinOpKind::Mul, BinOpKind::Div};
  for (BinOpKind Op : Ops)
    Out += std::string(" \"") + binOpSpelling(Op) + "\" (" +
           std::to_string(POp[static_cast<int>(Op)]) + ")";
  Out += "\nTENSOR ::=";
  for (const TensorRule &R : TensorRules)
    Out += " \"" + R.spelling() + "\" (" + std::to_string(R.Prob) + ")";
  Out += "\nDimList = [";
  for (size_t I = 0; I < DimList.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(DimList[I]);
  Out += "], i(P) = " + std::to_string(NumIndexVars) + "\n";
  return Out;
}

namespace {

/// True if any candidate accesses some tensor with a repeated index variable
/// (e.g. `b(i,i)`); §4.2.4 removes repeated-index productions otherwise.
bool candidatesUseRepeatedIndices(const std::vector<Templatized> &Templates) {
  bool Found = false;
  std::function<void(const Expr &)> Visit = [&](const Expr &E) {
    if (Found)
      return;
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      std::set<std::string> Unique(A.indices().begin(), A.indices().end());
      if (Unique.size() != A.indices().size())
        Found = true;
      return;
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      Visit(B.lhs());
      Visit(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      Visit(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      Visit(M.lhs());
      Visit(M.rhs());
      return;
    }
    case Expr::Kind::Constant:
      return;
    }
  };
  for (const Templatized &T : Templates)
    if (T.Template.Rhs)
      Visit(*T.Template.Rhs);
  return Found;
}

/// Emits every index tuple of length \p Dim over the first \p NumVars
/// canonical variables, excluding repeated-variable tuples unless
/// \p AllowRepeats.
void appendIndexTuples(const std::string &Symbol, int Dim, int NumVars,
                       bool AllowRepeats, std::vector<TensorRule> &Rules) {
  std::vector<int> Tuple(static_cast<size_t>(Dim), 0);
  for (;;) {
    bool HasRepeat = false;
    for (size_t A = 0; A < Tuple.size() && !HasRepeat; ++A)
      for (size_t B = A + 1; B < Tuple.size() && !HasRepeat; ++B)
        HasRepeat = Tuple[A] == Tuple[B];
    if (!HasRepeat || AllowRepeats) {
      TensorRule R;
      R.Symbol = Symbol;
      for (int Var : Tuple)
        R.Indices.push_back(indexVarForPosition(Var));
      Rules.push_back(std::move(R));
    }
    // Advance odometer.
    size_t Axis = Tuple.size();
    for (;;) {
      if (Axis == 0)
        return;
      --Axis;
      if (++Tuple[Axis] < NumVars)
        break;
      Tuple[Axis] = 0;
      if (Axis == 0)
        return;
    }
  }
}

/// Finds the rule matching a concrete access, if present.
TensorRule *findRule(std::vector<TensorRule> &Rules, const std::string &Symbol,
                     const std::vector<std::string> &Indices) {
  for (TensorRule &R : Rules)
    if (!R.IsConst && R.Symbol == Symbol && R.Indices == Indices)
      return &R;
  return nullptr;
}

TensorRule *findConstRule(std::vector<TensorRule> &Rules) {
  for (TensorRule &R : Rules)
    if (R.IsConst)
      return &R;
  return nullptr;
}

/// Accumulates leftmost-derivation rule counts for one template RHS.
void countDerivation(const Expr &E, TemplateGrammar &G) {
  switch (E.kind()) {
  case Expr::Kind::Access: {
    const auto &A = exprCast<AccessExpr>(E);
    G.WExprTensor += 1;
    if (TensorRule *R = findRule(G.TensorRules, A.name(), A.indices()))
      R->Weight += 1;
    return;
  }
  case Expr::Kind::Constant:
    G.WExprConst += 1;
    if (TensorRule *R = findConstRule(G.TensorRules))
      R->Weight += 1;
    return;
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    G.WExprBin += 1;
    G.WOp[static_cast<int>(B.op())] += 1;
    countDerivation(B.lhs(), G);
    countDerivation(B.rhs(), G);
    return;
  }
  case Expr::Kind::Negate:
    // Negation is outside the template skeleton; count its operand so the
    // leaf evidence is not lost.
    countDerivation(exprCast<NegateExpr>(E).operand(), G);
    return;
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    G.WExprMax += 1;
    countDerivation(M.lhs(), G);
    countDerivation(M.rhs(), G);
    return;
  }
  }
}

} // namespace

TemplateGrammar
grammar::buildTemplateGrammar(const std::vector<Templatized> &Templates,
                              const std::vector<int> &DimList,
                              int StaticLhsDim, const GrammarOptions &Options) {
  TemplateGrammar G;
  G.DimList = DimList;

  // i(P), floored at what the LHS arity requires and capped at the four
  // canonical variables of the TACO grammar.
  int UniqueVars = countUniqueIndexVars(Templates);
  G.NumIndexVars = std::max(UniqueVars, StaticLhsDim);
  G.NumIndexVars = std::max(1, std::min(G.NumIndexVars, 4));

  // TENSOR1: the LHS symbol with the statically predicted arity.
  std::vector<std::string> LhsIndices;
  for (int I = 0; I < StaticLhsDim; ++I)
    LhsIndices.push_back(indexVarForPosition(I));
  G.Lhs = AccessExpr("a", std::move(LhsIndices));

  bool AllowRepeats = candidatesUseRepeatedIndices(Templates);

  G.PositionalSymbols = !Options.FullGrammar;
  if (Options.FullGrammar) {
    // Full TACO grammar: every tensor symbol at every dimension.
    for (int Position = 2; Position < 2 + Options.FullGrammarTensors;
         ++Position) {
      std::string Symbol = tensorSymbolForPosition(Position);
      for (int Dim = 0; Dim <= Options.FullGrammarMaxDim; ++Dim) {
        if (Dim == 0) {
          TensorRule Scalar;
          Scalar.Symbol = Symbol;
          G.TensorRules.push_back(std::move(Scalar));
          continue;
        }
        appendIndexTuples(Symbol, Dim, /*NumVars=*/4, AllowRepeats,
                          G.TensorRules);
      }
    }
    G.HasConstRule = true;
  } else {
    // Refined grammar (§4.2.4): one symbol per dimension-list position.
    for (size_t Position = 2; Position <= DimList.size(); ++Position) {
      std::string Symbol = tensorSymbolForPosition(static_cast<int>(Position));
      int Dim = DimList[Position - 1];
      if (Dim == 0) {
        TensorRule Scalar;
        Scalar.Symbol = Symbol;
        G.TensorRules.push_back(std::move(Scalar));
        G.HasConstRule = true;
        continue;
      }
      appendIndexTuples(Symbol, Dim, G.NumIndexVars, AllowRepeats,
                        G.TensorRules);
    }
    // A constant in any candidate also justifies the constant production.
    for (const Templatized &T : Templates)
      if (!T.ReplacedConstants.empty() ||
          T.Key.find("Const") != std::string::npos)
        G.HasConstRule = true;
  }

  if (G.HasConstRule) {
    TensorRule Const;
    Const.Symbol = "Const";
    Const.IsConst = true;
    G.TensorRules.push_back(std::move(Const));
  }

  // Weight learning (§4.3): count rule uses over all candidate derivations.
  for (const Templatized &T : Templates)
    if (T.Template.Rhs)
      countDerivation(*T.Template.Rhs, G);

  // The max production exists only on candidate evidence (like operators,
  // which carry zero probability when unseen): max-free queries keep the
  // exact pre-max grammar, searches, and enumeration order.
  G.HasMaxRule = G.WExprMax > 0;

  // "Operations defined in the grammar" (penalties a5/b2): operators with
  // real evidence. A single occurrence among ten guesses is mistranslation
  // noise and would otherwise force every solution to use spurious
  // operators; require at least two uses carrying >= 20% of the operator
  // evidence, mirroring how near-zero-probability rules are de-facto absent
  // from the paper's learned pCFG (Fig. 3 prints them as 0).
  static const BinOpKind AllOps[] = {BinOpKind::Add, BinOpKind::Sub,
                                     BinOpKind::Mul, BinOpKind::Div};
  double TotalOpWeight = 0;
  for (double W : G.WOp)
    TotalOpWeight += W;
  for (BinOpKind Op : AllOps) {
    double W = G.WOp[static_cast<int>(Op)];
    if (W >= 2 && W >= 0.2 * TotalOpWeight)
      G.LearnedOps.push_back(Op);
  }

  G.normalize(Options.EqualProbability);
  return G;
}
