//===- grammar/DimensionList.cpp - Predicting tensor dimensions -----------===//

#include "grammar/DimensionList.h"

#include "taco/Semantics.h"

#include <algorithm>
#include <map>
#include <set>

using namespace stagg;
using namespace stagg::grammar;

std::vector<int>
grammar::predictDimensionList(const std::vector<Templatized> &Templates,
                              int StaticLhsDim) {
  if (Templates.empty())
    return {};

  // RHS dimension list of every candidate. The vote deliberately excludes
  // the LHS entry: static analysis overrides it anyway, so a guess whose
  // only mistake is the output rank still contributes its (correct) operand
  // ranks to the vote.
  std::vector<std::vector<int>> Lists;
  for (const Templatized &T : Templates) {
    std::vector<int> Full = taco::dimensionList(T.Template);
    Lists.emplace_back(Full.begin() + 1, Full.end());
  }

  // Length filter. The paper keeps maximal-length lists (LLMs truncate
  // guesses far more often than they pad them); with occurrence-counted
  // lists a single padded guess would dominate that filter, so we keep the
  // most *common* length instead — same intent, robust to both error
  // directions.
  std::map<size_t, int> LengthVotes;
  for (const std::vector<int> &L : Lists)
    ++LengthVotes[L.size()];
  size_t KeptLength = 0;
  int KeptVotes = -1;
  for (const auto &[Length, N] : LengthVotes)
    if (N > KeptVotes || (N == KeptVotes && Length > KeptLength)) {
      KeptVotes = N;
      KeptLength = Length;
    }

  // Mode among the kept lists (first-seen wins ties).
  std::map<std::vector<int>, int> Votes;
  std::vector<std::vector<int>> Order;
  for (const std::vector<int> &L : Lists) {
    if (L.size() != KeptLength)
      continue;
    if (++Votes[L] == 1)
      Order.push_back(L);
  }
  std::vector<int> BestRhs;
  int BestVotes = -1;
  for (const std::vector<int> &L : Order) {
    if (Votes[L] > BestVotes) {
      BestVotes = Votes[L];
      BestRhs = L;
    }
  }

  // Prepend the statically analyzed LHS entry (the paper trusts dataflow
  // for the written tensor).
  std::vector<int> Best;
  Best.push_back(StaticLhsDim);
  Best.insert(Best.end(), BestRhs.begin(), BestRhs.end());
  return Best;
}

int grammar::countUniqueIndexVars(const std::vector<Templatized> &Templates) {
  std::set<std::string> Vars;
  for (const Templatized &T : Templates)
    for (const std::string &V : taco::indexVariables(T.Template))
      Vars.insert(V);
  return static_cast<int>(Vars.size());
}
