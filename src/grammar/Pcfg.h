//===- grammar/Pcfg.h - Probabilistic template grammars ---------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probabilistic context-free grammar of TACO templates (paper §4.2.2 –
/// §4.3). The grammar has the fixed skeleton
///
///   PROGRAM ::= TENSOR1 "=" EXPR
///   EXPR    ::= TENSOR | CONSTANT | EXPR OP EXPR
///   OP      ::= "+" | "-" | "*" | "/"
///   TENSOR  ::= <one concrete production per (symbol, index tuple)>
///
/// and is *refined* by the predicted dimension list: TENSOR1 is pinned to
/// the LHS symbol `a` indexed by the statically predicted arity, and the
/// TENSOR productions enumerate, for every RHS position of the dimension
/// list, every way of indexing that symbol with the available index
/// variables (§4.2.4). Rule weights count occurrences in the leftmost
/// derivations of the candidate templates; unseen rules get a default weight
/// of 1 so they stay reachable with lower priority (§4.3).
///
/// The same structure carries the ablation configurations of the evaluation:
/// `FullGrammar` (no dimension refinement), `LLMGrammar` (full grammar with
/// learned probabilities), and `EqualProbability` (refined grammar, uniform
/// probabilities).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_GRAMMAR_PCFG_H
#define STAGG_GRAMMAR_PCFG_H

#include "grammar/Template.h"
#include "taco/Ast.h"

#include <string>
#include <vector>

namespace stagg {
namespace grammar {

/// One concrete TENSOR production, e.g. `TENSOR ::= "b(i,j)"`.
struct TensorRule {
  /// Symbolic tensor variable (`b`, `c`, ...) or "Const".
  std::string Symbol;
  std::vector<std::string> Indices;
  bool IsConst = false;

  /// Learned weight and normalized probability / additive cost.
  double Weight = 0;
  double Prob = 0;
  double Cost = 0;

  int dim() const { return IsConst ? 0 : static_cast<int>(Indices.size()); }

  /// Printable form ("b(i,j)", "c", "Const").
  std::string spelling() const;
};

/// The grammar of templates driving both searches.
/// Thread-safety: a built grammar is immutable — every const method is a
/// pure read over the stored rules, with no lazy caches or mutable
/// members. The parallel frontier (search/Frontier.h) relies on this to
/// share one TemplateGrammar across all search workers without locks;
/// keep any future memoization out of the const API or give it its own
/// synchronization.
struct TemplateGrammar {
  /// Fixed LHS production TENSOR1 (the symbol `a` with canonical indices).
  taco::AccessExpr Lhs{"a", {}};

  /// Predicted dimension list L (L[0] = LHS entry). May be empty when no
  /// candidate parsed, in which case the grammar is unusable.
  std::vector<int> DimList;

  /// i(P): number of index variables available to productions.
  int NumIndexVars = 0;

  /// All TENSOR productions (shared nonterminal, Fig. 6 style).
  std::vector<TensorRule> TensorRules;

  /// EXPR production weights/probabilities. The max production only exists
  /// when some candidate used `max(...)` (HasMaxRule); otherwise its weight
  /// and probability stay exactly zero, so grammars learned from max-free
  /// candidate sets are bit-identical to the pre-max implementation.
  double WExprTensor = 0, WExprConst = 0, WExprBin = 0, WExprMax = 0;
  double PExprTensor = 0, PExprConst = 0, PExprBin = 0, PExprMax = 0;

  /// OP production weights/probabilities, indexed by taco::BinOpKind.
  double WOp[4] = {0, 0, 0, 0};
  double POp[4] = {0, 0, 0, 0};

  /// Operators with positive *learned* evidence; used by penalties a5 / b2
  /// ("the operations defined in the grammar").
  std::vector<taco::BinOpKind> LearnedOps;

  /// True if the grammar offers a constant production (a dimension-list
  /// entry of 0 or a candidate containing a constant).
  bool HasConstRule = false;

  /// True if the grammar offers the `max(EXPR, EXPR)` production: some
  /// candidate used max, the evidence rule that keeps max-free queries
  /// bit-identical to the pre-max grammar.
  bool HasMaxRule = false;

  /// True when tensor symbols are minted per dimension-list position (the
  /// refined grammar), so symbols are only interchangeable *within* a
  /// dimension class; false for the full grammar, where every symbol offers
  /// every dimension.
  bool PositionalSymbols = true;

  /// Rules usable for the BU slot at RHS position \p Position (2-based index
  /// into DimList): the rules whose dimension matches L[Position], grouped
  /// Fig. 7 style.
  std::vector<const TensorRule *> rulesForPosition(int Position) const;

  /// Normalizes weights into probabilities and additive costs. \p Uniform
  /// implements the EqualProbability ablation.
  void normalize(bool Uniform);

  /// Human-readable dump for diagnostics and the examples.
  std::string dump() const;
};

/// Options controlling grammar construction (evaluation ablations).
struct GrammarOptions {
  /// Use the full TACO grammar instead of the dimension-refined one
  /// (FullGrammar / LLMGrammar ablations).
  bool FullGrammar = false;

  /// Replace learned probabilities with uniform ones (EqualProbability and
  /// FullGrammar ablations).
  bool EqualProbability = false;

  /// Maximum tensors and dimension used by the full grammar.
  int FullGrammarTensors = 4;
  int FullGrammarMaxDim = 3;
};

/// Builds the grammar of templates from the deduplicated candidate
/// \p Templates, the predicted \p DimList, and the static LHS arity. Weight
/// learning per §4.3.
TemplateGrammar buildTemplateGrammar(const std::vector<Templatized> &Templates,
                                     const std::vector<int> &DimList,
                                     int StaticLhsDim,
                                     const GrammarOptions &Options);

} // namespace grammar
} // namespace stagg

#endif // STAGG_GRAMMAR_PCFG_H
