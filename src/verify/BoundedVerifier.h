//===- verify/BoundedVerifier.h - Bounded equivalence checking --*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded equivalence checking between the legacy C kernel and a candidate
/// TACO program, standing in for the paper's CBMC pipeline (§7). Like the
/// paper we work over exact *rational* datatypes rather than floats. The
/// bound is over shapes and a structured input family:
///
///  * every size-parameter assignment up to a per-dimension bound,
///  * the all-ones input,
///  * one-hot bases swept jointly through pairs of operand tensors (which
///    pins down multilinear behaviour the way symbolic case analysis would),
///  * deterministic pseudo-random rational inputs (including negatives and
///    non-integers).
///
/// On disagreement a readable counterexample is produced and the pipeline
/// returns to the validator for the next substitution, exactly as in Fig. 1.
///
/// Two hot-path optimizations keep the Fig. 1 loop cheap without changing
/// verdicts:
///
///  * The C kernel's outputs are *candidate-independent*: for a fixed
///    (shape, input) the reference interpretation always produces the same
///    result. A ReferenceCache passed across verifyEquivalence calls (the
///    validator-fallback loop re-verifies one candidate after another
///    against the same kernel) memoizes them keyed on the serialized
///    shape + input, so only the first candidate pays for interpretation.
///  * The quadratic joint one-hot sweep over a pair of *distinct* operands
///    only distinguishes candidates with a multiplicative interaction
///    between those operands; for pairs the candidate never multiplies
///    together the sweep is reduced to its diagonal (the linear one-hot
///    probes). VerifyOptions::OneHotOnlyMultiplied restores the exhaustive
///    sweep when disabled; tests/PerfEquivalenceTest.cpp checks both paths
///    agree on the registry suite.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VERIFY_BOUNDEDVERIFIER_H
#define STAGG_VERIFY_BOUNDEDVERIFIER_H

#include "benchsuite/Benchmark.h"
#include "cfront/Ast.h"
#include "support/Rational.h"
#include "taco/Ast.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace stagg {
namespace verify {

/// Verifier configuration.
struct VerifyOptions {
  /// Inclusive upper bound for each size parameter (lower bound is 1).
  /// Two suffices to expose rank and transposition errors because mixed
  /// shapes like (1,2)/(2,1) are included; tests also exercise 3.
  int64_t MaxSize = 2;

  /// Random rational trials per shape.
  int RandomTrials = 8;

  /// Cap on one-hot combinations per shape.
  int MaxOneHot = 512;

  /// Restrict the joint one-hot sweep of an operand pair to its diagonal
  /// when the candidate never multiplies (or divides) the two operands
  /// together; the cross terms only probe bilinear coefficients the
  /// candidate does not have. Disable for the exhaustive sweep.
  bool OneHotOnlyMultiplied = true;

  uint64_t Seed = 0x57466; // "STAGG"-ish; any fixed value keeps runs stable.

  /// Evaluate the candidate through the bytecode VM (vm::Interpreter over a
  /// once-compiled vm::Code) instead of the tree-walking evaluator. Verdicts,
  /// TestsRun, and counterexamples are bit-identical either way; the VM just
  /// removes the per-test tree interpretation (and, for statement lists, the
  /// per-test structure re-compilation). `--no-vm` disables it for A/B runs.
  bool UseVm = true;

  /// Run vm::optimize over the compiled candidate (with constants frozen —
  /// a concrete candidate's literals never change during a sweep). Verdicts
  /// stay bit-identical; `--no-vm-opt` disables it for A/B runs. Ignored
  /// when UseVm is false.
  bool UseVmOpt = true;

  /// Skip the reference interpreter's per-access bounds checks. Only set
  /// when analysis::Checker proved every access in bounds for all sizes
  /// (CheckReport::BoundsProvenSafe) — the static proof licenses dropping
  /// the dynamic probe, shaving interpreter time off every reference run.
  /// Kernel-derived, so excluded from config fingerprints.
  bool TrustStaticBounds = false;
};

/// Outcome of a verification run.
struct VerifyResult {
  bool Equivalent = false;
  int TestsRun = 0;
  std::string Counterexample; ///< Human-readable witness when inequivalent.
};

/// Memoizes the C kernel's reference outputs across verifyEquivalence calls
/// for the *same* kernel and options (Fig. 1's fallback loop re-verifies
/// candidate after candidate). Keys are the serialized (sizes, input
/// pre-state); entries record the interpreter outcome and the output
/// array's post-state. Not thread-safe; use one per lift, like the
/// validator.
class ReferenceCache {
public:
  struct Entry {
    bool Ok = false;
    std::string Error;               ///< Interpreter diagnostic when !Ok.
    std::vector<Rational> Output;    ///< Post-state of the output argument.
  };

  /// nullptr when absent.
  const Entry *find(const std::string &Key) const {
    auto It = Map.find(Key);
    if (It == Map.end()) {
      ++Misses;
      return nullptr;
    }
    ++Hits;
    return &It->second;
  }

  const Entry &insert(std::string Key, Entry E) {
    return Map.emplace(std::move(Key), std::move(E)).first->second;
  }

  int64_t hits() const { return Hits; }
  int64_t misses() const { return Misses; }
  size_t size() const { return Map.size(); }

private:
  std::unordered_map<std::string, Entry> Map;
  mutable int64_t Hits = 0;
  mutable int64_t Misses = 0;
};

/// Checks `forall inputs up to the bound: C(x) == TACO(x)` for the concrete
/// \p Candidate program (argument names, literal constants). When \p Cache
/// is non-null the C kernel's reference outputs are reused across calls;
/// verdicts, counterexamples, and test counts are identical either way
/// (the cache must only ever see one (benchmark, kernel, options) tuple).
VerifyResult verifyEquivalence(const bench::Benchmark &B,
                               const cfront::CFunction &Fn,
                               const taco::Program &Candidate,
                               const VerifyOptions &Options = VerifyOptions(),
                               ReferenceCache *Cache = nullptr);

/// Statement-list form: executes the ordered \p Candidate statements as one
/// program (each statement's result is visible to the statements after it,
/// and the output buffer's zero pre-state to the first) and checks the
/// final output against the C kernel on the same bounded input family.
/// Multi-statement kernels lower to exactly such lists. The one-hot pruning
/// optimization is not applied (the cross-statement data flow defeats the
/// per-expression multiplied-pair analysis), so every pair gets the full
/// joint sweep.
VerifyResult verifyEquivalence(const bench::Benchmark &B,
                               const cfront::CFunction &Fn,
                               const std::vector<taco::Program> &Candidate,
                               const VerifyOptions &Options = VerifyOptions(),
                               ReferenceCache *Cache = nullptr);

} // namespace verify
} // namespace stagg

#endif // STAGG_VERIFY_BOUNDEDVERIFIER_H
