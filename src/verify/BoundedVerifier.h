//===- verify/BoundedVerifier.h - Bounded equivalence checking --*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded equivalence checking between the legacy C kernel and a candidate
/// TACO program, standing in for the paper's CBMC pipeline (§7). Like the
/// paper we work over exact *rational* datatypes rather than floats. The
/// bound is over shapes and a structured input family:
///
///  * every size-parameter assignment up to a per-dimension bound,
///  * the all-ones input,
///  * one-hot bases swept jointly through pairs of operand tensors (which
///    pins down multilinear behaviour the way symbolic case analysis would),
///  * deterministic pseudo-random rational inputs (including negatives and
///    non-integers).
///
/// On disagreement a readable counterexample is produced and the pipeline
/// returns to the validator for the next substitution, exactly as in Fig. 1.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VERIFY_BOUNDEDVERIFIER_H
#define STAGG_VERIFY_BOUNDEDVERIFIER_H

#include "benchsuite/Benchmark.h"
#include "cfront/Ast.h"
#include "taco/Ast.h"

#include <string>

namespace stagg {
namespace verify {

/// Verifier configuration.
struct VerifyOptions {
  /// Inclusive upper bound for each size parameter (lower bound is 1).
  /// Two suffices to expose rank and transposition errors because mixed
  /// shapes like (1,2)/(2,1) are included; tests also exercise 3.
  int64_t MaxSize = 2;

  /// Random rational trials per shape.
  int RandomTrials = 8;

  /// Cap on one-hot combinations per shape.
  int MaxOneHot = 512;

  uint64_t Seed = 0x57466; // "STAGG"-ish; any fixed value keeps runs stable.
};

/// Outcome of a verification run.
struct VerifyResult {
  bool Equivalent = false;
  int TestsRun = 0;
  std::string Counterexample; ///< Human-readable witness when inequivalent.
};

/// Checks `forall inputs up to the bound: C(x) == TACO(x)` for the concrete
/// \p Candidate program (argument names, literal constants).
VerifyResult verifyEquivalence(const bench::Benchmark &B,
                               const cfront::CFunction &Fn,
                               const taco::Program &Candidate,
                               const VerifyOptions &Options = VerifyOptions());

} // namespace verify
} // namespace stagg

#endif // STAGG_VERIFY_BOUNDEDVERIFIER_H
