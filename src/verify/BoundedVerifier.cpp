//===- verify/BoundedVerifier.cpp - Bounded equivalence checking ----------===//

#include "verify/BoundedVerifier.h"

#include "cfront/Interp.h"
#include "support/Rational.h"
#include "support/Rng.h"
#include "taco/Einsum.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"
#include "validate/IoExamples.h"

#include <functional>

using namespace stagg;
using namespace stagg::verify;
using namespace stagg::taco;

namespace {

/// Distinct tensor names read by the candidate's RHS.
std::vector<std::string> rhsTensorNames(const Program &P) {
  std::vector<std::string> Names;
  std::function<void(const Expr &)> Visit = [&](const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const std::string &Name = exprCast<AccessExpr>(E).name();
      if (std::find(Names.begin(), Names.end(), Name) == Names.end())
        Names.push_back(Name);
      return;
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      Visit(B.lhs());
      Visit(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      Visit(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Constant:
      return;
    }
  };
  if (P.Rhs)
    Visit(*P.Rhs);
  return Names;
}

/// One bounded test harness for a fixed shape assignment.
class ShapeChecker {
public:
  ShapeChecker(const bench::Benchmark &B, const cfront::CFunction &Fn,
               const Program &Candidate,
               const std::map<std::string, int64_t> &Sizes)
      : B(B), Fn(Fn), Candidate(Candidate), Sizes(Sizes) {}

  /// Runs both programs on the numeric inputs currently in \p Env; returns
  /// true on agreement, otherwise fills \p Witness.
  bool runOnce(cfront::ExecEnv<Rational> Env, std::string &Witness,
               int &TestsRun) {
    ++TestsRun;
    const bench::ArgSpec *OutArg = B.outputArg();

    // TACO side first (it reads the pre-state).
    std::map<std::string, Tensor<Rational>> Operands;
    for (const std::string &Name : rhsTensorNames(Candidate)) {
      const bench::ArgSpec *Arg = B.findArg(Name);
      if (!Arg) {
        Witness = "candidate reads unknown tensor '" + Name + "'";
        return false;
      }
      if (Arg->K == bench::ArgSpec::Kind::Array) {
        Tensor<Rational> T(validate::resolveShape(*Arg, Sizes));
        T.flat() = Env.Arrays.at(Arg->Name);
        Operands.emplace(Arg->Name, std::move(T));
      } else if (Arg->K == bench::ArgSpec::Kind::SizeScalar) {
        Operands.emplace(Arg->Name,
                         Tensor<Rational>::scalar(Rational(Sizes.at(Name))));
      } else {
        Operands.emplace(Arg->Name,
                         Tensor<Rational>::scalar(Env.NumScalars.at(Name)));
      }
    }
    std::vector<int64_t> OutShape = validate::resolveShape(*OutArg, Sizes);
    EinsumResult<Rational> TacoOut =
        evalEinsum<Rational>(Candidate, Operands, OutShape);

    // C side on a private copy.
    cfront::ExecStatus Status = cfront::runCFunction(Fn, Env);
    if (!Status.Ok) {
      Witness = "legacy kernel failed: " + Status.Error;
      return false;
    }
    if (!TacoOut.Ok) {
      Witness = "candidate failed to evaluate: " + TacoOut.Error;
      return false;
    }

    const std::vector<Rational> &CSide = Env.Arrays.at(OutArg->Name);
    const std::vector<Rational> &TacoSide = TacoOut.Value.flat();
    if (CSide.size() != TacoSide.size()) {
      Witness = "output size mismatch";
      return false;
    }
    for (size_t I = 0; I < CSide.size(); ++I) {
      if (CSide[I] == TacoSide[I])
        continue;
      Witness = "output[" + std::to_string(I) + "]: C=" + CSide[I].str() +
                " vs TACO=" + TacoSide[I].str() + " for candidate " +
                printProgram(Candidate);
      return false;
    }
    return true;
  }

  /// Builds the base environment with all data zeroed.
  cfront::ExecEnv<Rational> baseEnv() const {
    cfront::ExecEnv<Rational> Env;
    for (const bench::ArgSpec &Arg : B.Args) {
      switch (Arg.K) {
      case bench::ArgSpec::Kind::SizeScalar:
        Env.IntScalars[Arg.Name] = Sizes.at(Arg.Name);
        break;
      case bench::ArgSpec::Kind::NumScalar:
        Env.NumScalars[Arg.Name] = Rational(1);
        break;
      case bench::ArgSpec::Kind::Array: {
        std::vector<int64_t> Shape = validate::resolveShape(Arg, Sizes);
        int64_t Total = 1;
        for (int64_t D : Shape)
          Total *= D;
        Env.Arrays[Arg.Name].assign(static_cast<size_t>(Total), Rational(0));
        break;
      }
      }
    }
    return Env;
  }

private:
  const bench::Benchmark &B;
  const cfront::CFunction &Fn;
  const Program &Candidate;
  const std::map<std::string, int64_t> &Sizes;
};

} // namespace

VerifyResult verify::verifyEquivalence(const bench::Benchmark &B,
                                       const cfront::CFunction &Fn,
                                       const Program &Candidate,
                                       const VerifyOptions &Options) {
  VerifyResult Result;
  Rng R(Options.Seed);

  // Collect size parameters and the input arrays.
  std::vector<std::string> SizeParams;
  std::vector<const bench::ArgSpec *> InputArrays;
  for (const bench::ArgSpec &Arg : B.Args) {
    if (Arg.K == bench::ArgSpec::Kind::SizeScalar)
      SizeParams.push_back(Arg.Name);
    else if (Arg.K == bench::ArgSpec::Kind::Array && !Arg.IsOutput)
      InputArrays.push_back(&Arg);
  }

  // Enumerate all shape assignments up to the bound.
  std::vector<int64_t> SizePick(SizeParams.size(), 1);
  for (;;) {
    std::map<std::string, int64_t> Sizes;
    for (size_t I = 0; I < SizeParams.size(); ++I)
      Sizes[SizeParams[I]] = SizePick[I];

    ShapeChecker Checker(B, Fn, Candidate, Sizes);

    auto FillRandom = [&](cfront::ExecEnv<Rational> &Env) {
      for (const bench::ArgSpec *Arg : InputArrays)
        for (Rational &V : Env.Arrays[Arg->Name])
          V = Rational(R.range(-3, 4), R.range(1, 2));
      for (const bench::ArgSpec &Arg : B.Args)
        if (Arg.K == bench::ArgSpec::Kind::NumScalar)
          Env.NumScalars[Arg.Name] = Rational(R.range(-2, 3), R.range(1, 2));
    };

    // (1) All-ones.
    {
      cfront::ExecEnv<Rational> Env = Checker.baseEnv();
      for (const bench::ArgSpec *Arg : InputArrays)
        for (Rational &V : Env.Arrays[Arg->Name])
          V = Rational(1);
      if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                           Result.TestsRun))
        return Result;
    }

    // (2) Joint one-hot sweep over pairs of input arrays (all other inputs
    // held at one). This exposes every bilinear coefficient.
    for (size_t A = 0; A < InputArrays.size(); ++A) {
      for (size_t C = A; C < InputArrays.size(); ++C) {
        cfront::ExecEnv<Rational> Base = Checker.baseEnv();
        for (const bench::ArgSpec *Arg : InputArrays)
          for (Rational &V : Base.Arrays[Arg->Name])
            V = Rational(1);
        size_t LenA = Base.Arrays[InputArrays[A]->Name].size();
        size_t LenC = Base.Arrays[InputArrays[C]->Name].size();
        int Budget = Options.MaxOneHot;
        for (size_t PA = 0; PA < LenA && Budget > 0; ++PA) {
          for (size_t PC = 0; PC < LenC && Budget > 0; ++PC, --Budget) {
            cfront::ExecEnv<Rational> Env = Base;
            for (Rational &V : Env.Arrays[InputArrays[A]->Name])
              V = Rational(0);
            for (Rational &V : Env.Arrays[InputArrays[C]->Name])
              V = Rational(0);
            Env.Arrays[InputArrays[A]->Name][PA] = Rational(2);
            Env.Arrays[InputArrays[C]->Name][PC] =
                A == C && PA == PC ? Rational(2) : Rational(3);
            if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                                 Result.TestsRun))
              return Result;
          }
        }
      }
    }

    // (3) Pseudo-random rationals (negatives, halves).
    for (int T = 0; T < Options.RandomTrials; ++T) {
      cfront::ExecEnv<Rational> Env = Checker.baseEnv();
      FillRandom(Env);
      // Division-bearing kernels may hit a zero denominator; both sides
      // propagate the undefined value, which compares equal.
      if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                           Result.TestsRun))
        return Result;
    }

    // Advance the shape odometer.
    size_t Axis = SizePick.size();
    bool Wrapped = true;
    while (Axis > 0) {
      --Axis;
      if (++SizePick[Axis] <= Options.MaxSize) {
        Wrapped = false;
        break;
      }
      SizePick[Axis] = 1;
    }
    if (SizePick.empty() || Wrapped)
      break;
  }

  Result.Equivalent = true;
  return Result;
}
