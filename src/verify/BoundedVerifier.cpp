//===- verify/BoundedVerifier.cpp - Bounded equivalence checking ----------===//

#include "verify/BoundedVerifier.h"

#include "cfront/Interp.h"
#include "support/Rational.h"
#include "support/Rng.h"
#include "taco/Einsum.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"
#include "validate/IoExamples.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"
#include "vm/Interpreter.h"

#include <functional>
#include <optional>
#include <set>
#include <utility>

using namespace stagg;
using namespace stagg::verify;
using namespace stagg::taco;

namespace {

/// Distinct tensor names read by the candidate's RHS.
std::vector<std::string> rhsTensorNames(const Program &P) {
  std::vector<std::string> Names;
  std::function<void(const Expr &)> Visit = [&](const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const std::string &Name = exprCast<AccessExpr>(E).name();
      if (std::find(Names.begin(), Names.end(), Name) == Names.end())
        Names.push_back(Name);
      return;
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      Visit(B.lhs());
      Visit(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      Visit(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      Visit(M.lhs());
      Visit(M.rhs());
      return;
    }
    case Expr::Kind::Constant:
      return;
    }
  };
  if (P.Rhs)
    Visit(*P.Rhs);
  return Names;
}

using NamePair = std::pair<std::string, std::string>;

NamePair normPair(const std::string &A, const std::string &B) {
  return A <= B ? NamePair(A, B) : NamePair(B, A);
}

/// Collects every unordered pair of tensor names with a multiplicative
/// interaction in \p E: names on opposite sides of a `*` or `/`, plus —
/// because a divisor enters nonlinearly — every (divisor name, input
/// array) pair. Returns the names occurring in the subtree.
std::set<std::string>
collectMultipliedPairs(const Expr &E, const std::vector<std::string> &Inputs,
                       std::set<NamePair> &Pairs) {
  switch (E.kind()) {
  case Expr::Kind::Access:
    return {exprCast<AccessExpr>(E).name()};
  case Expr::Kind::Constant:
    return {};
  case Expr::Kind::Negate:
    return collectMultipliedPairs(exprCast<NegateExpr>(E).operand(), Inputs,
                                  Pairs);
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    std::set<std::string> L = collectMultipliedPairs(B.lhs(), Inputs, Pairs);
    std::set<std::string> R = collectMultipliedPairs(B.rhs(), Inputs, Pairs);
    if (B.op() == BinOpKind::Mul || B.op() == BinOpKind::Div)
      for (const std::string &Ln : L)
        for (const std::string &Rn : R)
          Pairs.insert(normPair(Ln, Rn));
    if (B.op() == BinOpKind::Div)
      for (const std::string &Rn : R)
        for (const std::string &In : Inputs)
          Pairs.insert(normPair(Rn, In));
    L.insert(R.begin(), R.end());
    return L;
  }
  case Expr::Kind::Max: {
    // max is piecewise: which argument wins depends on both operands, so
    // every cross pair needs the joint sweep, exactly like multiplication.
    const auto &M = exprCast<MaxExpr>(E);
    std::set<std::string> L = collectMultipliedPairs(M.lhs(), Inputs, Pairs);
    std::set<std::string> R = collectMultipliedPairs(M.rhs(), Inputs, Pairs);
    for (const std::string &Ln : L)
      for (const std::string &Rn : R)
        Pairs.insert(normPair(Ln, Rn));
    L.insert(R.begin(), R.end());
    return L;
  }
  }
  return {};
}

/// What is being verified: one concrete program (compiled once), or an
/// ordered statement list executed as one program.
struct CandidateSpec {
  const Program *Single = nullptr;
  const taco::EinsumProgram *Compiled = nullptr;         // when Single
  const std::vector<std::string> *RhsNames = nullptr;    // when Single
  const std::vector<Program> *Sequence = nullptr;
  const vm::Code *Vm = nullptr; ///< Bytecode form, when compiled and enabled.
};

/// One bounded test harness for a fixed shape assignment.
class ShapeChecker {
public:
  ShapeChecker(const bench::Benchmark &B, const cfront::CFunction &Fn,
               const CandidateSpec &Spec,
               const std::map<std::string, int64_t> &Sizes,
               ReferenceCache *Cache, bool TrustBounds)
      : B(B), Fn(Fn), Spec(Spec), Sizes(Sizes), Cache(Cache),
        TrustBounds(TrustBounds) {
    if (Spec.Vm)
      VmEval.emplace(*Spec.Vm);
    else if (Spec.Compiled)
      Evaluator.emplace(*Spec.Compiled);
  }

  /// Runs both programs on the numeric inputs currently in \p Env; returns
  /// true on agreement, otherwise fills \p Witness.
  bool runOnce(cfront::ExecEnv<Rational> Env, std::string &Witness,
               int &TestsRun) {
    ++TestsRun;
    const bench::ArgSpec *OutArg = B.outputArg();

    // TACO side first (it reads the pre-state).
    EinsumResult<Rational> TacoOut;
    if (Spec.Sequence) {
      // Statement lists execute over every argument (including the output
      // buffer's pre-state, which the C side also sees).
      std::map<std::string, Tensor<Rational>> Operands;
      for (const bench::ArgSpec &Arg : B.Args) {
        if (Arg.K == bench::ArgSpec::Kind::Array) {
          Tensor<Rational> T(validate::resolveShape(Arg, Sizes));
          T.flat() = Env.Arrays.at(Arg.Name);
          Operands.emplace(Arg.Name, std::move(T));
        } else if (Arg.K == bench::ArgSpec::Kind::SizeScalar) {
          Operands.emplace(
              Arg.Name, Tensor<Rational>::scalar(Rational(Sizes.at(Arg.Name))));
        } else {
          Operands.emplace(Arg.Name, Tensor<Rational>::scalar(
                                         Env.NumScalars.at(Arg.Name)));
        }
      }
      if (VmEval) {
        // Same evolving-environment semantics, but through the compiled
        // statement list: scratch results forward to later statements and
        // no per-test structure compilation happens.
        Tensor<Rational> Out;
        if (VmEval->run(
                [&Operands](
                    const std::string &Name) -> const Tensor<Rational> * {
                  auto It = Operands.find(Name);
                  return It == Operands.end() ? nullptr : &It->second;
                },
                OutArg->Name, Out))
          TacoOut = EinsumResult<Rational>::success(std::move(Out));
        else
          TacoOut = EinsumResult<Rational>::failure(VmEval->error());
      } else {
        TacoOut = evalEinsumSequence<Rational>(*Spec.Sequence,
                                               std::move(Operands),
                                               OutArg->Name);
      }
    } else {
      std::map<std::string, Tensor<Rational>> Operands;
      for (const std::string &Name : *Spec.RhsNames) {
        const bench::ArgSpec *Arg = B.findArg(Name);
        if (!Arg) {
          Witness = "candidate reads unknown tensor '" + Name + "'";
          return false;
        }
        if (Arg->K == bench::ArgSpec::Kind::Array) {
          Tensor<Rational> T(validate::resolveShape(*Arg, Sizes));
          T.flat() = Env.Arrays.at(Arg->Name);
          Operands.emplace(Arg->Name, std::move(T));
        } else if (Arg->K == bench::ArgSpec::Kind::SizeScalar) {
          Operands.emplace(Arg->Name,
                           Tensor<Rational>::scalar(Rational(Sizes.at(Name))));
        } else {
          Operands.emplace(Arg->Name,
                           Tensor<Rational>::scalar(Env.NumScalars.at(Name)));
        }
      }
      std::vector<int64_t> OutShape = validate::resolveShape(*OutArg, Sizes);
      auto Lookup =
          [&Operands](const std::string &Name) -> const Tensor<Rational> * {
        auto It = Operands.find(Name);
        return It == Operands.end() ? nullptr : &It->second;
      };
      if (VmEval) {
        if (VmEval->bind(Lookup, OutShape))
          TacoOut = VmEval->evaluate();
        else
          TacoOut = EinsumResult<Rational>::failure(VmEval->error());
      } else if (Evaluator->bind(Lookup, OutShape)) {
        TacoOut = Evaluator->evaluate();
      } else {
        TacoOut = EinsumResult<Rational>::failure(Evaluator->error());
      }
    }

    // C side, memoized on (sizes, pre-state): the reference interpretation
    // is candidate-independent, so across the validator-fallback loop only
    // the first candidate pays for it.
    ReferenceCache::Entry Local;
    const ReferenceCache::Entry *Ref = nullptr;
    if (Cache) {
      std::string Key = envKey(Env);
      Ref = Cache->find(Key);
      if (!Ref) {
        Local = runReference(std::move(Env), *OutArg);
        Ref = &Cache->insert(std::move(Key), std::move(Local));
      }
    } else {
      Local = runReference(std::move(Env), *OutArg);
      Ref = &Local;
    }

    if (!Ref->Ok) {
      Witness = "legacy kernel failed: " + Ref->Error;
      return false;
    }
    if (!TacoOut.Ok) {
      Witness = "candidate failed to evaluate: " + TacoOut.Error;
      return false;
    }

    const std::vector<Rational> &CSide = Ref->Output;
    const std::vector<Rational> &TacoSide = TacoOut.Value.flat();
    if (CSide.size() != TacoSide.size()) {
      Witness = "output size mismatch";
      return false;
    }
    for (size_t I = 0; I < CSide.size(); ++I) {
      if (CSide[I] == TacoSide[I])
        continue;
      Witness = "output[" + std::to_string(I) + "]: C=" + CSide[I].str() +
                " vs TACO=" + TacoSide[I].str() + " for candidate " +
                candidateText();
      return false;
    }
    return true;
  }

  /// Renders the candidate for witnesses (statement lists join with "; ").
  std::string candidateText() const {
    if (Spec.Single)
      return printProgram(*Spec.Single);
    std::string Out;
    for (const Program &P : *Spec.Sequence) {
      if (!Out.empty())
        Out += "; ";
      Out += printProgram(P);
    }
    return Out;
  }

  /// Builds the base environment with all data zeroed.
  cfront::ExecEnv<Rational> baseEnv() const {
    cfront::ExecEnv<Rational> Env;
    for (const bench::ArgSpec &Arg : B.Args) {
      switch (Arg.K) {
      case bench::ArgSpec::Kind::SizeScalar:
        Env.IntScalars[Arg.Name] = Sizes.at(Arg.Name);
        break;
      case bench::ArgSpec::Kind::NumScalar:
        Env.NumScalars[Arg.Name] = Rational(1);
        break;
      case bench::ArgSpec::Kind::Array: {
        std::vector<int64_t> Shape = validate::resolveShape(Arg, Sizes);
        int64_t Total = 1;
        for (int64_t D : Shape)
          Total *= D;
        Env.Arrays[Arg.Name].assign(static_cast<size_t>(Total), Rational(0));
        break;
      }
      }
    }
    return Env;
  }

private:
  /// Interprets the kernel on (a copy of) \p Env; the entry records the
  /// status and the output argument's post-state.
  ReferenceCache::Entry runReference(cfront::ExecEnv<Rational> Env,
                                     const bench::ArgSpec &OutArg) const {
    ReferenceCache::Entry E;
    cfront::ExecStatus Status =
        cfront::runCFunction(Fn, Env, 10'000'000, TrustBounds);
    E.Ok = Status.Ok;
    if (!Status.Ok) {
      E.Error = Status.Error;
      return E;
    }
    E.Output = std::move(Env.Arrays.at(OutArg.Name));
    return E;
  }

  /// Serializes the candidate-independent test input: sizes plus the full
  /// numeric pre-state (std::map iteration gives a canonical field order).
  std::string envKey(const cfront::ExecEnv<Rational> &Env) const {
    std::string Key;
    Key.reserve(128);
    for (const auto &[Name, Value] : Sizes) {
      Key += Name;
      Key += '=';
      Key += std::to_string(Value);
      Key += ';';
    }
    for (const auto &[Name, Values] : Env.Arrays) {
      Key += Name;
      Key += ':';
      for (const Rational &V : Values) {
        Key += V.str();
        Key += ',';
      }
      Key += ';';
    }
    for (const auto &[Name, Value] : Env.NumScalars) {
      Key += Name;
      Key += '~';
      Key += Value.str();
      Key += ';';
    }
    return Key;
  }

  const bench::Benchmark &B;
  const cfront::CFunction &Fn;
  const CandidateSpec &Spec;
  std::optional<taco::EinsumEvaluator<Rational>> Evaluator;
  std::optional<vm::Interpreter<Rational>> VmEval;
  const std::map<std::string, int64_t> &Sizes;
  ReferenceCache *Cache;
  bool TrustBounds; ///< VerifyOptions::TrustStaticBounds for this sweep.
};

/// The bounded sweep shared by the single-program and statement-list entry
/// points. \p UseMulPairs enables the one-hot pruning against \p MulPairs.
VerifyResult runBoundedSweep(const bench::Benchmark &B,
                             const cfront::CFunction &Fn,
                             const CandidateSpec &Spec,
                             const VerifyOptions &Options,
                             ReferenceCache *Cache, bool UseMulPairs,
                             const std::set<NamePair> &MulPairs) {
  VerifyResult Result;
  Rng R(Options.Seed);

  // Collect size parameters and the input arrays.
  std::vector<std::string> SizeParams;
  std::vector<const bench::ArgSpec *> InputArrays;
  for (const bench::ArgSpec &Arg : B.Args) {
    if (Arg.K == bench::ArgSpec::Kind::SizeScalar)
      SizeParams.push_back(Arg.Name);
    else if (Arg.K == bench::ArgSpec::Kind::Array && !Arg.IsOutput)
      InputArrays.push_back(&Arg);
  }

  // Enumerate all shape assignments up to the bound.
  std::vector<int64_t> SizePick(SizeParams.size(), 1);
  for (;;) {
    std::map<std::string, int64_t> Sizes;
    for (size_t I = 0; I < SizeParams.size(); ++I)
      Sizes[SizeParams[I]] = SizePick[I];

    ShapeChecker Checker(B, Fn, Spec, Sizes, Cache,
                         Options.TrustStaticBounds);

    auto FillRandom = [&](cfront::ExecEnv<Rational> &Env) {
      for (const bench::ArgSpec *Arg : InputArrays)
        for (Rational &V : Env.Arrays[Arg->Name])
          V = Rational(R.range(-3, 4), R.range(1, 2));
      for (const bench::ArgSpec &Arg : B.Args)
        if (Arg.K == bench::ArgSpec::Kind::NumScalar)
          Env.NumScalars[Arg.Name] = Rational(R.range(-2, 3), R.range(1, 2));
    };

    // (1) All-ones.
    {
      cfront::ExecEnv<Rational> Env = Checker.baseEnv();
      for (const bench::ArgSpec *Arg : InputArrays)
        for (Rational &V : Env.Arrays[Arg->Name])
          V = Rational(1);
      if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                           Result.TestsRun))
        return Result;
    }

    // (2) Joint one-hot sweep over pairs of input arrays (all other inputs
    // held at one). This exposes every bilinear coefficient. Pairs the
    // candidate never multiplies together carry no bilinear terms, so
    // their sweep shrinks to the diagonal (distinct pairs drop entirely —
    // each operand's linear probes live on its own (A, A) diagonal).
    for (size_t A = 0; A < InputArrays.size(); ++A) {
      for (size_t C = A; C < InputArrays.size(); ++C) {
        bool Multiplied =
            !UseMulPairs ||
            MulPairs.count(
                normPair(InputArrays[A]->Name, InputArrays[C]->Name)) > 0;
        if (!Multiplied && A != C)
          continue;
        cfront::ExecEnv<Rational> Base = Checker.baseEnv();
        for (const bench::ArgSpec *Arg : InputArrays)
          for (Rational &V : Base.Arrays[Arg->Name])
            V = Rational(1);
        size_t LenA = Base.Arrays[InputArrays[A]->Name].size();
        size_t LenC = Base.Arrays[InputArrays[C]->Name].size();
        int Budget = Options.MaxOneHot;
        for (size_t PA = 0; PA < LenA && Budget > 0; ++PA) {
          for (size_t PC = 0; PC < LenC && Budget > 0; ++PC) {
            if (!Multiplied && PA != PC)
              continue; // diagonal-only: the linear one-hot probes
            --Budget;
            cfront::ExecEnv<Rational> Env = Base;
            for (Rational &V : Env.Arrays[InputArrays[A]->Name])
              V = Rational(0);
            for (Rational &V : Env.Arrays[InputArrays[C]->Name])
              V = Rational(0);
            Env.Arrays[InputArrays[A]->Name][PA] = Rational(2);
            Env.Arrays[InputArrays[C]->Name][PC] =
                A == C && PA == PC ? Rational(2) : Rational(3);
            if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                                 Result.TestsRun))
              return Result;
          }
        }
      }
    }

    // (3) Pseudo-random rationals (negatives, halves).
    for (int T = 0; T < Options.RandomTrials; ++T) {
      cfront::ExecEnv<Rational> Env = Checker.baseEnv();
      FillRandom(Env);
      // Division-bearing kernels may hit a zero denominator; both sides
      // propagate the undefined value, which compares equal.
      if (!Checker.runOnce(std::move(Env), Result.Counterexample,
                           Result.TestsRun))
        return Result;
    }

    // Advance the shape odometer.
    size_t Axis = SizePick.size();
    bool Wrapped = true;
    while (Axis > 0) {
      --Axis;
      if (++SizePick[Axis] <= Options.MaxSize) {
        Wrapped = false;
        break;
      }
      SizePick[Axis] = 1;
    }
    if (SizePick.empty() || Wrapped)
      break;
  }

  Result.Equivalent = true;
  return Result;
}

} // namespace

VerifyResult verify::verifyEquivalence(const bench::Benchmark &B,
                                       const cfront::CFunction &Fn,
                                       const Program &Candidate,
                                       const VerifyOptions &Options,
                                       ReferenceCache *Cache) {
  // Candidate structure, compiled once for all shapes and tests. The
  // tree-walk program is only built when the bytecode path is off or the
  // candidate does not lower — the VM artifact subsumes it otherwise.
  std::optional<taco::EinsumProgram> Compiled;
  std::vector<std::string> RhsNames = rhsTensorNames(Candidate);

  // Pairs of operands the candidate multiplies together: only these need
  // the quadratic joint one-hot sweep (see header).
  std::set<NamePair> MulPairs;
  if (Options.OneHotOnlyMultiplied && Candidate.Rhs) {
    std::vector<std::string> InputNames;
    for (const bench::ArgSpec &Arg : B.Args)
      if (Arg.K == bench::ArgSpec::Kind::Array && !Arg.IsOutput)
        InputNames.push_back(Arg.Name);
    collectMultipliedPairs(*Candidate.Rhs, InputNames, MulPairs);
  }

  CandidateSpec Spec;
  Spec.Single = &Candidate;
  Spec.RhsNames = &RhsNames;
  // One bytecode artifact for the whole sweep; the tree-walk stays the
  // fallback when lowering fails (or the VM is disabled for A/B).
  vm::Code VmCode;
  if (Options.UseVm) {
    VmCode = vm::compileProgram(Candidate);
    if (VmCode.ok() && Options.UseVmOpt) {
      // The candidate is concrete and its constants are never rewritten
      // during a sweep, so the optimizer may freeze (and dedup) them.
      vm::OptimizeOptions OO;
      OO.FreezeConstants = true;
      VmCode = vm::optimize(VmCode, OO);
    }
    if (VmCode.ok())
      Spec.Vm = &VmCode;
  }
  if (!Spec.Vm) {
    Compiled.emplace(Candidate);
    Spec.Compiled = &*Compiled;
  }
  return runBoundedSweep(B, Fn, Spec, Options, Cache,
                         Options.OneHotOnlyMultiplied, MulPairs);
}

VerifyResult verify::verifyEquivalence(const bench::Benchmark &B,
                                       const cfront::CFunction &Fn,
                                       const std::vector<Program> &Candidate,
                                       const VerifyOptions &Options,
                                       ReferenceCache *Cache) {
  CandidateSpec Spec;
  Spec.Sequence = &Candidate;
  vm::Code VmCode;
  if (Options.UseVm) {
    VmCode = vm::compileStatements(Candidate);
    if (VmCode.ok() && Options.UseVmOpt) {
      vm::OptimizeOptions OO;
      OO.FreezeConstants = true; // concrete statement list; see above
      VmCode = vm::optimize(VmCode, OO);
    }
    if (VmCode.ok())
      Spec.Vm = &VmCode;
  }
  // Cross-statement data flow defeats the per-expression multiplied-pair
  // analysis; statement lists always get the exhaustive joint sweep.
  std::set<NamePair> None;
  return runBoundedSweep(B, Fn, Spec, Options, Cache, /*UseMulPairs=*/false,
                         None);
}
