//===- api/ConfigPatch.cpp - Per-request config overrides -----------------===//

#include "api/Api.h"

#include <cmath>
#include <limits>

using namespace stagg;
using namespace stagg::api;
using support::Json;

const char *api::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::BadRequest:
    return "bad_request";
  case Status::UnknownBenchmark:
    return "unknown_benchmark";
  case Status::KernelParseError:
    return "c_parse_error";
  case Status::IngestError:
    return "ingest_error";
  case Status::UnsafeKernel:
    return "unsafe_kernel";
  case Status::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

bool ConfigPatch::empty() const {
  return !Kind && !NumCandidates && !NumIoExamples && !ExampleSeed &&
         !SkipVerification && !TimeoutSeconds && !MaxDepth &&
         !MaxExpansions && !MaxAttempts && !VerifyMaxSize && !FullGrammar &&
         !EqualProbability && !UseVm && !UseVmOpt && !SearchThreads &&
         !ExecuteThreads;
}

core::StaggConfig ConfigPatch::apply(const core::StaggConfig &Base) const {
  core::StaggConfig Out = Base;
  if (Kind)
    Out.Kind = *Kind;
  if (NumCandidates)
    Out.NumCandidates = *NumCandidates;
  if (NumIoExamples)
    Out.NumIoExamples = *NumIoExamples;
  if (ExampleSeed)
    Out.ExampleSeed = *ExampleSeed;
  if (SkipVerification)
    Out.SkipVerification = *SkipVerification;
  if (TimeoutSeconds)
    Out.Search.TimeoutSeconds = *TimeoutSeconds;
  if (MaxDepth)
    Out.Search.MaxDepth = *MaxDepth;
  if (MaxExpansions)
    Out.Search.MaxExpansions = *MaxExpansions;
  if (MaxAttempts)
    Out.Search.MaxAttempts = *MaxAttempts;
  if (VerifyMaxSize)
    Out.Verify.MaxSize = *VerifyMaxSize;
  if (FullGrammar)
    Out.Grammar.FullGrammar = *FullGrammar;
  if (EqualProbability)
    Out.Grammar.EqualProbability = *EqualProbability;
  if (UseVm)
    Out.UseVm = *UseVm;
  if (UseVmOpt)
    Out.UseVmOpt = *UseVmOpt;
  if (SearchThreads)
    Out.Search.Threads = *SearchThreads;
  if (ExecuteThreads)
    Out.Serve.ExecuteThreads = *ExecuteThreads;
  return Out;
}

namespace {

std::string expectBool(const Json &Value, const char *Key,
                       std::optional<bool> &Out) {
  if (!Value.isBool())
    return std::string("config.") + Key + " expects true|false";
  Out = Value.asBool();
  return "";
}

/// A strictly positive integer that fits the target width.
template <typename T>
std::string expectPositiveInt(const Json &Value, const char *Key,
                              std::optional<T> &Out, int64_t Max) {
  if (!Value.isInteger() || Value.asInteger() <= 0 ||
      Value.asInteger() > Max)
    return std::string("config.") + Key + " expects a positive integer";
  Out = static_cast<T>(Value.asInteger());
  return "";
}

} // namespace

std::string ConfigPatch::fromJson(const Json &Object, ConfigPatch &Out) {
  if (!Object.isObject())
    return "\"config\" must be an object";
  for (const auto &[Key, Value] : Object.members()) {
    std::string Error;
    if (Key == "search") {
      if (Value.isString() &&
          (Value.asString() == "td" || Value.asString() == "top-down"))
        Out.Kind = core::SearchKind::TopDown;
      else if (Value.isString() &&
               (Value.asString() == "bu" || Value.asString() == "bottom-up"))
        Out.Kind = core::SearchKind::BottomUp;
      else
        Error = "config.search expects \"td\"|\"bu\"";
    } else if (Key == "candidates") {
      Error = expectPositiveInt(Value, "candidates", Out.NumCandidates,
                                std::numeric_limits<int>::max());
    } else if (Key == "io_examples") {
      Error = expectPositiveInt(Value, "io_examples", Out.NumIoExamples,
                                std::numeric_limits<int>::max());
    } else if (Key == "example_seed") {
      if (!Value.isInteger() || Value.asInteger() < 0)
        Error = "config.example_seed expects a non-negative integer";
      else
        Out.ExampleSeed = static_cast<uint64_t>(Value.asInteger());
    } else if (Key == "skip_verify") {
      Error = expectBool(Value, "skip_verify", Out.SkipVerification);
    } else if (Key == "timeout_s") {
      double Seconds = Value.isNumber() ? Value.asNumber() : 0;
      if (!Value.isNumber() || !std::isfinite(Seconds) || Seconds <= 0)
        Error = "config.timeout_s expects seconds > 0";
      else
        Out.TimeoutSeconds = Seconds;
    } else if (Key == "max_depth") {
      Error = expectPositiveInt(Value, "max_depth", Out.MaxDepth,
                                std::numeric_limits<int>::max());
    } else if (Key == "max_expansions") {
      Error = expectPositiveInt(Value, "max_expansions", Out.MaxExpansions,
                                std::numeric_limits<int64_t>::max());
    } else if (Key == "max_attempts") {
      Error = expectPositiveInt(Value, "max_attempts", Out.MaxAttempts,
                                std::numeric_limits<int>::max());
    } else if (Key == "verify_max_size") {
      Error = expectPositiveInt(Value, "verify_max_size", Out.VerifyMaxSize,
                                std::numeric_limits<int64_t>::max());
    } else if (Key == "full_grammar") {
      Error = expectBool(Value, "full_grammar", Out.FullGrammar);
    } else if (Key == "equal_probability") {
      Error = expectBool(Value, "equal_probability", Out.EqualProbability);
    } else if (Key == "use_vm") {
      Error = expectBool(Value, "use_vm", Out.UseVm);
    } else if (Key == "use_vm_opt") {
      Error = expectBool(Value, "use_vm_opt", Out.UseVmOpt);
    } else if (Key == "search_threads") {
      Error = expectPositiveInt(Value, "search_threads", Out.SearchThreads,
                                std::numeric_limits<int>::max());
    } else if (Key == "execute_threads") {
      Error = expectPositiveInt(Value, "execute_threads", Out.ExecuteThreads,
                                std::numeric_limits<int>::max());
    } else {
      Error = "unknown config key \"" + Key + "\"";
    }
    if (!Error.empty())
      return Error;
  }
  return "";
}

Json ConfigPatch::toJson() const {
  Json Out = Json::object();
  if (Kind)
    Out.set("search", Json::str(*Kind == core::SearchKind::TopDown ? "td"
                                                                   : "bu"));
  if (NumCandidates)
    Out.set("candidates", Json::integer(*NumCandidates));
  if (NumIoExamples)
    Out.set("io_examples", Json::integer(*NumIoExamples));
  if (ExampleSeed)
    Out.set("example_seed", Json::integer(static_cast<int64_t>(*ExampleSeed)));
  if (SkipVerification)
    Out.set("skip_verify", Json::boolean(*SkipVerification));
  if (TimeoutSeconds)
    Out.set("timeout_s", Json::number(*TimeoutSeconds));
  if (MaxDepth)
    Out.set("max_depth", Json::integer(*MaxDepth));
  if (MaxExpansions)
    Out.set("max_expansions", Json::integer(*MaxExpansions));
  if (MaxAttempts)
    Out.set("max_attempts", Json::integer(*MaxAttempts));
  if (VerifyMaxSize)
    Out.set("verify_max_size", Json::integer(*VerifyMaxSize));
  if (FullGrammar)
    Out.set("full_grammar", Json::boolean(*FullGrammar));
  if (EqualProbability)
    Out.set("equal_probability", Json::boolean(*EqualProbability));
  if (UseVm)
    Out.set("use_vm", Json::boolean(*UseVm));
  if (UseVmOpt)
    Out.set("use_vm_opt", Json::boolean(*UseVmOpt));
  if (SearchThreads)
    Out.set("search_threads", Json::integer(*SearchThreads));
  if (ExecuteThreads)
    Out.set("execute_threads", Json::integer(*ExecuteThreads));
  return Out;
}
