//===- api/Api.h - Public request/response surface --------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-class lift API. Everything a caller can ask of the system goes
/// through one request shape and comes back through one response shape,
/// regardless of transport (in-process via api::Endpoint, newline-delimited
/// JSON via `stagg serve`, or the batch driver):
///
///  * api::LiftRequest names a registry benchmark *or* carries an inline C
///    kernel body (api::ingestKernel turns the latter into an owned
///    bench::Benchmark), plus an api::ConfigPatch of per-request overrides
///    applied on top of the service-wide core::StaggConfig.
///
///  * api::LiftResponse carries a status (protocol errors are data, not
///    exit paths), the lifted TACO expressions, per-phase timings, and
///    cache provenance.
///
/// The wire encoding of both lives in api/Protocol.h; this header is
/// transport-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_API_H
#define STAGG_API_API_H

#include "analysis/Checker.h"
#include "core/Stagg.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stagg {
namespace api {

/// Per-request configuration overrides. Every field is optional; set fields
/// replace the corresponding service-wide value for one request (patch
/// precedence is total — a set field always wins), unset fields inherit.
/// Serving-layer knobs (queue depth, batching, cache shape) are fixed per
/// service and deliberately not patchable — except "execute_threads", which
/// tiles one request's execute pass and is bit-identical at any value.
struct ConfigPatch {
  std::optional<core::SearchKind> Kind;        ///< "search": "td" | "bu"
  std::optional<int> NumCandidates;            ///< "candidates"
  std::optional<int> NumIoExamples;            ///< "io_examples"
  std::optional<uint64_t> ExampleSeed;         ///< "example_seed"
  std::optional<bool> SkipVerification;        ///< "skip_verify"
  std::optional<double> TimeoutSeconds;        ///< "timeout_s"
  std::optional<int> MaxDepth;                 ///< "max_depth"
  std::optional<int64_t> MaxExpansions;        ///< "max_expansions"
  std::optional<int> MaxAttempts;              ///< "max_attempts"
  std::optional<int64_t> VerifyMaxSize;        ///< "verify_max_size"
  std::optional<bool> FullGrammar;             ///< "full_grammar"
  std::optional<bool> EqualProbability;        ///< "equal_probability"
  std::optional<bool> UseVm;                   ///< "use_vm"
  std::optional<bool> UseVmOpt;                ///< "use_vm_opt"
  std::optional<int> SearchThreads;            ///< "search_threads"
  std::optional<int> ExecuteThreads;           ///< "execute_threads"

  bool empty() const;

  /// Returns \p Base with every set field replaced.
  core::StaggConfig apply(const core::StaggConfig &Base) const;

  /// Parses a protocol "config" object. Unknown keys and mistyped values
  /// are errors (a silently dropped override would run the wrong pipeline);
  /// returns an empty string on success.
  static std::string fromJson(const support::Json &Object, ConfigPatch &Out);

  /// Renders only the set fields, mirroring the request spelling — echoed
  /// in responses so clients can see which overrides actually applied.
  support::Json toJson() const;
};

/// Concrete inputs posted with a v2 "execute" frame: size-parameter
/// bindings plus flat array / scalar values keyed by argument name. Arrays
/// not posted are zero-filled (the usual state of the output buffer);
/// missing size parameters default to 1, mirroring validate::resolveShape.
struct ExecuteIo {
  std::map<std::string, int64_t> Sizes;              ///< "sizes"
  std::map<std::string, std::vector<double>> Arrays; ///< array "inputs"
  std::map<std::string, double> Scalars;             ///< scalar "inputs"
};

/// Outcome of executing a lifted kernel on posted inputs, rendered as a v2
/// "result" event.
struct ExecuteOutcome {
  bool Ok = false;
  std::string Error; ///< When !Ok: lift failure, bad inputs, bind failure.

  bool Cached = false; ///< The lift itself was a result-cache hit.
  std::string Expr;    ///< The concrete lifted program that was executed.
  std::vector<int64_t> Shape; ///< Output tensor shape.
  std::vector<double> Data;   ///< Output cells, row-major.
};

/// One lift request. Exactly one of RegistryName / KernelSource is set;
/// api::Endpoint rejects requests with both or neither.
struct LiftRequest {
  /// Registry mode: the name of a benchmark baked into bench::allBenchmarks.
  std::string RegistryName;

  /// Inline mode: the C source of an arbitrary kernel, ingested on
  /// admission (api::ingestKernel). The request owns the text; callers may
  /// free their buffers the moment submit() returns.
  std::string KernelSource;

  /// Optional label for an inline kernel (defaults to the C function name).
  std::string Name;

  /// Optional TACO reference translation for an inline kernel, forwarded to
  /// the candidate oracle. Only the *simulated* oracle needs it (it models
  /// GPT-4's error distribution around a reference); a real LLM backend
  /// reads the prompt and ignores this. Without it, inline ingestion
  /// derives a reference by direct transliteration where possible.
  std::string OracleHint;

  ConfigPatch Patch;

  bool isInline() const { return !KernelSource.empty(); }
};

/// How a request fared, protocol-wise. Pipeline failures (search exhausted,
/// timeout, no valid candidates) are NOT errors: they come back as Ok with
/// Result.Solved == false and a FailReason.
enum class Status {
  Ok,               ///< The pipeline ran (or the cache answered).
  BadRequest,       ///< Malformed JSON or protocol violation.
  UnknownBenchmark, ///< Registry mode named an absent benchmark.
  KernelParseError, ///< Inline kernel failed to parse as C.
  IngestError,      ///< Parsed, but analysis/ingestion could not proceed.
  UnsafeKernel,     ///< The static checker refused the inline kernel.
  ShuttingDown,     ///< The service is draining and admits nothing new.
};

/// The canonical spelling of \p S on the wire ("ok", "bad_request", ...).
const char *statusName(Status S);

/// One lift response.
struct LiftResponse {
  Status St = Status::Ok;

  /// Diagnostic for non-Ok statuses.
  std::string Error;

  std::string Name;
  std::string Category;

  /// Pipeline outcome, including per-phase timings and Verified (valid when
  /// St == Ok).
  core::LiftResult Result;

  /// True when the result came from the kernel-text cache.
  bool CacheHit = false;

  /// The overrides that applied to this request (echo of the request's
  /// patch).
  ConfigPatch Applied;

  /// Static-checker findings for an inline kernel: the hard findings behind
  /// an UnsafeKernel refusal (rendered as the wire "diagnostics" array), or
  /// the surviving warnings on success (the wire "warnings" array).
  std::vector<analysis::CheckFinding> Diagnostics;

  bool ok() const { return St == Status::Ok; }
};

} // namespace api
} // namespace stagg

#endif // STAGG_API_API_H
