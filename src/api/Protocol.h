//===- api/Protocol.h - Versioned JSON wire protocol ------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wire protocol v1 of `stagg serve`: newline-delimited JSON, one request
/// object in, one response object out, in admission order.
///
/// Request (all fields except "v" optional, but "name" or "kernel" must be
/// present):
///
///   {"v":1, "name":"blas_axpy"}
///   {"v":1, "kernel":"void kernel(int N, float* x, float* out) {...}",
///    "name":"my_kernel", "oracle_hint":"out(i) = 2 * x(i)",
///    "config":{"search":"bu","skip_verify":true,"timeout_s":2.5}}
///
/// Response:
///
///   {"v":1,"status":"ok","name":"my_kernel","category":"inline",
///    "solved":true,"verified":true,"cached":false,
///    "expr":"out(i) = 2 * x(i)","template":"b(i) = Const * c(i)",
///    "attempts":1,"expansions":4,
///    "timings":{"total_s":0.003,"parse_s":...,"oracle_s":...,
///               "grammar_s":...,"search_s":...},
///    "config":{"search":"bu","skip_verify":true,"timeout_s":2.5}}
///   {"v":1,"status":"unknown_benchmark","name":"blas_axpi",
///    "error":"unknown benchmark 'blas_axpi' — did you mean 'blas_axpy'?"}
///
/// Inline kernels pass through the static checker (analysis/Checker.h)
/// before anything executes them. Hard findings refuse the request with
/// status "unsafe_kernel" and a structured "diagnostics" array; warnings
/// survive on success as a "warnings" array of the same shape:
///
///   {"v":1,"status":"unsafe_kernel","name":"bad",
///    "error":"static checker refused the kernel: [SK001: ...]",
///    "diagnostics":[{"code":"SK001","severity":"error",
///                    "message":"load of 'x[1 + l0_i]' ... is out of bounds",
///                    "line":3,"col":5}]}
///
/// Auto-detection: an input line whose first non-blank byte is '{' is a v1
/// request; anything else is the legacy bare-registry-name protocol, whose
/// one-line text responses are unchanged for existing clients.
///
/// --- Protocol v2 (socket transport only) ---------------------------------
///
/// Over `stagg serve --listen`, frames with "v":2 batch requests and stream
/// events. One frame, one JSON object, newline-terminated:
///
///   {"v":2,"id":7,"progress":true,"requests":[
///     {"name":"blas_axpy"},
///     {"kernel":"void kernel(...){...}","name":"my_kernel"}]}
///   {"v":2,"stats":true}
///   {"v":2,"id":9,"execute":{"name":"blas_gemv",
///     "sizes":{"M":2,"N":2},
///     "inputs":{"A":[1,2,3,4],"x":[1,1],"alpha":2}}}
///
/// An "execute" frame lifts the kernel (registry "name" or inline "kernel",
/// with the usual "oracle_hint"/"config" fields; previously-lifted kernels
/// answer from the result cache) and then runs the lifted program on the
/// posted concrete inputs through the bytecode VM, streaming back the
/// output tensor as one "result" event:
///
///   {"v":2,"event":"result","id":9,"name":"blas_gemv","status":"ok",
///    "cached":true,"expr":"out(i) = A(i,j) * x(j)",
///    "shape":[2],"data":[3.0,7.0]}
///   {"v":2,"event":"result","id":9,"name":"bad","status":"error",
///    "error":"kernel was not lifted: ..."}
///
/// "id" (any JSON scalar) is echoed verbatim on every event the frame
/// produces; "progress" opts into phase events. The server answers with one
/// event object per line, interleaved across a connection's frames:
///
///   {"v":2,"event":"progress","id":7,"seq":0,"name":"blas_axpy",
///    "phase":"queued"}            // then "ingested","searching","verified"
///   {"v":2,"event":"response","id":7,"seq":0,"response":{<a complete v1
///    response object, byte-identical to the stdin path>}}
///   {"v":2,"event":"done","id":7,"completed":2}
///   {"v":2,"event":"stats","server":{...},"service":{...},"cache":{...}}
///   {"v":2,"event":"error","error":"..."}
///
/// Per-item parse errors become per-item "response" events carrying a v1
/// bad_request object; only a structurally broken frame produces an
/// "error" event. Response events of one frame arrive in request order;
/// progress events arrive as phases happen. v1 frames (and legacy names)
/// work over the socket unchanged, answered in admission order per
/// connection. During a graceful drain every new frame is answered with a
/// status "shutting_down" line.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_PROTOCOL_H
#define STAGG_API_PROTOCOL_H

#include "api/Api.h"

#include <string>

namespace stagg {
namespace api {

/// The protocol versions this build speaks: v1 everywhere, v2 over the
/// socket transport.
constexpr int ProtocolVersion = 1;
constexpr int ProtocolVersionV2 = 2;

/// Which encoding a request line used (responses mirror it).
enum class RequestFormat {
  LegacyName, ///< Bare benchmark name, text response.
  JsonV1,     ///< Protocol v1 object, JSON response.
};

/// One parsed request line.
struct ParsedRequest {
  RequestFormat Format = RequestFormat::LegacyName;
  LiftRequest Request;

  /// Non-empty when the line violates the protocol (malformed JSON, wrong
  /// version, unknown/mistyped fields). The request is unusable.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Detects the format of \p Line and parses it. Blank lines and `#`
/// comments must be filtered by the caller.
ParsedRequest parseRequestLine(const std::string &Line);

/// Renders \p Response as one line of protocol v1 JSON (no newline).
std::string renderResponse(const LiftResponse &Response);

/// Renders a protocol-level failure (a line that never became a request).
std::string renderProtocolError(const std::string &Message);

/// Renders a one-line status + error object (`{"v":1,"status":...,
/// "error":...}`) — the generalized form of renderProtocolError, used for
/// transport-level refusals like shutting_down.
std::string renderStatusError(Status St, const std::string &Message);

/// One socket frame, classified. v1 lines (JSON or legacy names) pass
/// through as ParsedRequest; v2 frames carry a batch or a stats probe.
struct SocketFrame {
  enum class Kind {
    V1,      ///< A v1 request line (V1 field).
    Batch,   ///< A v2 batch (Items; possibly empty).
    Stats,   ///< A v2 stats probe.
    Execute, ///< A v2 execute request (Exec + Io).
    Invalid, ///< Structurally broken (Error).
  };

  Kind K = Kind::Invalid;
  ParsedRequest V1;

  /// The frame's "id" rendered back to JSON, echoed on every event this
  /// frame produces; empty when absent.
  std::string IdJson;

  /// True when the batch asked for progress events.
  bool Progress = false;

  /// The batch's requests in order. An item with a non-empty Error still
  /// occupies its slot and is answered with a bad_request response event.
  std::vector<ParsedRequest> Items;

  /// Execute frames: which kernel to lift, and the concrete inputs to run
  /// the lifted program on.
  LiftRequest Exec;
  ExecuteIo Io;

  std::string Error;

  bool ok() const { return K != Kind::Invalid; }
};

/// Parses one newline-delimited socket frame (newline already stripped).
SocketFrame parseSocketFrame(const std::string &Line);

/// v2 event lines (no trailing newline). The response event embeds the v1
/// rendering of \p Response verbatim, so socket results are byte-identical
/// to the stdin path. \p IdJson is a SocketFrame::IdJson echo ("" omits
/// the field); \p Seq < 0 omits "seq".
std::string renderProgressEvent(const std::string &IdJson, int Seq,
                                const std::string &Name, const char *Phase);
std::string renderResponseEvent(const std::string &IdJson, int Seq,
                                const LiftResponse &Response);
std::string renderDoneEvent(const std::string &IdJson, int Completed);
std::string renderErrorEvent(const std::string &IdJson,
                             const std::string &Message);

/// The v2 "result" event answering an execute frame: the output tensor on
/// success, a status "error" object otherwise.
std::string renderResultEvent(const std::string &IdJson,
                              const std::string &Name,
                              const ExecuteOutcome &Outcome);

} // namespace api
} // namespace stagg

#endif // STAGG_API_PROTOCOL_H
