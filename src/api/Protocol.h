//===- api/Protocol.h - Versioned JSON wire protocol ------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wire protocol v1 of `stagg serve`: newline-delimited JSON, one request
/// object in, one response object out, in admission order.
///
/// Request (all fields except "v" optional, but "name" or "kernel" must be
/// present):
///
///   {"v":1, "name":"blas_axpy"}
///   {"v":1, "kernel":"void kernel(int N, float* x, float* out) {...}",
///    "name":"my_kernel", "oracle_hint":"out(i) = 2 * x(i)",
///    "config":{"search":"bu","skip_verify":true,"timeout_s":2.5}}
///
/// Response:
///
///   {"v":1,"status":"ok","name":"my_kernel","category":"inline",
///    "solved":true,"verified":true,"cached":false,
///    "expr":"out(i) = 2 * x(i)","template":"b(i) = Const * c(i)",
///    "attempts":1,"expansions":4,
///    "timings":{"total_s":0.003,"parse_s":...,"oracle_s":...,
///               "grammar_s":...,"search_s":...},
///    "config":{"search":"bu","skip_verify":true,"timeout_s":2.5}}
///   {"v":1,"status":"unknown_benchmark","name":"blas_axpi",
///    "error":"unknown benchmark 'blas_axpi' — did you mean 'blas_axpy'?"}
///
/// Inline kernels pass through the static checker (analysis/Checker.h)
/// before anything executes them. Hard findings refuse the request with
/// status "unsafe_kernel" and a structured "diagnostics" array; warnings
/// survive on success as a "warnings" array of the same shape:
///
///   {"v":1,"status":"unsafe_kernel","name":"bad",
///    "error":"static checker refused the kernel: [SK001: ...]",
///    "diagnostics":[{"code":"SK001","severity":"error",
///                    "message":"load of 'x[1 + l0_i]' ... is out of bounds",
///                    "line":3,"col":5}]}
///
/// Auto-detection: an input line whose first non-blank byte is '{' is a v1
/// request; anything else is the legacy bare-registry-name protocol, whose
/// one-line text responses are unchanged for existing clients.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_PROTOCOL_H
#define STAGG_API_PROTOCOL_H

#include "api/Api.h"

#include <string>

namespace stagg {
namespace api {

/// The protocol version this build speaks.
constexpr int ProtocolVersion = 1;

/// Which encoding a request line used (responses mirror it).
enum class RequestFormat {
  LegacyName, ///< Bare benchmark name, text response.
  JsonV1,     ///< Protocol v1 object, JSON response.
};

/// One parsed request line.
struct ParsedRequest {
  RequestFormat Format = RequestFormat::LegacyName;
  LiftRequest Request;

  /// Non-empty when the line violates the protocol (malformed JSON, wrong
  /// version, unknown/mistyped fields). The request is unusable.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Detects the format of \p Line and parses it. Blank lines and `#`
/// comments must be filtered by the caller.
ParsedRequest parseRequestLine(const std::string &Line);

/// Renders \p Response as one line of protocol v1 JSON (no newline).
std::string renderResponse(const LiftResponse &Response);

/// Renders a protocol-level failure (a line that never became a request).
std::string renderProtocolError(const std::string &Message);

} // namespace api
} // namespace stagg

#endif // STAGG_API_PROTOCOL_H
