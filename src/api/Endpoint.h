//===- api/Endpoint.h - The one entry point into the service ----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// api::Endpoint is the single programmatic entry point of the system: it
/// resolves api::LiftRequests (registry lookup or inline-kernel ingestion),
/// applies per-request configuration patches, and drives the persistent
/// serving layer (serve::LiftService) underneath. Both `stagg serve` and
/// the batch driver (driver::SuiteRunner) are thin clients of this class —
/// there is exactly one code path from a request to a result.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_ENDPOINT_H
#define STAGG_API_ENDPOINT_H

#include "api/Api.h"
#include "api/KernelIngest.h"
#include "serve/LiftService.h"
#include "vm/Code.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace stagg {
namespace api {

/// A submitted request whose response may still be in flight. Requests that
/// fail on admission (bad request, unknown name, ingestion failure) resolve
/// immediately; everything else resolves when a service worker finishes.
class PendingLift {
public:
  PendingLift() = default;

  /// True when get() will not block.
  bool ready();

  /// Waits for and returns the response (call once).
  LiftResponse get();

private:
  friend class Endpoint;

  std::future<serve::LiftResponse> Raw;
  LiftResponse Resolved; ///< Immediate responses; carries Applied for both.
  bool Immediate = false;
};

/// The public face of a running lift service.
class Endpoint {
public:
  explicit Endpoint(serve::ServiceConfig Config,
                    serve::OracleFactory Factory = {});

  /// Admits \p Request (blocking on queue backpressure for well-formed
  /// requests; admission errors resolve immediately).
  PendingLift submit(const LiftRequest &Request);

  /// Non-blocking admission for event-loop callers (the socket transport):
  /// false when the service queue is full — nothing happened, retry after
  /// a completion frees a slot. True means \p Out is live: either an
  /// immediately-resolved admission error or an in-flight lift observing
  /// \p Hooks. Ingestion of an inline kernel still runs synchronously
  /// (memoized), but never blocks on backpressure.
  bool trySubmit(const LiftRequest &Request, serve::SubmitHooks Hooks,
                 PendingLift &Out);

  /// Blocking convenience: submit and wait.
  LiftResponse lift(const LiftRequest &Request);

  /// Runs the lifted program of \p Response on the concrete inputs in
  /// \p Io (the v2 "execute" request). \p Request is the original lift
  /// request, re-resolved (registry lookup or the ingest memo — both
  /// cheap) for the argument specs that shape the posted inputs. The
  /// program is compiled to VM bytecode once per distinct lifted
  /// expression and cached alongside the result cache, so repeated
  /// executions only pay for binding and cell evaluation.
  ExecuteOutcome executeLifted(const LiftRequest &Request,
                               const ExecuteIo &Io,
                               const LiftResponse &Response);

  /// Stops admission, drains in-flight requests, joins the worker pool.
  /// Callers whose completion hooks reference external state (the socket
  /// loop) call this before that state goes away.
  void shutdown() { Service.shutdown(); }

  serve::CacheStats cacheStats() const { return Service.cacheStats(); }

  /// Counters of the execute-path compiled-program cache (the 256-entry
  /// memo behind executeLifted). Evictions count wholesale clears.
  struct VmCacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
    size_t Capacity = 0;
  };
  VmCacheStats vmCacheStats() const;

  serve::BatchingStats batchingStats() const {
    return Service.batchingStats();
  }
  int threads() const { return Service.threads(); }
  int queueDepth() const { return Service.queueDepth(); }
  size_t queueLength() const { return Service.queueLength(); }

  /// The service-wide configuration patches apply on top of.
  const core::StaggConfig &baseConfig() const { return Base; }

private:
  /// Builds an admission-failure response that resolves immediately.
  static PendingLift immediateError(Status St, std::string Name,
                                    std::string Error,
                                    const ConfigPatch &Applied);

  /// The shared front half of submit/trySubmit: validation, registry
  /// lookup or (memoized) inline ingestion, and patch application. When
  /// Immediate is true, Pending already carries the resolved admission
  /// error; otherwise Query/Effective/Warnings describe the lift to
  /// enqueue.
  struct Admission {
    bool Immediate = false;
    PendingLift Pending;
    bench::Benchmark Query;
    core::StaggConfig Effective;
    std::vector<analysis::CheckFinding> Warnings;
  };
  Admission admit(const LiftRequest &Request);

  /// ingestKernel with memoization: ingestion (parse, analysis, smoke
  /// execution) runs synchronously on the admission thread, so a client
  /// resubmitting the same inline kernel must not re-pay it just to reach
  /// the result cache. Keyed on normalized source + label + hint; capped,
  /// cleared wholesale on overflow (resubmission patterns are bursty, not
  /// long-tailed).
  IngestResult ingestCached(const LiftRequest &Request);

  /// One lifted program compiled to VM bytecode, in both the raw and the
  /// vm::optimize'd form (the per-request "use_vm_opt" patch picks one at
  /// execution time). The Program member owns the expression trees both
  /// Codes point into, so an entry is immutable and safely shared by any
  /// number of concurrent executions.
  struct CompiledKernel {
    taco::Program Program;
    vm::Code Code; ///< Raw compiler output.
    vm::Code Opt;  ///< vm::optimize(Code) with constants frozen.
  };

  /// The bytecode cache lookup (keyed on the printed program text, the
  /// same spelling the result cache stores). Compiles on miss.
  std::shared_ptr<const CompiledKernel>
  compiledFor(const taco::Program &Concrete);

  core::StaggConfig Base;
  serve::LiftService Service;

  std::mutex IngestMutex;
  std::unordered_map<std::string, IngestResult> IngestMemo;

  mutable std::mutex VmCacheMutex;
  std::unordered_map<std::string, std::shared_ptr<const CompiledKernel>>
      VmCache;
  VmCacheStats VmStats;
};

} // namespace api
} // namespace stagg

#endif // STAGG_API_ENDPOINT_H
