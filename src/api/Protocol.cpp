//===- api/Protocol.cpp - Versioned JSON wire protocol --------------------===//

#include "api/Protocol.h"

#include "support/StringUtils.h"
#include "taco/Printer.h"

using namespace stagg;
using namespace stagg::api;
using support::Json;

namespace {

/// Handles one lift-request field, shared by v1 lines, v2 batch items, and
/// the v2 execute object (so all three speak exactly the same request
/// dialect). Sets \p Handled false for keys it does not know and leaves the
/// error to the caller (each context has its own extra fields). Returns an
/// error message, or "" on success.
std::string parseRequestField(const std::string &Key,
                              const support::Json &Value, LiftRequest &Out,
                              bool &Handled) {
  Handled = true;
  if (Key == "name") {
    if (!Value.isString())
      return "\"name\" must be a string";
    Out.Name = Value.asString();
  } else if (Key == "kernel") {
    if (!Value.isString())
      return "\"kernel\" must be a string of C source";
    Out.KernelSource = Value.asString();
  } else if (Key == "oracle_hint") {
    if (!Value.isString())
      return "\"oracle_hint\" must be a TACO expression string";
    Out.OracleHint = Value.asString();
  } else if (Key == "config") {
    return ConfigPatch::fromJson(Value, Out.Patch);
  } else {
    Handled = false;
  }
  return "";
}

/// The shared request tail checks: name-or-kernel presence and the
/// hint-only-with-kernel rule.
std::string finishRequest(LiftRequest &Out) {
  if (Out.KernelSource.empty()) {
    if (Out.Name.empty())
      return "a request needs a registry \"name\" or an inline \"kernel\"";
    if (!Out.OracleHint.empty())
      // Registry kernels carry their own reference; accepting-and-ignoring
      // the hint would silently run something other than what the client
      // asked for.
      return "\"oracle_hint\" only applies to an inline \"kernel\"";
    Out.RegistryName = Out.Name;
    Out.Name.clear();
  }
  return "";
}

/// Parses the request fields of \p Root (everything but "v", which the
/// caller has already checked) into \p Out.
std::string parseRequestObject(const support::Json &Root, LiftRequest &Out) {
  for (const auto &[Key, Value] : Root.members()) {
    if (Key == "v")
      continue; // checked by the caller
    bool Handled = false;
    std::string Error = parseRequestField(Key, Value, Out, Handled);
    if (Error.empty() && !Handled)
      Error = "unknown field \"" + Key + "\"";
    if (!Error.empty())
      return Error;
  }
  return finishRequest(Out);
}

/// Parses a v2 "execute" object: the lift-request fields plus "sizes" (an
/// object of positive integers) and "inputs" (an object of numbers and/or
/// arrays of numbers).
std::string parseExecuteObject(const support::Json &Root, LiftRequest &Req,
                               ExecuteIo &Io) {
  if (!Root.isObject())
    return "\"execute\" must be an object";
  for (const auto &[Key, Value] : Root.members()) {
    bool Handled = false;
    std::string Error = parseRequestField(Key, Value, Req, Handled);
    if (!Error.empty())
      return Error;
    if (Handled)
      continue;
    if (Key == "sizes") {
      if (!Value.isObject())
        return "\"sizes\" must be an object of positive integers";
      for (const auto &[Name, Size] : Value.members()) {
        if (!Size.isInteger() || Size.asInteger() <= 0)
          return "size \"" + Name + "\" must be a positive integer";
        Io.Sizes[Name] = Size.asInteger();
      }
    } else if (Key == "inputs") {
      if (!Value.isObject())
        return "\"inputs\" must be an object of numbers or number arrays";
      for (const auto &[Name, Input] : Value.members()) {
        if (Input.isNumber()) {
          Io.Scalars[Name] = Input.asNumber();
          continue;
        }
        if (!Input.isArray())
          return "input \"" + Name +
                 "\" must be a number or an array of numbers";
        std::vector<double> Flat;
        for (const support::Json &Cell : Input.items()) {
          if (!Cell.isNumber())
            return "input \"" + Name +
                   "\" must be a number or an array of numbers";
          Flat.push_back(Cell.asNumber());
        }
        Io.Arrays[Name] = std::move(Flat);
      }
    } else {
      return "unknown field \"" + Key + "\"";
    }
  }
  return finishRequest(Req);
}

} // namespace

ParsedRequest api::parseRequestLine(const std::string &Line) {
  ParsedRequest Parsed;
  std::string Trimmed = trim(Line);

  if (Trimmed.empty() || Trimmed[0] != '{') {
    Parsed.Format = RequestFormat::LegacyName;
    Parsed.Request.RegistryName = Trimmed;
    return Parsed;
  }

  Parsed.Format = RequestFormat::JsonV1;
  support::JsonParseResult Json = support::parseJson(Trimmed);
  if (!Json.ok()) {
    Parsed.Error = Json.Error.describe();
    return Parsed;
  }
  const support::Json &Root = Json.Value;
  if (!Root.isObject()) {
    Parsed.Error = "a request must be a JSON object";
    return Parsed;
  }

  const support::Json *Version = Root.find("v");
  if (!Version) {
    Parsed.Error = "missing protocol version \"v\" (this build speaks v1)";
    return Parsed;
  }
  if (!Version->isInteger() || Version->asInteger() != ProtocolVersion) {
    Parsed.Error = "unsupported protocol version (this build speaks v1)";
    return Parsed;
  }

  Parsed.Error = parseRequestObject(Root, Parsed.Request);
  return Parsed;
}

namespace {

/// Structured checker findings: [{"code","severity","message","line","col"}].
Json renderFindings(const std::vector<analysis::CheckFinding> &Findings) {
  Json Arr = Json::array();
  for (const analysis::CheckFinding &F : Findings) {
    Json D = Json::object();
    D.set("code", Json::str(F.Code));
    D.set("severity", Json::str(analysis::checkSeverityName(F.Severity)));
    D.set("message", Json::str(F.Message));
    D.set("line", Json::integer(F.Loc.Line));
    D.set("col", Json::integer(F.Loc.Col));
    Arr.push(std::move(D));
  }
  return Arr;
}

} // namespace

std::string api::renderResponse(const LiftResponse &Response) {
  Json Out = Json::object();
  Out.set("v", Json::integer(ProtocolVersion));
  Out.set("status", Json::str(statusName(Response.St)));
  Out.set("name", Json::str(Response.Name));

  if (!Response.ok()) {
    Out.set("error", Json::str(Response.Error));
    if (!Response.Diagnostics.empty())
      Out.set("diagnostics", renderFindings(Response.Diagnostics));
    return Out.dump();
  }

  const core::LiftResult &R = Response.Result;
  Out.set("category", Json::str(Response.Category));
  Out.set("solved", Json::boolean(R.Solved));
  Out.set("verified", Json::boolean(R.Verified));
  Out.set("cached", Json::boolean(Response.CacheHit));
  if (R.Solved) {
    Out.set("expr", Json::str(taco::printProgram(R.Concrete)));
    Out.set("template", Json::str(taco::printProgram(R.Template)));
  } else {
    Out.set("fail_reason", Json::str(R.FailReason));
  }
  Out.set("attempts", Json::integer(R.Attempts));
  Out.set("expansions", Json::integer(R.Expansions));

  Json Timings = Json::object();
  Timings.set("total_s", Json::number(R.Seconds));
  Timings.set("parse_s", Json::number(R.ParseSeconds));
  Timings.set("oracle_s", Json::number(R.OracleSeconds));
  Timings.set("grammar_s", Json::number(R.GrammarSeconds));
  Timings.set("search_s", Json::number(R.SearchSeconds));
  Out.set("timings", std::move(Timings));

  if (!Response.Diagnostics.empty())
    Out.set("warnings", renderFindings(Response.Diagnostics));
  if (!Response.Applied.empty())
    Out.set("config", Response.Applied.toJson());
  return Out.dump();
}

std::string api::renderProtocolError(const std::string &Message) {
  return renderStatusError(Status::BadRequest, Message);
}

std::string api::renderStatusError(Status St, const std::string &Message) {
  Json Out = Json::object();
  Out.set("v", Json::integer(ProtocolVersion));
  Out.set("status", Json::str(statusName(St)));
  Out.set("error", Json::str(Message));
  return Out.dump();
}

SocketFrame api::parseSocketFrame(const std::string &Line) {
  SocketFrame Frame;
  std::string Trimmed = trim(Line);

  // Legacy names and v1 objects flow through the v1 parser; only a frame
  // that *announces* v2 takes the batch path.
  bool LooksJson = !Trimmed.empty() && Trimmed[0] == '{';
  support::JsonParseResult Json;
  if (LooksJson)
    Json = support::parseJson(Trimmed);
  bool IsV2 = false;
  if (LooksJson && Json.ok() && Json.Value.isObject()) {
    const support::Json *Version = Json.Value.find("v");
    IsV2 = Version && Version->isInteger() &&
           Version->asInteger() == ProtocolVersionV2;
  }
  if (!IsV2) {
    Frame.K = SocketFrame::Kind::V1;
    Frame.V1 = parseRequestLine(Trimmed);
    return Frame;
  }

  const support::Json &Root = Json.Value;
  bool Stats = false;
  bool SawRequests = false;
  bool SawExecute = false;
  for (const auto &[Key, Value] : Root.members()) {
    std::string Error;
    if (Key == "v") {
      // Checked above.
    } else if (Key == "id") {
      if (Value.isObject() || Value.isArray())
        Error = "\"id\" must be a JSON scalar";
      else
        Frame.IdJson = Value.dump();
    } else if (Key == "stats") {
      if (!Value.isBool())
        Error = "\"stats\" must be a boolean";
      else
        Stats = Value.asBool();
    } else if (Key == "progress") {
      if (!Value.isBool())
        Error = "\"progress\" must be a boolean";
      else
        Frame.Progress = Value.asBool();
    } else if (Key == "requests") {
      if (!Value.isArray()) {
        Error = "\"requests\" must be an array of request objects";
      } else {
        SawRequests = true;
        for (const support::Json &Item : Value.items()) {
          ParsedRequest Parsed;
          Parsed.Format = RequestFormat::JsonV1;
          if (!Item.isObject())
            Parsed.Error = "a batch item must be a JSON object";
          else
            Parsed.Error = parseRequestObject(Item, Parsed.Request);
          Frame.Items.push_back(std::move(Parsed));
        }
      }
    } else if (Key == "execute") {
      SawExecute = true;
      Error = parseExecuteObject(Value, Frame.Exec, Frame.Io);
    } else {
      Error = "unknown field \"" + Key + "\"";
    }
    if (!Error.empty()) {
      Frame.K = SocketFrame::Kind::Invalid;
      Frame.Error = Error;
      return Frame;
    }
  }

  if (Stats) {
    if (SawRequests || SawExecute || Frame.Progress) {
      Frame.Error = "a stats frame carries only \"v\", \"id\", \"stats\"";
      return Frame;
    }
    Frame.K = SocketFrame::Kind::Stats;
    return Frame;
  }
  if (SawExecute) {
    if (SawRequests || Frame.Progress) {
      Frame.Error = "an execute frame carries only \"v\", \"id\", \"execute\"";
      return Frame;
    }
    Frame.K = SocketFrame::Kind::Execute;
    return Frame;
  }
  if (!SawRequests) {
    Frame.Error =
        "a v2 frame needs \"requests\" (or \"stats\":true, or \"execute\")";
    return Frame;
  }
  Frame.K = SocketFrame::Kind::Batch;
  return Frame;
}

namespace {

/// `{"v":2,"event":"<event>"[,"id":<id>][,"seq":<seq>]` — the shared head
/// of every v2 event line, spliced as text so embedded ids and responses
/// stay byte-exact.
std::string eventHead(const char *Event, const std::string &IdJson,
                      int Seq) {
  std::string Out = "{\"v\":2,\"event\":\"";
  Out += Event;
  Out += '"';
  if (!IdJson.empty()) {
    Out += ",\"id\":";
    Out += IdJson;
  }
  if (Seq >= 0) {
    Out += ",\"seq\":";
    Out += std::to_string(Seq);
  }
  return Out;
}

} // namespace

std::string api::renderProgressEvent(const std::string &IdJson, int Seq,
                                     const std::string &Name,
                                     const char *Phase) {
  std::string Out = eventHead("progress", IdJson, Seq);
  Out += ",\"name\":";
  Out += Json::str(Name).dump();
  Out += ",\"phase\":\"";
  Out += Phase;
  Out += "\"}";
  return Out;
}

std::string api::renderResponseEvent(const std::string &IdJson, int Seq,
                                     const LiftResponse &Response) {
  std::string Out = eventHead("response", IdJson, Seq);
  Out += ",\"response\":";
  Out += renderResponse(Response);
  Out += '}';
  return Out;
}

std::string api::renderDoneEvent(const std::string &IdJson, int Completed) {
  std::string Out = eventHead("done", IdJson, -1);
  Out += ",\"completed\":";
  Out += std::to_string(Completed);
  Out += '}';
  return Out;
}

std::string api::renderErrorEvent(const std::string &IdJson,
                                  const std::string &Message) {
  std::string Out = eventHead("error", IdJson, -1);
  Out += ",\"error\":";
  Out += Json::str(Message).dump();
  Out += '}';
  return Out;
}

std::string api::renderResultEvent(const std::string &IdJson,
                                   const std::string &Name,
                                   const ExecuteOutcome &Outcome) {
  std::string Out = eventHead("result", IdJson, -1);
  Out += ",\"name\":";
  Out += Json::str(Name).dump();
  if (!Outcome.Ok) {
    Out += ",\"status\":\"error\",\"error\":";
    Out += Json::str(Outcome.Error).dump();
    Out += '}';
    return Out;
  }
  Out += ",\"status\":\"ok\",\"cached\":";
  Out += Outcome.Cached ? "true" : "false";
  Out += ",\"expr\":";
  Out += Json::str(Outcome.Expr).dump();
  Json Shape = Json::array();
  for (int64_t D : Outcome.Shape)
    Shape.push(Json::integer(D));
  Json Data = Json::array();
  for (double V : Outcome.Data)
    Data.push(Json::number(V));
  Out += ",\"shape\":";
  Out += Shape.dump();
  Out += ",\"data\":";
  Out += Data.dump();
  Out += '}';
  return Out;
}
