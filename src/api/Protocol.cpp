//===- api/Protocol.cpp - Versioned JSON wire protocol --------------------===//

#include "api/Protocol.h"

#include "support/StringUtils.h"
#include "taco/Printer.h"

using namespace stagg;
using namespace stagg::api;
using support::Json;

ParsedRequest api::parseRequestLine(const std::string &Line) {
  ParsedRequest Parsed;
  std::string Trimmed = trim(Line);

  if (Trimmed.empty() || Trimmed[0] != '{') {
    Parsed.Format = RequestFormat::LegacyName;
    Parsed.Request.RegistryName = Trimmed;
    return Parsed;
  }

  Parsed.Format = RequestFormat::JsonV1;
  support::JsonParseResult Json = support::parseJson(Trimmed);
  if (!Json.ok()) {
    Parsed.Error = Json.Error.describe();
    return Parsed;
  }
  const support::Json &Root = Json.Value;
  if (!Root.isObject()) {
    Parsed.Error = "a request must be a JSON object";
    return Parsed;
  }

  const support::Json *Version = Root.find("v");
  if (!Version) {
    Parsed.Error = "missing protocol version \"v\" (this build speaks v1)";
    return Parsed;
  }
  if (!Version->isInteger() || Version->asInteger() != ProtocolVersion) {
    Parsed.Error = "unsupported protocol version (this build speaks v1)";
    return Parsed;
  }

  for (const auto &[Key, Value] : Root.members()) {
    std::string Error;
    if (Key == "v") {
      // Handled above.
    } else if (Key == "name") {
      if (!Value.isString())
        Error = "\"name\" must be a string";
      else
        Parsed.Request.Name = Value.asString();
    } else if (Key == "kernel") {
      if (!Value.isString())
        Error = "\"kernel\" must be a string of C source";
      else
        Parsed.Request.KernelSource = Value.asString();
    } else if (Key == "oracle_hint") {
      if (!Value.isString())
        Error = "\"oracle_hint\" must be a TACO expression string";
      else
        Parsed.Request.OracleHint = Value.asString();
    } else if (Key == "config") {
      Error = ConfigPatch::fromJson(Value, Parsed.Request.Patch);
    } else {
      Error = "unknown field \"" + Key + "\"";
    }
    if (!Error.empty()) {
      Parsed.Error = Error;
      return Parsed;
    }
  }

  if (Parsed.Request.KernelSource.empty()) {
    if (Parsed.Request.Name.empty()) {
      Parsed.Error = "a request needs a registry \"name\" or an inline "
                     "\"kernel\"";
      return Parsed;
    }
    if (!Parsed.Request.OracleHint.empty()) {
      // Registry kernels carry their own reference; accepting-and-ignoring
      // the hint would silently run something other than what the client
      // asked for.
      Parsed.Error = "\"oracle_hint\" only applies to an inline \"kernel\"";
      return Parsed;
    }
    Parsed.Request.RegistryName = Parsed.Request.Name;
    Parsed.Request.Name.clear();
  }
  return Parsed;
}

namespace {

/// Structured checker findings: [{"code","severity","message","line","col"}].
Json renderFindings(const std::vector<analysis::CheckFinding> &Findings) {
  Json Arr = Json::array();
  for (const analysis::CheckFinding &F : Findings) {
    Json D = Json::object();
    D.set("code", Json::str(F.Code));
    D.set("severity", Json::str(analysis::checkSeverityName(F.Severity)));
    D.set("message", Json::str(F.Message));
    D.set("line", Json::integer(F.Loc.Line));
    D.set("col", Json::integer(F.Loc.Col));
    Arr.push(std::move(D));
  }
  return Arr;
}

} // namespace

std::string api::renderResponse(const LiftResponse &Response) {
  Json Out = Json::object();
  Out.set("v", Json::integer(ProtocolVersion));
  Out.set("status", Json::str(statusName(Response.St)));
  Out.set("name", Json::str(Response.Name));

  if (!Response.ok()) {
    Out.set("error", Json::str(Response.Error));
    if (!Response.Diagnostics.empty())
      Out.set("diagnostics", renderFindings(Response.Diagnostics));
    return Out.dump();
  }

  const core::LiftResult &R = Response.Result;
  Out.set("category", Json::str(Response.Category));
  Out.set("solved", Json::boolean(R.Solved));
  Out.set("verified", Json::boolean(R.Verified));
  Out.set("cached", Json::boolean(Response.CacheHit));
  if (R.Solved) {
    Out.set("expr", Json::str(taco::printProgram(R.Concrete)));
    Out.set("template", Json::str(taco::printProgram(R.Template)));
  } else {
    Out.set("fail_reason", Json::str(R.FailReason));
  }
  Out.set("attempts", Json::integer(R.Attempts));
  Out.set("expansions", Json::integer(R.Expansions));

  Json Timings = Json::object();
  Timings.set("total_s", Json::number(R.Seconds));
  Timings.set("parse_s", Json::number(R.ParseSeconds));
  Timings.set("oracle_s", Json::number(R.OracleSeconds));
  Timings.set("grammar_s", Json::number(R.GrammarSeconds));
  Timings.set("search_s", Json::number(R.SearchSeconds));
  Out.set("timings", std::move(Timings));

  if (!Response.Diagnostics.empty())
    Out.set("warnings", renderFindings(Response.Diagnostics));
  if (!Response.Applied.empty())
    Out.set("config", Response.Applied.toJson());
  return Out.dump();
}

std::string api::renderProtocolError(const std::string &Message) {
  Json Out = Json::object();
  Out.set("v", Json::integer(ProtocolVersion));
  Out.set("status", Json::str(statusName(Status::BadRequest)));
  Out.set("error", Json::str(Message));
  return Out.dump();
}
