//===- api/SocketService.h - Protocol sessions over the socket --*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protocol half of `stagg serve --listen`: SocketService implements
/// serve::SocketProtocol on top of api::Endpoint, turning frames into lift
/// admissions and completions into response lines. It owns all
/// per-connection session state — parsed-but-unadmitted backlogs (the
/// service queue was full), in-flight lifts, the in-order response window,
/// and open v2 batches — and runs entirely on the socket loop thread:
/// worker-side completion and progress hooks marshal back through
/// SocketServer::post before touching anything here.
///
/// Ordering contract, per connection: response lines emit in admission
/// order (the same window discipline as the stdin loop, so v1 sessions
/// behave identically over TCP); progress, stats, and frame-error events
/// emit the moment they happen, interleaved.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_SOCKETSERVICE_H
#define STAGG_API_SOCKETSERVICE_H

#include "api/Endpoint.h"
#include "api/Protocol.h"
#include "serve/SocketServer.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace stagg {
namespace api {

/// Frames in, response lines out. One instance serves every connection of
/// one SocketServer.
class SocketService : public serve::SocketProtocol {
public:
  explicit SocketService(Endpoint &Lifter) : Lifter(Lifter) {}

  /// Joins the execute worker (fallback; call shutdown() explicitly while
  /// the attached server still exists).
  ~SocketService() { shutdown(); }

  /// Wires the transport whose loop this service runs on. Must be called
  /// before the server runs (the server needs the protocol at
  /// construction, so the cycle closes here).
  void attach(serve::SocketServer &Server) { this->Server = &Server; }

  /// Stops and joins the execute worker. The worker posts completions into
  /// the attached SocketServer, so this must run after the server's loop
  /// has exited and before the server object is destroyed (SocketServer is
  /// declared after SocketService everywhere, so destruction order alone
  /// would tear the server down first). Idempotent.
  void shutdown();

  // serve::SocketProtocol:
  void onFrame(serve::SocketClient &Client,
               const std::string &Line) override;
  void onDisconnect(serve::SocketClient &Client) override;
  std::string rejectLine(serve::TransportReject Kind) override;

private:
  /// One request occupying an ordering/fairness slot.
  struct Item {
    uint64_t Slot = 0;
    int Seq = -1;           ///< Index within its v2 batch; -1 for v1.
    uint64_t BatchKey = 0;  ///< 0 when not part of a batch.
    bool V2 = false;
    bool Progress = false;  ///< The batch asked for progress events.
    RequestFormat Format = RequestFormat::LegacyName;
    std::string IdJson;     ///< The batch's id echo.
    std::string Name;       ///< Display name for progress events.
    LiftRequest Request;

    /// Execute items run the lifted program on Io after the lift settles;
    /// their Request survives admission (executeLifted re-resolves the
    /// argument specs from it).
    bool Execute = false;
    ExecuteIo Io;
  };

  /// An admitted lift awaiting completion.
  struct InFlightItem {
    PendingLift Pending;
    Item Meta; ///< Request cleared (the service owns its copy).
  };

  /// An open v2 batch: "done" fires once every member's response line has
  /// flushed.
  struct Batch {
    std::string IdJson;
    uint64_t BeyondSlot = 0; ///< First slot after the batch's members.
    int Remaining = 0;       ///< Members without a Ready line yet.
    int Total = 0;
  };

  /// Per-connection state, keyed by SocketClient::id().
  struct Session {
    uint64_t NextSlotToAssign = 0;
    uint64_t NextSlotToEmit = 0;
    std::deque<Item> Waiting;                ///< Parsed, not yet admitted.
    std::map<uint64_t, InFlightItem> InFlight;
    std::map<uint64_t, std::string> Ready;   ///< Awaiting in-order flush.
    std::map<uint64_t, Batch> Batches;
  };

  /// Admits as much of the session's backlog as the service queue takes.
  void pump(uint64_t ClientId);

  /// Completion handler (loop thread, via post).
  void onSettled(uint64_t ClientId, uint64_t Slot);

  /// Worker progress handler (loop thread, via post).
  void onProgress(uint64_t ClientId, uint64_t Slot,
                  const std::string &Phase);

  /// Emits every leading Ready line, then any batch whose members have all
  /// flushed.
  void flush(uint64_t ClientId);

  /// Renders one settled response in the item's dialect. Execute items
  /// never pass through here — their evaluation runs on the execute worker
  /// (dispatchExecute) so the loop thread only renders and flushes.
  std::string renderLine(const Item &Meta, const LiftResponse &Response);

  /// Hands a settled execute item to the execute worker (loop thread).
  /// Operand materialization, tensor evaluation, and result rendering all
  /// happen off the loop; finishExecute posts back when the line is ready.
  /// The caller has already counted the item against the client's in-flight
  /// window, so drain and idle eviction wait for the result to flush.
  void dispatchExecute(uint64_t ClientId, Item Meta, LiftResponse Response);

  /// Lands one finished execute line back on the session (loop thread, via
  /// post). The session may be gone — the client disconnected while the
  /// worker was evaluating — in which case the line is dropped.
  void finishExecute(uint64_t ClientId, uint64_t Slot, std::string Line);

  /// The execute worker's queue drain.
  void executeLoop();

  /// Marks \p Slot ready and settles its batch accounting.
  void markReady(Session &S, const Item &Meta, std::string Line);

  /// The v2 stats event (transport + service + cache counters).
  std::string statsEvent() const;

  Endpoint &Lifter;
  serve::SocketServer *Server = nullptr;
  std::map<uint64_t, Session> Sessions;
  uint64_t NextBatchKey = 1;

  /// One settled execute item awaiting evaluation off the loop thread.
  struct ExecJob {
    uint64_t ClientId = 0;
    Item Meta;
    LiftResponse Response;
  };

  /// The execute worker: started lazily on the first execute frame, fed on
  /// the loop thread, joined by shutdown(). Evaluation cost lands here so
  /// one expensive execute cannot stall every other connection's frames.
  std::mutex ExecMutex;
  std::condition_variable ExecWake;
  std::deque<ExecJob> ExecQueue;
  std::thread ExecWorker;
  bool ExecStop = false;
};

} // namespace api
} // namespace stagg

#endif // STAGG_API_SOCKETSERVICE_H
