//===- api/KernelIngest.cpp - Arbitrary C kernels to benchmarks -----------===//
//
// Model-based ingestion: both products — inferred array shapes and the
// reference translation — are read off one analysis::KernelModel, the
// symbolic executor's normalized store/access IR. The old syntactic
// loop-nest walker is gone; pointer-walking kernels (whose structure only
// the executor's closed forms recover), guarded stores (lowered to
// max/select), and sequential multi-statement bodies (lowered to ordered
// TACO statement lists, then composed) all emit through the same path.
//
//===----------------------------------------------------------------------===//

#include "api/KernelIngest.h"

#include "cfront/Parser.h"
#include "support/Rng.h"
#include "taco/Einsum.h"
#include "taco/Parser.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"
#include "validate/IoExamples.h"
#include "validate/Validator.h"
#include "verify/BoundedVerifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace stagg;
using namespace stagg::api;
using namespace stagg::cfront;
using analysis::KernelModel;
using analysis::MExpr;
using analysis::MExprPtr;
using analysis::ModelShape;
using analysis::ModelStore;

namespace {

//===----------------------------------------------------------------------===//
// MExpr -> TACO emission (over raw loop symbols; humanized at the end)
//===----------------------------------------------------------------------===//

/// Renders a delinearized access as `param(l0,l1,...)` over the model's raw
/// loop symbols (globally unique, so cross-statement renaming can never
/// capture). Null when the offset does not delinearize.
taco::ExprPtr accessExpr(const KernelModel &M, const std::string &Param,
                         const analysis::Poly &Offset) {
  ModelShape Shape = M.delinearize(Offset);
  if (!Shape.Ok)
    return nullptr;
  std::vector<std::string> Indices;
  for (const analysis::ModelDim &Dim : Shape.Dims)
    Indices.push_back(Dim.LoopSym);
  return std::make_unique<taco::AccessExpr>(Param, std::move(Indices));
}

taco::ExprPtr valueToTaco(const KernelModel &M, const MExprPtr &E) {
  if (!E)
    return nullptr;
  switch (E->K) {
  case MExpr::Kind::Load:
    return accessExpr(M, E->Name, E->Offset);
  case MExpr::Kind::Param:
    return std::make_unique<taco::AccessExpr>(E->Name,
                                              std::vector<std::string>());
  case MExpr::Kind::ConstInt:
    return std::make_unique<taco::ConstantExpr>(E->IntValue);
  case MExpr::Kind::Bin: {
    taco::ExprPtr A = valueToTaco(M, E->A);
    taco::ExprPtr B = valueToTaco(M, E->B);
    if (!A || !B)
      return nullptr;
    taco::BinOpKind Op = taco::BinOpKind::Add;
    switch (E->Op) {
    case analysis::MOp::Add:
      Op = taco::BinOpKind::Add;
      break;
    case analysis::MOp::Sub:
      Op = taco::BinOpKind::Sub;
      break;
    case analysis::MOp::Mul:
      Op = taco::BinOpKind::Mul;
      break;
    case analysis::MOp::Div:
      Op = taco::BinOpKind::Div;
      break;
    }
    return std::make_unique<taco::BinaryExpr>(Op, std::move(A), std::move(B));
  }
  case MExpr::Kind::Neg: {
    taco::ExprPtr A = valueToTaco(M, E->A);
    return A ? std::make_unique<taco::NegateExpr>(std::move(A)) : nullptr;
  }
  }
  return nullptr;
}

/// In-place index renaming over every access of \p E.
void renameIndices(taco::Expr &E,
                   const std::map<std::string, std::string> &Map) {
  switch (E.kind()) {
  case taco::Expr::Kind::Access: {
    auto &A = static_cast<taco::AccessExpr &>(E);
    std::vector<std::string> Indices = A.indices();
    for (std::string &Var : Indices) {
      auto It = Map.find(Var);
      if (It != Map.end())
        Var = It->second;
    }
    A.setIndices(std::move(Indices));
    return;
  }
  case taco::Expr::Kind::Constant:
    return;
  case taco::Expr::Kind::Binary: {
    auto &B = static_cast<taco::BinaryExpr &>(E);
    renameIndices(B.lhs(), Map);
    renameIndices(B.rhs(), Map);
    return;
  }
  case taco::Expr::Kind::Negate:
    renameIndices(static_cast<taco::NegateExpr &>(E).operand(), Map);
    return;
  case taco::Expr::Kind::Max: {
    auto &Mx = static_cast<taco::MaxExpr &>(E);
    renameIndices(Mx.lhs(), Map);
    renameIndices(Mx.rhs(), Map);
    return;
  }
  }
}

void renameIndices(taco::Program &P,
                   const std::map<std::string, std::string> &Map) {
  std::vector<std::string> Indices = P.Lhs.indices();
  for (std::string &Var : Indices) {
    auto It = Map.find(Var);
    if (It != Map.end())
      Var = It->second;
  }
  P.Lhs.setIndices(std::move(Indices));
  if (P.Rhs)
    renameIndices(*P.Rhs, Map);
}

/// Collects the distinct loop symbols mentioned by a program's accesses.
void collectMentioned(const taco::Expr &E, std::set<std::string> &Out) {
  for (const std::string &Var : taco::exprIndexVariables(E))
    Out.insert(Var);
}

/// Replaces every read `out(idx...)` whose index tuple equals \p LhsIdx with
/// a clone of \p Replacement.
taco::ExprPtr replaceOutReads(const taco::Expr &E, const std::string &OutName,
                              const std::vector<std::string> &LhsIdx,
                              const taco::Expr &Replacement) {
  switch (E.kind()) {
  case taco::Expr::Kind::Access: {
    const auto &A = static_cast<const taco::AccessExpr &>(E);
    if (A.name() == OutName && A.indices() == LhsIdx)
      return Replacement.clone();
    return E.clone();
  }
  case taco::Expr::Kind::Constant:
    return E.clone();
  case taco::Expr::Kind::Binary: {
    const auto &B = static_cast<const taco::BinaryExpr &>(E);
    return std::make_unique<taco::BinaryExpr>(
        B.op(), replaceOutReads(B.lhs(), OutName, LhsIdx, Replacement),
        replaceOutReads(B.rhs(), OutName, LhsIdx, Replacement));
  }
  case taco::Expr::Kind::Negate:
    return std::make_unique<taco::NegateExpr>(replaceOutReads(
        static_cast<const taco::NegateExpr &>(E).operand(), OutName, LhsIdx,
        Replacement));
  case taco::Expr::Kind::Max: {
    const auto &Mx = static_cast<const taco::MaxExpr &>(E);
    return std::make_unique<taco::MaxExpr>(
        replaceOutReads(Mx.lhs(), OutName, LhsIdx, Replacement),
        replaceOutReads(Mx.rhs(), OutName, LhsIdx, Replacement));
  }
  }
  return E.clone();
}

bool isZeroLiteralExpr(const taco::Expr &E) {
  const auto *C = taco::exprDynCast<taco::ConstantExpr>(&E);
  return C && !C->isSymbolic() && C->value() == 0;
}

/// One store translated to TACO form (raw loop symbols).
struct TStore {
  std::vector<std::string> LhsIdx;
  taco::ExprPtr Rhs;
  ModelStore::OpKind Op = ModelStore::OpKind::Set;
  bool RhsIsZeroLiteral = false;

  // At most one guard survives translation checks.
  bool Guarded = false;
  analysis::MCmp Cmp = analysis::MCmp::Gt;
  taco::ExprPtr GuardL, GuardR;
  bool GuardNegated = false;
  cfront::SourceLoc Loc;
};

/// Lowers `if (L cmp R) then T else E` to max(L, R) when the branches
/// select exactly the compared values; null otherwise (a min-shaped or
/// unrelated select, which the TACO subset cannot carry).
taco::ExprPtr lowerSelectToMax(analysis::MCmp Cmp, const taco::Expr &L,
                               const taco::Expr &R, const taco::Expr &T,
                               const taco::Expr &E) {
  bool GreaterWins = Cmp == analysis::MCmp::Gt || Cmp == analysis::MCmp::Ge;
  // Normalize to "then-branch taken when L is the larger side".
  bool ThenIsL = taco::exprEquals(T, L) && taco::exprEquals(E, R);
  bool ThenIsR = taco::exprEquals(T, R) && taco::exprEquals(E, L);
  if (GreaterWins ? ThenIsL : ThenIsR)
    return std::make_unique<taco::MaxExpr>(T.clone(), E.clone());
  return nullptr;
}

std::string located(const std::string &Message, const cfront::SourceLoc &Loc) {
  std::string Pos = Loc.str();
  return Pos.empty() ? Message : Message + " (" + Pos + ")";
}

TranslationResult translateModel(const KernelModel &Model) {
  TranslationResult Result;
  const std::string &Out = Model.Summary.OutputParam;

  // Any construct the executor could not normalize may change the kernel's
  // semantics (a while loop, an untranslatable condition, a store through
  // an untracked pointer) — a translation of just the modeled part would be
  // a confidently wrong oracle reference. Refuse instead; the caller's
  // oracle_hint covers these kernels honestly.
  if (!Model.Limitation.empty()) {
    Result.Error = "kernel contains " + Model.locatedLimitation();
    return Result;
  }

  // Translate every store up front: one untranslatable store poisons the
  // whole reference (its semantics would be silently dropped).
  std::vector<TStore> Stores;
  for (const ModelStore &St : Model.Stores) {
    if (St.Param != Out) {
      Result.Error = located(
          "a store to '" + St.Param + "' besides the output parameter",
          St.Loc);
      return Result;
    }
    if (St.Op == ModelStore::OpKind::Other) {
      Result.Error = located("a compound store other than +=", St.Loc);
      return Result;
    }
    if (!St.Offset) {
      Result.Error =
          located("a store with a non-affine or ambiguous subscript", St.Loc);
      return Result;
    }
    ModelShape Shape = Model.delinearize(*St.Offset);
    if (!Shape.Ok) {
      Result.Error =
          located("a store with a non-affine or ambiguous subscript", St.Loc);
      return Result;
    }
    TStore T;
    for (const analysis::ModelDim &Dim : Shape.Dims)
      T.LhsIdx.push_back(Dim.LoopSym);
    T.Rhs = valueToTaco(Model, St.Rhs);
    if (!T.Rhs) {
      Result.Error = located(
          "a store whose right-hand side has no index-notation form", St.Loc);
      return Result;
    }
    T.Op = St.Op;
    T.RhsIsZeroLiteral = St.RhsIsZeroLiteral;
    T.Loc = St.Loc;
    if (!St.Guards.empty()) {
      if (St.Guards.size() > 1) {
        Result.Error = located("a nested conditional store", St.Loc);
        return Result;
      }
      const analysis::MGuard &G = St.Guards.front();
      T.Guarded = true;
      T.Cmp = G.Cmp;
      T.GuardL = valueToTaco(Model, G.L);
      T.GuardR = valueToTaco(Model, G.R);
      T.GuardNegated = G.Negated;
      if (!T.GuardL || !T.GuardR) {
        Result.Error = located(
            "a conditional whose guard has no index-notation form", G.Loc);
        return Result;
      }
      if (T.Op != ModelStore::OpKind::Set) {
        Result.Error = located("a guarded compound store", St.Loc);
        return Result;
      }
    }
    Stores.push_back(std::move(T));
  }
  if (Stores.empty()) {
    Result.Error = "no transliterable store to the output parameter";
    return Result;
  }

  // Canonicalize every store's LHS index tuple onto the first store's (the
  // loop symbols are globally unique, so this renaming can never capture).
  const std::vector<std::string> Canon = Stores.front().LhsIdx;
  for (TStore &T : Stores) {
    if (T.LhsIdx == Canon)
      continue;
    if (T.LhsIdx.size() != Canon.size()) {
      Result.Error = located("stores with mismatched output rank", T.Loc);
      return Result;
    }
    std::map<std::string, std::string> Map;
    for (size_t I = 0; I < Canon.size(); ++I)
      Map.emplace(T.LhsIdx[I], Canon[I]);
    if (T.Rhs)
      renameIndices(*T.Rhs, Map);
    if (T.GuardL)
      renameIndices(*T.GuardL, Map);
    if (T.GuardR)
      renameIndices(*T.GuardR, Map);
    T.LhsIdx = Canon;
  }

  // Compose the ordered stores into a single value per output cell, and in
  // parallel build the statement-list form the sequence evaluator (and the
  // verifier) execute as one program.
  taco::ExprPtr Composed; // null = untouched output (zero pre-state)
  std::vector<taco::Program> Statements;
  auto SubstitutedRhs = [&](const taco::Expr &Rhs) -> taco::ExprPtr {
    if (Composed)
      return replaceOutReads(Rhs, Out, Canon, *Composed);
    taco::ConstantExpr Zero(0);
    return replaceOutReads(Rhs, Out, Canon, Zero);
  };
  for (size_t I = 0; I < Stores.size(); ++I) {
    TStore &T = Stores[I];
    if (T.Guarded) {
      // Pair a then-store with the matching else-store (same condition,
      // opposite polarity, same cell) into one select; otherwise the
      // "else" value is whatever the output held before this store.
      taco::ExprPtr ThenV, ElseV;
      bool Paired = false;
      if (I + 1 < Stores.size()) {
        TStore &N = Stores[I + 1];
        if (N.Guarded && N.Cmp == T.Cmp &&
            N.GuardNegated != T.GuardNegated &&
            taco::exprEquals(*N.GuardL, *T.GuardL) &&
            taco::exprEquals(*N.GuardR, *T.GuardR)) {
          ThenV = SubstitutedRhs(T.GuardNegated ? *N.Rhs : *T.Rhs);
          ElseV = SubstitutedRhs(T.GuardNegated ? *T.Rhs : *N.Rhs);
          Paired = true;
        }
      }
      if (!Paired) {
        taco::ExprPtr Prev =
            Composed ? Composed->clone()
                     : taco::ExprPtr(std::make_unique<taco::ConstantExpr>(0));
        taco::ExprPtr Self = SubstitutedRhs(*T.Rhs);
        if (T.GuardNegated) {
          ThenV = std::move(Prev);
          ElseV = std::move(Self);
        } else {
          ThenV = std::move(Self);
          ElseV = std::move(Prev);
        }
      }
      taco::ExprPtr Lowered =
          lowerSelectToMax(T.Cmp, *T.GuardL, *T.GuardR, *ThenV, *ElseV);
      if (!Lowered) {
        Result.Error = located(
            "a conditional store with no max/select lowering", T.Loc);
        return Result;
      }
      Composed = std::move(Lowered);
      // The guard folded every prior value into one expression; the
      // statement list collapses accordingly.
      Statements.clear();
      Statements.emplace_back(taco::AccessExpr(Out, Canon), Composed->clone());
      if (Paired)
        ++I;
      continue;
    }

    if (T.Op == ModelStore::OpKind::Set) {
      Composed = SubstitutedRhs(*T.Rhs);
      Statements.emplace_back(taco::AccessExpr(Out, Canon), T.Rhs->clone());
      continue;
    }

    // `+=`: a reduction over the loops the cell's offset misses. A zero
    // (or absent) prior value folds away — zero-initialization is setup,
    // not semantics — matching the registry ground-truth convention.
    bool PrevZero = !Composed || isZeroLiteralExpr(*Composed);
    if (PrevZero) {
      if (!Statements.empty()) {
        const taco::Program &Last = Statements.back();
        if (Last.Lhs.name() == Out && Last.Lhs.indices() == Canon &&
            Last.Rhs && isZeroLiteralExpr(*Last.Rhs))
          Statements.pop_back();
      }
      Composed = T.Rhs->clone();
      Statements.emplace_back(taco::AccessExpr(Out, Canon), T.Rhs->clone());
    } else {
      Composed = std::make_unique<taco::BinaryExpr>(
          taco::BinOpKind::Add, std::move(Composed), T.Rhs->clone());
      Statements.emplace_back(
          taco::AccessExpr(Out, Canon),
          std::make_unique<taco::BinaryExpr>(
              taco::BinOpKind::Add,
              std::make_unique<taco::AccessExpr>(Out, Canon),
              T.Rhs->clone()));
    }
  }

  // Humanize the loop symbols: rename each mentioned symbol to its source
  // loop variable, unless two mentioned symbols share one (two sibling
  // loops both named `i`) — those keep their unambiguous raw names.
  std::set<std::string> Mentioned(Canon.begin(), Canon.end());
  for (const taco::Program &P : Statements)
    if (P.Rhs)
      collectMentioned(*P.Rhs, Mentioned);
  if (Composed)
    collectMentioned(*Composed, Mentioned);
  std::map<std::string, int> SourceUses;
  for (const std::string &Sym : Mentioned)
    if (const analysis::ModelLoop *L = Model.loop(Sym))
      if (!L->SourceVar.empty())
        ++SourceUses[L->SourceVar];
  std::map<std::string, std::string> Humanize;
  for (const std::string &Sym : Mentioned)
    if (const analysis::ModelLoop *L = Model.loop(Sym))
      if (!L->SourceVar.empty() && SourceUses[L->SourceVar] == 1)
        Humanize.emplace(Sym, L->SourceVar);

  taco::Program Final(taco::AccessExpr(Out, Canon), std::move(Composed));
  renameIndices(Final, Humanize);
  for (taco::Program &P : Statements)
    renameIndices(P, Humanize);

  std::string Malformed = taco::checkWellFormed(Final);
  if (!Malformed.empty()) {
    Result.Error = "translation is not a well-formed TACO program: " +
                   Malformed;
    return Result;
  }
  Result.Program = std::move(Final);
  Result.Statements = std::move(Statements);
  return Result;
}

} // namespace

TranslationResult api::referenceTranslation(const KernelModel &Model) {
  return translateModel(Model);
}

TranslationResult
api::referenceTranslation(const CFunction &Fn,
                          const analysis::KernelSummary &Summary) {
  (void)Summary;
  return translateModel(analysis::buildKernelModel(Fn));
}

IngestResult api::ingestKernel(const std::string &CSource,
                               const std::string &Name,
                               const std::string &OracleHint) {
  IngestResult Result;
  auto fail = [&Result](IngestStatus Status, std::string Error) {
    Result.Status = Status;
    Result.Error = std::move(Error);
    return Result;
  };

  CParseResult Parsed = cfront::parseCFunction(CSource);
  if (!Parsed.ok())
    return fail(IngestStatus::ParseError, "C parse error: " + Parsed.Error);
  const CFunction &Fn = *Parsed.Function;

  // Parameter names become TACO tensor names verbatim; the reserved surface
  // identifiers would produce a ground truth that cannot re-parse (`max` is
  // call syntax, `Const` the symbolic template constant) and must be
  // refused up front — a serve process cannot crash on one hostile request.
  for (const CParam &P : Fn.Params)
    if (P.Name == "max" || P.Name == "Const")
      return fail(IngestStatus::AnalysisError,
                  "parameter name '" + P.Name +
                      "' collides with reserved TACO syntax; rename the "
                      "parameter");

  KernelModel Model = analysis::buildKernelModel(Fn);
  const analysis::KernelSummary &Summary = Model.Summary;
  if (Summary.OutputParam.empty())
    return fail(IngestStatus::AnalysisError,
                "kernel never stores through a pointer parameter, so no "
                "output tensor can be identified");
  Result.Class = analysis::classifyKernel(Model);

  // Synthesize the argument specification in declaration order.
  bench::Benchmark B;
  B.Name = Name.empty() ? Fn.Name : Name;
  B.Category = "inline";
  B.CSource = CSource;

  std::vector<std::string> SizeParamNames;
  for (const CParam &P : Fn.Params)
    if (!P.Type.isPointer() && !P.Type.isFloating())
      SizeParamNames.push_back(P.Name);

  for (const CParam &P : Fn.Params) {
    if (!P.Type.isPointer()) {
      B.Args.push_back(P.Type.isFloating() ? bench::ArgSpec::num(P.Name)
                                           : bench::ArgSpec::size(P.Name));
      continue;
    }

    std::vector<std::string> Shape;
    bool ShapeOk = false;
    std::optional<ModelShape> Best = Model.bestShape(P.Name);
    if (Best && Best->Ok) {
      ShapeOk = true;
      for (const analysis::ModelDim &Dim : Best->Dims) {
        std::string DimName;
        if (!analysis::extentName(Dim, DimName)) {
          ShapeOk = false;
          break;
        }
        Shape.push_back(DimName);
      }
    }
    if (!ShapeOk) {
      // The model could not name the dimensions (unknown bounds, ambiguous
      // strides); fall back to the symbolic executor's rank and — when the
      // kernel has exactly one size parameter — size every dimension by
      // it, the convention of every such kernel in the wild.
      auto RankIt = Summary.ParamDims.find(P.Name);
      if (RankIt == Summary.ParamDims.end())
        return fail(IngestStatus::AnalysisError,
                    "parameter '" + P.Name +
                        "' is never accessed; cannot infer its shape");
      if (RankIt->second > 0 && SizeParamNames.size() != 1)
        return fail(IngestStatus::AnalysisError,
                    "cannot infer the shape of '" + P.Name +
                        "' from the loop nest (" +
                        (Model.Limitation.empty()
                             ? std::string("irregular subscripts")
                             : Model.locatedLimitation()) +
                        "), and the kernel does not have exactly one size "
                        "parameter to fall back on");
      Shape.assign(static_cast<size_t>(RankIt->second),
                   SizeParamNames.empty() ? "" : SizeParamNames.front());
    }
    B.Args.push_back(bench::ArgSpec::array(P.Name, std::move(Shape),
                                           P.Name == Summary.OutputParam));
  }

  // The static safety gate: hard checker findings (provable out-of-bounds,
  // loop-carried dependences, writes into inputs, uninitialized reductions)
  // refuse the kernel before anything executes it — the synthesized shapes
  // are exactly what the harness will allocate, so they are authoritative
  // bounds. Warnings ride along on the result for the wire response.
  {
    analysis::CheckOptions CheckOpts;
    for (const bench::ArgSpec &Arg : B.Args) {
      if (Arg.K != bench::ArgSpec::Kind::Array)
        continue;
      std::vector<analysis::Poly> Extents;
      for (const std::string &Dim : Arg.Shape)
        Extents.push_back(analysis::shapeExtentPoly(Dim));
      CheckOpts.Shapes.emplace(Arg.Name, std::move(Extents));
      if (Arg.IsOutput)
        CheckOpts.OutputParams.insert(Arg.Name);
    }
    analysis::CheckReport Check = analysis::checkKernel(Model, CheckOpts);
    Result.Findings = Check.Findings;
    Result.BoundsProvenSafe = Check.BoundsProvenSafe;
    if (!Check.clean()) {
      std::string Message = "static checker refused the kernel:";
      for (const analysis::CheckFinding &F : Check.Findings)
        if (F.Severity == analysis::CheckSeverity::Hard)
          Message += " [" + F.str() + "]";
      return fail(IngestStatus::UnsafeKernel, Message);
    }
  }

  // The reference translation for the candidate oracle: an explicit hint
  // wins (the caller knows their kernel), the model-based emission covers
  // the subscript / pointer-walking / conditional / multi-statement
  // classes, and anything else must say why it failed — with the
  // construct's position in the request text.
  TranslationResult Translation;
  if (!OracleHint.empty()) {
    taco::ParseResult Hint = taco::parseTacoProgram(OracleHint);
    if (!Hint.ok())
      return fail(IngestStatus::AnalysisError,
                  "oracle_hint is not a TACO program: " + Hint.Error);
    std::string Malformed = taco::checkWellFormed(*Hint.Prog);
    if (!Malformed.empty())
      return fail(IngestStatus::AnalysisError,
                  "oracle_hint is not well-formed: " + Malformed);
    B.GroundTruth = taco::printProgram(*Hint.Prog);
  } else {
    Translation = translateModel(Model);
    if (!Translation.ok()) {
      // When the failure traces back to an access whose offset does not
      // delinearize (a diagonal `A[i*N+i]`, a stencil `x[i+j]`), name the
      // offending access with its catalog code and position instead of the
      // store that happened to contain it: re-check without the synthesized
      // shapes so shape inference itself is what gets diagnosed.
      if (Model.Limitation.empty())
        for (const analysis::CheckFinding &F :
             analysis::checkKernel(Model).Findings)
          if (F.Code == "SK006") {
            Result.Findings.push_back(F);
            return fail(IngestStatus::AnalysisError,
                        "cannot derive a reference translation for the "
                        "candidate oracle (" +
                            F.str() +
                            "); supply \"oracle_hint\" with a TACO sketch "
                            "of the kernel");
          }
      return fail(IngestStatus::AnalysisError,
                  "cannot derive a reference translation for the candidate "
                  "oracle (" +
                      Translation.Error +
                      "); supply \"oracle_hint\" with a TACO sketch of the "
                      "kernel");
    }
    B.GroundTruth = taco::printProgram(*Translation.Program);
    // Defense in depth: the printed form must re-parse (a printer/parser
    // drift here would crash consumers that trust GroundTruth).
    if (!taco::parseTacoProgram(B.GroundTruth).ok())
      return fail(IngestStatus::AnalysisError,
                  "derived reference translation does not round-trip "
                  "through the TACO parser (" + B.GroundTruth + ")");
  }

  // Bound what a wire-supplied kernel can make this process allocate:
  // constant extents are attacker-chosen literals, and example generation
  // materializes every tensor. Size parameters stay small (the harness
  // picks 2..4), so only numeric dimensions can explode; budget them in
  // floating point (no overflow) before anything allocates.
  constexpr double MaxElementsPerTensor = 1 << 16;
  for (const bench::ArgSpec &Arg : B.Args) {
    double Elements = 1;
    for (const std::string &Dim : Arg.Shape)
      Elements *= (!Dim.empty() &&
                   Dim.find_first_not_of("0123456789") == std::string::npos)
                      ? std::stod(Dim)
                      : 4 /* max harness size-parameter value */;
    if (Elements > MaxElementsPerTensor)
      return fail(IngestStatus::AnalysisError,
                  "the inferred shape of '" + Arg.Name +
                      "' exceeds the inline-kernel size budget (" +
                      std::to_string(static_cast<int64_t>(
                          MaxElementsPerTensor)) +
                      " elements per tensor)");
  }

  // Smoke-execute the kernel once under the inferred shapes: a wrong shape
  // or an interpreter-hostile construct should fail ingestion with a clear
  // message, not surface later as a bogus pipeline result.
  Rng Probe(0xA11CE);
  std::vector<validate::IoExample> Examples =
      validate::generateExamples(B, Fn, 1, Probe);
  if (Examples.empty())
    return fail(IngestStatus::AnalysisError,
                "the kernel does not execute under the inferred argument "
                "shapes (inferred " +
                    B.GroundTruth + ")");

  // A derived translation must actually agree with the kernel on the smoke
  // example — both the composed program and its statement-list form. This
  // turns any emission bug into an up-front refusal instead of a silently
  // wrong oracle reference.
  if (Translation.ok()) {
    if (!validate::runsConsistently(B, *Translation.Program, Examples))
      return fail(IngestStatus::AnalysisError,
                  "the derived reference translation disagrees with the "
                  "kernel on a generated example (derived " +
                      B.GroundTruth + ")");
    const validate::IoExample &Ex = Examples.front();
    std::map<std::string, taco::Tensor<double>> Operands;
    for (const bench::ArgSpec &Arg : B.Args) {
      if (Arg.K == bench::ArgSpec::Kind::Array) {
        taco::Tensor<double> T(validate::resolveShape(Arg, Ex.Sizes));
        T.flat() = Ex.Inputs.Arrays.at(Arg.Name);
        Operands.emplace(Arg.Name, std::move(T));
      } else if (Arg.K == bench::ArgSpec::Kind::SizeScalar) {
        Operands.emplace(Arg.Name,
                         taco::Tensor<double>::scalar(static_cast<double>(
                             Ex.Sizes.at(Arg.Name))));
      } else {
        Operands.emplace(Arg.Name, taco::Tensor<double>::scalar(
                                       Ex.Inputs.NumScalars.at(Arg.Name)));
      }
    }
    taco::EinsumResult<double> Seq = taco::evalEinsumSequence<double>(
        Translation.Statements, std::move(Operands), Summary.OutputParam);
    if (!Seq.Ok)
      return fail(IngestStatus::AnalysisError,
                  "the derived statement list does not execute: " + Seq.Error);
    const std::vector<double> &Got = Seq.Value.flat();
    const std::vector<double> &Want = Ex.Expected.flat();
    if (Got.size() != Want.size())
      return fail(IngestStatus::AnalysisError,
                  "the derived statement list disagrees with the kernel");
    for (size_t I = 0; I < Got.size(); ++I) {
      double Tolerance =
          1e-9 * std::max({1.0, std::fabs(Got[I]), std::fabs(Want[I])});
      if (!(std::fabs(Got[I] - Want[I]) <= Tolerance))
        return fail(IngestStatus::AnalysisError,
                    "the derived statement list disagrees with the kernel");
    }

    // Multi-statement kernels additionally get a (cheap) bounded
    // equivalence check of the ordered statement list against the C kernel
    // — the verifier executing the list as one program. Composition bugs
    // (wrong store order, a dropped setup statement) hide exactly here,
    // and the structured input family catches what one random example
    // cannot.
    if (Translation.Statements.size() > 1) {
      verify::VerifyOptions Light;
      Light.RandomTrials = 2;
      Light.MaxOneHot = 64;
      verify::VerifyResult VR = verify::verifyEquivalence(
          B, Fn, Translation.Statements, Light);
      if (!VR.Equivalent)
        return fail(IngestStatus::AnalysisError,
                    "the derived statement list is not equivalent to the "
                    "kernel: " + VR.Counterexample);
    }
    Result.ReferenceStatements = std::move(Translation.Statements);
  }

  Result.Kernel = std::move(B);
  return Result;
}
