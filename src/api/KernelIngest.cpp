//===- api/KernelIngest.cpp - Arbitrary C kernels to benchmarks -----------===//
//
// The ingestion walker reads the kernel's loop nest *syntactically* (the
// symbolic executor in analysis/ recovers ranks for pointer-walking code,
// but deliberately forgets expression structure; this pass keeps it):
// subscripts are evaluated into affine polynomials over loop variables and
// size parameters, delinearized by stride ordering, and the store statements
// are transliterated into TACO index notation. Both products — inferred
// array shapes and the reference translation — fall out of one walk.
//
//===----------------------------------------------------------------------===//

#include "api/KernelIngest.h"

#include "cfront/Parser.h"
#include "support/Rng.h"
#include "taco/Parser.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"
#include "validate/IoExamples.h"

#include <algorithm>
#include <map>
#include <set>

using namespace stagg;
using namespace stagg::api;
using namespace stagg::cfront;
using analysis::Poly;

namespace {

//===----------------------------------------------------------------------===//
// Polynomial helpers
//===----------------------------------------------------------------------===//

/// Builds Coeff * product(Symbols).
Poly monomialPoly(const analysis::Monomial &Symbols, int64_t Coeff) {
  Poly P = Poly::constant(Coeff);
  for (const std::string &S : Symbols)
    P = P * Poly::symbol(S);
  return P;
}

/// Exact division \p A / \p B when \p B is a single term dividing every
/// term of \p A; nullopt otherwise.
std::optional<Poly> dividePoly(const Poly &A, const Poly &B) {
  if (B.terms().size() != 1)
    return std::nullopt;
  const auto &[DivMono, DivCoeff] = *B.terms().begin();
  if (DivCoeff == 0)
    return std::nullopt;
  Poly Quotient;
  for (const auto &[Mono, Coeff] : A.terms()) {
    if (Coeff % DivCoeff != 0)
      return std::nullopt;
    // DivMono must be a sub-multiset of Mono.
    analysis::Monomial Rest = Mono;
    for (const std::string &S : DivMono) {
      auto It = std::find(Rest.begin(), Rest.end(), S);
      if (It == Rest.end())
        return std::nullopt;
      Rest.erase(It);
    }
    Quotient = Quotient + monomialPoly(Rest, Coeff / DivCoeff);
  }
  return Quotient;
}

/// The coefficient polynomial of \p Var in \p P (nullopt when \p Var occurs
/// nonlinearly).
std::optional<Poly> strideOf(const Poly &P, const std::string &Var) {
  Poly Stride;
  for (const auto &[Mono, Coeff] : P.terms()) {
    size_t Count = static_cast<size_t>(
        std::count(Mono.begin(), Mono.end(), Var));
    if (Count == 0)
      continue;
    if (Count > 1)
      return std::nullopt;
    analysis::Monomial Rest = Mono;
    Rest.erase(std::find(Rest.begin(), Rest.end(), Var));
    Stride = Stride + monomialPoly(Rest, Coeff);
  }
  return Stride;
}

/// Orders strides: +1 when A spans more elements than B, -1 for the
/// converse, 0 when the order cannot be established.
int compareStrides(const Poly &A, const Poly &B) {
  int64_t CA = 0, CB = 0;
  if (A.asConstant(CA) && B.asConstant(CB))
    return CA > CB ? 1 : (CA < CB ? -1 : 0);
  if (std::optional<Poly> Q = dividePoly(A, B)) {
    int64_t C = 0;
    if (!Q->asConstant(C))
      return 1; // symbolic multiple, e.g. (M*K)/K = M
    return C > 1 ? 1 : 0;
  }
  if (std::optional<Poly> Q = dividePoly(B, A)) {
    int64_t C = 0;
    if (!Q->asConstant(C))
      return -1;
    return C > 1 ? -1 : 0;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// The loop-nest walker
//===----------------------------------------------------------------------===//

/// One delinearized array dimension: the loop variable indexing it and its
/// symbolic extent.
struct DimInfo {
  std::string LoopVar;
  Poly Extent;
  bool ExtentKnown = false;
};

/// One recovered access in delinearized form.
struct AccessInfo {
  std::string Param;
  std::vector<DimInfo> Dims; ///< Outer to inner.
  bool Ok = false;           ///< Delinearization succeeded.
};

/// One store through a pointer parameter, with its right-hand side already
/// transliterated (null when untranslatable) — translation must happen at
/// store time because local temporaries are tracked flow-sensitively.
struct StoreInfo {
  AccessInfo Access;
  CAssignOp Op = CAssignOp::Plain;
  taco::ExprPtr Rhs;
  bool RhsIsZeroLiteral = false;
};

class NestWalker {
public:
  explicit NestWalker(const CFunction &Fn) : Fn(Fn) {
    for (const CParam &P : Fn.Params) {
      if (P.Type.isPointer())
        PointerParams.insert(P.Name);
      else if (P.Type.isFloating())
        FloatParams.insert(P.Name);
      else
        SizeParams.insert(P.Name);
    }
  }

  void run() { walkStmt(*Fn.Body); }

  /// Per-parameter representative access: highest Ok rank seen.
  const std::map<std::string, AccessInfo> &bestAccesses() const {
    return Best;
  }
  const std::vector<StoreInfo> &stores() const { return Stores; }

  /// Non-empty when part of the kernel was beyond the walker (while loops,
  /// conditionals, untracked pointers) — shapes may be partial and the
  /// transliteration unavailable.
  const std::string &limitation() const { return Limitation; }

private:
  //===------------------------------------------------------------------===//
  // Integer / pointer symbolic evaluation
  //===------------------------------------------------------------------===//

  void limit(const std::string &Why) {
    if (Limitation.empty())
      Limitation = Why;
  }

  std::optional<Poly> evalInt(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit:
      return Poly::constant(cCast<IntLit>(E).value());
    case CExpr::Kind::VarRef: {
      const std::string &Name = cCast<VarRef>(E).name();
      if (SizeParams.count(Name))
        return Poly::symbol(Name);
      auto It = IntVals.find(Name);
      if (It != IntVals.end())
        return It->second;
      return std::nullopt;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      if (U.op() != CUnOp::Neg)
        return std::nullopt;
      std::optional<Poly> Sub = evalInt(U.operand());
      if (!Sub)
        return std::nullopt;
      return -*Sub;
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      std::optional<Poly> L = evalInt(B.lhs());
      std::optional<Poly> R = evalInt(B.rhs());
      if (!L || !R)
        return std::nullopt;
      switch (B.op()) {
      case CBinOp::Add:
        return *L + *R;
      case CBinOp::Sub:
        return *L - *R;
      case CBinOp::Mul:
        return *L * *R;
      default:
        return std::nullopt;
      }
    }
    default:
      return std::nullopt;
    }
  }

  /// A pointer-typed expression resolved to (parameter, flat offset).
  std::optional<std::pair<std::string, Poly>> evalPtr(const CExpr &E) {
    if (const auto *V = cDynCast<VarRef>(&E)) {
      if (PointerParams.count(V->name()))
        return std::make_pair(V->name(), Poly::constant(0));
      return std::nullopt; // local pointer: untracked
    }
    if (const auto *B = cDynCast<CBinary>(&E)) {
      if (B->op() == CBinOp::Add || B->op() == CBinOp::Sub) {
        if (auto Ptr = evalPtr(B->lhs())) {
          std::optional<Poly> Off = evalInt(B->rhs());
          if (!Off)
            return std::nullopt;
          return std::make_pair(Ptr->first, B->op() == CBinOp::Add
                                                ? Ptr->second + *Off
                                                : Ptr->second - *Off);
        }
        if (B->op() == CBinOp::Add) {
          if (auto Ptr = evalPtr(B->rhs())) {
            std::optional<Poly> Off = evalInt(B->lhs());
            if (!Off)
              return std::nullopt;
            return std::make_pair(Ptr->first, Ptr->second + *Off);
          }
        }
      }
      return std::nullopt;
    }
    if (const auto *U = cDynCast<CUnary>(&E)) {
      if (U->op() == CUnOp::AddrOf) {
        if (const auto *Ix = cDynCast<CIndex>(&U->operand())) {
          auto Ptr = evalPtr(Ix->base());
          std::optional<Poly> Off = evalInt(Ix->index());
          if (Ptr && Off)
            return std::make_pair(Ptr->first, Ptr->second + *Off);
        }
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  /// A memory place (`p[e]` or `*p`) resolved to (parameter, offset).
  std::optional<std::pair<std::string, Poly>> evalPlace(const CExpr &E) {
    if (const auto *Ix = cDynCast<CIndex>(&E)) {
      auto Ptr = evalPtr(Ix->base());
      std::optional<Poly> Off = evalInt(Ix->index());
      if (Ptr && Off)
        return std::make_pair(Ptr->first, Ptr->second + *Off);
      return std::nullopt;
    }
    if (const auto *U = cDynCast<CUnary>(&E)) {
      if (U->op() == CUnOp::Deref)
        return evalPtr(U->operand());
    }
    return std::nullopt;
  }

  //===------------------------------------------------------------------===//
  // Delinearization
  //===------------------------------------------------------------------===//

  AccessInfo delinearize(const std::string &Param, const Poly &Offset) {
    AccessInfo Info;
    Info.Param = Param;

    // The loop variables of the enclosing nest that the offset mentions,
    // outermost first.
    std::vector<size_t> VarFrames;
    for (size_t I = 0; I < LoopStack.size(); ++I)
      if (Offset.mentions(LoopStack[I].Var))
        VarFrames.push_back(I);

    // Scalar access: a constant offset of zero is dimension-less (`out[0]`,
    // `*out`); anything else is out of scope.
    if (VarFrames.empty()) {
      int64_t C = 0;
      Info.Ok = Offset.asConstant(C) && C == 0;
      return Info;
    }

    // Strides must be linear, must tile exactly (no residual terms), and
    // must order totally.
    Poly Residual = Offset;
    std::vector<std::pair<size_t, Poly>> Strides;
    for (size_t Frame : VarFrames) {
      std::optional<Poly> S = strideOf(Offset, LoopStack[Frame].Var);
      if (!S || S->isZero())
        return Info;
      Residual = Residual - *S * Poly::symbol(LoopStack[Frame].Var);
      Strides.emplace_back(Frame, *S);
    }
    if (!Residual.isZero())
      return Info;

    // Order by stride, outermost dimension first. compareStrides is only a
    // partial order (symbolically incomparable strides return 0), so
    // std::sort would be undefined behavior on wire-supplied kernels;
    // instead select the strict maximum of the remainder each round and
    // fail on any incomparable pair (ambiguous layout, e.g. the stencil
    // i + j). Ranks are bounded by the loop depth, so O(n^2) is free.
    for (size_t I = 0; I < Strides.size(); ++I) {
      size_t Max = I;
      for (size_t J = I + 1; J < Strides.size(); ++J) {
        int Order = compareStrides(Strides[Max].second, Strides[J].second);
        if (Order == 0)
          return Info;
        if (Order < 0)
          Max = J;
      }
      std::swap(Strides[I], Strides[Max]);
    }
    int64_t Inner = 0;
    if (!Strides.back().second.asConstant(Inner) || Inner != 1)
      return Info; // non-unit innermost stride

    // Extents: the leading dimension spans its loop's index space; every
    // inner dimension is the ratio of adjacent strides.
    for (size_t I = 0; I < Strides.size(); ++I) {
      DimInfo Dim;
      Dim.LoopVar = LoopStack[Strides[I].first].Var;
      if (I == 0) {
        const LoopFrame &Frame = LoopStack[Strides[0].first];
        Dim.Extent = Frame.Extent;
        Dim.ExtentKnown = Frame.ExtentKnown;
      } else {
        std::optional<Poly> Ratio =
            dividePoly(Strides[I - 1].second, Strides[I].second);
        if (!Ratio)
          return Info;
        Dim.Extent = *Ratio;
        Dim.ExtentKnown = true;
      }
      Info.Dims.push_back(std::move(Dim));
    }
    Info.Ok = true;
    return Info;
  }

  void recordAccess(const std::string &Param, const Poly &Offset,
                    bool IsStore, CAssignOp Op, const CExpr *RhsExpr) {
    AccessInfo Info = delinearize(Param, Offset);
    auto [It, Inserted] = Best.emplace(Param, Info);
    if (!Inserted && Info.Ok &&
        (!It->second.Ok || Info.Dims.size() > It->second.Dims.size()))
      It->second = Info;

    if (!IsStore)
      return;
    StoreInfo Store;
    Store.Access = std::move(Info);
    Store.Op = Op;
    if (RhsExpr) {
      Store.Rhs = translateExpr(*RhsExpr);
      const auto *Lit = cDynCast<IntLit>(RhsExpr);
      Store.RhsIsZeroLiteral = Lit && Lit->value() == 0;
    }
    Stores.push_back(std::move(Store));
  }

  /// Records every load from a pointer parameter inside \p E.
  void collectLoads(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::Index: {
      const auto &Ix = cCast<CIndex>(E);
      if (auto Place = evalPlace(E))
        recordAccess(Place->first, Place->second, /*IsStore=*/false,
                     CAssignOp::Plain, nullptr);
      collectLoads(Ix.index());
      return;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      if (U.op() == CUnOp::Deref) {
        if (auto Place = evalPlace(E))
          recordAccess(Place->first, Place->second, /*IsStore=*/false,
                       CAssignOp::Plain, nullptr);
        return;
      }
      collectLoads(U.operand());
      return;
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      collectLoads(B.lhs());
      collectLoads(B.rhs());
      return;
    }
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      collectLoads(A.lhs());
      collectLoads(A.rhs());
      return;
    }
    default:
      return;
    }
  }

  //===------------------------------------------------------------------===//
  // Transliteration into TACO index notation
  //===------------------------------------------------------------------===//

  bool isActiveLoopVar(const std::string &Name) const {
    for (const LoopFrame &Frame : LoopStack)
      if (Frame.Var == Name)
        return true;
    return false;
  }

  /// Renders a delinearized access as `param(i,j,...)`.
  taco::ExprPtr accessExpr(const AccessInfo &Info) {
    if (!Info.Ok)
      return nullptr;
    std::vector<std::string> Indices;
    for (const DimInfo &Dim : Info.Dims)
      Indices.push_back(Dim.LoopVar);
    return std::make_unique<taco::AccessExpr>(Info.Param, std::move(Indices));
  }

  taco::ExprPtr translateExpr(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit:
      return std::make_unique<taco::ConstantExpr>(cCast<IntLit>(E).value());
    case CExpr::Kind::FloatLit:
      return nullptr; // the TACO subset has integer constants only
    case CExpr::Kind::VarRef: {
      const std::string &Name = cCast<VarRef>(E).name();
      if (isActiveLoopVar(Name))
        return nullptr; // index used as data
      auto It = LocalExprs.find(Name);
      if (It != LocalExprs.end())
        return It->second ? It->second->clone() : nullptr;
      if (FloatParams.count(Name) || SizeParams.count(Name))
        return std::make_unique<taco::AccessExpr>(
            Name, std::vector<std::string>());
      return nullptr;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      if (U.op() == CUnOp::Neg) {
        taco::ExprPtr Sub = translateExpr(U.operand());
        return Sub ? std::make_unique<taco::NegateExpr>(std::move(Sub))
                   : nullptr;
      }
      if (U.op() == CUnOp::Deref) {
        auto Place = evalPlace(E);
        return Place ? accessExpr(delinearize(Place->first, Place->second))
                     : nullptr;
      }
      return nullptr;
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      taco::BinOpKind Op;
      switch (B.op()) {
      case CBinOp::Add:
        Op = taco::BinOpKind::Add;
        break;
      case CBinOp::Sub:
        Op = taco::BinOpKind::Sub;
        break;
      case CBinOp::Mul:
        Op = taco::BinOpKind::Mul;
        break;
      case CBinOp::Div:
        Op = taco::BinOpKind::Div;
        break;
      default:
        return nullptr;
      }
      taco::ExprPtr L = translateExpr(B.lhs());
      taco::ExprPtr R = translateExpr(B.rhs());
      if (!L || !R)
        return nullptr;
      return std::make_unique<taco::BinaryExpr>(Op, std::move(L),
                                                std::move(R));
    }
    case CExpr::Kind::Index: {
      auto Place = evalPlace(E);
      return Place ? accessExpr(delinearize(Place->first, Place->second))
                   : nullptr;
    }
    default:
      return nullptr;
    }
  }

  //===------------------------------------------------------------------===//
  // Statement walk
  //===------------------------------------------------------------------===//

  void handleAssign(const CAssign &A) {
    collectLoads(A.rhs());

    // Store through memory.
    if (!cDynCast<VarRef>(&A.lhs())) {
      if (auto Place = evalPlace(A.lhs())) {
        recordAccess(Place->first, Place->second, /*IsStore=*/true, A.op(),
                     &A.rhs());
      } else {
        limit("a store through an untracked pointer");
      }
      return;
    }

    // Assignment to a local scalar: keep both the affine (index) and the
    // transliterated (data) views current.
    const std::string &Name = cCast<VarRef>(A.lhs()).name();
    std::optional<Poly> RhsPoly = evalInt(A.rhs());
    if (A.op() == CAssignOp::Plain) {
      IntVals[Name] = RhsPoly;
    } else if (IntVals.count(Name) && IntVals[Name] && RhsPoly) {
      Poly Old = *IntVals[Name];
      switch (A.op()) {
      case CAssignOp::Add:
        IntVals[Name] = Old + *RhsPoly;
        break;
      case CAssignOp::Sub:
        IntVals[Name] = Old - *RhsPoly;
        break;
      case CAssignOp::Mul:
        IntVals[Name] = Old * *RhsPoly;
        break;
      default:
        IntVals[Name] = std::nullopt;
      }
    } else {
      IntVals[Name] = std::nullopt;
    }

    // Data view: recognize accumulation (`s += e`, `s = s + e`,
    // `s = e + s`) into a local whose current value is the literal zero.
    auto accumulate = [&](const CExpr &Term) {
      auto It = LocalExprs.find(Name);
      bool ZeroInit = false;
      if (It != LocalExprs.end() && It->second)
        if (const auto *C =
                taco::exprDynCast<taco::ConstantExpr>(It->second.get()))
          ZeroInit = !C->isSymbolic() && C->value() == 0;
      if (ZeroInit && !Accumulated.count(Name)) {
        LocalExprs[Name] = translateExpr(Term);
        Accumulated.insert(Name);
      } else {
        LocalExprs[Name] = nullptr; // re-accumulation: out of scope
      }
    };

    if (A.op() == CAssignOp::Add) {
      accumulate(A.rhs());
      return;
    }
    if (A.op() != CAssignOp::Plain) {
      LocalExprs[Name] = nullptr;
      return;
    }
    if (const auto *B = cDynCast<CBinary>(&A.rhs());
        B && B->op() == CBinOp::Add) {
      const auto *L = cDynCast<VarRef>(&B->lhs());
      const auto *R = cDynCast<VarRef>(&B->rhs());
      if (L && L->name() == Name) {
        accumulate(B->rhs());
        return;
      }
      if (R && R->name() == Name) {
        accumulate(B->lhs());
        return;
      }
    }
    LocalExprs[Name] = translateExpr(A.rhs());
    Accumulated.erase(Name);
  }

  void walkExpr(const CExpr &E) {
    if (const auto *A = cDynCast<CAssign>(&E)) {
      handleAssign(*A);
      return;
    }
    if (const auto *I = cDynCast<CIncDec>(&E)) {
      if (const auto *V = cDynCast<VarRef>(&I->target())) {
        auto It = IntVals.find(V->name());
        if (It != IntVals.end() && It->second)
          It->second = *It->second + Poly::constant(I->isIncrement() ? 1 : -1);
        else if (It != IntVals.end())
          It->second = std::nullopt;
        else
          limit("an increment of an untracked variable");
        return;
      }
      limit("an increment through memory");
      return;
    }
    collectLoads(E);
  }

  /// Extracts `(var = start; var < bound; var++)`; Extent is the index-space
  /// size `bound` (or bound+1 for <=).
  struct LoopFrame {
    std::string Var;
    Poly Extent;
    bool ExtentKnown = false;
  };

  bool parseHeader(const CFor &F, LoopFrame &Frame,
                   std::optional<Poly> &Start) {
    // Init: `int v = e` or `v = e` (or absent, with v named by the
    // condition and its current value as start).
    std::string InitVar;
    if (const CStmt *Init = F.init()) {
      if (const auto *D = cDynCast<CDeclStmt>(Init)) {
        InitVar = D->name();
        Start = D->init() ? evalInt(*D->init()) : std::nullopt;
      } else if (const auto *E = cDynCast<CExprStmt>(Init)) {
        if (const auto *A = cDynCast<CAssign>(&E->expr());
            A && A->op() == CAssignOp::Plain) {
          if (const auto *V = cDynCast<VarRef>(&A->lhs())) {
            InitVar = V->name();
            Start = evalInt(A->rhs());
          }
        }
      }
    }

    const auto *Cond = F.cond() ? cDynCast<CBinary>(F.cond()) : nullptr;
    if (!Cond || (Cond->op() != CBinOp::Lt && Cond->op() != CBinOp::Le))
      return false;
    const auto *CondVar = cDynCast<VarRef>(&Cond->lhs());
    if (!CondVar)
      return false;
    if (!InitVar.empty() && CondVar->name() != InitVar)
      return false;
    Frame.Var = CondVar->name();
    if (InitVar.empty()) {
      auto It = IntVals.find(Frame.Var);
      Start = It != IntVals.end() ? It->second : std::nullopt;
    }

    // Step: v++ / ++v / v += 1.
    bool UnitStep = false;
    if (const CExpr *Step = F.step()) {
      if (const auto *I = cDynCast<CIncDec>(Step)) {
        const auto *T = cDynCast<VarRef>(&I->target());
        UnitStep = I->isIncrement() && T && T->name() == Frame.Var;
      } else if (const auto *A = cDynCast<CAssign>(Step)) {
        const auto *T = cDynCast<VarRef>(&A->lhs());
        const auto *One = cDynCast<IntLit>(&A->rhs());
        UnitStep = A->op() == CAssignOp::Add && T &&
                   T->name() == Frame.Var && One && One->value() == 1;
      }
    }
    if (!UnitStep)
      return false;

    std::optional<Poly> Bound = evalInt(Cond->rhs());
    if (Bound) {
      Frame.Extent = Cond->op() == CBinOp::Le ? *Bound + Poly::constant(1)
                                              : *Bound;
      Frame.ExtentKnown = true;
    }
    return true;
  }

  void walkFor(const CFor &F) {
    LoopFrame Frame;
    std::optional<Poly> Start;
    if (!parseHeader(F, Frame, Start)) {
      limit("a loop without a recognizable `(v = s; v < bound; v++)` header");
      return;
    }
    // A non-zero (or unknown) start is fine for shape inference — the
    // extent is the bound either way — but poisons the transliteration:
    // `for (i = 1; ...)` never touches index 0, which index notation
    // cannot express.
    if (!Start || !Start->isZero())
      limit("a loop starting at a non-zero index");

    IntVals[Frame.Var] = Poly::symbol(Frame.Var);
    LoopStack.push_back(Frame);
    walkStmt(F.body());
    LoopStack.pop_back();
    // After the loop the variable's closed form is gone; treat as unknown.
    IntVals[Frame.Var] = std::nullopt;
  }

  void walkStmt(const CStmt &S) {
    switch (S.kind()) {
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(S);
      if (D.type().isPointer()) {
        // Local pointers stay untracked; kernels iterating through them
        // keep their analysis-derived ranks but lose shape names and the
        // transliteration.
        limit("a local pointer variable");
        IntVals[D.name()] = std::nullopt;
        LocalExprs[D.name()] = nullptr;
        return;
      }
      if (D.init()) {
        collectLoads(*D.init());
        IntVals[D.name()] = evalInt(*D.init());
        LocalExprs[D.name()] = translateExpr(*D.init());
      } else {
        IntVals[D.name()] = std::nullopt;
        LocalExprs[D.name()] = nullptr;
      }
      Accumulated.erase(D.name());
      return;
    }
    case CStmt::Kind::ExprStmt:
      walkExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements())
        walkStmt(*Sub);
      return;
    case CStmt::Kind::For:
      walkFor(cCast<CFor>(S));
      return;
    case CStmt::Kind::While:
      limit("a while loop");
      return;
    case CStmt::Kind::If:
      limit("a conditional");
      return;
    case CStmt::Kind::Return:
    case CStmt::Kind::Empty:
      return;
    }
  }

  const CFunction &Fn;
  std::set<std::string> PointerParams;
  std::set<std::string> SizeParams;
  std::set<std::string> FloatParams;

  /// Affine values of locals and active loop variables; disengaged = not
  /// representable.
  std::map<std::string, std::optional<Poly>> IntVals;

  /// Transliterated data values of locals; null = not representable.
  std::map<std::string, taco::ExprPtr> LocalExprs;
  std::set<std::string> Accumulated;

  std::vector<LoopFrame> LoopStack;

  std::map<std::string, AccessInfo> Best;
  std::vector<StoreInfo> Stores;
  std::string Limitation;
};

//===----------------------------------------------------------------------===//
// Reference translation
//===----------------------------------------------------------------------===//

TranslationResult translateFromWalk(const NestWalker &Walker,
                                    const analysis::KernelSummary &Summary) {
  TranslationResult Result;

  // Any statement the walker could not model may change the kernel's
  // semantics (a conditional store, a while loop, pointer aliasing) — a
  // transliteration of just the statements it *did* model would be a
  // confidently wrong oracle reference. Refuse instead; the caller's
  // oracle_hint covers these kernels honestly.
  if (!Walker.limitation().empty()) {
    Result.Error = "kernel contains " + Walker.limitation();
    return Result;
  }

  // Every store must be modeled before any is trusted: a `-=`/`*=` store,
  // an untranslatable right-hand side, a non-affine subscript, or a write
  // to a second array all carry semantics the transliteration would
  // silently drop, turning "refuse and ask for a hint" into a confidently
  // wrong reference.
  for (const StoreInfo &Store : Walker.stores()) {
    if (Store.Access.Param != Summary.OutputParam) {
      Result.Error = "a store to '" + Store.Access.Param +
                     "' besides the output parameter";
      return Result;
    }
    if (!Store.Access.Ok) {
      Result.Error = "a store with a non-affine or ambiguous subscript";
      return Result;
    }
    if (Store.Op != CAssignOp::Plain && Store.Op != CAssignOp::Add) {
      Result.Error = "a compound store other than +=";
      return Result;
    }
    if (!Store.Rhs) {
      Result.Error =
          "a store whose right-hand side has no index-notation form";
      return Result;
    }
  }

  // The main store: the last reduction (compound +=) into the output wins
  // over plain stores — zero-initializations (`out[i] = 0`) are setup, not
  // semantics. Otherwise the last plain store is the kernel.
  const StoreInfo *Main = nullptr;
  for (const StoreInfo &Store : Walker.stores()) {
    if (Store.Op == CAssignOp::Add) {
      Main = &Store;
    } else if ((!Main || Main->Op != CAssignOp::Add) &&
               !(Store.RhsIsZeroLiteral && Main))
      Main = &Store;
  }
  if (!Main) {
    Result.Error = "no transliterable store to the output parameter";
    return Result;
  }

  std::vector<std::string> LhsIndices;
  for (const DimInfo &Dim : Main->Access.Dims)
    LhsIndices.push_back(Dim.LoopVar);
  taco::Program Program(
      taco::AccessExpr(Summary.OutputParam, std::move(LhsIndices)),
      Main->Rhs->clone());

  std::string Malformed = taco::checkWellFormed(Program);
  if (!Malformed.empty()) {
    Result.Error = "transliteration is not a well-formed TACO program: " +
                   Malformed;
    return Result;
  }
  Result.Program = std::move(Program);
  return Result;
}

/// Renders a symbolic extent as an ArgSpec shape entry: a size-parameter
/// name, or a decimal literal for constant-shaped dimensions.
bool extentName(const DimInfo &Dim, std::string &Out) {
  if (!Dim.ExtentKnown)
    return false;
  int64_t C = 0;
  if (Dim.Extent.asConstant(C)) {
    if (C < 1)
      return false;
    Out = std::to_string(C);
    return true;
  }
  const auto &Terms = Dim.Extent.terms();
  if (Terms.size() == 1 && Terms.begin()->first.size() == 1 &&
      Terms.begin()->second == 1) {
    Out = Terms.begin()->first.front();
    return true;
  }
  return false;
}

} // namespace

TranslationResult
api::referenceTranslation(const CFunction &Fn,
                          const analysis::KernelSummary &Summary) {
  NestWalker Walker(Fn);
  Walker.run();
  return translateFromWalk(Walker, Summary);
}

IngestResult api::ingestKernel(const std::string &CSource,
                               const std::string &Name,
                               const std::string &OracleHint) {
  IngestResult Result;
  auto fail = [&Result](IngestStatus Status, std::string Error) {
    Result.Status = Status;
    Result.Error = std::move(Error);
    return Result;
  };

  CParseResult Parsed = cfront::parseCFunction(CSource);
  if (!Parsed.ok())
    return fail(IngestStatus::ParseError, "C parse error: " + Parsed.Error);
  const CFunction &Fn = *Parsed.Function;

  analysis::KernelSummary Summary = analysis::analyzeKernel(Fn);
  if (Summary.OutputParam.empty())
    return fail(IngestStatus::AnalysisError,
                "kernel never stores through a pointer parameter, so no "
                "output tensor can be identified");

  NestWalker Walker(Fn);
  Walker.run();

  // Synthesize the argument specification in declaration order.
  bench::Benchmark B;
  B.Name = Name.empty() ? Fn.Name : Name;
  B.Category = "inline";
  B.CSource = CSource;

  std::vector<std::string> SizeParamNames;
  for (const CParam &P : Fn.Params)
    if (!P.Type.isPointer() && !P.Type.isFloating())
      SizeParamNames.push_back(P.Name);

  for (const CParam &P : Fn.Params) {
    if (!P.Type.isPointer()) {
      B.Args.push_back(P.Type.isFloating() ? bench::ArgSpec::num(P.Name)
                                           : bench::ArgSpec::size(P.Name));
      continue;
    }

    std::vector<std::string> Shape;
    bool ShapeOk = false;
    auto It = Walker.bestAccesses().find(P.Name);
    if (It != Walker.bestAccesses().end() && It->second.Ok) {
      ShapeOk = true;
      for (const DimInfo &Dim : It->second.Dims) {
        std::string DimName;
        if (!extentName(Dim, DimName)) {
          ShapeOk = false;
          break;
        }
        Shape.push_back(DimName);
      }
    }
    if (!ShapeOk) {
      // The syntactic walk could not name the dimensions (pointer walking,
      // conditionals); fall back to the symbolic executor's rank and — when
      // the kernel has exactly one size parameter — size every dimension by
      // it, the convention of every such kernel in the wild.
      auto RankIt = Summary.ParamDims.find(P.Name);
      if (RankIt == Summary.ParamDims.end())
        return fail(IngestStatus::AnalysisError,
                    "parameter '" + P.Name +
                        "' is never accessed; cannot infer its shape");
      if (RankIt->second > 0 && SizeParamNames.size() != 1)
        return fail(IngestStatus::AnalysisError,
                    "cannot infer the shape of '" + P.Name +
                        "' from the loop nest (" +
                        (Walker.limitation().empty()
                             ? std::string("irregular subscripts")
                             : Walker.limitation()) +
                        "), and the kernel does not have exactly one size "
                        "parameter to fall back on");
      Shape.assign(static_cast<size_t>(RankIt->second),
                   SizeParamNames.empty() ? "" : SizeParamNames.front());
    }
    B.Args.push_back(bench::ArgSpec::array(P.Name, std::move(Shape),
                                           P.Name == Summary.OutputParam));
  }

  // The reference translation for the candidate oracle: an explicit hint
  // wins (the caller knows their kernel), transliteration covers the
  // indexed-form majority, and anything else must say why it failed.
  if (!OracleHint.empty()) {
    taco::ParseResult Hint = taco::parseTacoProgram(OracleHint);
    if (!Hint.ok())
      return fail(IngestStatus::AnalysisError,
                  "oracle_hint is not a TACO program: " + Hint.Error);
    std::string Malformed = taco::checkWellFormed(*Hint.Prog);
    if (!Malformed.empty())
      return fail(IngestStatus::AnalysisError,
                  "oracle_hint is not well-formed: " + Malformed);
    B.GroundTruth = taco::printProgram(*Hint.Prog);
  } else {
    TranslationResult Translation = translateFromWalk(Walker, Summary);
    if (!Translation.ok())
      return fail(IngestStatus::AnalysisError,
                  "cannot derive a reference translation for the candidate "
                  "oracle (" +
                      Translation.Error +
                      "); supply \"oracle_hint\" with a TACO sketch of the "
                      "kernel");
    B.GroundTruth = taco::printProgram(*Translation.Program);
  }

  // Bound what a wire-supplied kernel can make this process allocate:
  // constant extents are attacker-chosen literals, and example generation
  // materializes every tensor. Size parameters stay small (the harness
  // picks 2..4), so only numeric dimensions can explode; budget them in
  // floating point (no overflow) before anything allocates.
  constexpr double MaxElementsPerTensor = 1 << 16;
  for (const bench::ArgSpec &Arg : B.Args) {
    double Elements = 1;
    for (const std::string &Dim : Arg.Shape)
      Elements *= (!Dim.empty() &&
                   Dim.find_first_not_of("0123456789") == std::string::npos)
                      ? std::stod(Dim)
                      : 4 /* max harness size-parameter value */;
    if (Elements > MaxElementsPerTensor)
      return fail(IngestStatus::AnalysisError,
                  "the inferred shape of '" + Arg.Name +
                      "' exceeds the inline-kernel size budget (" +
                      std::to_string(static_cast<int64_t>(
                          MaxElementsPerTensor)) +
                      " elements per tensor)");
  }

  // Smoke-execute the kernel once under the inferred shapes: a wrong shape
  // or an interpreter-hostile construct should fail ingestion with a clear
  // message, not surface later as a bogus pipeline result.
  Rng Probe(0xA11CE);
  if (validate::generateExamples(B, Fn, 1, Probe).empty())
    return fail(IngestStatus::AnalysisError,
                "the kernel does not execute under the inferred argument "
                "shapes (inferred " +
                    B.GroundTruth + ")");

  Result.Kernel = std::move(B);
  return Result;
}
