//===- api/Endpoint.cpp - The one entry point into the service ------------===//

#include "api/Endpoint.h"

#include "api/KernelIngest.h"
#include "search/WorkerPool.h"
#include "support/StringUtils.h"
#include "taco/Printer.h"
#include "validate/IoExamples.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <chrono>

using namespace stagg;
using namespace stagg::api;

bool PendingLift::ready() {
  if (Immediate || !Raw.valid())
    return true; // get() on an empty pending lift fails fast, not blocks
  return Raw.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

LiftResponse PendingLift::get() {
  if (Immediate)
    return std::move(Resolved);
  if (!Raw.valid()) {
    // Default-constructed or already-consumed: answer deterministically
    // instead of hitting std::future's undefined behavior.
    LiftResponse Response;
    Response.St = Status::BadRequest;
    Response.Error = "empty pending lift (nothing was submitted, or the "
                     "response was already taken)";
    return Response;
  }
  serve::LiftResponse Raw = this->Raw.get();
  LiftResponse Response;
  Response.St = Status::Ok;
  Response.Name = std::move(Raw.Benchmark);
  Response.Category = std::move(Raw.Category);
  Response.Result = std::move(Raw.Result);
  Response.CacheHit = Raw.CacheHit;
  Response.Applied = std::move(Resolved.Applied);
  Response.Diagnostics = std::move(Resolved.Diagnostics);
  return Response;
}

Endpoint::Endpoint(serve::ServiceConfig Config, serve::OracleFactory Factory)
    : Base(Config.Config), Service(std::move(Config), std::move(Factory)) {}

namespace {

/// Overflow-checked cell count of \p Shape. False on a non-positive extent
/// or a product that does not fit int64_t — sizes are client-controlled on
/// the execute path, and a wrapped product would under-allocate the buffer
/// the interpreter then writes a full shape-odometer of cells into.
bool checkedCellCount(const std::vector<int64_t> &Shape, int64_t &Cells) {
  Cells = 1;
  for (int64_t D : Shape)
    if (D <= 0 || __builtin_mul_overflow(Cells, D, &Cells))
      return false;
  return true;
}

/// "did you mean" over the registry, for mistyped names.
std::string nearestBenchmark(const std::string &Name) {
  std::vector<std::string> Names;
  for (const bench::Benchmark &B : bench::allBenchmarks())
    Names.push_back(B.Name);
  return closestMatch(Name, Names);
}

} // namespace

PendingLift Endpoint::immediateError(Status St, std::string Name,
                                     std::string Error,
                                     const ConfigPatch &Applied) {
  PendingLift Pending;
  Pending.Immediate = true;
  Pending.Resolved.St = St;
  Pending.Resolved.Name = std::move(Name);
  Pending.Resolved.Error = std::move(Error);
  Pending.Resolved.Applied = Applied;
  return Pending;
}

Endpoint::Admission Endpoint::admit(const LiftRequest &Request) {
  Admission Out;
  auto Fail = [&](PendingLift Pending) {
    Out.Immediate = true;
    Out.Pending = std::move(Pending);
    return std::move(Out);
  };

  if (!Request.RegistryName.empty() && Request.isInline())
    return Fail(immediateError(Status::BadRequest, Request.Name,
                               "a request carries either a registry name "
                               "or an inline kernel, not both",
                               Request.Patch));
  if (Request.RegistryName.empty() && !Request.isInline())
    return Fail(immediateError(Status::BadRequest, Request.Name,
                               "a request needs a registry \"name\" or an "
                               "inline \"kernel\"",
                               Request.Patch));
  if (!Request.isInline() && !Request.OracleHint.empty())
    return Fail(immediateError(Status::BadRequest, Request.RegistryName,
                               "an oracle hint only applies to an inline "
                               "kernel (registry benchmarks carry their own "
                               "reference)",
                               Request.Patch));

  Out.Effective = Request.Patch.apply(Base);

  if (Request.isInline()) {
    IngestResult Ingested = ingestCached(Request);
    if (!Ingested.ok()) {
      Status St = Status::IngestError;
      if (Ingested.Status == IngestStatus::ParseError)
        St = Status::KernelParseError;
      else if (Ingested.Status == IngestStatus::UnsafeKernel)
        St = Status::UnsafeKernel;
      PendingLift Pending = immediateError(
          St, Request.Name.empty() ? "inline" : Request.Name, Ingested.Error,
          Request.Patch);
      Pending.Resolved.Diagnostics = std::move(Ingested.Findings);
      return Fail(std::move(Pending));
    }
    Out.Query = std::move(Ingested.Kernel);
    Out.Warnings = std::move(Ingested.Findings); // warnings survive clean()
  } else {
    const bench::Benchmark *Found = bench::findBenchmark(Request.RegistryName);
    if (!Found) {
      std::string Error =
          "unknown benchmark '" + Request.RegistryName + "'";
      std::string Hint = nearestBenchmark(Request.RegistryName);
      if (!Hint.empty())
        Error += " — did you mean '" + Hint + "'?";
      return Fail(immediateError(Status::UnknownBenchmark,
                                 Request.RegistryName, Error, Request.Patch));
    }
    Out.Query = *Found;
  }
  return Out;
}

PendingLift Endpoint::submit(const LiftRequest &Request) {
  Admission Admitted = admit(Request);
  if (Admitted.Immediate)
    return std::move(Admitted.Pending);

  PendingLift Pending;
  Pending.Resolved.Applied = Request.Patch;
  Pending.Resolved.Diagnostics = std::move(Admitted.Warnings);
  Pending.Raw =
      Service.submit(std::move(Admitted.Query), Admitted.Effective);
  return Pending;
}

bool Endpoint::trySubmit(const LiftRequest &Request,
                         serve::SubmitHooks Hooks, PendingLift &Out) {
  Admission Admitted = admit(Request);
  if (Admitted.Immediate) {
    Out = std::move(Admitted.Pending);
    return true;
  }

  std::future<serve::LiftResponse> Raw;
  if (!Service.trySubmit(std::move(Admitted.Query), Admitted.Effective,
                         std::move(Hooks), Raw))
    return false; // queue full; the ingest memo keeps the retry cheap

  PendingLift Pending;
  Pending.Resolved.Applied = Request.Patch;
  Pending.Resolved.Diagnostics = std::move(Admitted.Warnings);
  Pending.Raw = std::move(Raw);
  Out = std::move(Pending);
  return true;
}

IngestResult Endpoint::ingestCached(const LiftRequest &Request) {
  std::string Key = normalizeKernelText(Request.KernelSource) + '\x1f' +
                    Request.Name + '\x1f' + Request.OracleHint;
  {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    auto It = IngestMemo.find(Key);
    if (It != IngestMemo.end())
      return It->second;
  }
  IngestResult Ingested =
      ingestKernel(Request.KernelSource, Request.Name, Request.OracleHint);
  {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    if (IngestMemo.size() >= 256)
      IngestMemo.clear();
    IngestMemo.emplace(Key, Ingested);
  }
  return Ingested;
}

LiftResponse Endpoint::lift(const LiftRequest &Request) {
  return submit(Request).get();
}

std::shared_ptr<const Endpoint::CompiledKernel>
Endpoint::compiledFor(const taco::Program &Concrete) {
  std::string Key = taco::printProgram(Concrete);
  {
    std::lock_guard<std::mutex> Lock(VmCacheMutex);
    auto It = VmCache.find(Key);
    if (It != VmCache.end()) {
      ++VmStats.Hits;
      return It->second;
    }
    ++VmStats.Misses;
  }
  auto K = std::make_shared<CompiledKernel>();
  K->Program = Concrete; // deep clone; both Codes point into *this* copy
  K->Code = vm::compileProgram(K->Program);
  // A concrete lifted program's constants are literals nothing rewrites, so
  // the optimizer may merge equal-valued constant registers.
  vm::OptimizeOptions OptOpts;
  OptOpts.FreezeConstants = true;
  K->Opt = vm::optimize(K->Code, OptOpts);
  std::lock_guard<std::mutex> Lock(VmCacheMutex);
  if (VmCache.size() >= 256) {
    VmCache.clear(); // same wholesale policy as the ingest memo
    ++VmStats.Evictions;
  }
  return VmCache.emplace(std::move(Key), std::move(K)).first->second;
}

Endpoint::VmCacheStats Endpoint::vmCacheStats() const {
  std::lock_guard<std::mutex> Lock(VmCacheMutex);
  VmCacheStats Out = VmStats;
  Out.Entries = VmCache.size();
  Out.Capacity = 256;
  return Out;
}

ExecuteOutcome Endpoint::executeLifted(const LiftRequest &Request,
                                       const ExecuteIo &Io,
                                       const LiftResponse &Response) {
  ExecuteOutcome Out;
  Out.Cached = Response.CacheHit;
  if (!Response.ok()) {
    Out.Error = Response.Error;
    return Out;
  }
  const core::LiftResult &R = Response.Result;
  if (!R.Solved) {
    Out.Error = "kernel was not lifted: " +
                (R.FailReason.empty() ? std::string("search failed")
                                      : R.FailReason);
    return Out;
  }
  Out.Expr = taco::printProgram(R.Concrete);

  // The argument specs that shape the posted inputs, resolved the same way
  // admission resolved them (inline kernels hit the ingest memo).
  bench::Benchmark Query;
  if (Request.isInline()) {
    IngestResult Ingested = ingestCached(Request);
    if (!Ingested.ok()) {
      Out.Error = Ingested.Error;
      return Out;
    }
    Query = std::move(Ingested.Kernel);
  } else {
    const bench::Benchmark *Found = bench::findBenchmark(Request.RegistryName);
    if (!Found) {
      Out.Error = "unknown benchmark '" + Request.RegistryName + "'";
      return Out;
    }
    Query = *Found;
  }
  const bench::ArgSpec *OutArg = Query.outputArg();
  if (!OutArg) {
    Out.Error = "kernel has no output argument";
    return Out;
  }

  // Materialize every argument; arrays not posted stay zero (the output
  // buffer's usual pre-state), absent size parameters default to 1. Every
  // cell count is overflow-checked and budgeted *before* its buffer is
  // allocated: sizes come off the wire, and the request must fail as a
  // result error, never as a wrapped allocation or an OOM kill.
  const int64_t MaxCells = Base.Serve.MaxExecuteCells;
  int64_t TotalCells = 0;
  std::map<std::string, taco::Tensor<double>> Operands;
  for (const bench::ArgSpec &Arg : Query.Args) {
    if (Arg.K == bench::ArgSpec::Kind::Array) {
      std::vector<int64_t> Shape = validate::resolveShape(Arg, Io.Sizes);
      int64_t Cells = 0;
      if (!checkedCellCount(Shape, Cells) ||
          __builtin_add_overflow(TotalCells, Cells, &TotalCells)) {
        Out.Error = "argument '" + Arg.Name +
                    "' has an invalid or overflowing cell count for the "
                    "posted sizes";
        return Out;
      }
      if (MaxCells > 0 && TotalCells > MaxCells) {
        Out.Error = "request materializes more than " +
                    std::to_string(MaxCells) +
                    " tensor cells (--max-execute-cells); argument '" +
                    Arg.Name + "' pushed it over the limit";
        return Out;
      }
      auto It = Io.Arrays.find(Arg.Name);
      if (It != Io.Arrays.end() &&
          It->second.size() != static_cast<size_t>(Cells)) {
        Out.Error = "input '" + Arg.Name + "' carries " +
                    std::to_string(It->second.size()) +
                    " values, expected " + std::to_string(Cells);
        return Out;
      }
      taco::Tensor<double> T(Shape);
      if (It != Io.Arrays.end())
        T.flat() = It->second;
      Operands.emplace(Arg.Name, std::move(T));
    } else if (Arg.K == bench::ArgSpec::Kind::SizeScalar) {
      auto It = Io.Sizes.find(Arg.Name);
      Operands.emplace(Arg.Name,
                       taco::Tensor<double>::scalar(
                           It != Io.Sizes.end()
                               ? static_cast<double>(It->second)
                               : 1.0));
    } else {
      auto It = Io.Scalars.find(Arg.Name);
      if (It != Io.Scalars.end())
        Operands.emplace(Arg.Name, taco::Tensor<double>::scalar(It->second));
      // Absent scalars the program reads fail bind() as "unbound tensor".
    }
  }

  std::shared_ptr<const CompiledKernel> K = compiledFor(R.Concrete);
  if (!K->Code.ok()) {
    Out.Error = "lifted program does not lower to VM code: " +
                K->Code.error();
    return Out;
  }
  core::StaggConfig Effective = Request.Patch.apply(Base);
  const vm::Code &Code = Effective.UseVmOpt ? K->Opt : K->Code;
  std::vector<int64_t> OutShape = validate::resolveShape(*OutArg, Io.Sizes);

  // Tile when the request asks for threads and the output is big enough to
  // amortize the per-tile spawn + bind: disjoint row ranges of the
  // outermost dimension, one interpreter per tile over the shared Code,
  // every cell written exactly once at its serial position — bit-identical
  // to the serial pass by construction.
  int64_t OutCells = 0;
  checkedCellCount(OutShape, OutCells); // arg loop above already validated
  const int64_t Rows = OutShape.empty() ? 0 : OutShape[0];
  const int Threads =
      search::resolveThreads(Effective.Serve.ExecuteThreads);
  const int Tiles = static_cast<int>(
      std::min<int64_t>(Threads, Rows > 0 ? Rows : 1));
  if (Tiles > 1 && OutCells >= Effective.Serve.ExecuteTileMinCells) {
    taco::Tensor<double> Output(OutShape);
    std::vector<double> &Flat = Output.flat();
    std::vector<std::string> TileErrors(static_cast<size_t>(Tiles));
    search::WorkerPool Pool;
    Pool.run(Tiles, [&](int Worker) {
      vm::Interpreter<double> Tile(Code);
      if (!Tile.bindMap(Operands, OutShape)) {
        TileErrors[static_cast<size_t>(Worker)] = Tile.error();
        return;
      }
      Tile.evaluateRows(Flat, Rows * Worker / Tiles,
                        Rows * (Worker + 1) / Tiles);
    });
    for (const std::string &E : TileErrors)
      if (!E.empty()) {
        Out.Error = "failed to bind inputs: " + E;
        return Out;
      }
    Out.Shape = Output.shape();
    Out.Data = std::move(Output.flat());
    Out.Ok = true;
    return Out;
  }

  vm::Interpreter<double> Interp(Code);
  if (!Interp.bindMap(Operands, OutShape)) {
    Out.Error = "failed to bind inputs: " + Interp.error();
    return Out;
  }
  taco::EinsumResult<double> Result = Interp.evaluate();
  if (!Result.Ok) {
    Out.Error = "execution failed: " + Result.Error;
    return Out;
  }
  Out.Shape = Result.Value.shape();
  Out.Data = Result.Value.flat();
  Out.Ok = true;
  return Out;
}
