//===- api/SocketService.cpp - Protocol sessions over the socket ----------===//

#include "api/SocketService.h"

using namespace stagg;
using namespace stagg::api;
using support::Json;

void SocketService::onFrame(serve::SocketClient &Client,
                            const std::string &Line) {
  Session &S = Sessions[Client.id()];
  SocketFrame Frame = parseSocketFrame(Line);

  switch (Frame.K) {
  case SocketFrame::Kind::Invalid:
    Client.send(renderErrorEvent(Frame.IdJson, Frame.Error));
    return;

  case SocketFrame::Kind::Stats:
    Client.send(statsEvent());
    return;

  case SocketFrame::Kind::V1: {
    uint64_t Slot = S.NextSlotToAssign++;
    if (!Frame.V1.ok()) {
      // The stdin loop's discipline: the error joins the window as an
      // already-rendered line and prints in admission order.
      Item Meta;
      Meta.Slot = Slot;
      markReady(S, Meta, renderProtocolError(Frame.V1.Error));
      flush(Client.id());
      return;
    }
    Item Meta;
    Meta.Slot = Slot;
    Meta.Format = Frame.V1.Format;
    Meta.Name = Frame.V1.Request.RegistryName.empty()
                    ? Frame.V1.Request.Name
                    : Frame.V1.Request.RegistryName;
    Meta.Request = std::move(Frame.V1.Request);
    S.Waiting.push_back(std::move(Meta));
    Client.notePending(+1);
    pump(Client.id());
    return;
  }

  case SocketFrame::Kind::Execute: {
    Item Meta;
    Meta.Slot = S.NextSlotToAssign++;
    Meta.V2 = true;
    Meta.Format = RequestFormat::JsonV1;
    Meta.IdJson = Frame.IdJson;
    Meta.Name = Frame.Exec.RegistryName.empty() ? Frame.Exec.Name
                                                : Frame.Exec.RegistryName;
    Meta.Request = std::move(Frame.Exec);
    Meta.Execute = true;
    Meta.Io = std::move(Frame.Io);
    S.Waiting.push_back(std::move(Meta));
    Client.notePending(+1);
    pump(Client.id());
    return;
  }

  case SocketFrame::Kind::Batch:
    break;
  }

  uint64_t BatchKey = NextBatchKey++;
  Batch B;
  B.IdJson = Frame.IdJson;
  B.Total = static_cast<int>(Frame.Items.size());
  B.Remaining = B.Total;

  for (size_t I = 0; I < Frame.Items.size(); ++I) {
    ParsedRequest &Parsed = Frame.Items[I];
    Item Meta;
    Meta.Slot = S.NextSlotToAssign++;
    Meta.Seq = static_cast<int>(I);
    Meta.BatchKey = BatchKey;
    Meta.V2 = true;
    Meta.Progress = Frame.Progress;
    Meta.Format = RequestFormat::JsonV1;
    Meta.IdJson = Frame.IdJson;
    Meta.Name = Parsed.Request.RegistryName.empty()
                    ? Parsed.Request.Name
                    : Parsed.Request.RegistryName;

    B.BeyondSlot = Meta.Slot + 1;
    if (!Parsed.ok()) {
      LiftResponse Bad;
      Bad.St = Status::BadRequest;
      Bad.Name = Meta.Name;
      Bad.Error = Parsed.Error;
      markReady(S, Meta, renderLine(Meta, Bad));
      // markReady found no batch entry yet; settle the count by hand.
      --B.Remaining;
      continue;
    }
    if (Frame.Progress)
      Client.send(
          renderProgressEvent(Frame.IdJson, Meta.Seq, Meta.Name, "queued"));
    Meta.Request = std::move(Parsed.Request);
    S.Waiting.push_back(std::move(Meta));
    Client.notePending(+1);
  }
  if (B.Total == 0)
    B.BeyondSlot = S.NextSlotToAssign;
  S.Batches.emplace(BatchKey, std::move(B));

  pump(Client.id());
  flush(Client.id());
}

void SocketService::pump(uint64_t ClientId) {
  auto SessionIt = Sessions.find(ClientId);
  if (SessionIt == Sessions.end())
    return;
  Session &S = SessionIt->second;
  serve::SocketClient *Client = Server->client(ClientId);
  if (!Client)
    return;

  while (!S.Waiting.empty()) {
    Item &Front = S.Waiting.front();
    uint64_t Slot = Front.Slot;

    serve::SubmitHooks Hooks;
    serve::SocketServer *Srv = Server;
    SocketService *Self = this;
    Hooks.OnSettled = [Self, Srv, ClientId, Slot] {
      Srv->post([Self, ClientId, Slot] { Self->onSettled(ClientId, Slot); });
    };
    if (Front.V2 && Front.Progress)
      Hooks.Progress = [Self, Srv, ClientId, Slot](const char *Phase) {
        std::string Copy(Phase);
        Srv->post([Self, ClientId, Slot, Copy] {
          Self->onProgress(ClientId, Slot, Copy);
        });
      };

    PendingLift Pending;
    if (!Lifter.trySubmit(Front.Request, std::move(Hooks), Pending))
      break; // queue full; a completion will pump again

    Item Meta = std::move(Front);
    S.Waiting.pop_front();
    Client->notePending(-1);
    if (!Meta.Execute)
      Meta.Request = LiftRequest(); // the service owns its copy now

    if (Pending.ready()) {
      // Admission error (bad request, unknown name, ingest refusal):
      // resolved without ever reaching the queue. Execute items still owe
      // their evaluation — that runs on the execute worker, with the slot
      // held in the client's in-flight window until the result flushes.
      LiftResponse Response = Pending.get();
      if (Meta.Execute) {
        Client->beginRequest();
        dispatchExecute(ClientId, std::move(Meta), std::move(Response));
      } else {
        markReady(S, Meta, renderLine(Meta, Response));
      }
      continue;
    }

    Client->beginRequest();
    if (Meta.V2 && Meta.Progress)
      Client->send(renderProgressEvent(Meta.IdJson, Meta.Seq, Meta.Name,
                                       "ingested"));
    uint64_t MetaSlot = Meta.Slot;
    S.InFlight.emplace(MetaSlot,
                       InFlightItem{std::move(Pending), std::move(Meta)});
  }

  // An admission can resolve instantly — immediate errors, and lifts whose
  // worker finished before ready() was polled (sub-millisecond cache hits
  // do). Their OnSettled post finds no InFlight entry, so this is the only
  // flush they get.
  flush(ClientId);
}

void SocketService::onSettled(uint64_t ClientId, uint64_t Slot) {
  // The session may be gone (client disconnected mid-request) or the slot
  // already resolved (sub-millisecond lifts flushed straight from pump).
  // Either way the completion still freed a service-queue slot, so the
  // stalled-backlog pump below must run — an orphaned completion is the
  // only wakeup a queue-full backlog may ever get.
  auto SessionIt = Sessions.find(ClientId);
  if (SessionIt != Sessions.end()) {
    Session &S = SessionIt->second;
    auto It = S.InFlight.find(Slot);
    if (It != S.InFlight.end()) {
      LiftResponse Response = It->second.Pending.get();
      Item Meta = std::move(It->second.Meta);
      S.InFlight.erase(It);

      if (Meta.Execute) {
        // Evaluation runs on the execute worker, not here on the loop
        // thread; the beginRequest from pump stays held until the worker's
        // result flushes (finishExecute), so drain waits for it.
        dispatchExecute(ClientId, std::move(Meta), std::move(Response));
      } else {
        if (serve::SocketClient *Client = Server->client(ClientId))
          Client->endRequest();
        markReady(S, Meta, renderLine(Meta, Response));
        flush(ClientId);
      }
    }
  }

  for (auto &[Id, Other] : Sessions)
    if (!Other.Waiting.empty())
      pump(Id);
}

void SocketService::onProgress(uint64_t ClientId, uint64_t Slot,
                               const std::string &Phase) {
  auto SessionIt = Sessions.find(ClientId);
  if (SessionIt == Sessions.end())
    return;
  auto It = SessionIt->second.InFlight.find(Slot);
  if (It == SessionIt->second.InFlight.end())
    return;
  const Item &Meta = It->second.Meta;
  if (serve::SocketClient *Client = Server->client(ClientId))
    Client->send(renderProgressEvent(Meta.IdJson, Meta.Seq, Meta.Name,
                                     Phase.c_str()));
}

void SocketService::markReady(Session &S, const Item &Meta,
                              std::string Line) {
  S.Ready.emplace(Meta.Slot, std::move(Line));
  if (Meta.BatchKey != 0) {
    auto It = S.Batches.find(Meta.BatchKey);
    if (It != S.Batches.end())
      --It->second.Remaining;
  }
}

void SocketService::flush(uint64_t ClientId) {
  auto SessionIt = Sessions.find(ClientId);
  if (SessionIt == Sessions.end())
    return;
  Session &S = SessionIt->second;
  serve::SocketClient *Client = Server->client(ClientId);
  if (!Client)
    return;

  auto It = S.Ready.find(S.NextSlotToEmit);
  while (It != S.Ready.end()) {
    Client->send(std::move(It->second));
    S.Ready.erase(It);
    ++S.NextSlotToEmit;
    It = S.Ready.find(S.NextSlotToEmit);
  }

  for (auto BatchIt = S.Batches.begin(); BatchIt != S.Batches.end();) {
    Batch &B = BatchIt->second;
    if (B.Remaining == 0 && S.NextSlotToEmit >= B.BeyondSlot) {
      Client->send(renderDoneEvent(B.IdJson, B.Total));
      BatchIt = S.Batches.erase(BatchIt);
    } else {
      ++BatchIt;
    }
  }
}

std::string SocketService::renderLine(const Item &Meta,
                                      const LiftResponse &Response) {
  if (Meta.V2)
    return renderResponseEvent(Meta.IdJson, Meta.Seq, Response);
  if (Meta.Format == RequestFormat::JsonV1)
    return renderResponse(Response);
  // Legacy text rendering, byte-compatible with the stdin loop.
  if (!Response.ok())
    return Response.Name + ": ERROR unknown benchmark (try `stagg --list`)";
  return core::describeResult(Response.Name, Response.Result) +
         (Response.CacheHit ? " [cached]" : "");
}

void SocketService::dispatchExecute(uint64_t ClientId, Item Meta,
                                    LiftResponse Response) {
  std::lock_guard<std::mutex> Lock(ExecMutex);
  if (!ExecWorker.joinable())
    ExecWorker = std::thread([this] { executeLoop(); });
  ExecQueue.push_back(
      ExecJob{ClientId, std::move(Meta), std::move(Response)});
  ExecWake.notify_one();
}

void SocketService::executeLoop() {
  for (;;) {
    ExecJob Job;
    {
      std::unique_lock<std::mutex> Lock(ExecMutex);
      ExecWake.wait(Lock,
                    [this] { return ExecStop || !ExecQueue.empty(); });
      if (ExecStop)
        return; // teardown: the loop is gone, nobody can read a result
      Job = std::move(ExecQueue.front());
      ExecQueue.pop_front();
    }
    // The expensive part — operand materialization, tensor evaluation, and
    // JSON-rendering of every output cell — runs here, off the loop
    // thread. Only the finished line travels back.
    std::string Line = renderResultEvent(
        Job.Meta.IdJson, Job.Meta.Name,
        Lifter.executeLifted(Job.Meta.Request, Job.Meta.Io, Job.Response));
    uint64_t ClientId = Job.ClientId;
    uint64_t Slot = Job.Meta.Slot;
    SocketService *Self = this;
    Server->post([Self, ClientId, Slot, Line = std::move(Line)]() mutable {
      Self->finishExecute(ClientId, Slot, std::move(Line));
    });
  }
}

void SocketService::finishExecute(uint64_t ClientId, uint64_t Slot,
                                  std::string Line) {
  auto SessionIt = Sessions.find(ClientId);
  if (SessionIt == Sessions.end())
    return; // the client disconnected while the worker was evaluating
  if (serve::SocketClient *Client = Server->client(ClientId))
    Client->endRequest();
  Item Meta;
  Meta.Slot = Slot; // execute frames are never batch members (BatchKey 0)
  markReady(SessionIt->second, Meta, std::move(Line));
  flush(ClientId);
}

void SocketService::shutdown() {
  std::thread Worker;
  {
    std::lock_guard<std::mutex> Lock(ExecMutex);
    ExecStop = true;
    Worker = std::move(ExecWorker);
  }
  ExecWake.notify_one();
  if (Worker.joinable())
    Worker.join();
}

void SocketService::onDisconnect(serve::SocketClient &Client) {
  // In-flight futures die with the session; their completions will find no
  // session and drop the result on the floor (the worker-side cache still
  // keeps what it computed).
  Sessions.erase(Client.id());
}

std::string SocketService::rejectLine(serve::TransportReject Kind) {
  switch (Kind) {
  case serve::TransportReject::TooManyConnections:
    return renderErrorEvent(
        "", "server at the connection limit (--max-conns); retry later");
  case serve::TransportReject::FrameTooLarge:
    return renderErrorEvent("", "frame exceeds the size limit");
  case serve::TransportReject::ShuttingDown:
    return renderStatusError(
        Status::ShuttingDown,
        "server is draining; no new requests are admitted");
  }
  return renderErrorEvent("", "rejected");
}

std::string SocketService::statsEvent() const {
  serve::SocketServerStats T = Server->stats();
  serve::CacheStats C = Lifter.cacheStats();

  Json Srv = Json::object();
  Srv.set("open_conns", Json::integer(T.OpenConns));
  Srv.set("accepted", Json::integer(static_cast<int64_t>(T.Accepted)));
  Srv.set("refused", Json::integer(static_cast<int64_t>(T.Refused)));
  Srv.set("in_flight", Json::integer(T.InFlight));
  Srv.set("frames_in", Json::integer(static_cast<int64_t>(T.FramesIn)));
  Srv.set("lines_out", Json::integer(static_cast<int64_t>(T.LinesOut)));
  Srv.set("bytes_in", Json::integer(static_cast<int64_t>(T.BytesIn)));
  Srv.set("bytes_out", Json::integer(static_cast<int64_t>(T.BytesOut)));
  Srv.set("disconnects",
          Json::integer(static_cast<int64_t>(T.Disconnects)));
  Srv.set("idle_closed",
          Json::integer(static_cast<int64_t>(T.IdleClosed)));
  Srv.set("frame_timeouts",
          Json::integer(static_cast<int64_t>(T.FrameTimeouts)));
  Srv.set("draining", Json::boolean(T.Draining));

  Json Svc = Json::object();
  Svc.set("threads", Json::integer(Lifter.threads()));
  Svc.set("queue_depth", Json::integer(Lifter.queueDepth()));
  Svc.set("queue_length",
          Json::integer(static_cast<int64_t>(Lifter.queueLength())));

  Json Cache = Json::object();
  Cache.set("hits", Json::integer(static_cast<int64_t>(C.Hits)));
  Cache.set("misses", Json::integer(static_cast<int64_t>(C.Misses)));
  Cache.set("insertions",
            Json::integer(static_cast<int64_t>(C.Insertions)));
  Cache.set("evictions", Json::integer(static_cast<int64_t>(C.Evictions)));
  Cache.set("entries", Json::integer(static_cast<int64_t>(C.Entries)));
  Cache.set("capacity", Json::integer(static_cast<int64_t>(C.Capacity)));
  Cache.set("loaded", Json::integer(static_cast<int64_t>(C.Loaded)));
  Cache.set("hit_rate", Json::number(C.hitRate()));

  // The execute-path compiled-program cache (api::Endpoint::compiledFor):
  // one bytecode artifact per distinct lifted expression, so a client can
  // see whether repeated execute requests are re-paying compilation.
  api::Endpoint::VmCacheStats VC = Lifter.vmCacheStats();
  Json VmCache = Json::object();
  VmCache.set("hits", Json::integer(static_cast<int64_t>(VC.Hits)));
  VmCache.set("misses", Json::integer(static_cast<int64_t>(VC.Misses)));
  VmCache.set("evictions",
              Json::integer(static_cast<int64_t>(VC.Evictions)));
  VmCache.set("entries", Json::integer(static_cast<int64_t>(VC.Entries)));
  VmCache.set("capacity", Json::integer(static_cast<int64_t>(VC.Capacity)));

  std::string Out = "{\"v\":2,\"event\":\"stats\",\"server\":";
  Out += Srv.dump();
  Out += ",\"service\":";
  Out += Svc.dump();
  Out += ",\"cache\":";
  Out += Cache.dump();
  Out += ",\"vm_cache\":";
  Out += VmCache.dump();
  Out += '}';
  return Out;
}
