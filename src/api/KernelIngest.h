//===- api/KernelIngest.h - Arbitrary C kernels to benchmarks ---*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns arbitrary C kernel text into a self-contained, owned
/// bench::Benchmark that the pipeline can lift exactly like a registry
/// entry. Everything is derived from one normalized analysis::KernelModel —
/// the symbolic executor's public store/access IR — so the subscript,
/// pointer-walking, guarded (relu-family), and multi-statement forms of a
/// kernel all ingest through the same path:
///
///  * argument specifications are synthesized from the model's delinearized
///    accesses (stride ordering, stride-ratio extents, loop-bound leading
///    extents), falling back to the executor's ranks when a shape has no
///    closed form;
///
///  * a *reference translation* is emitted from the model's normalized
///    stores: guarded stores lower to `max(...)` (select) nodes, sequential
///    stores lower to an ordered TACO statement list plus a composed
///    single-program form that seeds the simulated candidate oracle — the
///    role GPT-4's reading of the prompt plays in the paper. Kernels beyond
///    the model (while loops, untranslatable conditions, non-affine
///    subscripts) are refused with a diagnostic that carries the construct's
///    line/column; callers can supply an oracle hint instead (real LLM
///    backends need neither).
///
/// The resulting benchmark is a value: it shares no storage with the input
/// text, so requests built from it survive any caller buffer lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_KERNELINGEST_H
#define STAGG_API_KERNELINGEST_H

#include "analysis/Checker.h"
#include "analysis/KernelAnalysis.h"
#include "analysis/KernelModel.h"
#include "benchsuite/Benchmark.h"
#include "cfront/Ast.h"
#include "taco/Ast.h"

#include <optional>
#include <string>
#include <vector>

namespace stagg {
namespace api {

/// Why ingestion failed.
enum class IngestStatus {
  Ok,
  ParseError,    ///< The text is not a parseable C kernel.
  AnalysisError, ///< Parsed, but no usable benchmark could be derived.
  UnsafeKernel,  ///< The static checker found hard safety findings.
};

/// Outcome of ingestKernel.
struct IngestResult {
  IngestStatus Status = IngestStatus::Ok;
  std::string Error;

  /// The static checker's findings under the synthesized shapes. Hard
  /// findings refuse ingestion (Status == UnsafeKernel) and are rendered as
  /// structured wire diagnostics; warnings ride along on success.
  std::vector<analysis::CheckFinding> Findings;

  /// True when every access was statically proven in bounds — the license
  /// for the verifier to skip dynamic bounds probing downstream.
  bool BoundsProvenSafe = false;

  /// The synthesized benchmark (valid when ok()). Category is "inline".
  bench::Benchmark Kernel;

  /// The ordered statement-list form of the derived reference translation
  /// (empty when the caller supplied an oracle_hint instead). The einsum
  /// sequence evaluator and the verifier execute it as one program;
  /// Kernel.GroundTruth holds the composed single-program form.
  std::vector<taco::Program> ReferenceStatements;

  /// Ingestion class of the kernel (subscript / pointer-walking /
  /// conditional / multi-statement).
  analysis::KernelClass Class = analysis::KernelClass::Subscript;

  bool ok() const { return Status == IngestStatus::Ok; }
};

/// Ingests \p CSource. \p Name labels the benchmark (defaults to the C
/// function's name); \p OracleHint optionally supplies the reference
/// translation when the model has none (and overrides it when both exist —
/// the caller knows their kernel best).
IngestResult ingestKernel(const std::string &CSource,
                          const std::string &Name = "",
                          const std::string &OracleHint = "");

/// Outcome of a translation attempt.
struct TranslationResult {
  /// The composed single-program form (sequential stores folded, guards
  /// lowered to max/select).
  std::optional<taco::Program> Program;

  /// The ordered statement list the composition came from; executable as
  /// one program by taco::evalEinsumSequence / the verifier.
  std::vector<taco::Program> Statements;

  std::string Error;

  bool ok() const { return Program.has_value(); }
};

/// Model-based reference translation of \p Model's normalized stores into
/// TACO index notation.
TranslationResult referenceTranslation(const analysis::KernelModel &Model);

/// Convenience overload: builds the model for \p Fn first. \p Summary is
/// accepted for API compatibility with the old syntactic transliterator and
/// is no longer consulted (the model carries its own summary).
TranslationResult referenceTranslation(const cfront::CFunction &Fn,
                                       const analysis::KernelSummary &Summary);

} // namespace api
} // namespace stagg

#endif // STAGG_API_KERNELINGEST_H
