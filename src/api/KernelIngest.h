//===- api/KernelIngest.h - Arbitrary C kernels to benchmarks ---*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns arbitrary C kernel text into a self-contained, owned
/// bench::Benchmark that the pipeline can lift exactly like a registry
/// entry:
///
///  * the source is parsed with cfront and analyzed with
///    analysis::analyzeKernel (output parameter, per-parameter ranks,
///    constant pool);
///
///  * argument specifications are synthesized — int scalars become size
///    parameters, floating scalars numeric data, pointers arrays — with
///    array shapes inferred from the loop nest: subscript polynomials are
///    delinearized by stride, inner extents fall out of stride ratios, the
///    leading extent out of the governing loop bound;
///
///  * a *reference translation* (direct syntactic transliteration of the
///    loop nest into TACO index notation) is derived when the kernel is in
///    indexed form. It seeds the simulated candidate oracle, which models
///    an LLM's error distribution *around* a reference — the role GPT-4's
///    reading of the prompt plays in the paper. Pointer-walking or
///    control-flow-heavy kernels have no syntactic transliteration; callers
///    can supply an oracle hint instead (real LLM backends need neither).
///
/// The resulting benchmark is a value: it shares no storage with the input
/// text, so requests built from it survive any caller buffer lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_API_KERNELINGEST_H
#define STAGG_API_KERNELINGEST_H

#include "analysis/KernelAnalysis.h"
#include "benchsuite/Benchmark.h"
#include "cfront/Ast.h"
#include "taco/Ast.h"

#include <optional>
#include <string>

namespace stagg {
namespace api {

/// Why ingestion failed.
enum class IngestStatus {
  Ok,
  ParseError,    ///< The text is not a parseable C kernel.
  AnalysisError, ///< Parsed, but no usable benchmark could be derived.
};

/// Outcome of ingestKernel.
struct IngestResult {
  IngestStatus Status = IngestStatus::Ok;
  std::string Error;

  /// The synthesized benchmark (valid when ok()). Category is "inline".
  bench::Benchmark Kernel;

  bool ok() const { return Status == IngestStatus::Ok; }
};

/// Ingests \p CSource. \p Name labels the benchmark (defaults to the C
/// function's name); \p OracleHint optionally supplies the reference
/// translation when transliteration is impossible (and overrides it when
/// both exist — the caller knows their kernel best).
IngestResult ingestKernel(const std::string &CSource,
                          const std::string &Name = "",
                          const std::string &OracleHint = "");

/// Outcome of a transliteration attempt.
struct TranslationResult {
  std::optional<taco::Program> Program;
  std::string Error;

  bool ok() const { return Program.has_value(); }
};

/// Best-effort direct transliteration of \p Fn's loop nest into TACO index
/// notation, using \p Summary for the output parameter. Exposed for tests
/// and as a (deliberately naive) "direct translation" baseline.
TranslationResult referenceTranslation(const cfront::CFunction &Fn,
                                       const analysis::KernelSummary &Summary);

} // namespace api
} // namespace stagg

#endif // STAGG_API_KERNELINGEST_H
