//===- analysis/Checker.h - Static safety analysis over KernelModel -------===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static safety and liftability analysis over the normalized KernelModel:
/// the pipeline executes client-supplied C kernels (reference interpretation,
/// verifier sweeps), so the trust boundary needs a *static* argument that
/// accesses stay in bounds and that the loop nest respects the einsum-lift
/// soundness assumptions, before anything runs. Guided Tensor Lifting's
/// premise — affine access polynomials make kernels analyzable — gives the
/// machinery for free: every access carries a closed-form offset polynomial
/// over loop symbols, so bounds are polynomial inequalities over size
/// parameters (analysis/Interval.h) and dependences are structural offset
/// comparisons.
///
/// Per kernel the checker runs three passes:
///
///  1. **Bounds** — for every recorded load/store, prove the offset range
///     [Min, Max] (over loop extents) lies inside the buffer's flattened
///     size: provable out-of-bounds is a hard finding (SK001), unprovable
///     either way is a may-out-of-bounds warning (SK002). Shifted-index
///     polynomials (`A[i+k]` under extent `N-k`) and diagonal strides
///     (`A[i*N+i]` against a declared `N x N` shape) are in scope.
///  2. **Dependences** — a store whose RHS reads the *same* buffer at a
///     *different* iteration offset is a loop-carried dependence the einsum
///     translation cannot represent (SK003, hard); writes into read-only
///     input parameters are in/out aliasing (SK004, hard).
///  3. **Initialization** — a reduction (`+=`) into a buffer that is neither
///     the kernel's output (whose zero pre-state the pipeline guarantees)
///     nor explicitly initialized first reads uninitialized memory (SK005,
///     hard).
///
/// Findings carry stable `SKnnn` diagnostic codes plus the construct's
/// cfront line/column; `api::ingestKernel` refuses kernels with hard
/// findings at the wire trust boundary, `stagg check` surfaces the same
/// report as a linter, and `core::liftBenchmark` uses the bounds-proven
/// verdict to skip redundant dynamic bounds probing in the verifier.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_ANALYSIS_CHECKER_H
#define STAGG_ANALYSIS_CHECKER_H

#include "analysis/Affine.h"
#include "analysis/KernelModel.h"
#include "cfront/Ast.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace stagg {
namespace analysis {

/// Severity of one finding. Hard findings refuse wire ingestion; warnings
/// annotate the response and the `stagg check` report.
enum class CheckSeverity { Hard, Warning };

/// "error" / "warning".
const char *checkSeverityName(CheckSeverity S);

/// One diagnostic produced by the checker.
struct CheckFinding {
  std::string Code;     ///< Stable catalog code ("SK001").
  CheckSeverity Severity = CheckSeverity::Warning;
  std::string Message;  ///< Human-readable, without code or position.
  cfront::SourceLoc Loc;
  std::string Param;    ///< Buffer the finding is about ("" when none).

  /// "SK001: <message> (line 3, column 7)".
  std::string str() const;
};

/// Caller-side context for a check run.
struct CheckOptions {
  /// Declared shapes per pointer parameter (outer to inner extents, as
  /// polynomials over size-parameter names). Parameters absent here fall
  /// back to the model's own delinearized best shape; when neither exists
  /// the access's shape is unknown (SK006).
  std::map<std::string, std::vector<Poly>> Shapes;

  /// Parameters the kernel is allowed to write (the benchmark's outputs).
  /// Empty means "derive from the model's summary".
  std::set<std::string> OutputParams;
};

/// The complete report for one kernel.
struct CheckReport {
  std::vector<CheckFinding> Findings;

  /// True when *every* recorded access had a recoverable offset and a known
  /// shape and was proven in bounds — the static license for skipping the
  /// interpreter's dynamic bounds probes during verification.
  bool BoundsProvenSafe = false;

  int hardCount() const;
  int warningCount() const;
  bool clean() const { return hardCount() == 0; }
};

/// Runs the three checker passes over \p M.
CheckReport checkKernel(const KernelModel &M,
                        const CheckOptions &Options = CheckOptions());

/// One catalog row, for the README table and `stagg check --catalog`.
struct CheckCodeInfo {
  const char *Code;
  CheckSeverity Severity;
  const char *Summary;
};

/// The full, ordered diagnostic catalog.
const std::vector<CheckCodeInfo> &checkCatalog();

/// Parses a benchsuite shape entry (a size-parameter name or a positive
/// decimal literal) into a Poly extent, for building CheckOptions::Shapes
/// from declared ArgSpecs.
Poly shapeExtentPoly(const std::string &Entry);

} // namespace analysis
} // namespace stagg

#endif // STAGG_ANALYSIS_CHECKER_H
