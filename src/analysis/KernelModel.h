//===- analysis/KernelModel.h - Normalized kernel IR -----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized kernel IR produced by the symbolic executor: the
/// store/access model that used to be internal to analysis/KernelAnalysis.cpp,
/// promoted to a public interface so every downstream consumer (shape
/// inference, reference translation, ingestion-class labeling) reads one
/// normal form instead of re-walking the syntax.
///
/// A KernelModel holds, for one C kernel:
///
///  * **Loops** — each loop of the nest with its fresh symbol, source
///    variable, and closed-form extent (the `v < bound` bound, paper-style
///    index space);
///  * **Stores** — every store through a pointer parameter in execution
///    order, with a closed-form affine offset over the loop symbols (pointer
///    bumps like `*out++` are summarized to `loopvar * stride` by the
///    executor's delta detection), the right-hand side as a normalized value
///    expression (MExpr), and the guard conditions of enclosing `if`s;
///  * **Accesses** — every load/store with its affine offset, for shape
///    inference by stride-ordered delinearization.
///
/// The model is *value-normalized*: a subscripted access `x[i]`, a walked
/// pointer `*p++` with `p = x`, and a linearized `x[i*N + j]` all appear as
/// the same kind of Load node with an affine offset polynomial, which is
/// what lets pointer-walking kernels lift over the wire without an
/// oracle_hint.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_ANALYSIS_KERNELMODEL_H
#define STAGG_ANALYSIS_KERNELMODEL_H

#include "analysis/KernelAnalysis.h"
#include "cfront/Ast.h"

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace stagg {
namespace analysis {

/// Arithmetic operators of the normalized value expressions (kept
/// taco-independent; the API layer maps them onto TACO operators).
enum class MOp { Add, Sub, Mul, Div };

/// Comparison operators a guard can carry.
enum class MCmp { Lt, Le, Gt, Ge };

struct MExpr;
using MExprPtr = std::shared_ptr<const MExpr>;

/// One normalized value expression node. Immutable and shared: symbolic
/// states copy freely.
struct MExpr {
  enum class Kind {
    Load,     ///< Memory read: base parameter + affine offset.
    Param,    ///< Scalar parameter read (float data or size parameter).
    ConstInt, ///< Integer literal.
    Bin,      ///< A Op B.
    Neg,      ///< -A.
  };

  Kind K = Kind::ConstInt;
  std::string Name;     ///< Load: base pointer parameter; Param: its name.
  Poly Offset;          ///< Load: flat affine offset over loop symbols.
  int64_t IntValue = 0; ///< ConstInt.
  MOp Op = MOp::Add;    ///< Bin.
  MExprPtr A, B;        ///< Bin: both children; Neg: A.

  static MExprPtr load(std::string Param, Poly Off);
  static MExprPtr param(std::string Name);
  static MExprPtr constant(int64_t Value);
  /// Null-propagating: returns null when either child is null.
  static MExprPtr bin(MOp Op, MExprPtr A, MExprPtr B);
  static MExprPtr neg(MExprPtr A);

  bool isZeroLiteral() const { return K == Kind::ConstInt && IntValue == 0; }
};

/// Structural equality of value expressions.
bool mexprEquals(const MExprPtr &A, const MExprPtr &B);

/// One guard from an enclosing `if`: the condition `L Cmp R`, negated for
/// else branches. L/R are null when the condition had no value translation
/// (the store under it then refuses translation with a located diagnostic).
struct MGuard {
  MCmp Cmp = MCmp::Gt;
  MExprPtr L, R;
  bool Negated = false;
  cfront::SourceLoc Loc;

  bool translatable() const { return L != nullptr && R != nullptr; }
};

/// One loop of the kernel, recorded outer-to-inner along each nest path.
struct ModelLoop {
  std::string Symbol;    ///< Fresh symbol the offsets mention ("l0_i").
  std::string SourceVar; ///< Loop variable in the source; "" when the header
                         ///< was not recognizable.
  Poly Extent;           ///< Index-space size (the `v < bound` bound).
  bool ExtentKnown = false;
  bool HeaderOk = false;   ///< `(v = s; v < bound; v++)` shape recognized.
  bool StartsAtZero = false;
  cfront::SourceLoc Loc;
};

/// One store through a pointer parameter, in execution order.
struct ModelStore {
  enum class OpKind {
    Set,   ///< `=`
    Add,   ///< `+=` (a reduction when the offset misses inner loops)
    Other, ///< any other compound store (refused by translation)
  };

  std::string Param;
  std::optional<Poly> Offset; ///< Affine offset; nullopt when unrecoverable.
  OpKind Op = OpKind::Set;
  MExprPtr Rhs;               ///< Null when the RHS had no value translation.
  bool RhsIsZeroLiteral = false;
  std::vector<MGuard> Guards; ///< Enclosing guards, outermost first.
  std::vector<std::string> Loops; ///< Enclosing loop symbols, outer first.
  cfront::SourceLoc Loc;
};

/// One recorded access (load or store) for shape inference and the static
/// checker (which reports bounds findings at the access's source position).
struct ModelAccess {
  std::string Param;
  std::optional<Poly> Offset;
  bool IsStore = false;
  cfront::SourceLoc Loc;
};

/// One delinearized array dimension: the loop symbol indexing it and its
/// symbolic extent.
struct ModelDim {
  std::string LoopSym;
  Poly Extent;
  bool ExtentKnown = false;
};

/// A delinearized access shape (outer to inner); Ok when the offset tiled
/// exactly into totally ordered strides with a unit innermost stride.
struct ModelShape {
  std::vector<ModelDim> Dims;
  bool Ok = false;
};

/// Ingestion classes, for `stagg list` and the README support matrix.
enum class KernelClass {
  Subscript,      ///< Plain array-subscript loop nest.
  PointerWalking, ///< Iterates by bumping pointers.
  Conditional,    ///< Guarded stores (relu-family).
  MultiStatement, ///< More than one semantic store statement.
};

const char *kernelClassName(KernelClass C);

/// The complete normalized model of one kernel.
struct KernelModel {
  /// The classic analysis summary (output parameter, per-parameter ranks,
  /// constant pool) — computed by the same executor run.
  KernelSummary Summary;

  std::vector<ModelLoop> Loops;
  std::vector<ModelStore> Stores;
  std::vector<ModelAccess> Accesses;

  /// Parameter kinds in the source signature.
  std::set<std::string> PointerParams;
  std::set<std::string> SizeParams;
  std::set<std::string> FloatParams;

  /// True when iteration happens through pointer bumps / local pointers
  /// rather than plain parameter subscripts.
  bool PointerWalking = false;

  /// True when the kernel contains any `if`.
  bool Conditional = false;

  /// First construct the executor could not normalize (while loops,
  /// unrecognizable loop headers, untranslatable conditions, ...). A
  /// non-empty limitation poisons the reference translation but not shape
  /// inference.
  std::string Limitation;
  cfront::SourceLoc LimitationLoc;

  /// The limitation with its source position appended, e.g.
  /// "a while loop (line 3, column 5)".
  std::string locatedLimitation() const;

  const ModelLoop *loop(const std::string &Symbol) const;

  /// Stride-ordered delinearization of a flat offset over this model's
  /// loops (the O'Boyle–Knijnenburg scheme the syntactic walker used, now
  /// over the executor's closed forms).
  ModelShape delinearize(const Poly &Offset) const;

  /// The best (highest-rank, successfully delinearized) access per pointer
  /// parameter; absent when the parameter is never accessed.
  std::optional<ModelShape> bestShape(const std::string &Param) const;
};

/// Runs the symbolic executor over \p Fn and returns the normalized model
/// (including the KernelSummary that analyzeKernel reports).
KernelModel buildKernelModel(const cfront::CFunction &Fn);

/// Classifies a kernel for the registry listing; priority
/// conditional > multi-statement > pointer-walking > subscript.
KernelClass classifyKernel(const KernelModel &M);

/// Renders a delinearized extent as a shape-entry name: a size-parameter
/// symbol or a positive decimal literal. False when the extent is unknown
/// or not expressible as a single name.
bool extentName(const ModelDim &Dim, std::string &Out);

} // namespace analysis
} // namespace stagg

#endif // STAGG_ANALYSIS_KERNELMODEL_H
