//===- analysis/Interval.h - Symbolic ranges over affine offsets -*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny symbolic interval domain over analysis::Poly, built for the static
/// bounds checker: given an affine access offset over loop symbols, compute
/// closed-form Min/Max offset polynomials over the *size parameters* by
/// substituting each loop symbol with 0 or `extent - 1` according to the
/// sign of its stride, and then prove polynomial inequalities "for all size
/// assignments >= 1" by a positivity argument:
///
///     P(s1,...,sk) >= 0 for all si >= 1
///
/// holds whenever P(1+t1,...,1+tk) has only non-negative coefficients (every
/// ti >= 0, and a polynomial with non-negative coefficients is non-negative
/// on the non-negative orthant). The shift handles mixed-sign affine forms
/// like `N*N - N` (= t^2 + t after the shift) that a naive per-coefficient
/// test would reject, which is exactly the shape delinearized bounds and
/// shifted-index accesses (`A[i+k]`, extents `N-k`) produce.
///
/// Symbols the caller marks as *loop* symbols are only assumed >= 0 (a loop
/// index can be 0), everything else — size parameters — is assumed >= 1,
/// matching the verifier's input family (every size parameter ranges from 1
/// up).
///
/// The test is sound but incomplete: `false` means "not provable here", not
/// "false for some assignment". The checker treats unprovable bounds as
/// may-out-of-bounds warnings, never as hard errors.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_ANALYSIS_INTERVAL_H
#define STAGG_ANALYSIS_INTERVAL_H

#include "analysis/Affine.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace stagg {
namespace analysis {

/// Proves `P >= 0` for every assignment where symbols satisfying
/// \p IsAtLeastOne are >= 1 and all remaining symbols are >= 0. Sound,
/// incomplete (see file comment). The shift `s := 1 + t` is expanded
/// directly into one coefficient map — each monomial with k shifted symbols
/// contributes its coefficient to every subset of them — rather than via
/// repeated Poly::substitute, which would allocate a temporary polynomial
/// per symbol (this predicate runs several times per access on the serve
/// admission path).
template <typename Fn>
bool provablyNonNegative(const Poly &P, Fn IsAtLeastOne) {
  // Offsets have a handful of monomials, so a flat vector with linear
  // lookup beats a tree map.
  std::vector<std::pair<Monomial, int64_t>> Shifted;
  Monomial Keep, Shift, Mono;
  for (const auto &[M, C] : P.terms()) {
    Keep.clear();
    Shift.clear();
    for (const std::string &S : M)
      (IsAtLeastOne(S) ? Shift : Keep).push_back(S);
    for (unsigned Mask = 0; Mask < (1u << Shift.size()); ++Mask) {
      Mono = Keep;
      for (unsigned B = 0; B < Shift.size(); ++B)
        if (Mask & (1u << B))
          Mono.push_back(Shift[B]);
      std::sort(Mono.begin(), Mono.end());
      auto It = std::find_if(
          Shifted.begin(), Shifted.end(),
          [&Mono](const std::pair<Monomial, int64_t> &E) {
            return E.first == Mono;
          });
      if (It == Shifted.end())
        Shifted.emplace_back(Mono, C);
      else
        It->second += C;
    }
  }
  for (const auto &[M, C] : Shifted) {
    (void)M;
    if (C < 0)
      return false;
  }
  return true;
}

/// Proves `P >= 0` assuming every symbol is >= 1 (size parameters only).
inline bool provablyNonNegative(const Poly &P) {
  return provablyNonNegative(P, [](const std::string &) { return true; });
}

/// An inclusive symbolic range [Min, Max] over size parameters.
struct SymRange {
  Poly Min;
  Poly Max;
};

/// Splits \p P = Stride * Sym + Rest when P is linear in \p Sym (no monomial
/// mentions Sym twice). Returns false for non-linear occurrences.
inline bool splitLinear(const Poly &P, const std::string &Sym, Poly &Stride,
                        Poly &Rest) {
  Stride = Poly();
  Rest = Poly();
  for (const auto &[M, C] : P.terms()) {
    int Count = 0;
    Monomial Without;
    for (const std::string &S : M) {
      if (S == Sym) {
        ++Count;
        continue;
      }
      Without.push_back(S);
    }
    if (Count > 1)
      return false;
    Poly Term = Poly::term(std::move(Without), C);
    if (Count == 1)
      Stride = Stride + Term;
    else
      Rest = Rest + Term;
  }
  return true;
}

} // namespace analysis
} // namespace stagg

#endif // STAGG_ANALYSIS_INTERVAL_H
