//===- analysis/Affine.cpp - Polynomial symbolic index expressions --------===//

#include "analysis/Affine.h"

using namespace stagg;
using namespace stagg::analysis;

std::string Poly::str() const {
  if (Terms.empty())
    return "0";
  std::string Out;
  bool First = true;
  for (const auto &[M, C] : Terms) {
    if (!First)
      Out += C >= 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    First = false;
    int64_t Magnitude = C < 0 ? -C : C;
    bool NeedStar = false;
    if (Magnitude != 1 || M.empty()) {
      Out += std::to_string(Magnitude);
      NeedStar = true;
    }
    for (const std::string &S : M) {
      if (NeedStar)
        Out += "*";
      Out += S;
      NeedStar = true;
    }
  }
  return Out;
}
