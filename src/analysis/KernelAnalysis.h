//===- analysis/KernelAnalysis.h - Static analysis of C kernels -*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analyses of paper §4.2.3:
///
///  * **Array recovery** (Franke & O'Boyle): pointer-arithmetic iteration is
///    rewritten into explicit array accesses by symbolically executing the
///    kernel, tracking every pointer as (base parameter, polynomial offset).
///    Pointer increments inside loops are summarized into closed forms
///    `entry + loopvar * stride` via a delta-detection pass.
///
///  * **Delinearization** (O'Boyle & Knijnenburg): a recovered flat offset
///    such as `f*N + i` is mapped back to a multidimensional access by
///    counting the distinct loop variables appearing in it.
///
///  * **LHS dimension prediction**: the written ("output") parameter is
///    identified by dataflow, and its dimensionality is the delinearized
///    subscript arity of its stores; a kernel that writes without memory
///    indexing is a scalar (dimension 0).
///
/// The same machinery predicts the dimensions of every pointer parameter
/// (used by the C2TACO baseline's hard-wired heuristics) and collects the
/// integer constants of the source (used by template instantiation).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_ANALYSIS_KERNELANALYSIS_H
#define STAGG_ANALYSIS_KERNELANALYSIS_H

#include "analysis/Affine.h"
#include "cfront/Ast.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stagg {
namespace analysis {

/// One recovered memory access.
struct AccessRecord {
  std::string Param;          ///< Base pointer parameter.
  std::optional<Poly> Offset; ///< Recovered flat offset; nullopt if unknown.
  int LoopDepth = 0;          ///< Number of enclosing loops (fallback).
  bool IsStore = false;

  /// Delinearized subscript arity: the number of distinct loop variables in
  /// the offset, or the loop depth when the offset is unknown.
  int subscriptArity(const std::vector<std::string> &LoopSymbols) const;
};

/// The complete analysis summary for a kernel.
struct KernelSummary {
  std::vector<AccessRecord> Accesses;
  std::vector<std::string> LoopSymbols; ///< Fresh loop-variable symbols.

  /// The parameter the kernel writes through (empty if none found).
  std::string OutputParam;

  /// Predicted LHS dimensionality (paper: exact from static analysis).
  int LhsDim = 0;

  /// Predicted dimensionality per pointer parameter (reads and writes).
  std::map<std::string, int> ParamDims;

  /// Integer literals appearing in the body outside loop headers.
  std::vector<int64_t> Constants;
};

/// Runs array recovery + delinearization + dimension prediction on \p Fn.
KernelSummary analyzeKernel(const cfront::CFunction &Fn);

} // namespace analysis
} // namespace stagg

#endif // STAGG_ANALYSIS_KERNELANALYSIS_H
