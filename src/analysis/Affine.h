//===- analysis/Affine.h - Polynomial symbolic index expressions -*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small multivariate polynomial domain over symbolic names (loop
/// variables and size parameters) with integer coefficients. Array accesses
/// in legacy kernels are affine in the loop variables with coefficients built
/// from size parameters (e.g. `f*N + i`), which this domain represents as the
/// polynomial {f·N: 1, i: 1}. Delinearization (paper §4.2.3, following
/// O'Boyle & Knijnenburg) then just counts the distinct loop symbols that
/// occur in the polynomial.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_ANALYSIS_AFFINE_H
#define STAGG_ANALYSIS_AFFINE_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace analysis {

/// A product of symbols, kept sorted; the empty monomial is the constant
/// term.
using Monomial = std::vector<std::string>;

/// A polynomial: monomial -> integer coefficient. Zero coefficients are
/// erased eagerly so that equality is structural.
class Poly {
public:
  Poly() = default;

  static Poly constant(int64_t Value) {
    Poly P;
    if (Value != 0)
      P.Terms[{}] = Value;
    return P;
  }

  static Poly symbol(const std::string &Name) {
    Poly P;
    P.Terms[{Name}] = 1;
    return P;
  }

  /// A single-term polynomial `Coeff * M`; \p M must be sorted (it is
  /// canonicalized here). Cheaper than chaining constant()/symbol()
  /// multiplications when the monomial is already at hand.
  static Poly term(Monomial M, int64_t Coeff) {
    Poly P;
    if (Coeff != 0) {
      std::sort(M.begin(), M.end());
      P.Terms.emplace(std::move(M), Coeff);
    }
    return P;
  }

  const std::map<Monomial, int64_t> &terms() const { return Terms; }

  bool isZero() const { return Terms.empty(); }

  /// Returns the constant value if the polynomial is a plain constant.
  bool asConstant(int64_t &Out) const {
    if (Terms.empty()) {
      Out = 0;
      return true;
    }
    if (Terms.size() == 1 && Terms.begin()->first.empty()) {
      Out = Terms.begin()->second;
      return true;
    }
    return false;
  }

  Poly operator+(const Poly &Other) const {
    Poly R(*this);
    for (const auto &[M, C] : Other.Terms)
      R.addTerm(M, C);
    return R;
  }

  Poly operator-(const Poly &Other) const {
    Poly R(*this);
    for (const auto &[M, C] : Other.Terms)
      R.addTerm(M, -C);
    return R;
  }

  Poly operator-() const { return Poly::constant(0) - *this; }

  Poly operator*(const Poly &Other) const {
    Poly R;
    for (const auto &[MA, CA] : Terms)
      for (const auto &[MB, CB] : Other.Terms) {
        Monomial M = MA;
        M.insert(M.end(), MB.begin(), MB.end());
        std::sort(M.begin(), M.end());
        R.addTerm(M, CA * CB);
      }
    return R;
  }

  bool operator==(const Poly &Other) const { return Terms == Other.Terms; }

  /// True if any monomial mentions \p Name.
  bool mentions(const std::string &Name) const {
    for (const auto &[M, C] : Terms) {
      (void)C;
      if (std::find(M.begin(), M.end(), Name) != M.end())
        return true;
    }
    return false;
  }

  /// True if any monomial mentions a symbol satisfying \p Pred.
  template <typename Fn> bool mentionsIf(Fn Pred) const {
    for (const auto &[M, C] : Terms) {
      (void)C;
      for (const std::string &S : M)
        if (Pred(S))
          return true;
    }
    return false;
  }

  /// Collects the distinct symbols satisfying \p Pred.
  template <typename Fn> std::vector<std::string> symbolsIf(Fn Pred) const {
    std::vector<std::string> Out;
    for (const auto &[M, C] : Terms) {
      (void)C;
      for (const std::string &S : M)
        if (Pred(S) && std::find(Out.begin(), Out.end(), S) == Out.end())
          Out.push_back(S);
    }
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  /// Substitutes \p Name := \p Replacement everywhere.
  Poly substitute(const std::string &Name, const Poly &Replacement) const {
    Poly R;
    for (const auto &[M, C] : Terms) {
      Poly Term = Poly::constant(C);
      for (const std::string &S : M)
        Term = Term * (S == Name ? Replacement : Poly::symbol(S));
      R = R + Term;
    }
    return R;
  }

  /// Renders like "2*i*N + j + 3" for diagnostics.
  std::string str() const;

private:
  void addTerm(const Monomial &M, int64_t Coeff) {
    if (Coeff == 0)
      return;
    auto [It, Inserted] = Terms.emplace(M, Coeff);
    if (!Inserted) {
      It->second += Coeff;
      if (It->second == 0)
        Terms.erase(It);
    }
  }

  std::map<Monomial, int64_t> Terms;
};

} // namespace analysis
} // namespace stagg

#endif // STAGG_ANALYSIS_AFFINE_H
