//===- analysis/KernelAnalysis.cpp - Static analysis of C kernels ---------===//

#include "analysis/KernelAnalysis.h"

#include "support/StringUtils.h"

#include <set>

using namespace stagg;
using namespace stagg::analysis;
using namespace stagg::cfront;

int AccessRecord::subscriptArity(
    const std::vector<std::string> &LoopSymbols) const {
  if (!Offset) {
    // Array recovery failed; fall back to the loop nesting depth, which is
    // the best syntactic estimate of the subscript arity.
    return LoopDepth;
  }
  std::set<std::string> Loops(LoopSymbols.begin(), LoopSymbols.end());
  return static_cast<int>(
      Offset->symbolsIf([&](const std::string &S) { return Loops.count(S) > 0; })
          .size());
}

namespace {

/// A tracked pointer value: base parameter (or marker) plus flat offset.
struct PtrSym {
  std::string Base;
  Poly Off;
};

/// A symbolic runtime value: a known integer polynomial, a known pointer, or
/// unknown (both optionals disengaged).
struct SymVal {
  std::optional<Poly> IntVal;
  std::optional<PtrSym> PtrVal;

  static SymVal unknown() { return {}; }
  static SymVal intPoly(Poly P) {
    SymVal V;
    V.IntVal = std::move(P);
    return V;
  }
  static SymVal ptr(PtrSym P) {
    SymVal V;
    V.PtrVal = std::move(P);
    return V;
  }

  bool isInt() const { return IntVal.has_value(); }
  bool isPtr() const { return PtrVal.has_value(); }
  bool isUnknown() const { return !isInt() && !isPtr(); }

  bool operator==(const SymVal &Other) const {
    if (isInt() != Other.isInt() || isPtr() != Other.isPtr())
      return false;
    if (isInt() && !(*IntVal == *Other.IntVal))
      return false;
    if (isPtr() &&
        !(PtrVal->Base == Other.PtrVal->Base && PtrVal->Off == Other.PtrVal->Off))
      return false;
    return true;
  }
};

using State = std::map<std::string, SymVal>;

/// Collects the names of variables assigned anywhere within a statement or
/// expression (including nested loops and `++`/`--`).
class AssignedCollector {
public:
  std::set<std::string> Names;

  void visitStmt(const CStmt &S) {
    switch (S.kind()) {
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(S);
      Names.insert(D.name());
      if (D.init())
        visitExpr(*D.init());
      return;
    }
    case CStmt::Kind::ExprStmt:
      visitExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements())
        visitStmt(*Sub);
      return;
    case CStmt::Kind::For: {
      const auto &F = cCast<CFor>(S);
      if (F.init())
        visitStmt(*F.init());
      if (F.cond())
        visitExpr(*F.cond());
      if (F.step())
        visitExpr(*F.step());
      visitStmt(F.body());
      return;
    }
    case CStmt::Kind::While: {
      const auto &W = cCast<CWhile>(S);
      visitExpr(W.cond());
      visitStmt(W.body());
      return;
    }
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(S);
      visitExpr(I.cond());
      visitStmt(I.thenStmt());
      if (I.elseStmt())
        visitStmt(*I.elseStmt());
      return;
    }
    case CStmt::Kind::Return: {
      const auto &R = cCast<CReturn>(S);
      if (R.expr())
        visitExpr(*R.expr());
      return;
    }
    case CStmt::Kind::Empty:
      return;
    }
  }

  void visitExpr(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      if (const auto *V = cDynCast<VarRef>(&A.lhs()))
        Names.insert(V->name());
      else
        visitExpr(A.lhs());
      visitExpr(A.rhs());
      return;
    }
    case CExpr::Kind::IncDec: {
      const auto &I = cCast<CIncDec>(E);
      if (const auto *V = cDynCast<VarRef>(&I.target()))
        Names.insert(V->name());
      else
        visitExpr(I.target());
      return;
    }
    case CExpr::Kind::Unary:
      visitExpr(cCast<CUnary>(E).operand());
      return;
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      visitExpr(B.lhs());
      visitExpr(B.rhs());
      return;
    }
    case CExpr::Kind::Index: {
      const auto &Ix = cCast<CIndex>(E);
      visitExpr(Ix.base());
      visitExpr(Ix.index());
      return;
    }
    default:
      return;
    }
  }
};

/// The symbolic executor implementing array recovery and loop
/// summarization.
class SymExec {
public:
  explicit SymExec(const CFunction &Fn) : Fn(Fn) {
    for (const CParam &P : Fn.Params) {
      if (P.Type.isPointer()) {
        PointerParams.insert(P.Name);
        Vars[P.Name] = SymVal::ptr({P.Name, Poly::constant(0)});
      } else {
        Vars[P.Name] = SymVal::intPoly(Poly::symbol(P.Name));
      }
    }
  }

  KernelSummary run() {
    execStmt(*Fn.Body, Vars);
    return std::move(Summary);
  }

private:
  static bool isMarker(const std::string &Name) {
    return startsWith(Name, "@");
  }

  bool hasMarkerSymbols(const Poly &P) const {
    return P.mentionsIf([](const std::string &S) { return isMarker(S); });
  }

  void record(const std::string &Base, std::optional<Poly> Offset,
              bool IsStore) {
    if (!Recording)
      return;
    if (!PointerParams.count(Base))
      return; // Marker or non-parameter base: unusable for recovery.
    if (Offset && hasMarkerSymbols(*Offset))
      Offset.reset();
    AccessRecord R;
    R.Param = Base;
    R.Offset = std::move(Offset);
    R.LoopDepth = LoopDepth;
    R.IsStore = IsStore;
    Summary.Accesses.push_back(std::move(R));
  }

  //===------------------------------------------------------------------===//
  // Expression evaluation (with side effects and access recording)
  //===------------------------------------------------------------------===//

  /// Resolves an lvalue to either a variable name or a pointer target.
  struct SymPlace {
    bool IsVar = false;
    std::string Name;           // When IsVar.
    std::optional<PtrSym> Target; // When a memory place with known pointer.
  };

  SymPlace evalPlace(const CExpr &E, State &S) {
    SymPlace P;
    if (const auto *V = cDynCast<VarRef>(&E)) {
      P.IsVar = true;
      P.Name = V->name();
      return P;
    }
    if (const auto *U = cDynCast<CUnary>(&E)) {
      if (U->op() == CUnOp::Deref) {
        SymVal Ptr = evalExpr(U->operand(), S);
        if (Ptr.isPtr())
          P.Target = *Ptr.PtrVal;
        return P;
      }
      return P;
    }
    if (const auto *Ix = cDynCast<CIndex>(&E)) {
      SymVal Base = evalExpr(Ix->base(), S);
      SymVal Index = evalExpr(Ix->index(), S);
      if (Base.isPtr()) {
        PtrSym T = *Base.PtrVal;
        if (Index.isInt())
          T.Off = T.Off + *Index.IntVal;
        else {
          // Unknown subscript: keep the base but poison the offset with a
          // fresh marker so it reads as "unknown".
          T.Off = Poly::symbol("@?" + std::to_string(FreshCounter++));
        }
        P.Target = T;
      }
      return P;
    }
    return P;
  }

  SymVal loadPlace(const SymPlace &P, State &S) {
    if (P.IsVar) {
      auto It = S.find(P.Name);
      return It == S.end() ? SymVal::unknown() : It->second;
    }
    if (P.Target) {
      std::optional<Poly> Off = P.Target->Off;
      record(P.Target->Base, Off, /*IsStore=*/false);
    }
    // Data loaded from memory is not tracked symbolically.
    return SymVal::unknown();
  }

  void storePlace(const SymPlace &P, const SymVal &Value, State &S) {
    if (P.IsVar) {
      S[P.Name] = Value;
      return;
    }
    if (P.Target)
      record(P.Target->Base, P.Target->Off, /*IsStore=*/true);
  }

  SymVal applyBinary(CBinOp Op, const SymVal &L, const SymVal &R) {
    // Pointer arithmetic.
    if (L.isPtr() && R.isInt()) {
      if (Op == CBinOp::Add)
        return SymVal::ptr({L.PtrVal->Base, L.PtrVal->Off + *R.IntVal});
      if (Op == CBinOp::Sub)
        return SymVal::ptr({L.PtrVal->Base, L.PtrVal->Off - *R.IntVal});
      return SymVal::unknown();
    }
    if (R.isPtr() && L.isInt() && Op == CBinOp::Add)
      return SymVal::ptr({R.PtrVal->Base, R.PtrVal->Off + *L.IntVal});
    if (!L.isInt() || !R.isInt())
      return SymVal::unknown();
    switch (Op) {
    case CBinOp::Add:
      return SymVal::intPoly(*L.IntVal + *R.IntVal);
    case CBinOp::Sub:
      return SymVal::intPoly(*L.IntVal - *R.IntVal);
    case CBinOp::Mul:
      return SymVal::intPoly(*L.IntVal * *R.IntVal);
    default:
      // Division, modulo, comparisons: not tracked in the affine domain.
      return SymVal::unknown();
    }
  }

  SymVal evalExpr(const CExpr &E, State &S) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit:
      return SymVal::intPoly(Poly::constant(cCast<IntLit>(E).value()));
    case CExpr::Kind::FloatLit:
      return SymVal::unknown();
    case CExpr::Kind::VarRef: {
      auto It = S.find(cCast<VarRef>(E).name());
      return It == S.end() ? SymVal::unknown() : It->second;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      switch (U.op()) {
      case CUnOp::Neg: {
        SymVal V = evalExpr(U.operand(), S);
        if (V.isInt())
          return SymVal::intPoly(-*V.IntVal);
        return SymVal::unknown();
      }
      case CUnOp::Deref: {
        SymPlace P = evalPlace(E, S);
        return loadPlace(P, S);
      }
      case CUnOp::AddrOf: {
        SymPlace P = evalPlace(U.operand(), S);
        if (!P.IsVar && P.Target)
          return SymVal::ptr(*P.Target);
        return SymVal::unknown();
      }
      case CUnOp::Not:
        evalExpr(U.operand(), S);
        return SymVal::unknown();
      }
      return SymVal::unknown();
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      SymVal L = evalExpr(B.lhs(), S);
      SymVal R = evalExpr(B.rhs(), S);
      return applyBinary(B.op(), L, R);
    }
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      SymVal Rhs = evalExpr(A.rhs(), S);
      SymPlace P = evalPlace(A.lhs(), S);
      SymVal NewValue = Rhs;
      if (A.op() != CAssignOp::Plain) {
        SymVal Old = loadPlace(P, S);
        CBinOp Op = A.op() == CAssignOp::Add   ? CBinOp::Add
                    : A.op() == CAssignOp::Sub ? CBinOp::Sub
                    : A.op() == CAssignOp::Mul ? CBinOp::Mul
                                               : CBinOp::Div;
        NewValue = applyBinary(Op, Old, Rhs);
      }
      storePlace(P, NewValue, S);
      return NewValue;
    }
    case CExpr::Kind::IncDec: {
      const auto &I = cCast<CIncDec>(E);
      SymPlace P = evalPlace(I.target(), S);
      SymVal Old = loadPlace(P, S);
      SymVal Delta = SymVal::intPoly(Poly::constant(1));
      SymVal NewValue = applyBinary(
          I.isIncrement() ? CBinOp::Add : CBinOp::Sub, Old, Delta);
      storePlace(P, NewValue, S);
      return I.isPrefix() ? NewValue : Old;
    }
    case CExpr::Kind::Index: {
      SymPlace P = evalPlace(E, S);
      return loadPlace(P, S);
    }
    }
    return SymVal::unknown();
  }

  //===------------------------------------------------------------------===//
  // Statement execution
  //===------------------------------------------------------------------===//

  void mergeStates(State &Into, const State &Other) {
    for (auto &[Name, Value] : Into) {
      auto It = Other.find(Name);
      if (It == Other.end() || !(Value == It->second))
        Value = SymVal::unknown();
    }
    for (const auto &[Name, Value] : Other) {
      (void)Value;
      if (!Into.count(Name))
        Into[Name] = SymVal::unknown();
    }
  }

  void execStmt(const CStmt &Stmt, State &S) {
    switch (Stmt.kind()) {
    case CStmt::Kind::Empty:
      return;
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(Stmt);
      if (D.init())
        S[D.name()] = evalExpr(*D.init(), S);
      else if (D.type().isPointer())
        S[D.name()] = SymVal::unknown();
      else
        S[D.name()] = SymVal::intPoly(Poly::constant(0));
      return;
    }
    case CStmt::Kind::ExprStmt:
      evalExpr(cCast<CExprStmt>(Stmt).expr(), S);
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(Stmt).statements())
        execStmt(*Sub, S);
      return;
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(Stmt);
      evalExpr(I.cond(), S);
      State ElseState = S;
      execStmt(I.thenStmt(), S);
      if (I.elseStmt())
        execStmt(*I.elseStmt(), ElseState);
      mergeStates(S, ElseState);
      return;
    }
    case CStmt::Kind::Return:
      if (const CExpr *E = cCast<CReturn>(Stmt).expr())
        evalExpr(*E, S);
      return;
    case CStmt::Kind::While: {
      // Conservative: havoc everything the loop assigns, then scan the body
      // once for accesses at an increased loop depth.
      const auto &W = cCast<CWhile>(Stmt);
      AssignedCollector Assigned;
      Assigned.visitStmt(W.body());
      for (const std::string &Name : Assigned.Names)
        S[Name] = SymVal::unknown();
      ++LoopDepth;
      execStmt(W.body(), S);
      --LoopDepth;
      for (const std::string &Name : Assigned.Names)
        S[Name] = SymVal::unknown();
      return;
    }
    case CStmt::Kind::For:
      execFor(cCast<CFor>(Stmt), S);
      return;
    }
  }

  /// Extracts `var < bound` / `var <= bound` and a unit step on `var`,
  /// returning the symbolic trip count if the pattern matches.
  std::optional<Poly> tripCount(const CFor &F, State &S,
                                std::string &LoopVarOut) {
    const auto *Cond = F.cond() ? cDynCast<CBinary>(F.cond()) : nullptr;
    if (!Cond || (Cond->op() != CBinOp::Lt && Cond->op() != CBinOp::Le))
      return std::nullopt;
    const auto *Var = cDynCast<VarRef>(&Cond->lhs());
    if (!Var)
      return std::nullopt;

    // The step must be var++/++var or var += 1.
    bool UnitStep = false;
    if (const CExpr *Step = F.step()) {
      if (const auto *I = cDynCast<CIncDec>(Step)) {
        const auto *T = cDynCast<VarRef>(&I->target());
        UnitStep = I->isIncrement() && T && T->name() == Var->name();
      } else if (const auto *A = cDynCast<CAssign>(Step)) {
        const auto *T = cDynCast<VarRef>(&A->lhs());
        const auto *One = cDynCast<IntLit>(&A->rhs());
        UnitStep = A->op() == CAssignOp::Add && T && T->name() == Var->name() &&
                   One && One->value() == 1;
      }
    }
    if (!UnitStep)
      return std::nullopt;

    State Scratch = S;
    SymVal Bound = evalExpr(Cond->rhs(), Scratch);
    auto It = S.find(Var->name());
    if (!Bound.isInt() || It == S.end() || !It->second.isInt())
      return std::nullopt;
    LoopVarOut = Var->name();
    Poly Trip = *Bound.IntVal - *It->second.IntVal;
    if (Cond->op() == CBinOp::Le)
      Trip = Trip + Poly::constant(1);
    return Trip;
  }

  void execFor(const CFor &F, State &S) {
    if (F.init())
      execStmt(*F.init(), S);

    std::string LoopVar;
    std::optional<Poly> Trip = tripCount(F, S, LoopVar);

    AssignedCollector Assigned;
    Assigned.visitStmt(F.body());
    if (F.step())
      Assigned.visitExpr(*F.step());

    State Entry = S;

    // Pass A (delta detection): run the body once with every assigned
    // variable replaced by an opaque marker, recording nothing.
    State Probe = Entry;
    for (const std::string &Name : Assigned.Names) {
      auto It = Entry.find(Name);
      if (It != Entry.end() && It->second.isPtr())
        Probe[Name] = SymVal::ptr({"@" + Name, Poly::constant(0)});
      else if (It != Entry.end() && It->second.isInt())
        Probe[Name] = SymVal::intPoly(Poly::symbol("@" + Name));
      else
        Probe[Name] = SymVal::unknown();
    }
    bool SavedRecording = Recording;
    Recording = false;
    execStmt(F.body(), Probe);
    if (F.step())
      evalExpr(*F.step(), Probe);
    Recording = SavedRecording;

    // Classify each assigned variable.
    enum class VarClass { Induction, Reset, Opaque };
    std::map<std::string, VarClass> Classes;
    std::map<std::string, Poly> Strides;
    for (const std::string &Name : Assigned.Names) {
      std::string Marker = "@" + Name;
      const SymVal &After = Probe[Name];
      VarClass Class = VarClass::Opaque;
      Poly Stride;
      if (After.isInt()) {
        Poly Delta = *After.IntVal - Poly::symbol(Marker);
        if (!Delta.mentions(Marker) && !hasMarkerSymbols(Delta)) {
          Class = VarClass::Induction;
          Stride = Delta;
        } else if (!hasMarkerSymbols(*After.IntVal)) {
          Class = VarClass::Reset;
        }
      } else if (After.isPtr()) {
        if (After.PtrVal->Base == Marker &&
            !hasMarkerSymbols(After.PtrVal->Off)) {
          Class = VarClass::Induction;
          Stride = After.PtrVal->Off;
        } else if (PointerParams.count(After.PtrVal->Base) &&
                   !hasMarkerSymbols(After.PtrVal->Off)) {
          Class = VarClass::Reset;
        }
      }
      Classes[Name] = Class;
      if (Class == VarClass::Induction)
        Strides[Name] = Stride;
    }

    // Pass B (access recording): run the body once with induction variables
    // in closed form over a fresh loop symbol.
    std::string LoopSym =
        "l" + std::to_string(FreshCounter++) +
        (LoopVar.empty() ? "" : "_" + LoopVar);
    Summary.LoopSymbols.push_back(LoopSym);
    Poly SymPoly = Poly::symbol(LoopSym);

    State Body = Entry;
    for (const std::string &Name : Assigned.Names) {
      switch (Classes[Name]) {
      case VarClass::Induction: {
        auto It = Entry.find(Name);
        if (It != Entry.end() && It->second.isInt())
          Body[Name] =
              SymVal::intPoly(*It->second.IntVal + SymPoly * Strides[Name]);
        else if (It != Entry.end() && It->second.isPtr())
          Body[Name] = SymVal::ptr({It->second.PtrVal->Base,
                                    It->second.PtrVal->Off +
                                        SymPoly * Strides[Name]});
        else
          Body[Name] = SymVal::unknown();
        break;
      }
      case VarClass::Reset:
      case VarClass::Opaque:
        Body[Name] = SymVal::unknown();
        break;
      }
    }
    ++LoopDepth;
    execStmt(F.body(), Body);
    if (F.step())
      evalExpr(*F.step(), Body);
    --LoopDepth;

    // Exit state.
    S = Entry;
    for (const std::string &Name : Assigned.Names) {
      SymVal Exit = SymVal::unknown();
      switch (Classes[Name]) {
      case VarClass::Induction: {
        auto It = Entry.find(Name);
        if (Trip && It != Entry.end() && It->second.isInt())
          Exit = SymVal::intPoly(*It->second.IntVal + *Trip * Strides[Name]);
        else if (Trip && It != Entry.end() && It->second.isPtr())
          Exit = SymVal::ptr({It->second.PtrVal->Base,
                              It->second.PtrVal->Off + *Trip * Strides[Name]});
        break;
      }
      case VarClass::Reset: {
        // Value after the final iteration: substitute S := trip - 1.
        if (Trip) {
          Poly Last = *Trip - Poly::constant(1);
          const SymVal &AfterBody = Body[Name];
          if (AfterBody.isInt())
            Exit = SymVal::intPoly(AfterBody.IntVal->substitute(LoopSym, Last));
          else if (AfterBody.isPtr())
            Exit = SymVal::ptr(
                {AfterBody.PtrVal->Base,
                 AfterBody.PtrVal->Off.substitute(LoopSym, Last)});
        }
        break;
      }
      case VarClass::Opaque:
        break;
      }
      S[Name] = Exit;
    }
  }

  const CFunction &Fn;
  KernelSummary Summary;
  State Vars;
  std::set<std::string> PointerParams;
  bool Recording = true;
  int LoopDepth = 0;
  int FreshCounter = 0;
};

/// Collects integer literals outside loop headers.
class ConstantScanner {
public:
  std::vector<int64_t> Constants;

  void visitStmt(const CStmt &S) {
    switch (S.kind()) {
    case CStmt::Kind::Decl:
      if (const CExpr *Init = cCast<CDeclStmt>(S).init())
        visitExpr(*Init);
      return;
    case CStmt::Kind::ExprStmt:
      visitExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements())
        visitStmt(*Sub);
      return;
    case CStmt::Kind::For:
      // Loop headers hold bounds, not data constants.
      visitStmt(cCast<CFor>(S).body());
      return;
    case CStmt::Kind::While:
      visitStmt(cCast<CWhile>(S).body());
      return;
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(S);
      visitStmt(I.thenStmt());
      if (I.elseStmt())
        visitStmt(*I.elseStmt());
      return;
    }
    case CStmt::Kind::Return:
      if (const CExpr *E = cCast<CReturn>(S).expr())
        visitExpr(*E);
      return;
    case CStmt::Kind::Empty:
      return;
    }
  }

  void visitExpr(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit: {
      int64_t Value = cCast<IntLit>(E).value();
      if (std::find(Constants.begin(), Constants.end(), Value) ==
          Constants.end())
        Constants.push_back(Value);
      return;
    }
    case CExpr::Kind::Unary:
      visitExpr(cCast<CUnary>(E).operand());
      return;
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      visitExpr(B.lhs());
      visitExpr(B.rhs());
      return;
    }
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      visitExpr(A.lhs());
      visitExpr(A.rhs());
      return;
    }
    case CExpr::Kind::IncDec:
      return; // ++/-- carry an implicit 1, not a source constant.
    case CExpr::Kind::Index:
      // Subscript literals (e.g. `&B[0]`) are address anchors, not data.
      visitExpr(cCast<CIndex>(E).base());
      return;
    default:
      return;
    }
  }
};

} // namespace

KernelSummary analysis::analyzeKernel(const CFunction &Fn) {
  SymExec Exec(Fn);
  KernelSummary Summary = Exec.run();

  // Identify the output parameter: the pointer parameter with stores.
  std::map<std::string, int> StoreCounts;
  for (const AccessRecord &R : Summary.Accesses)
    if (R.IsStore)
      ++StoreCounts[R.Param];
  for (const auto &[Param, Count] : StoreCounts)
    if (Summary.OutputParam.empty() ||
        Count > StoreCounts[Summary.OutputParam])
      Summary.OutputParam = Param;

  // Delinearized dimensionality per parameter (max over its accesses).
  for (const AccessRecord &R : Summary.Accesses) {
    int Arity = R.subscriptArity(Summary.LoopSymbols);
    auto [It, Inserted] = Summary.ParamDims.emplace(R.Param, Arity);
    if (!Inserted)
      It->second = std::max(It->second, Arity);
  }

  // LHS dimensionality: the delinearized arity of stores to the output
  // parameter; zero (a scalar) when the kernel writes without indexing.
  Summary.LhsDim = 0;
  for (const AccessRecord &R : Summary.Accesses)
    if (R.IsStore && R.Param == Summary.OutputParam)
      Summary.LhsDim =
          std::max(Summary.LhsDim, R.subscriptArity(Summary.LoopSymbols));

  ConstantScanner Scanner;
  Scanner.visitStmt(*Fn.Body);
  Summary.Constants = std::move(Scanner.Constants);
  return Summary;
}
