//===- analysis/KernelAnalysis.cpp - Static analysis of C kernels ---------===//
//
// The symbolic executor now produces two products in one run: the classic
// KernelSummary (array recovery, delinearized ranks, constants — exactly the
// results the original executor reported, in the same order) and the public
// analysis::KernelModel IR (normalized stores with affine offsets and value
// expressions, loop extents, guard conditions). The summary side is kept
// bit-identical: model construction only *observes* the execution; it never
// changes a symbolic value, a recorded access, or a fresh-symbol name.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelAnalysis.h"

#include "analysis/KernelModel.h"
#include "support/StringUtils.h"

#include <set>

using namespace stagg;
using namespace stagg::analysis;
using namespace stagg::cfront;

int AccessRecord::subscriptArity(
    const std::vector<std::string> &LoopSymbols) const {
  if (!Offset) {
    // Array recovery failed; fall back to the loop nesting depth, which is
    // the best syntactic estimate of the subscript arity.
    return LoopDepth;
  }
  std::set<std::string> Loops(LoopSymbols.begin(), LoopSymbols.end());
  return static_cast<int>(
      Offset->symbolsIf([&](const std::string &S) { return Loops.count(S) > 0; })
          .size());
}

namespace {

/// A tracked pointer value: base parameter (or marker) plus flat offset.
struct PtrSym {
  std::string Base;
  Poly Off;
};

/// A symbolic runtime value: a known integer polynomial, a known pointer, or
/// unknown (both optionals disengaged). The model side rides along in Data:
/// the value as a normalized expression (null = no value translation) plus
/// the accumulation flag of the `s = 0; s += e` recognition. Data never
/// participates in operator== — the summary-side havoc decisions are
/// unchanged.
struct SymVal {
  std::optional<Poly> IntVal;
  std::optional<PtrSym> PtrVal;
  MExprPtr Data;
  bool Accumulated = false;

  static SymVal unknown() { return {}; }
  static SymVal intPoly(Poly P) {
    SymVal V;
    V.IntVal = std::move(P);
    return V;
  }
  static SymVal ptr(PtrSym P) {
    SymVal V;
    V.PtrVal = std::move(P);
    return V;
  }

  bool isInt() const { return IntVal.has_value(); }
  bool isPtr() const { return PtrVal.has_value(); }
  bool isUnknown() const { return !isInt() && !isPtr(); }

  bool operator==(const SymVal &Other) const {
    if (isInt() != Other.isInt() || isPtr() != Other.isPtr())
      return false;
    if (isInt() && !(*IntVal == *Other.IntVal))
      return false;
    if (isPtr() &&
        !(PtrVal->Base == Other.PtrVal->Base && PtrVal->Off == Other.PtrVal->Off))
      return false;
    return true;
  }
};

using State = std::map<std::string, SymVal>;

/// Collects the names of variables assigned anywhere within a statement or
/// expression (including nested loops and `++`/`--`).
class AssignedCollector {
public:
  std::set<std::string> Names;

  void visitStmt(const CStmt &S) {
    switch (S.kind()) {
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(S);
      Names.insert(D.name());
      if (D.init())
        visitExpr(*D.init());
      return;
    }
    case CStmt::Kind::ExprStmt:
      visitExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements())
        visitStmt(*Sub);
      return;
    case CStmt::Kind::For: {
      const auto &F = cCast<CFor>(S);
      if (F.init())
        visitStmt(*F.init());
      if (F.cond())
        visitExpr(*F.cond());
      if (F.step())
        visitExpr(*F.step());
      visitStmt(F.body());
      return;
    }
    case CStmt::Kind::While: {
      const auto &W = cCast<CWhile>(S);
      visitExpr(W.cond());
      visitStmt(W.body());
      return;
    }
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(S);
      visitExpr(I.cond());
      visitStmt(I.thenStmt());
      if (I.elseStmt())
        visitStmt(*I.elseStmt());
      return;
    }
    case CStmt::Kind::Return: {
      const auto &R = cCast<CReturn>(S);
      if (R.expr())
        visitExpr(*R.expr());
      return;
    }
    case CStmt::Kind::Empty:
      return;
    }
  }

  void visitExpr(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      if (const auto *V = cDynCast<VarRef>(&A.lhs()))
        Names.insert(V->name());
      else
        visitExpr(A.lhs());
      visitExpr(A.rhs());
      return;
    }
    case CExpr::Kind::IncDec: {
      const auto &I = cCast<CIncDec>(E);
      if (const auto *V = cDynCast<VarRef>(&I.target()))
        Names.insert(V->name());
      else
        visitExpr(I.target());
      return;
    }
    case CExpr::Kind::Unary:
      visitExpr(cCast<CUnary>(E).operand());
      return;
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      visitExpr(B.lhs());
      visitExpr(B.rhs());
      return;
    }
    case CExpr::Kind::Index: {
      const auto &Ix = cCast<CIndex>(E);
      visitExpr(Ix.base());
      visitExpr(Ix.index());
      return;
    }
    default:
      return;
    }
  }
};

/// The symbolic executor implementing array recovery, loop summarization,
/// and (riding along) KernelModel construction.
class SymExec {
public:
  explicit SymExec(const CFunction &Fn) : Fn(Fn) {
    for (const CParam &P : Fn.Params) {
      if (P.Type.isPointer()) {
        Model.PointerParams.insert(P.Name);
        Vars[P.Name] = SymVal::ptr({P.Name, Poly::constant(0)});
      } else {
        Vars[P.Name] = SymVal::intPoly(Poly::symbol(P.Name));
        Vars[P.Name].Data = MExpr::param(P.Name);
        if (P.Type.isFloating())
          Model.FloatParams.insert(P.Name);
        else
          Model.SizeParams.insert(P.Name);
      }
    }
  }

  KernelModel run() {
    execStmt(*Fn.Body, Vars);
    return std::move(Model);
  }

private:
  KernelSummary &summary() { return Model.Summary; }

  static bool isMarker(const std::string &Name) {
    return startsWith(Name, "@");
  }

  bool hasMarkerSymbols(const Poly &P) const {
    return P.mentionsIf([](const std::string &S) { return isMarker(S); });
  }

  bool isPointerParam(const std::string &Name) const {
    return Model.PointerParams.count(Name) > 0;
  }

  void noteLimitation(const std::string &Why) {
    // Pass A (delta detection) runs loop bodies over opaque markers, where
    // even a translatable guard looks untranslatable; only the recording
    // pass sees the closed forms, so only it reports limitations.
    if (!Recording)
      return;
    if (Model.Limitation.empty()) {
      Model.Limitation = Why;
      Model.LimitationLoc = CurLoc;
    }
  }

  /// Rewrites an iteration-space offset into the value space of the active
  /// loops: a loop starting at the constant c contributes `sym := sym - c`,
  /// so a subscript `x[i]` over `for (i = 1; ...)` reads as offset `i`
  /// exactly like the syntactic view did.
  Poly toValueSpace(Poly P) const {
    for (const ActiveLoop &L : ActiveLoops)
      if (L.Substitute)
        P = P.substitute(L.Sym,
                         Poly::symbol(L.Sym) - Poly::constant(L.StartConst));
    return P;
  }

  void record(const std::string &Base, std::optional<Poly> Offset,
              bool IsStore) {
    if (!Recording)
      return;
    if (!isPointerParam(Base))
      return; // Marker or non-parameter base: unusable for recovery.
    if (Offset && hasMarkerSymbols(*Offset))
      Offset.reset();
    AccessRecord R;
    R.Param = Base;
    R.Offset = Offset;
    R.LoopDepth = LoopDepth;
    R.IsStore = IsStore;
    summary().Accesses.push_back(std::move(R));

    ModelAccess MA;
    MA.Param = Base;
    if (Offset)
      MA.Offset = toValueSpace(*Offset);
    MA.IsStore = IsStore;
    MA.Loc = CurLoc;
    Model.Accesses.push_back(std::move(MA));
  }

  //===------------------------------------------------------------------===//
  // Expression evaluation (with side effects and access recording)
  //===------------------------------------------------------------------===//

  /// Resolves an lvalue to either a variable name or a pointer target.
  struct SymPlace {
    bool IsVar = false;
    std::string Name;           // When IsVar.
    std::optional<PtrSym> Target; // When a memory place with known pointer.
  };

  SymPlace evalPlace(const CExpr &E, State &S) {
    SymPlace P;
    if (const auto *V = cDynCast<VarRef>(&E)) {
      P.IsVar = true;
      P.Name = V->name();
      return P;
    }
    if (const auto *U = cDynCast<CUnary>(&E)) {
      if (U->op() == CUnOp::Deref) {
        // `*p` with p anything but a pointer parameter is pointer-walking
        // iteration (the executor recovers it into closed forms).
        const auto *OpVar = cDynCast<VarRef>(&U->operand());
        if (!OpVar || !isPointerParam(OpVar->name()))
          Model.PointerWalking = true;
        SymVal Ptr = evalExpr(U->operand(), S);
        if (Ptr.isPtr())
          P.Target = *Ptr.PtrVal;
        return P;
      }
      return P;
    }
    if (const auto *Ix = cDynCast<CIndex>(&E)) {
      SymVal Base = evalExpr(Ix->base(), S);
      SymVal Index = evalExpr(Ix->index(), S);
      const auto *BaseVar = cDynCast<VarRef>(&Ix->base());
      if (Base.isPtr() && (!BaseVar || !isPointerParam(BaseVar->name())))
        Model.PointerWalking = true;
      if (Base.isPtr()) {
        PtrSym T = *Base.PtrVal;
        if (Index.isInt())
          T.Off = T.Off + *Index.IntVal;
        else {
          // Unknown subscript: keep the base but poison the offset with a
          // fresh marker so it reads as "unknown".
          T.Off = Poly::symbol("@?" + std::to_string(FreshCounter++));
        }
        P.Target = T;
      }
      return P;
    }
    return P;
  }

  SymVal loadPlace(const SymPlace &P, State &S) {
    if (P.IsVar) {
      auto It = S.find(P.Name);
      return It == S.end() ? SymVal::unknown() : It->second;
    }
    if (P.Target) {
      std::optional<Poly> Off = P.Target->Off;
      record(P.Target->Base, Off, /*IsStore=*/false);
      // Data loaded from memory is not tracked symbolically, but its value
      // expression is a Load node when the place is recoverable.
      SymVal V = SymVal::unknown();
      if (isPointerParam(P.Target->Base) &&
          !hasMarkerSymbols(P.Target->Off))
        V.Data = MExpr::load(P.Target->Base, toValueSpace(P.Target->Off));
      return V;
    }
    return SymVal::unknown();
  }

  void storePlace(const SymPlace &P, const SymVal &Value, State &S) {
    if (P.IsVar) {
      S[P.Name] = Value;
      return;
    }
    if (P.Target)
      record(P.Target->Base, P.Target->Off, /*IsStore=*/true);
  }

  /// Appends a normalized store to the model (memory targets only).
  void recordModelStore(const SymPlace &P, ModelStore::OpKind Op,
                        MExprPtr Rhs, bool RhsIsZeroLiteral) {
    if (!Recording)
      return;
    if (!P.Target || !isPointerParam(P.Target->Base)) {
      noteLimitation("a store through an untracked pointer");
      return;
    }
    ModelStore St;
    St.Param = P.Target->Base;
    if (!hasMarkerSymbols(P.Target->Off))
      St.Offset = toValueSpace(P.Target->Off);
    St.Op = Op;
    St.Rhs = std::move(Rhs);
    St.RhsIsZeroLiteral = RhsIsZeroLiteral;
    St.Guards = GuardStack;
    St.Loc = CurLoc;
    for (const ActiveLoop &L : ActiveLoops)
      St.Loops.push_back(L.Sym);
    Model.Stores.push_back(std::move(St));
  }

  SymVal applyBinary(CBinOp Op, const SymVal &L, const SymVal &R) {
    // Pointer arithmetic.
    if (L.isPtr() && R.isInt()) {
      if (Op == CBinOp::Add)
        return SymVal::ptr({L.PtrVal->Base, L.PtrVal->Off + *R.IntVal});
      if (Op == CBinOp::Sub)
        return SymVal::ptr({L.PtrVal->Base, L.PtrVal->Off - *R.IntVal});
      return SymVal::unknown();
    }
    if (R.isPtr() && L.isInt() && Op == CBinOp::Add)
      return SymVal::ptr({R.PtrVal->Base, R.PtrVal->Off + *L.IntVal});
    if (!L.isInt() || !R.isInt())
      return SymVal::unknown();
    switch (Op) {
    case CBinOp::Add:
      return SymVal::intPoly(*L.IntVal + *R.IntVal);
    case CBinOp::Sub:
      return SymVal::intPoly(*L.IntVal - *R.IntVal);
    case CBinOp::Mul:
      return SymVal::intPoly(*L.IntVal * *R.IntVal);
    default:
      // Division, modulo, comparisons: not tracked in the affine domain.
      return SymVal::unknown();
    }
  }

  /// Maps an arithmetic C operator to the model operator (nullopt for
  /// comparisons, modulo, logicals — those have no value translation).
  static std::optional<MOp> modelOp(CBinOp Op) {
    switch (Op) {
    case CBinOp::Add:
      return MOp::Add;
    case CBinOp::Sub:
      return MOp::Sub;
    case CBinOp::Mul:
      return MOp::Mul;
    case CBinOp::Div:
      return MOp::Div;
    default:
      return std::nullopt;
    }
  }

  SymVal evalExpr(const CExpr &E, State &S) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit: {
      SymVal V = SymVal::intPoly(Poly::constant(cCast<IntLit>(E).value()));
      V.Data = MExpr::constant(cCast<IntLit>(E).value());
      return V;
    }
    case CExpr::Kind::FloatLit:
      // The TACO subset has integer constants only: no value translation.
      return SymVal::unknown();
    case CExpr::Kind::VarRef: {
      auto It = S.find(cCast<VarRef>(E).name());
      return It == S.end() ? SymVal::unknown() : It->second;
    }
    case CExpr::Kind::Unary: {
      const auto &U = cCast<CUnary>(E);
      switch (U.op()) {
      case CUnOp::Neg: {
        SymVal V = evalExpr(U.operand(), S);
        SymVal Out = SymVal::unknown();
        if (V.isInt())
          Out = SymVal::intPoly(-*V.IntVal);
        Out.Data = MExpr::neg(V.Data);
        return Out;
      }
      case CUnOp::Deref: {
        SymPlace P = evalPlace(E, S);
        return loadPlace(P, S);
      }
      case CUnOp::AddrOf: {
        SymPlace P = evalPlace(U.operand(), S);
        if (!P.IsVar && P.Target)
          return SymVal::ptr(*P.Target);
        return SymVal::unknown();
      }
      case CUnOp::Not:
        evalExpr(U.operand(), S);
        return SymVal::unknown();
      }
      return SymVal::unknown();
    }
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      SymVal L = evalExpr(B.lhs(), S);
      SymVal R = evalExpr(B.rhs(), S);
      SymVal V = applyBinary(B.op(), L, R);
      if (std::optional<MOp> Op = modelOp(B.op()))
        V.Data = MExpr::bin(*Op, L.Data, R.Data);
      return V;
    }
    case CExpr::Kind::Assign:
      return evalAssign(cCast<CAssign>(E), S);
    case CExpr::Kind::IncDec: {
      const auto &I = cCast<CIncDec>(E);
      SymPlace P = evalPlace(I.target(), S);
      SymVal Old = loadPlace(P, S);
      if (Old.isPtr())
        Model.PointerWalking = true;
      SymVal Delta = SymVal::intPoly(Poly::constant(1));
      SymVal NewValue = applyBinary(
          I.isIncrement() ? CBinOp::Add : CBinOp::Sub, Old, Delta);
      storePlace(P, NewValue, S);
      if (!P.IsVar)
        recordModelStore(P, ModelStore::OpKind::Other, nullptr, false);
      return I.isPrefix() ? NewValue : Old;
    }
    case CExpr::Kind::Index: {
      SymPlace P = evalPlace(E, S);
      return loadPlace(P, S);
    }
    }
    return SymVal::unknown();
  }

  SymVal evalAssign(const CAssign &A, State &S) {
    // Evaluate the RHS. The plain self-add patterns `s = s + e` and
    // `s = e + s` are evaluated child-by-child (same order, same side
    // effects) so the accumulated term's value expression is available.
    SymVal Rhs;
    MExprPtr TermData;
    bool SelfAdd = false;
    const auto *LhsVar = cDynCast<VarRef>(&A.lhs());
    if (A.op() == CAssignOp::Plain && LhsVar) {
      if (const auto *B = cDynCast<CBinary>(&A.rhs());
          B && B->op() == CBinOp::Add) {
        const auto *L = cDynCast<VarRef>(&B->lhs());
        const auto *R = cDynCast<VarRef>(&B->rhs());
        bool LeftSelf = L && L->name() == LhsVar->name();
        bool RightSelf = R && R->name() == LhsVar->name();
        if (LeftSelf || RightSelf) {
          SymVal Lv = evalExpr(B->lhs(), S);
          SymVal Rv = evalExpr(B->rhs(), S);
          SelfAdd = true;
          TermData = LeftSelf ? Rv.Data : Lv.Data;
          Rhs = applyBinary(CBinOp::Add, Lv, Rv);
          Rhs.Data = MExpr::bin(MOp::Add, Lv.Data, Rv.Data);
        }
      }
    }
    if (!SelfAdd)
      Rhs = evalExpr(A.rhs(), S);

    SymPlace P = evalPlace(A.lhs(), S);
    SymVal NewValue = Rhs;
    if (A.op() != CAssignOp::Plain) {
      SymVal Old = loadPlace(P, S);
      if (Old.isPtr())
        Model.PointerWalking = true;
      CBinOp Op = A.op() == CAssignOp::Add   ? CBinOp::Add
                  : A.op() == CAssignOp::Sub ? CBinOp::Sub
                  : A.op() == CAssignOp::Mul ? CBinOp::Mul
                                             : CBinOp::Div;
      NewValue = applyBinary(Op, Old, Rhs);
    }

    if (P.IsVar) {
      // Value-expression bookkeeping for locals: the accumulation
      // recognition of `s = 0; s += e` (and its `s = s + e` spelling);
      // anything else follows the flow-sensitive data view.
      auto It = S.find(P.Name);
      const SymVal Cur = It != S.end() ? It->second : SymVal::unknown();
      if (A.op() == CAssignOp::Add || SelfAdd) {
        MExprPtr Term = SelfAdd ? TermData : Rhs.Data;
        bool ZeroInit = Cur.Data && Cur.Data->isZeroLiteral();
        if (ZeroInit && !Cur.Accumulated && Term) {
          NewValue.Data = Term;
          NewValue.Accumulated = true;
        } else {
          NewValue.Data = nullptr;
          NewValue.Accumulated = Cur.Accumulated;
        }
      } else if (A.op() != CAssignOp::Plain) {
        NewValue.Data = nullptr;
        NewValue.Accumulated = Cur.Accumulated;
      } else {
        NewValue.Data = Rhs.Data;
        NewValue.Accumulated = false;
      }
    }

    storePlace(P, NewValue, S);
    if (!P.IsVar) {
      ModelStore::OpKind Op = A.op() == CAssignOp::Plain
                                  ? ModelStore::OpKind::Set
                                  : A.op() == CAssignOp::Add
                                        ? ModelStore::OpKind::Add
                                        : ModelStore::OpKind::Other;
      const auto *Lit = cDynCast<IntLit>(&A.rhs());
      recordModelStore(P, Op, Rhs.Data, Lit && Lit->value() == 0);
    }
    return NewValue;
  }

  //===------------------------------------------------------------------===//
  // Statement execution
  //===------------------------------------------------------------------===//

  void mergeStates(State &Into, const State &Other) {
    for (auto &[Name, Value] : Into) {
      auto It = Other.find(Name);
      if (It == Other.end() || !(Value == It->second)) {
        Value = SymVal::unknown();
        continue;
      }
      // Summary-side values agree; the data view merges independently.
      if (!mexprEquals(Value.Data, It->second.Data))
        Value.Data = nullptr;
      Value.Accumulated = Value.Accumulated && It->second.Accumulated;
    }
    for (const auto &[Name, Value] : Other) {
      (void)Value;
      if (!Into.count(Name))
        Into[Name] = SymVal::unknown();
    }
  }

  void execStmt(const CStmt &Stmt, State &S) {
    if (Stmt.loc().valid())
      CurLoc = Stmt.loc();
    switch (Stmt.kind()) {
    case CStmt::Kind::Empty:
      return;
    case CStmt::Kind::Decl: {
      const auto &D = cCast<CDeclStmt>(Stmt);
      if (D.init())
        S[D.name()] = evalExpr(*D.init(), S);
      else if (D.type().isPointer())
        S[D.name()] = SymVal::unknown();
      else
        S[D.name()] = SymVal::intPoly(Poly::constant(0));
      if (!D.init())
        S[D.name()].Data = nullptr;
      S[D.name()].Accumulated = false;
      return;
    }
    case CStmt::Kind::ExprStmt:
      evalExpr(cCast<CExprStmt>(Stmt).expr(), S);
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(Stmt).statements())
        execStmt(*Sub, S);
      return;
    case CStmt::Kind::If:
      execIf(cCast<CIf>(Stmt), S);
      return;
    case CStmt::Kind::Return:
      if (const CExpr *E = cCast<CReturn>(Stmt).expr())
        evalExpr(*E, S);
      return;
    case CStmt::Kind::While: {
      // Conservative: havoc everything the loop assigns, then scan the body
      // once for accesses at an increased loop depth.
      noteLimitation("a while loop");
      const auto &W = cCast<CWhile>(Stmt);
      AssignedCollector Assigned;
      Assigned.visitStmt(W.body());
      for (const std::string &Name : Assigned.Names)
        S[Name] = SymVal::unknown();
      ++LoopDepth;
      execStmt(W.body(), S);
      --LoopDepth;
      for (const std::string &Name : Assigned.Names)
        S[Name] = SymVal::unknown();
      return;
    }
    case CStmt::Kind::For:
      execFor(cCast<CFor>(Stmt), S);
      return;
    }
  }

  void execIf(const CIf &I, State &S) {
    Model.Conditional = true;
    cfront::SourceLoc Loc = I.loc();

    // Translate the condition into a guard when it is a simple comparison
    // whose sides have value expressions; evaluation order (lhs, then rhs)
    // matches the plain expression walk, so recorded accesses are
    // unchanged.
    MGuard Guard;
    Guard.Loc = Loc;
    bool GuardOk = false;
    const auto *Cmp = cDynCast<CBinary>(&I.cond());
    auto CmpOf = [](CBinOp Op) -> std::optional<MCmp> {
      switch (Op) {
      case CBinOp::Lt:
        return MCmp::Lt;
      case CBinOp::Le:
        return MCmp::Le;
      case CBinOp::Gt:
        return MCmp::Gt;
      case CBinOp::Ge:
        return MCmp::Ge;
      default:
        return std::nullopt;
      }
    };
    if (Cmp) {
      if (std::optional<MCmp> Op = CmpOf(Cmp->op())) {
        SymVal L = evalExpr(Cmp->lhs(), S);
        SymVal R = evalExpr(Cmp->rhs(), S);
        Guard.Cmp = *Op;
        Guard.L = L.Data;
        Guard.R = R.Data;
        GuardOk = Guard.translatable();
      } else {
        evalExpr(I.cond(), S);
      }
    } else {
      evalExpr(I.cond(), S);
    }
    if (!GuardOk)
      noteLimitation("a conditional");

    State ElseState = S;
    Guard.Negated = false;
    GuardStack.push_back(Guard);
    execStmt(I.thenStmt(), S);
    GuardStack.pop_back();
    if (I.elseStmt()) {
      Guard.Negated = true;
      GuardStack.push_back(Guard);
      execStmt(*I.elseStmt(), ElseState);
      GuardStack.pop_back();
    }
    mergeStates(S, ElseState);
  }

  /// The recognized shape of a `for` header: `(v = s; v < bound; v++)`.
  struct LoopHeader {
    bool HeaderOk = false;      ///< Shape and unit step recognized.
    std::string Var;            ///< Loop variable (when HeaderOk).
    std::optional<Poly> Start;  ///< Entry value of the variable.
    std::optional<Poly> Extent; ///< bound (+1 for `<=`).
    std::optional<Poly> Trip;   ///< Extent - Start.
  };

  /// Extracts the header; evaluation of the bound happens on a scratch
  /// state exactly as the original trip-count extraction did.
  LoopHeader analyzeHeader(const CFor &F, State &S) {
    LoopHeader H;
    const auto *Cond = F.cond() ? cDynCast<CBinary>(F.cond()) : nullptr;
    if (!Cond || (Cond->op() != CBinOp::Lt && Cond->op() != CBinOp::Le))
      return H;
    const auto *Var = cDynCast<VarRef>(&Cond->lhs());
    if (!Var)
      return H;

    // The step must be var++/++var or var += 1.
    bool UnitStep = false;
    if (const CExpr *Step = F.step()) {
      if (const auto *I = cDynCast<CIncDec>(Step)) {
        const auto *T = cDynCast<VarRef>(&I->target());
        UnitStep = I->isIncrement() && T && T->name() == Var->name();
      } else if (const auto *A = cDynCast<CAssign>(Step)) {
        const auto *T = cDynCast<VarRef>(&A->lhs());
        const auto *One = cDynCast<IntLit>(&A->rhs());
        UnitStep = A->op() == CAssignOp::Add && T && T->name() == Var->name() &&
                   One && One->value() == 1;
      }
    }
    if (!UnitStep)
      return H;

    H.HeaderOk = true;
    H.Var = Var->name();
    State Scratch = S;
    SymVal Bound = evalExpr(Cond->rhs(), Scratch);
    auto It = S.find(Var->name());
    if (It != S.end() && It->second.isInt())
      H.Start = *It->second.IntVal;
    if (Bound.isInt()) {
      H.Extent = Cond->op() == CBinOp::Le ? *Bound.IntVal + Poly::constant(1)
                                          : *Bound.IntVal;
      if (H.Start)
        H.Trip = *H.Extent - *H.Start;
    }
    return H;
  }

  void execFor(const CFor &F, State &S) {
    cfront::SourceLoc Loc = F.loc();
    if (F.init())
      execStmt(*F.init(), S);

    LoopHeader Header = analyzeHeader(F, S);
    std::optional<Poly> Trip = Header.Trip;
    // The fresh symbol carries the source variable's name only when the
    // full trip count resolved (the original naming rule).
    std::string LoopVar = Trip ? Header.Var : "";

    if (!Header.HeaderOk) {
      noteLimitation(
          "a loop without a recognizable `(v = s; v < bound; v++)` header");
    } else if (!Header.Start || !Header.Start->isZero()) {
      // Shape inference survives a non-zero start (the extent is the bound
      // either way), but `for (i = 1; ...)` never touches index 0, which
      // index notation cannot express.
      noteLimitation("a loop starting at a non-zero index");
    }

    AssignedCollector Assigned;
    Assigned.visitStmt(F.body());
    if (F.step())
      Assigned.visitExpr(*F.step());

    State Entry = S;

    // Pass A (delta detection): run the body once with every assigned
    // variable replaced by an opaque marker, recording nothing.
    State Probe = Entry;
    for (const std::string &Name : Assigned.Names) {
      auto It = Entry.find(Name);
      if (It != Entry.end() && It->second.isPtr())
        Probe[Name] = SymVal::ptr({"@" + Name, Poly::constant(0)});
      else if (It != Entry.end() && It->second.isInt())
        Probe[Name] = SymVal::intPoly(Poly::symbol("@" + Name));
      else
        Probe[Name] = SymVal::unknown();
    }
    bool SavedRecording = Recording;
    Recording = false;
    execStmt(F.body(), Probe);
    if (F.step())
      evalExpr(*F.step(), Probe);
    Recording = SavedRecording;

    // Classify each assigned variable.
    enum class VarClass { Induction, Reset, Opaque };
    std::map<std::string, VarClass> Classes;
    std::map<std::string, Poly> Strides;
    for (const std::string &Name : Assigned.Names) {
      std::string Marker = "@" + Name;
      const SymVal &After = Probe[Name];
      VarClass Class = VarClass::Opaque;
      Poly Stride;
      if (After.isInt()) {
        Poly Delta = *After.IntVal - Poly::symbol(Marker);
        if (!Delta.mentions(Marker) && !hasMarkerSymbols(Delta)) {
          Class = VarClass::Induction;
          Stride = Delta;
        } else if (!hasMarkerSymbols(*After.IntVal)) {
          Class = VarClass::Reset;
        }
      } else if (After.isPtr()) {
        if (After.PtrVal->Base == Marker &&
            !hasMarkerSymbols(After.PtrVal->Off)) {
          Class = VarClass::Induction;
          Stride = After.PtrVal->Off;
        } else if (isPointerParam(After.PtrVal->Base) &&
                   !hasMarkerSymbols(After.PtrVal->Off)) {
          Class = VarClass::Reset;
        }
      }
      Classes[Name] = Class;
      if (Class == VarClass::Induction)
        Strides[Name] = Stride;
    }

    // Pass B (access recording): run the body once with induction variables
    // in closed form over a fresh loop symbol.
    std::string LoopSym =
        "l" + std::to_string(FreshCounter++) +
        (LoopVar.empty() ? "" : "_" + LoopVar);
    summary().LoopSymbols.push_back(LoopSym);
    Poly SymPoly = Poly::symbol(LoopSym);

    // Model loop record (recording passes only, so each loop appears once,
    // outermost first).
    int64_t StartConst = 0;
    bool StartIsConst =
        Header.Start.has_value() && Header.Start->asConstant(StartConst);
    if (Recording) {
      ModelLoop ML;
      ML.Symbol = LoopSym;
      ML.SourceVar = Header.HeaderOk ? Header.Var : "";
      if (Header.Extent) {
        ML.Extent = toValueSpace(*Header.Extent);
        ML.ExtentKnown = true;
      }
      ML.HeaderOk = Header.HeaderOk;
      ML.StartsAtZero = Header.Start && Header.Start->isZero();
      ML.Loc = Loc;
      Model.Loops.push_back(std::move(ML));
    }
    ActiveLoops.push_back(
        {LoopSym, StartConst, StartIsConst && StartConst != 0});

    State Body = Entry;
    for (const std::string &Name : Assigned.Names) {
      switch (Classes[Name]) {
      case VarClass::Induction: {
        auto It = Entry.find(Name);
        if (It != Entry.end() && It->second.isInt())
          Body[Name] =
              SymVal::intPoly(*It->second.IntVal + SymPoly * Strides[Name]);
        else if (It != Entry.end() && It->second.isPtr())
          Body[Name] = SymVal::ptr({It->second.PtrVal->Base,
                                    It->second.PtrVal->Off +
                                        SymPoly * Strides[Name]});
        else
          Body[Name] = SymVal::unknown();
        break;
      }
      case VarClass::Reset:
      case VarClass::Opaque: {
        // The summary view havocs; the data view flows through so the
        // accumulation recognition still sees the entry value (`acc = 0`
        // before the loop).
        auto It = Entry.find(Name);
        SymVal V = SymVal::unknown();
        if (It != Entry.end()) {
          V.Data = It->second.Data;
          V.Accumulated = It->second.Accumulated;
        }
        Body[Name] = std::move(V);
        break;
      }
      }
    }
    ++LoopDepth;
    execStmt(F.body(), Body);
    if (F.step())
      evalExpr(*F.step(), Body);
    --LoopDepth;
    ActiveLoops.pop_back();

    // Exit state.
    S = Entry;
    for (const std::string &Name : Assigned.Names) {
      SymVal Exit = SymVal::unknown();
      switch (Classes[Name]) {
      case VarClass::Induction: {
        auto It = Entry.find(Name);
        if (Trip && It != Entry.end() && It->second.isInt())
          Exit = SymVal::intPoly(*It->second.IntVal + *Trip * Strides[Name]);
        else if (Trip && It != Entry.end() && It->second.isPtr())
          Exit = SymVal::ptr({It->second.PtrVal->Base,
                              It->second.PtrVal->Off + *Trip * Strides[Name]});
        break;
      }
      case VarClass::Reset: {
        // Value after the final iteration: substitute S := trip - 1.
        if (Trip) {
          Poly Last = *Trip - Poly::constant(1);
          const SymVal &AfterBody = Body[Name];
          if (AfterBody.isInt())
            Exit = SymVal::intPoly(AfterBody.IntVal->substitute(LoopSym, Last));
          else if (AfterBody.isPtr())
            Exit = SymVal::ptr(
                {AfterBody.PtrVal->Base,
                 AfterBody.PtrVal->Off.substitute(LoopSym, Last)});
        }
        break;
      }
      case VarClass::Opaque:
        break;
      }
      // The data view persists across the loop exit (accumulators keep
      // their summed expression; induction variables already carry none).
      Exit.Data = Body[Name].Data;
      Exit.Accumulated = Body[Name].Accumulated;
      if (Classes[Name] == VarClass::Induction) {
        Exit.Data = nullptr;
        Exit.Accumulated = false;
      }
      S[Name] = Exit;
    }
  }

  /// One active (pass B) loop, for value-space conversion of offsets.
  struct ActiveLoop {
    std::string Sym;
    int64_t StartConst = 0;
    bool Substitute = false;
  };

  const CFunction &Fn;
  KernelModel Model;
  State Vars;
  std::vector<MGuard> GuardStack;
  std::vector<ActiveLoop> ActiveLoops;
  cfront::SourceLoc CurLoc;
  bool Recording = true;
  int LoopDepth = 0;
  int FreshCounter = 0;
};

/// Collects integer literals outside loop headers.
class ConstantScanner {
public:
  std::vector<int64_t> Constants;

  void visitStmt(const CStmt &S) {
    switch (S.kind()) {
    case CStmt::Kind::Decl:
      if (const CExpr *Init = cCast<CDeclStmt>(S).init())
        visitExpr(*Init);
      return;
    case CStmt::Kind::ExprStmt:
      visitExpr(cCast<CExprStmt>(S).expr());
      return;
    case CStmt::Kind::Block:
      for (const CStmtPtr &Sub : cCast<CBlock>(S).statements())
        visitStmt(*Sub);
      return;
    case CStmt::Kind::For:
      // Loop headers hold bounds, not data constants.
      visitStmt(cCast<CFor>(S).body());
      return;
    case CStmt::Kind::While:
      visitStmt(cCast<CWhile>(S).body());
      return;
    case CStmt::Kind::If: {
      const auto &I = cCast<CIf>(S);
      visitStmt(I.thenStmt());
      if (I.elseStmt())
        visitStmt(*I.elseStmt());
      return;
    }
    case CStmt::Kind::Return:
      if (const CExpr *E = cCast<CReturn>(S).expr())
        visitExpr(*E);
      return;
    case CStmt::Kind::Empty:
      return;
    }
  }

  void visitExpr(const CExpr &E) {
    switch (E.kind()) {
    case CExpr::Kind::IntLit: {
      int64_t Value = cCast<IntLit>(E).value();
      if (std::find(Constants.begin(), Constants.end(), Value) ==
          Constants.end())
        Constants.push_back(Value);
      return;
    }
    case CExpr::Kind::Unary:
      visitExpr(cCast<CUnary>(E).operand());
      return;
    case CExpr::Kind::Binary: {
      const auto &B = cCast<CBinary>(E);
      visitExpr(B.lhs());
      visitExpr(B.rhs());
      return;
    }
    case CExpr::Kind::Assign: {
      const auto &A = cCast<CAssign>(E);
      visitExpr(A.lhs());
      visitExpr(A.rhs());
      return;
    }
    case CExpr::Kind::IncDec:
      return; // ++/-- carry an implicit 1, not a source constant.
    case CExpr::Kind::Index:
      // Subscript literals (e.g. `&B[0]`) are address anchors, not data.
      visitExpr(cCast<CIndex>(E).base());
      return;
    default:
      return;
    }
  }
};

} // namespace

KernelModel analysis::buildKernelModel(const CFunction &Fn) {
  SymExec Exec(Fn);
  KernelModel Model = Exec.run();
  KernelSummary &Summary = Model.Summary;

  // Identify the output parameter: the pointer parameter with stores.
  std::map<std::string, int> StoreCounts;
  for (const AccessRecord &R : Summary.Accesses)
    if (R.IsStore)
      ++StoreCounts[R.Param];
  for (const auto &[Param, Count] : StoreCounts)
    if (Summary.OutputParam.empty() ||
        Count > StoreCounts[Summary.OutputParam])
      Summary.OutputParam = Param;

  // Delinearized dimensionality per parameter (max over its accesses).
  for (const AccessRecord &R : Summary.Accesses) {
    int Arity = R.subscriptArity(Summary.LoopSymbols);
    auto [It, Inserted] = Summary.ParamDims.emplace(R.Param, Arity);
    if (!Inserted)
      It->second = std::max(It->second, Arity);
  }

  // LHS dimensionality: the delinearized arity of stores to the output
  // parameter; zero (a scalar) when the kernel writes without indexing.
  Summary.LhsDim = 0;
  for (const AccessRecord &R : Summary.Accesses)
    if (R.IsStore && R.Param == Summary.OutputParam)
      Summary.LhsDim =
          std::max(Summary.LhsDim, R.subscriptArity(Summary.LoopSymbols));

  ConstantScanner Scanner;
  Scanner.visitStmt(*Fn.Body);
  Summary.Constants = std::move(Scanner.Constants);
  return Model;
}

KernelSummary analysis::analyzeKernel(const CFunction &Fn) {
  return std::move(buildKernelModel(Fn).Summary);
}
