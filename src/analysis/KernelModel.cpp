//===- analysis/KernelModel.cpp - Normalized kernel IR --------------------===//
//
// Model-side machinery: value-expression construction and equality, the
// stride-ordered delinearization that used to live in api/KernelIngest.cpp
// (now over the executor's closed forms), and kernel classification.
// buildKernelModel itself lives in KernelAnalysis.cpp next to the symbolic
// executor that produces it.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelModel.h"

#include <algorithm>

using namespace stagg;
using namespace stagg::analysis;

MExprPtr MExpr::load(std::string Param, Poly Off) {
  auto E = std::make_shared<MExpr>();
  E->K = Kind::Load;
  E->Name = std::move(Param);
  E->Offset = std::move(Off);
  return E;
}

MExprPtr MExpr::param(std::string Name) {
  auto E = std::make_shared<MExpr>();
  E->K = Kind::Param;
  E->Name = std::move(Name);
  return E;
}

MExprPtr MExpr::constant(int64_t Value) {
  auto E = std::make_shared<MExpr>();
  E->K = Kind::ConstInt;
  E->IntValue = Value;
  return E;
}

MExprPtr MExpr::bin(MOp Op, MExprPtr A, MExprPtr B) {
  if (!A || !B)
    return nullptr;
  auto E = std::make_shared<MExpr>();
  E->K = Kind::Bin;
  E->Op = Op;
  E->A = std::move(A);
  E->B = std::move(B);
  return E;
}

MExprPtr MExpr::neg(MExprPtr A) {
  if (!A)
    return nullptr;
  auto E = std::make_shared<MExpr>();
  E->K = Kind::Neg;
  E->A = std::move(A);
  return E;
}

bool analysis::mexprEquals(const MExprPtr &A, const MExprPtr &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case MExpr::Kind::Load:
    return A->Name == B->Name && A->Offset == B->Offset;
  case MExpr::Kind::Param:
    return A->Name == B->Name;
  case MExpr::Kind::ConstInt:
    return A->IntValue == B->IntValue;
  case MExpr::Kind::Bin:
    return A->Op == B->Op && mexprEquals(A->A, B->A) &&
           mexprEquals(A->B, B->B);
  case MExpr::Kind::Neg:
    return mexprEquals(A->A, B->A);
  }
  return false;
}

const char *analysis::kernelClassName(KernelClass C) {
  switch (C) {
  case KernelClass::Subscript:
    return "subscript";
  case KernelClass::PointerWalking:
    return "pointer-walking";
  case KernelClass::Conditional:
    return "conditional";
  case KernelClass::MultiStatement:
    return "multi-statement";
  }
  return "?";
}

std::string KernelModel::locatedLimitation() const {
  if (Limitation.empty())
    return Limitation;
  std::string Loc = LimitationLoc.str();
  return Loc.empty() ? Limitation : Limitation + " (" + Loc + ")";
}

const ModelLoop *KernelModel::loop(const std::string &Symbol) const {
  for (const ModelLoop &L : Loops)
    if (L.Symbol == Symbol)
      return &L;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Delinearization (stride ordering; O'Boyle & Knijnenburg)
//===----------------------------------------------------------------------===//

namespace {

/// Builds Coeff * product(Symbols).
Poly monomialPoly(const Monomial &Symbols, int64_t Coeff) {
  Poly P = Poly::constant(Coeff);
  for (const std::string &S : Symbols)
    P = P * Poly::symbol(S);
  return P;
}

/// Exact division \p A / \p B when \p B is a single term dividing every
/// term of \p A; nullopt otherwise.
std::optional<Poly> dividePoly(const Poly &A, const Poly &B) {
  if (B.terms().size() != 1)
    return std::nullopt;
  const auto &[DivMono, DivCoeff] = *B.terms().begin();
  if (DivCoeff == 0)
    return std::nullopt;
  Poly Quotient;
  for (const auto &[Mono, Coeff] : A.terms()) {
    if (Coeff % DivCoeff != 0)
      return std::nullopt;
    // DivMono must be a sub-multiset of Mono.
    Monomial Rest = Mono;
    for (const std::string &S : DivMono) {
      auto It = std::find(Rest.begin(), Rest.end(), S);
      if (It == Rest.end())
        return std::nullopt;
      Rest.erase(It);
    }
    Quotient = Quotient + monomialPoly(Rest, Coeff / DivCoeff);
  }
  return Quotient;
}

/// The coefficient polynomial of \p Var in \p P (nullopt when \p Var occurs
/// nonlinearly).
std::optional<Poly> strideOf(const Poly &P, const std::string &Var) {
  Poly Stride;
  for (const auto &[Mono, Coeff] : P.terms()) {
    size_t Count =
        static_cast<size_t>(std::count(Mono.begin(), Mono.end(), Var));
    if (Count == 0)
      continue;
    if (Count > 1)
      return std::nullopt;
    Monomial Rest = Mono;
    Rest.erase(std::find(Rest.begin(), Rest.end(), Var));
    Stride = Stride + monomialPoly(Rest, Coeff);
  }
  return Stride;
}

/// Orders strides: +1 when A spans more elements than B, -1 for the
/// converse, 0 when the order cannot be established.
int compareStrides(const Poly &A, const Poly &B) {
  int64_t CA = 0, CB = 0;
  if (A.asConstant(CA) && B.asConstant(CB))
    return CA > CB ? 1 : (CA < CB ? -1 : 0);
  if (std::optional<Poly> Q = dividePoly(A, B)) {
    int64_t C = 0;
    if (!Q->asConstant(C))
      return 1; // symbolic multiple, e.g. (M*K)/K = M
    return C > 1 ? 1 : 0;
  }
  if (std::optional<Poly> Q = dividePoly(B, A)) {
    int64_t C = 0;
    if (!Q->asConstant(C))
      return -1;
    return C > 1 ? -1 : 0;
  }
  return 0;
}

} // namespace

ModelShape KernelModel::delinearize(const Poly &Offset) const {
  ModelShape Shape;

  // The loops the offset mentions, in model (outer-first) order.
  std::vector<const ModelLoop *> Mentioned;
  for (const ModelLoop &L : Loops)
    if (Offset.mentions(L.Symbol))
      Mentioned.push_back(&L);

  // Scalar access: a constant offset of zero is dimension-less (`out[0]`,
  // `*out`); anything else is out of scope.
  if (Mentioned.empty()) {
    int64_t C = 0;
    Shape.Ok = Offset.asConstant(C) && C == 0;
    return Shape;
  }

  // Strides must be linear, must tile exactly (no residual terms), and
  // must order totally.
  Poly Residual = Offset;
  std::vector<std::pair<const ModelLoop *, Poly>> Strides;
  for (const ModelLoop *L : Mentioned) {
    std::optional<Poly> S = strideOf(Offset, L->Symbol);
    if (!S || S->isZero())
      return Shape;
    Residual = Residual - *S * Poly::symbol(L->Symbol);
    Strides.emplace_back(L, *S);
  }
  if (!Residual.isZero())
    return Shape;

  // Order by stride, outermost dimension first. compareStrides is only a
  // partial order, so select the strict maximum of the remainder each round
  // and fail on any incomparable pair (ambiguous layout, e.g. the stencil
  // i + j). Ranks are bounded by the loop depth, so O(n^2) is free.
  for (size_t I = 0; I < Strides.size(); ++I) {
    size_t Max = I;
    for (size_t J = I + 1; J < Strides.size(); ++J) {
      int Order = compareStrides(Strides[Max].second, Strides[J].second);
      if (Order == 0)
        return Shape;
      if (Order < 0)
        Max = J;
    }
    std::swap(Strides[I], Strides[Max]);
  }
  int64_t Inner = 0;
  if (!Strides.back().second.asConstant(Inner) || Inner != 1)
    return Shape; // non-unit innermost stride

  // Extents: the leading dimension spans its loop's index space; every
  // inner dimension is the ratio of adjacent strides.
  for (size_t I = 0; I < Strides.size(); ++I) {
    ModelDim Dim;
    Dim.LoopSym = Strides[I].first->Symbol;
    if (I == 0) {
      Dim.Extent = Strides[0].first->Extent;
      Dim.ExtentKnown = Strides[0].first->ExtentKnown;
    } else {
      std::optional<Poly> Ratio =
          dividePoly(Strides[I - 1].second, Strides[I].second);
      if (!Ratio)
        return Shape;
      Dim.Extent = *Ratio;
      Dim.ExtentKnown = true;
    }
    Shape.Dims.push_back(std::move(Dim));
  }
  Shape.Ok = true;
  return Shape;
}

std::optional<ModelShape>
KernelModel::bestShape(const std::string &Param) const {
  std::optional<ModelShape> Best;
  bool Seen = false;
  for (const ModelAccess &A : Accesses) {
    if (A.Param != Param)
      continue;
    Seen = true;
    if (!A.Offset)
      continue;
    ModelShape S = delinearize(*A.Offset);
    if (!S.Ok)
      continue;
    if (!Best || !Best->Ok || S.Dims.size() > Best->Dims.size())
      Best = std::move(S);
  }
  if (!Best && Seen)
    Best = ModelShape(); // accessed, but never with a recoverable offset
  return Best;
}

bool analysis::extentName(const ModelDim &Dim, std::string &Out) {
  if (!Dim.ExtentKnown)
    return false;
  int64_t C = 0;
  if (Dim.Extent.asConstant(C)) {
    if (C < 1)
      return false;
    Out = std::to_string(C);
    return true;
  }
  const auto &Terms = Dim.Extent.terms();
  if (Terms.size() == 1 && Terms.begin()->first.size() == 1 &&
      Terms.begin()->second == 1) {
    Out = Terms.begin()->first.front();
    return true;
  }
  return false;
}

KernelClass analysis::classifyKernel(const KernelModel &M) {
  if (M.Conditional)
    return KernelClass::Conditional;
  for (const ModelStore &S : M.Stores)
    if (!S.Guards.empty())
      return KernelClass::Conditional;

  // Semantic statements: stores that are not zero-initialization setup.
  int Semantic = 0;
  for (const ModelStore &S : M.Stores)
    if (!(S.Op == ModelStore::OpKind::Set && S.RhsIsZeroLiteral))
      ++Semantic;
  if (Semantic > 1)
    return KernelClass::MultiStatement;

  if (M.PointerWalking)
    return KernelClass::PointerWalking;
  return KernelClass::Subscript;
}
