//===- analysis/Checker.cpp - Static safety analysis over KernelModel -----===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "analysis/Checker.h"

#include "analysis/Interval.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <utility>

namespace stagg {
namespace analysis {

const char *checkSeverityName(CheckSeverity S) {
  return S == CheckSeverity::Hard ? "error" : "warning";
}

std::string CheckFinding::str() const {
  std::string Out = Code + ": " + Message;
  if (Loc.valid())
    Out += " (" + Loc.str() + ")";
  return Out;
}

int CheckReport::hardCount() const {
  int N = 0;
  for (const CheckFinding &F : Findings)
    if (F.Severity == CheckSeverity::Hard)
      ++N;
  return N;
}

int CheckReport::warningCount() const {
  return static_cast<int>(Findings.size()) - hardCount();
}

const std::vector<CheckCodeInfo> &checkCatalog() {
  static const std::vector<CheckCodeInfo> Catalog = {
      {"SK001", CheckSeverity::Hard, "provable out-of-bounds access"},
      {"SK002", CheckSeverity::Warning,
       "possible out-of-bounds access (bounds not provable)"},
      {"SK003", CheckSeverity::Hard,
       "loop-carried dependence through a stored buffer"},
      {"SK004", CheckSeverity::Hard,
       "write into a read-only input parameter (in/out aliasing)"},
      {"SK005", CheckSeverity::Hard,
       "reduction into an uninitialized non-output buffer"},
      {"SK006", CheckSeverity::Warning,
       "access shape could not be inferred (non-delinearizable offset)"},
      {"SK007", CheckSeverity::Warning,
       "construct outside the normalized kernel model"},
  };
  return Catalog;
}

Poly shapeExtentPoly(const std::string &Entry) {
  if (!Entry.empty() &&
      std::all_of(Entry.begin(), Entry.end(),
                  [](unsigned char C) { return std::isdigit(C); }))
    return Poly::constant(std::stoll(Entry));
  return Poly::symbol(Entry);
}

namespace {

/// Symbolic [Min, Max] of \p Off over the model's loop ranges: each loop
/// symbol is eliminated innermost-first by substituting 0 or `extent - 1`
/// according to the provable sign of its stride. nullopt when a loop is not
/// normalized (unknown extent, non-zero start) or a stride's sign is not
/// provable.
std::optional<SymRange> rangeOfOffset(const Poly &Off, const KernelModel &M) {
  auto IsLoopSym = [&M](const std::string &S) { return M.loop(S) != nullptr; };
  auto SizeLike = [&IsLoopSym](const std::string &S) { return !IsLoopSym(S); };

  SymRange R{Off, Off};
  // The endpoints start out identical and only diverge at the first loop
  // with a non-degenerate stride, so the linear split and the stride-sign
  // proofs are shared until then.
  bool Equal = true;
  for (auto It = M.Loops.rbegin(); It != M.Loops.rend(); ++It) {
    const ModelLoop &L = *It;
    if (Equal) {
      if (!R.Min.mentions(L.Symbol))
        continue;
      if (!L.ExtentKnown || !L.StartsAtZero || !L.HeaderOk)
        return std::nullopt;
      Poly Stride, Rest;
      if (!splitLinear(R.Min, L.Symbol, Stride, Rest))
        return std::nullopt;
      bool NonNeg = provablyNonNegative(Stride, SizeLike);
      bool NonPos = provablyNonNegative(-Stride, SizeLike);
      if (!NonNeg && !NonPos)
        return std::nullopt;
      // Sign-definite stride: the sought extreme is at `extent - 1` when
      // the stride sign matches the endpoint, at 0 otherwise (a zero
      // stride makes either choice exact).
      Poly Last = L.Extent - Poly::constant(1);
      R.Max = Rest + Stride * (NonNeg ? Last : Poly());
      R.Min = Rest + Stride * ((NonNeg && !NonPos) ? Poly() : Last);
      Equal = R.Min == R.Max;
      continue;
    }
    for (Poly *P : {&R.Min, &R.Max}) {
      if (!P->mentions(L.Symbol))
        continue;
      if (!L.ExtentKnown || !L.StartsAtZero || !L.HeaderOk)
        return std::nullopt;
      Poly Stride, Rest;
      if (!splitLinear(*P, L.Symbol, Stride, Rest))
        return std::nullopt;
      bool NonNeg = provablyNonNegative(Stride, SizeLike);
      bool NonPos = provablyNonNegative(-Stride, SizeLike);
      if (!NonNeg && !NonPos)
        return std::nullopt;
      bool WantHigh = (P == &R.Max);
      Poly Last = L.Extent - Poly::constant(1);
      Poly Chosen = (NonNeg == WantHigh || (NonNeg && NonPos)) ? Last : Poly();
      *P = Rest + Stride * Chosen;
    }
  }
  if (R.Min.mentionsIf(IsLoopSym) || R.Max.mentionsIf(IsLoopSym))
    return std::nullopt;
  return R;
}

/// Proves the access actually executes for every size assignment: every loop
/// its offset ranges over (transitively, through triangular extents) has a
/// provably positive extent. Needed before a *hard* out-of-bounds verdict —
/// an empty iteration space never faults.
bool iterationProvablyNonEmpty(const Poly &Off, const KernelModel &M) {
  auto IsLoopSym = [&M](const std::string &S) { return M.loop(S) != nullptr; };
  auto SizeLike = [&IsLoopSym](const std::string &S) { return !IsLoopSym(S); };
  std::vector<std::string> Work = Off.symbolsIf(IsLoopSym);
  std::set<std::string> Seen;
  while (!Work.empty()) {
    std::string S = Work.back();
    Work.pop_back();
    if (!Seen.insert(S).second)
      continue;
    const ModelLoop *L = M.loop(S);
    if (!L || !L->ExtentKnown)
      return false;
    if (!provablyNonNegative(L->Extent - Poly::constant(1), SizeLike))
      return false;
    for (const std::string &T : L->Extent.symbolsIf(IsLoopSym))
      Work.push_back(T);
  }
  return true;
}

/// Collects every Load of \p Param inside \p E.
void collectLoadsOf(const MExprPtr &E, const std::string &Param,
                    std::vector<Poly> &Out) {
  if (!E)
    return;
  if (E->K == MExpr::Kind::Load && E->Name == Param)
    Out.push_back(E->Offset);
  collectLoadsOf(E->A, Param, Out);
  collectLoadsOf(E->B, Param, Out);
}

std::string shapeStr(const std::vector<Poly> &Extents) {
  std::string Out;
  for (const Poly &E : Extents)
    Out += "[" + E.str() + "]";
  return Out;
}

} // namespace

CheckReport checkKernel(const KernelModel &M, const CheckOptions &Options) {
  CheckReport Report;
  auto Emit = [&Report](std::string Code, CheckSeverity Sev,
                        std::string Message, cfront::SourceLoc Loc,
                        std::string Param) {
    for (const CheckFinding &F : Report.Findings)
      if (F.Code == Code && F.Message == Message && F.Loc.Line == Loc.Line &&
          F.Loc.Col == Loc.Col)
        return;
    CheckFinding F;
    F.Code = std::move(Code);
    F.Severity = Sev;
    F.Message = std::move(Message);
    F.Loc = Loc;
    F.Param = std::move(Param);
    Report.Findings.push_back(std::move(F));
  };

  std::set<std::string> Outputs = Options.OutputParams;
  if (Outputs.empty() && !M.Summary.OutputParam.empty())
    Outputs.insert(M.Summary.OutputParam);

  // The declared (or model-inferred) shape of one pointer parameter. An
  // empty declared shape is a scalar: a one-element buffer. Declared shapes
  // are *authoritative* buffer sizes (the caller allocates exactly that), so
  // they support hard out-of-bounds verdicts; shapes inferred from the
  // accesses themselves only describe the touched region — a lower bound on
  // the real buffer — and can at most warn.
  struct ParamShape {
    /// Declared shapes are borrowed straight from Options (no copy);
    /// model-inferred ones point at Owned.
    const std::vector<Poly> *Extents = nullptr;
    std::vector<Poly> Owned;
    Poly Size; ///< Product of the extents — the flat buffer size.
    bool Authoritative = false;
  };
  // Memoized per parameter: a kernel touches each buffer through many
  // accesses, and both the shape lookup and the extent product are
  // per-buffer facts.
  std::map<std::string, std::optional<ParamShape>> ShapeMemo;
  auto ShapeOf =
      [&](const std::string &Param) -> const std::optional<ParamShape> & {
    auto Memo = ShapeMemo.find(Param);
    if (Memo != ShapeMemo.end())
      return Memo->second;
    std::optional<ParamShape> Out;
    auto It = Options.Shapes.find(Param);
    if (It != Options.Shapes.end()) {
      Out.emplace();
      Out->Extents = &It->second;
      Out->Authoritative = true;
    } else if (std::optional<ModelShape> Best = M.bestShape(Param);
               Best && Best->Ok && !Best->Dims.empty()) {
      ParamShape S;
      for (const ModelDim &D : Best->Dims) {
        if (!D.ExtentKnown) {
          S.Owned.clear();
          break;
        }
        S.Owned.push_back(D.Extent);
      }
      if (!S.Owned.empty())
        Out = std::move(S);
    }
    // Fill the derived fields after the move into the memo so the Owned
    // self-pointer stays valid.
    std::optional<ParamShape> &Slot =
        ShapeMemo.emplace(Param, std::move(Out)).first->second;
    if (Slot) {
      if (!Slot->Extents)
        Slot->Extents = &Slot->Owned;
      if (Slot->Extents->size() == 1) {
        Slot->Size = (*Slot->Extents)[0];
      } else {
        Slot->Size = Poly::constant(1);
        for (const Poly &E : *Slot->Extents)
          Slot->Size = Slot->Size * E;
      }
    }
    return Slot;
  };

  // Pass 1: bounds. Every recorded access must fit its buffer. The in-bounds
  // proof depends only on the offset polynomial and the buffer size (`x[i]`,
  // `y[i]`, and `out[i]` over [N] are one proof, not three), and accesses
  // repeat across stores — so proven (size, offset) pairs are cached and
  // later identical accesses skip the range computation.
  bool AllSafe = true;
  std::vector<std::pair<const Poly *, const Poly *>> ProvenSafe;
  auto AlreadyProven = [&ProvenSafe](const Poly &Size, const Poly &Off) {
    for (const auto &[S, O] : ProvenSafe)
      if (*S == Size && *O == Off)
        return true;
    return false;
  };
  for (const ModelAccess &A : M.Accesses) {
    if (!A.Offset) {
      AllSafe = false;
      Emit("SK002", CheckSeverity::Warning,
           "access through '" + A.Param +
               "' has no recoverable affine offset",
           A.Loc, A.Param);
      continue;
    }
    const std::optional<ParamShape> &Shape = ShapeOf(A.Param);
    if (!Shape) {
      // A constant offset 0 through an un-shaped pointer is the scalar
      // `*out` idiom: any valid argument points at one element, so the
      // access is safe regardless of the (unknown) shape.
      int64_t C = 0;
      if (A.Offset->asConstant(C) && C == 0)
        continue;
      AllSafe = false;
      Emit("SK006", CheckSeverity::Warning,
           "no shape could be inferred for '" + A.Param + "' (offset " +
               A.Offset->str() +
               " does not delinearize into ordered strides)",
           A.Loc, A.Param);
      continue;
    }
    const Poly &Size = Shape->Size;
    if (AlreadyProven(Size, *A.Offset))
      continue;
    std::optional<SymRange> Range = rangeOfOffset(*A.Offset, M);
    if (!Range) {
      AllSafe = false;
      Emit("SK002", CheckSeverity::Warning,
           "offset " + A.Offset->str() + " of '" + A.Param +
               "' has no provable range over the loop extents",
           A.Loc, A.Param);
      continue;
    }
    bool SafeLow = provablyNonNegative(Range->Min);
    bool SafeHigh = provablyNonNegative(Size - Poly::constant(1) - Range->Max);
    if (SafeLow && SafeHigh) {
      ProvenSafe.push_back({&Size, &*A.Offset});
      continue;
    }
    AllSafe = false;
    bool DefiniteHigh = provablyNonNegative(Range->Max - Size);
    bool DefiniteLow = provablyNonNegative(Poly::constant(-1) - Range->Min);
    std::string What = std::string(A.IsStore ? "store to '" : "load of '") +
                       A.Param + "[" + A.Offset->str() + "]' (range [" +
                       Range->Min.str() + ", " + Range->Max.str() +
                       "] vs shape " + shapeStr(*Shape->Extents) + ")";
    if ((DefiniteHigh || DefiniteLow) && Shape->Authoritative &&
        !M.Conditional && iterationProvablyNonEmpty(*A.Offset, M))
      Emit("SK001", CheckSeverity::Hard, What + " is out of bounds", A.Loc,
           A.Param);
    else
      Emit("SK002", CheckSeverity::Warning, What + " may be out of bounds",
           A.Loc, A.Param);
  }
  Report.BoundsProvenSafe = AllSafe && M.Limitation.empty();

  // Pass 2: dependences. A store whose RHS reads the same buffer at a
  // different offset carries a value across iterations; a write into a
  // non-output parameter aliases an input the lift assumes immutable.
  for (const ModelStore &St : M.Stores) {
    if (St.Offset && St.Rhs) {
      std::vector<Poly> Loads;
      collectLoadsOf(St.Rhs, St.Param, Loads);
      for (const Poly &L : Loads)
        if (!(L == *St.Offset))
          Emit("SK003", CheckSeverity::Hard,
               "store to '" + St.Param + "[" + St.Offset->str() +
                   "]' reads '" + St.Param + "[" + L.str() +
                   "]' from a different iteration (loop-carried dependence)",
               St.Loc, St.Param);
    }
    if (!Outputs.empty() && !Outputs.count(St.Param) &&
        St.Op != ModelStore::OpKind::Add)
      Emit("SK004", CheckSeverity::Hard,
           "write into read-only input parameter '" + St.Param +
               "' (in/out aliasing breaks the lift)",
           St.Loc, St.Param);
  }

  // Pass 3: initialization. `+=` into a buffer that is neither the output
  // (zero pre-state guaranteed by the pipeline) nor explicitly initialized
  // first reads uninitialized memory.
  if (!Outputs.empty()) {
    for (size_t I = 0; I < M.Stores.size(); ++I) {
      const ModelStore &St = M.Stores[I];
      if (St.Op != ModelStore::OpKind::Add || Outputs.count(St.Param))
        continue;
      bool Initialized = false;
      for (size_t J = 0; J < I; ++J)
        if (M.Stores[J].Param == St.Param &&
            M.Stores[J].Op == ModelStore::OpKind::Set)
          Initialized = true;
      if (!Initialized)
        Emit("SK005", CheckSeverity::Hard,
             "reduction into '" + St.Param +
                 "' reads uninitialized memory (not the output, never "
                 "initialized)",
             St.Loc, St.Param);
    }
  }

  // Pass 4: normalization coverage, for the linter view.
  if (!M.Limitation.empty())
    Emit("SK007", CheckSeverity::Warning, M.Limitation, M.LimitationLoc, "");

  return Report;
}

} // namespace analysis
} // namespace stagg
