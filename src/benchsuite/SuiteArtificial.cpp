//===- benchsuite/SuiteArtificial.cpp - The 10 artificial queries ---------===//
//
// Hand-written warm-up kernels mirroring the paper's 10 artificial examples:
// small, clean array loops exercising each grammar feature once.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendArtificial(std::vector<Benchmark> &Out) {
  Out.push_back(makeBenchmark(
      "art_copy", "artificial",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i];
      })",
      "out(i) = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "art_scal_const", "artificial",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = 2 * x[i];
      })",
      "out(i) = 2 * x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "art_add", "artificial",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] + b[i];
      })",
      "out(i) = a(i) + b(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "art_transpose", "artificial",
      R"(void kernel(int N, int M, float* A, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[j * N + i];
      })",
      "out(i,j) = A(j,i)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"M", "N"}),
       ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "art_dot", "artificial",
      R"(void kernel(int N, float* a, float* b, float* out) {
        float s = 0;
        for (int i = 0; i < N; i++)
          s = s + a[i] * b[i];
        out[0] = s;
      })",
      "out = a(i) * b(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "art_addsub3", "artificial",
      R"(void kernel(int N, float* a, float* b, float* c, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] + b[i] - c[i];
      })",
      "out(i) = a(i) + b(i) - c(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::array("c", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "art_matmul", "artificial",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++) {
            out[i * M + j] = 0;
            for (int k = 0; k < K; k++)
              out[i * M + j] += A[i * K + k] * B[k * M + j];
          }
      })",
      "out(i,j) = A(i,k) * B(k,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"N", "K"}), ArgSpec::array("B", {"K", "M"}),
       ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "art_div_const", "artificial",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] / 4;
      })",
      "out(i) = x(i) / 4",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "art_3d_add", "artificial",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            for (int k = 0; k < K; k++)
              out[(i * M + j) * K + k] = A[(i * M + j) * K + k] + B[(i * M + j) * K + k];
      })",
      "out(i,j,k) = A(i,j,k) + B(i,j,k)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"N", "M", "K"}), ArgSpec::array("B", {"N", "M", "K"}),
       ArgSpec::output("out", {"N", "M", "K"})}));

  Out.push_back(makeBenchmark(
      "art_paren", "artificial",
      R"(void kernel(int N, float* a, float* b, float* c, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = (a[i] + b[i]) * c[i];
      })",
      "out(i) = (a(i) + b(i)) * c(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::array("c", {"N"}),
       ArgSpec::output("out", {"N"})}));
}
