//===- benchsuite/SuiteBlas.cpp - BLAS-derived real-world queries ---------===//
//
// Level-1/2/3 BLAS kernels in the C styles found in legacy codebases:
// indexed loops, linearized two-dimensional subscripts, and raw pointer
// iteration (the style of the paper's Fig. 2 motivating example).
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendBlas(std::vector<Benchmark> &Out) {
  Out.push_back(makeBenchmark(
      "blas_axpy", "blas",
      R"(void kernel(int N, float alpha, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = alpha * x[i] + y[i];
      })",
      "out(i) = alpha * x(i) + y(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "blas_scal", "blas",
      R"(void kernel(int N, float alpha, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = alpha * x[i];
      })",
      "out(i) = alpha * x(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  // Pointer-iteration copy, as produced by hand-optimized legacy code.
  Out.push_back(makeBenchmark(
      "blas_copy_ptr", "blas",
      R"(void kernel(int N, float* x, float* out) {
        float* p = x;
        float* q = out;
        for (int i = 0; i < N; i++)
          *q++ = *p++;
      })",
      "out(i) = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "blas_dot", "blas",
      R"(void kernel(int N, float* x, float* y, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          acc += x[i] * y[i];
        *out = acc;
      })",
      "out = x(i) * y(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {})}));

  // The paper's Fig. 2 kernel: row-by-row dot products via pointer walking.
  Out.push_back(makeBenchmark(
      "blas_gemv_ptr", "blas",
      R"(void kernel(int N, int* Mat1, int* Mat2, int* Result) {
        int* p_m1;
        int* p_m2;
        int* p_t;
        int i, f;
        p_m1 = Mat1;
        p_t = Result;
        for (f = 0; f < N; f++) {
          *p_t = 0;
          p_m2 = &Mat2[0];
          for (i = 0; i < N; i++)
            *p_t += *p_m1++ * *p_m2++;
          p_t++;
        }
      })",
      "Result(i) = Mat1(i,j) * Mat2(j)",
      {ArgSpec::size("N"), ArgSpec::array("Mat1", {"N", "N"}),
       ArgSpec::array("Mat2", {"N"}), ArgSpec::output("Result", {"N"})}));

  Out.push_back(makeBenchmark(
      "blas_gemv_t", "blas",
      R"(void kernel(int N, int M, float* A, float* x, float* y) {
        for (int j = 0; j < M; j++)
          y[j] = 0;
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            y[j] += A[i * M + j] * x[i];
      })",
      "y(i) = A(j,i) * x(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("x", {"N"}), ArgSpec::output("y", {"M"})}));

  Out.push_back(makeBenchmark(
      "blas_ger", "blas",
      R"(void kernel(int N, int M, float* x, float* y, float* A) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            A[i * M + j] = x[i] * y[j];
      })",
      "A(i,j) = x(i) * y(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"M"}), ArgSpec::output("A", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "blas_gemm", "blas",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* C) {
        for (int i = 0; i < N; i++) {
          for (int j = 0; j < M; j++) {
            float acc = 0;
            for (int k = 0; k < K; k++)
              acc += A[i * K + k] * B[k * M + j];
            C[i * M + j] = acc;
          }
        }
      })",
      "C(i,j) = A(i,k) * B(k,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"N", "K"}), ArgSpec::array("B", {"K", "M"}),
       ArgSpec::output("C", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "blas_gemm_tn", "blas",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* C) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            C[i * M + j] = 0;
        for (int k = 0; k < K; k++)
          for (int i = 0; i < N; i++)
            for (int j = 0; j < M; j++)
              C[i * M + j] += A[k * N + i] * B[k * M + j];
      })",
      "C(i,j) = A(k,i) * B(k,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"K", "N"}), ArgSpec::array("B", {"K", "M"}),
       ArgSpec::output("C", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "blas_sum", "blas",
      R"(void kernel(int N, float* x, float* out) {
        float s = 0;
        for (int i = 0; i < N; i++)
          s += x[i];
        out[0] = s;
      })",
      "out = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "blas_axpby", "blas",
      R"(void kernel(int N, float alpha, float beta, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = alpha * x[i] + beta * y[i];
      })",
      "out(i) = alpha * x(i) + beta * y(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::num("beta"),
       ArgSpec::array("x", {"N"}), ArgSpec::array("y", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "blas_nrm2sq", "blas",
      R"(void kernel(int N, float* x, float* out) {
        float s = 0;
        for (int i = 0; i < N; i++)
          s += x[i] * x[i];
        *out = s;
      })",
      "out = x(i) * x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));
}
