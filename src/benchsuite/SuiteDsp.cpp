//===- benchsuite/SuiteDsp.cpp - UTDSP/DSPstone-style kernels -------------===//
//
// Signal-processing kernels in the heavily pointer-optimized style of the
// UTDSP and DSPstone suites: multiply-accumulate loops, gain/offset stages,
// and matrix pipelines written with linearized or pointer-walked buffers.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendDsp(std::vector<Benchmark> &Out) {
  // Fully pointer-iterated matrix multiply (DSPstone matrix1 style).
  Out.push_back(makeBenchmark(
      "dsp_matmul_ptr", "dsp",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* C) {
        float* pc = C;
        for (int i = 0; i < N; i++) {
          for (int j = 0; j < M; j++) {
            float* pa = &A[i * K];
            float* pb = &B[j];
            float acc = 0;
            for (int k = 0; k < K; k++) {
              acc += *pa * *pb;
              pa++;
              pb = pb + M;
            }
            *pc++ = acc;
          }
        }
      })",
      "C(i,j) = A(i,k) * B(k,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"N", "K"}), ArgSpec::array("B", {"K", "M"}),
       ArgSpec::output("C", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "dsp_matvec", "dsp",
      R"(void kernel(int N, int M, float* A, float* x, float* y) {
        for (int i = 0; i < N; i++) {
          y[i] = 0;
          for (int j = 0; j < M; j++)
            y[i] += A[i * M + j] * x[j];
        }
      })",
      "y(i) = A(i,j) * x(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("x", {"M"}), ArgSpec::output("y", {"N"})}));

  Out.push_back(makeBenchmark(
      "dsp_vecsum_ptr", "dsp",
      R"(void kernel(int N, float* x, float* out) {
        float* p = x;
        float acc = 0;
        for (int i = 0; i < N; i++)
          acc += *p++;
        *out = acc;
      })",
      "out = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "dsp_energy", "dsp",
      R"(void kernel(int N, float* x, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          acc += x[i] * x[i];
        *out = acc;
      })",
      "out = x(i) * x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "dsp_gain_offset", "dsp",
      R"(void kernel(int N, float g, float off, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] * g + off;
      })",
      "out(i) = x(i) * g + off",
      {ArgSpec::size("N"), ArgSpec::num("g"), ArgSpec::num("off"),
       ArgSpec::array("x", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dsp_mac", "dsp",
      R"(void kernel(int N, float* x, float* y, float* out) {
        float acc = 0;
        float* px = x;
        float* py = y;
        for (int i = 0; i < N; i++)
          acc += *px++ * *py++;
        out[0] = acc;
      })",
      "out = x(i) * y(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "dsp_vadd3", "dsp",
      R"(void kernel(int N, float* a, float* b, float* c, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] + b[i] + c[i];
      })",
      "out(i) = a(i) + b(i) + c(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::array("c", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dsp_wdiff", "dsp",
      R"(void kernel(int N, float alpha, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] - alpha * y[i];
      })",
      "out(i) = x(i) - alpha * y(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dsp_norm_div", "dsp",
      R"(void kernel(int N, float s, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] / s;
      })",
      "out(i) = x(i) / s",
      {ArgSpec::size("N"), ArgSpec::num("s"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dsp_outer", "dsp",
      R"(void kernel(int N, int M, float* w, float* x, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = w[i] * x[j];
      })",
      "out(i,j) = w(i) * x(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("w", {"N"}),
       ArgSpec::array("x", {"M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "dsp_mm_acc", "dsp",
      R"(void kernel(int N, int M, int K, float* A, float* B, float* C) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++) {
            C[i * M + j] = 0;
            for (int k = 0; k < K; k++)
              C[i * M + j] = C[i * M + j] + A[i * K + k] * B[k * M + j];
          }
      })",
      "C(i,j) = A(i,k) * B(k,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("A", {"N", "K"}), ArgSpec::array("B", {"K", "M"}),
       ArgSpec::output("C", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "dsp_ten3_contract", "dsp",
      R"(void kernel(int N, int M, int K, float* T, float* v, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++) {
            float acc = 0;
            for (int k = 0; k < K; k++)
              acc += T[(i * M + j) * K + k] * v[k];
            out[i * M + j] = acc;
          }
      })",
      "out(i,j) = T(i,j,k) * v(k)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::size("K"),
       ArgSpec::array("T", {"N", "M", "K"}), ArgSpec::array("v", {"K"}),
       ArgSpec::output("out", {"N", "M"})}));
}
