//===- benchsuite/SuitePointer.cpp - Pointer/conditional/fused kernels ----===//
//
// Registry growth beyond the paper's 77 queries: the ingestion classes real
// traffic arrives in — pointer-walking loop nests (llama.cpp/darknet style),
// relu-family guarded stores, and fused multi-statement bodies. Every entry
// here exercises the KernelModel-based ingestion end to end: each lifts from
// its C text alone (no oracle_hint), and each ground truth is the exact
// program the model-based emission derives.
//
// These kernels are deliberately *not* part of the paper's suite: the
// original 77-kernel experiments (bench/fig*, Table 1-3) select
// bench::paperBenchmarks() and are bit-identical to the seed.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendPointer(std::vector<Benchmark> &Out) {
  // --- Pointer-walking -------------------------------------------------

  Out.push_back(makeBenchmark(
      "ptr_copy_walk", "pointer",
      R"(void kernel(int N, float* x, float* out) {
        float* p = x;
        float* q = out;
        for (int i = 0; i < N; i++)
          *q++ = *p++;
      })",
      "out(i) = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "ptr_scal_walk", "pointer",
      R"(void kernel(int N, float alpha, float* x, float* out) {
        float* p = x;
        for (int i = 0; i < N; i++)
          *out++ = alpha * *p++;
      })",
      "out(i) = alpha * x(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "ptr_saxpy_walk", "pointer",
      R"(void kernel(int N, float x, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          *out++ = a[i] * x + b[i];
      })",
      "out(i) = a(i) * x + b(i)",
      {ArgSpec::size("N"), ArgSpec::num("x"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "ptr_dot_walk", "pointer",
      R"(void kernel(int N, float* x, float* y, float* out) {
        float acc = 0;
        float* p = x;
        float* q = y;
        for (int i = 0; i < N; i++)
          acc += *p++ * *q++;
        *out = acc;
      })",
      "out = x(i) * y(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "ptr_mv_rowwalk", "pointer",
      R"(void kernel(int N, float* A, float* v, float* out) {
        float* p = A;
        for (int i = 0; i < N; i++) {
          float acc = 0;
          for (int j = 0; j < N; j++)
            acc += *p++ * v[j];
          out[i] = acc;
        }
      })",
      "out(i) = A(i,j) * v(j)",
      {ArgSpec::size("N"), ArgSpec::array("A", {"N", "N"}),
       ArgSpec::array("v", {"N"}), ArgSpec::output("out", {"N"})}));

  // --- Relu-family conditionals ----------------------------------------

  Out.push_back(makeBenchmark(
      "relu_forward", "pointer",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++) {
          if (x[i] > 0) out[i] = x[i];
          else out[i] = 0;
        }
      })",
      "out(i) = max(x(i), 0)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "relu_clamp_floor", "pointer",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++) {
          out[i] = x[i];
          if (x[i] < 0) out[i] = 0;
        }
      })",
      "out(i) = max(0, x(i))",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "relu_pair_max", "pointer",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++) {
          if (a[i] > b[i]) out[i] = a[i];
          else out[i] = b[i];
        }
      })",
      "out(i) = max(a(i), b(i))",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  // --- Fused multi-statement bodies ------------------------------------

  Out.push_back(makeBenchmark(
      "fused_sq_add", "pointer",
      R"(void kernel(int N, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++) {
          out[i] = x[i] * x[i];
          out[i] = out[i] + y[i];
        }
      })",
      "out(i) = x(i) * x(i) + y(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "fused_scale_shift", "pointer",
      R"(void kernel(int N, float a, float b, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a * x[i];
        for (int j = 0; j < N; j++)
          out[j] = out[j] + b * y[j];
      })",
      "out(i) = a * x(i) + b * y(i)",
      {ArgSpec::size("N"), ArgSpec::num("a"), ArgSpec::num("b"),
       ArgSpec::array("x", {"N"}), ArgSpec::array("y", {"N"}),
       ArgSpec::output("out", {"N"})}));
}
