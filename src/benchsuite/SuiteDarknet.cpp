//===- benchsuite/SuiteDarknet.cpp - darknet-style NN kernels -------------===//
//
// Neural-network utility kernels in the style of the darknet framework's
// blas.c: flat loops over activation buffers, bias/scale application over a
// channel dimension, reductions, and residual arithmetic.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendDarknet(std::vector<Benchmark> &Out) {
  Out.push_back(makeBenchmark(
      "dk_fill", "darknet",
      R"(void kernel(int N, float val, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = val;
      })",
      "out(i) = val",
      {ArgSpec::size("N"), ArgSpec::num("val"), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_const_fill", "darknet",
      R"(void kernel(int N, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = 1;
      })",
      "out(i) = 1",
      {ArgSpec::size("N"), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_add_bias", "darknet",
      R"(void kernel(int C, int S, float* x, float* bias, float* out) {
        for (int c = 0; c < C; c++)
          for (int s = 0; s < S; s++)
            out[c * S + s] = x[c * S + s] + bias[c];
      })",
      "out(i,j) = x(i,j) + bias(i)",
      {ArgSpec::size("C"), ArgSpec::size("S"), ArgSpec::array("x", {"C", "S"}),
       ArgSpec::array("bias", {"C"}), ArgSpec::output("out", {"C", "S"})}));

  Out.push_back(makeBenchmark(
      "dk_scale_bias", "darknet",
      R"(void kernel(int C, int S, float* x, float* scale, float* out) {
        for (int c = 0; c < C; c++)
          for (int s = 0; s < S; s++)
            out[c * S + s] = x[c * S + s] * scale[c];
      })",
      "out(i,j) = x(i,j) * scale(i)",
      {ArgSpec::size("C"), ArgSpec::size("S"), ArgSpec::array("x", {"C", "S"}),
       ArgSpec::array("scale", {"C"}), ArgSpec::output("out", {"C", "S"})}));

  Out.push_back(makeBenchmark(
      "dk_sum_array", "darknet",
      R"(void kernel(int N, float* x, float* out) {
        float s = 0;
        for (int i = 0; i < N; i++)
          s += x[i];
        *out = s;
      })",
      "out = x(i)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "dk_mean_array", "darknet",
      R"(void kernel(int N, float* x, float* out) {
        float s = 0;
        for (int i = 0; i < N; i++)
          s += x[i];
        *out = s / N;
      })",
      "out = x(i) / N",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "dk_mul_array", "darknet",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] * b[i];
      })",
      "out(i) = a(i) * b(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  // darknet's axpy_cpu iterates with explicit pointers and strides of one.
  Out.push_back(makeBenchmark(
      "dk_axpy_ptr", "darknet",
      R"(void kernel(int N, float alpha, float* x, float* y, float* out) {
        float* px = x;
        float* py = y;
        float* po = out;
        for (int i = 0; i < N; i++) {
          *po = alpha * *px + *py;
          px++;
          py++;
          po++;
        }
      })",
      "out(i) = alpha * x(i) + y(i)",
      {ArgSpec::size("N"), ArgSpec::num("alpha"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_shortcut", "darknet",
      R"(void kernel(int N, float* add, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] + add[i];
      })",
      "out(i) = x(i) + add(i)",
      {ArgSpec::size("N"), ArgSpec::array("add", {"N"}),
       ArgSpec::array("x", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_weighted_sum", "darknet",
      R"(void kernel(int N, float sa, float sb, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] * sa + b[i] * sb;
      })",
      "out(i) = a(i) * sa + b(i) * sb",
      {ArgSpec::size("N"), ArgSpec::num("sa"), ArgSpec::num("sb"),
       ArgSpec::array("a", {"N"}), ArgSpec::array("b", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_scale_array", "darknet",
      R"(void kernel(int N, float s, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] * s;
      })",
      "out(i) = x(i) * s",
      {ArgSpec::size("N"), ArgSpec::num("s"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_mult_add_into", "darknet",
      R"(void kernel(int N, float* a, float* b, float* c, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] * b[i] + c[i];
      })",
      "out(i) = a(i) * b(i) + c(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::array("c", {"N"}),
       ArgSpec::output("out", {"N"})}));

  // Squared pointwise distance: needs a parenthesized (balanced) AST, which
  // only the top-down search can enumerate.
  Out.push_back(makeBenchmark(
      "dk_l2_dist", "darknet",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++) {
          float d = a[i] - b[i];
          out[i] = d * d;
        }
      })",
      "out(i) = (a(i) - b(i)) * (a(i) - b(i))",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  // Mean of two activations: parenthesized sum over a constant divisor.
  Out.push_back(makeBenchmark(
      "dk_avg_pair", "darknet",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = (a[i] + b[i]) / 2;
      })",
      "out(i) = (a(i) + b(i)) / 2",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "dk_sub_array", "darknet",
      R"(void kernel(int N, float* a, float* b, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a[i] - b[i];
      })",
      "out(i) = a(i) - b(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::output("out", {"N"})}));
}
