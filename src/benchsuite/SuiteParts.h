//===- benchsuite/SuiteParts.h - Internal suite assembly --------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: per-category builders for the 77-benchmark registry.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_BENCHSUITE_SUITEPARTS_H
#define STAGG_BENCHSUITE_SUITEPARTS_H

#include "benchsuite/Benchmark.h"

#include <vector>

namespace stagg {
namespace bench {

void appendArtificial(std::vector<Benchmark> &Out); ///< 10 queries.
void appendBlas(std::vector<Benchmark> &Out);       ///< 12 queries.
void appendDarknet(std::vector<Benchmark> &Out);    ///< 15 queries.
void appendDsp(std::vector<Benchmark> &Out);        ///< 12 queries.
void appendMisc(std::vector<Benchmark> &Out);       ///< 22 queries.
void appendLlama(std::vector<Benchmark> &Out);      ///< 6 queries.
void appendPointer(std::vector<Benchmark> &Out);    ///< 10 queries (post-paper).

/// Shared terse builder.
inline Benchmark makeBenchmark(std::string Name, std::string Category,
                               std::string CSource, std::string GroundTruth,
                               std::vector<ArgSpec> Args,
                               double Difficulty = -1) {
  Benchmark B;
  B.Name = std::move(Name);
  B.Category = std::move(Category);
  B.CSource = std::move(CSource);
  B.GroundTruth = std::move(GroundTruth);
  B.Args = std::move(Args);
  B.Difficulty = Difficulty;
  return B;
}

} // namespace bench
} // namespace stagg

#endif // STAGG_BENCHSUITE_SUITEPARTS_H
