//===- benchsuite/SuiteMisc.cpp - Miscellaneous literature kernels --------===//
//
// The remaining real-world kernels of the literature-derived suite: matrix
// utilities, contractions, normalization passes, and the high-dimensional
// stress cases on which enumerative lifters start to time out.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendMisc(std::vector<Benchmark> &Out) {
  Out.push_back(makeBenchmark(
      "misc_saxpy2", "misc",
      R"(void kernel(int N, float a, float* x, float* y, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = a * x[i] + a * y[i];
      })",
      "out(i) = a * x(i) + a * y(i)",
      {ArgSpec::size("N"), ArgSpec::num("a"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("y", {"N"}), ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_bilinear", "misc",
      R"(void kernel(int N, int M, float* x, float* A, float* y, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            acc += x[i] * A[i * M + j] * y[j];
        *out = acc;
      })",
      "out = x(i) * A(i,j) * y(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("x", {"N"}),
       ArgSpec::array("A", {"N", "M"}), ArgSpec::array("y", {"M"}),
       ArgSpec::output("out", {})}));

  // Three-matrix chain: four index variables, three 2-D tensors — the
  // suite's hardest query. GPT-class models systematically garble the
  // operand ranks of the inner chain, so the learned grammar cannot contain
  // the solution (the one real-world query STAGG-TD fails, mirroring the
  // paper's 76/77), and the unguided enumerators time out on the
  // four-variable space.
  Out.push_back(makeBenchmark(
      "misc_mm3_chain", "misc",
      R"(void kernel(int N, float* A, float* B, float* C, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < N; j++) {
            float acc = 0;
            for (int k = 0; k < N; k++)
              for (int l = 0; l < N; l++)
                acc += A[i * N + k] * B[k * N + l] * C[l * N + j];
            out[i * N + j] = acc;
          }
      })",
      "out(i,j) = A(i,k) * B(k,l) * C(l,j)",
      {ArgSpec::size("N"), ArgSpec::array("A", {"N", "N"}),
       ArgSpec::array("B", {"N", "N"}), ArgSpec::array("C", {"N", "N"}),
       ArgSpec::output("out", {"N", "N"})},
      /*Difficulty=*/1.0));

  // Order-4 contraction: hard for the direct LLM translation (ranks are
  // often wrong in individual guesses) but the guess *neighborhood* still
  // votes the right dimension list, so grammar-guided search recovers it.
  Out.push_back(makeBenchmark(
      "misc_ten4_contract", "misc",
      R"(void kernel(int N, float* T, float* x, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < N; j++)
            for (int k = 0; k < N; k++) {
              float acc = 0;
              for (int l = 0; l < N; l++)
                acc += T[((i * N + j) * N + k) * N + l] * x[l];
              out[(i * N + j) * N + k] = acc;
            }
      })",
      "out(i,j,k) = T(i,j,k,l) * x(l)",
      {ArgSpec::size("N"), ArgSpec::array("T", {"N", "N", "N", "N"}),
       ArgSpec::array("x", {"N"}), ArgSpec::output("out", {"N", "N", "N"})},
      /*Difficulty=*/0.85));

  Out.push_back(makeBenchmark(
      "misc_trace", "misc",
      R"(void kernel(int N, float* A, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          acc += A[i * N + i];
        *out = acc;
      })",
      "out = A(i,i)",
      {ArgSpec::size("N"), ArgSpec::array("A", {"N", "N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "misc_rowsum", "misc",
      R"(void kernel(int N, int M, float* A, float* out) {
        for (int i = 0; i < N; i++) {
          out[i] = 0;
          for (int j = 0; j < M; j++)
            out[i] += A[i * M + j];
        }
      })",
      "out(i) = A(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_colsum", "misc",
      R"(void kernel(int N, int M, float* A, float* out) {
        for (int j = 0; j < M; j++)
          out[j] = 0;
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[j] += A[i * M + j];
      })",
      "out(i) = A(j,i)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::output("out", {"M"})}));

  Out.push_back(makeBenchmark(
      "misc_matadd", "misc",
      R"(void kernel(int N, int M, float* A, float* B, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] + B[i * M + j];
      })",
      "out(i,j) = A(i,j) + B(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("B", {"N", "M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "misc_matsub", "misc",
      R"(void kernel(int N, int M, float* A, float* B, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] - B[i * M + j];
      })",
      "out(i,j) = A(i,j) - B(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("B", {"N", "M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "misc_matscale", "misc",
      R"(void kernel(int N, int M, float s, float* A, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] * s;
      })",
      "out(i,j) = A(i,j) * s",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::num("s"),
       ArgSpec::array("A", {"N", "M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "misc_hadamard", "misc",
      R"(void kernel(int N, int M, float* A, float* B, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] * B[i * M + j];
      })",
      "out(i,j) = A(i,j) * B(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("B", {"N", "M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "misc_sum2d", "misc",
      R"(void kernel(int N, int M, float* A, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            acc += A[i * M + j];
        *out = acc;
      })",
      "out = A(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "misc_self_outer", "misc",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < N; j++)
            out[i * N + j] = x[i] * x[j];
      })",
      "out(i,j) = x(i) * x(j)",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N", "N"})}));

  Out.push_back(makeBenchmark(
      "misc_normalize", "misc",
      R"(void kernel(int N, int M, float s, float* A, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] / s;
      })",
      "out(i,j) = A(i,j) / s",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::num("s"),
       ArgSpec::array("A", {"N", "M"}), ArgSpec::output("out", {"N", "M"})}));

  Out.push_back(makeBenchmark(
      "misc_affine", "misc",
      R"(void kernel(int N, int M, float* A, float* x, float* b, float* out) {
        for (int i = 0; i < N; i++) {
          float acc = 0;
          for (int j = 0; j < M; j++)
            acc += A[i * M + j] * x[j];
          out[i] = acc + b[i];
        }
      })",
      "out(i) = A(i,j) * x(j) + b(i)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("x", {"M"}), ArgSpec::array("b", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_residual_gemv", "misc",
      R"(void kernel(int N, int M, float* y, float* A, float* x, float* out) {
        for (int i = 0; i < N; i++) {
          float acc = 0;
          for (int j = 0; j < M; j++)
            acc += A[i * M + j] * x[j];
          out[i] = y[i] - acc;
        }
      })",
      "out(i) = y(i) - A(i,j) * x(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("y", {"N"}),
       ArgSpec::array("A", {"N", "M"}), ArgSpec::array("x", {"M"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_wdot3", "misc",
      R"(void kernel(int N, float* w, float* x, float* y, float* out) {
        float acc = 0;
        for (int i = 0; i < N; i++)
          acc += w[i] * x[i] * y[i];
        *out = acc;
      })",
      "out = w(i) * x(i) * y(i)",
      {ArgSpec::size("N"), ArgSpec::array("w", {"N"}),
       ArgSpec::array("x", {"N"}), ArgSpec::array("y", {"N"}),
       ArgSpec::output("out", {})}));

  Out.push_back(makeBenchmark(
      "misc_scale_add_const", "misc",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] * 2 + 1;
      })",
      "out(i) = x(i) * 2 + 1",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_sub_const", "misc",
      R"(void kernel(int N, float* x, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = x[i] - 3;
      })",
      "out(i) = x(i) - 3",
      {ArgSpec::size("N"), ArgSpec::array("x", {"N"}),
       ArgSpec::output("out", {"N"})}));

  Out.push_back(makeBenchmark(
      "misc_madd3", "misc",
      R"(void kernel(int N, int M, float* A, float* B, float* C, float* out) {
        for (int i = 0; i < N; i++)
          for (int j = 0; j < M; j++)
            out[i * M + j] = A[i * M + j] + B[i * M + j] + C[i * M + j];
      })",
      "out(i,j) = A(i,j) + B(i,j) + C(i,j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("B", {"N", "M"}), ArgSpec::array("C", {"N", "M"}),
       ArgSpec::output("out", {"N", "M"})}));

  // Sum of two matrix-vector products: four 2-D/1-D operands, a timeout
  // stress case for the unguided baselines.
  Out.push_back(makeBenchmark(
      "misc_gemv_pair", "misc",
      R"(void kernel(int N, int M, float* A, float* x, float* B, float* y, float* out) {
        for (int i = 0; i < N; i++) {
          float acc = 0;
          for (int j = 0; j < M; j++)
            acc += A[i * M + j] * x[j] + B[i * M + j] * y[j];
          out[i] = acc;
        }
      })",
      "out(i) = A(i,j) * x(j) + B(i,j) * y(j)",
      {ArgSpec::size("N"), ArgSpec::size("M"), ArgSpec::array("A", {"N", "M"}),
       ArgSpec::array("x", {"M"}), ArgSpec::array("B", {"N", "M"}),
       ArgSpec::array("y", {"M"}), ArgSpec::output("out", {"N"})},
      /*Difficulty=*/0.8));

  // Normalized difference: a division over a parenthesized subtraction.
  Out.push_back(makeBenchmark(
      "misc_norm_diff", "misc",
      R"(void kernel(int N, float* a, float* b, float* c, float* out) {
        for (int i = 0; i < N; i++)
          out[i] = (a[i] - b[i]) / c[i];
      })",
      "out(i) = (a(i) - b(i)) / c(i)",
      {ArgSpec::size("N"), ArgSpec::array("a", {"N"}),
       ArgSpec::array("b", {"N"}), ArgSpec::array("c", {"N"}),
       ArgSpec::output("out", {"N"})}));
}
