//===- benchsuite/Benchmark.cpp - Lifting benchmark records ---------------===//

#include "benchsuite/Benchmark.h"

#include "benchsuite/SuiteParts.h"
#include "taco/Parser.h"
#include "taco/Semantics.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace stagg;
using namespace stagg::bench;

double Benchmark::computedDifficulty() const {
  if (Difficulty >= 0)
    return Difficulty;

  taco::ParseResult Parsed = taco::parseTacoProgram(GroundTruth);
  assert(Parsed.ok() && "benchmark ground truth must parse");
  const taco::Program &P = *Parsed.Prog;

  // The difficulty score models how hard the kernel is to *translate*, not
  // how big its tensors are: expression size, index-variable bookkeeping,
  // reductions (summation indices), groupings a flat expression cannot
  // carry, division, permuted access orders, and — dominating everything —
  // how obfuscated the C side is (pointer walking, linearized subscripts).
  int Leaves = taco::countLeaves(*P.Rhs);
  std::vector<std::string> Canonical = taco::indexVariables(P);
  int IndexVars = static_cast<int>(Canonical.size());

  bool HasReduction = false;
  for (const std::string &Var : taco::exprIndexVariables(*P.Rhs)) {
    bool OnLhs = std::find(P.Lhs.indices().begin(), P.Lhs.indices().end(),
                           Var) != P.Lhs.indices().end();
    HasReduction |= !OnLhs;
  }
  // A full reduction to a scalar ("sum everything") is easy to read; the
  // hard case is a *partial* reduction, where some indices survive.
  bool PartialReduction = HasReduction && P.Lhs.order() > 0;

  // Structural "parentheses": an additive node nested under a
  // multiplicative/divisive one (not expressible as a left-to-right chain).
  bool HasParenShape = false;
  // Permuted accesses: indices out of canonical first-appearance order.
  bool HasPermutedAccess = false;
  std::function<void(const taco::Expr &, bool)> Scan =
      [&](const taco::Expr &E, bool UnderTight) {
        if (const auto *B = taco::exprDynCast<taco::BinaryExpr>(&E)) {
          bool Additive = B->op() == taco::BinOpKind::Add ||
                          B->op() == taco::BinOpKind::Sub;
          if (Additive && UnderTight)
            HasParenShape = true;
          bool Tight = !Additive;
          Scan(B->lhs(), Tight);
          Scan(B->rhs(), Tight);
        } else if (const auto *N = taco::exprDynCast<taco::NegateExpr>(&E)) {
          Scan(N->operand(), UnderTight);
        } else if (const auto *M = taco::exprDynCast<taco::MaxExpr>(&E)) {
          // A guarded-store kernel is structurally grouped like a
          // parenthesized one: the call boundary is not expressible as a
          // flat chain.
          HasParenShape = true;
          Scan(M->lhs(), false);
          Scan(M->rhs(), false);
        } else if (const auto *A = taco::exprDynCast<taco::AccessExpr>(&E)) {
          int LastPosition = -1;
          for (const std::string &Var : A->indices()) {
            int Position = static_cast<int>(
                std::find(Canonical.begin(), Canonical.end(), Var) -
                Canonical.begin());
            if (Position < LastPosition)
              HasPermutedAccess = true;
            LastPosition = Position;
          }
        }
      };
  Scan(*P.Rhs, false);

  bool HasDiv = false;
  for (taco::BinOpKind Op : taco::distinctOps(*P.Rhs))
    HasDiv |= Op == taco::BinOpKind::Div;

  // C-side obfuscation: pointer-walked iteration beats linearized
  // subscripts beats plain indexing.
  double SourceBump = 0;
  if (CSource.find("*p") != std::string::npos ||
      CSource.find("*q") != std::string::npos) {
    SourceBump = 0.22;
  } else {
    for (size_t I = CSource.find('['); I != std::string::npos;
         I = CSource.find('[', I + 1)) {
      size_t End = CSource.find(']', I);
      if (End != std::string::npos &&
          CSource.find('*', I) < End) {
        SourceBump = 0.12;
        break;
      }
    }
  }

  double Score = 0.02 + 0.16 * std::max(0, Leaves - 2) +
                 0.06 * (IndexVars - 1) +
                 (PartialReduction ? 0.20 : (HasReduction ? 0.08 : 0.0)) +
                 0.15 * (HasParenShape ? 1 : 0) + 0.08 * (HasDiv ? 1 : 0) +
                 0.10 * (HasPermutedAccess ? 1 : 0) + SourceBump;
  return std::clamp(Score, 0.02, 1.0);
}

const std::vector<Benchmark> &bench::allBenchmarks() {
  static const std::vector<Benchmark> Suite = [] {
    std::vector<Benchmark> All;
    appendArtificial(All);
    appendBlas(All);
    appendDarknet(All);
    appendDsp(All);
    appendMisc(All);
    appendLlama(All);
    appendPointer(All);
    return All;
  }();
  return Suite;
}

std::vector<const Benchmark *> bench::paperBenchmarks() {
  std::vector<const Benchmark *> Paper;
  for (const Benchmark &B : allBenchmarks())
    if (B.Category != "pointer")
      Paper.push_back(&B);
  return Paper;
}

std::vector<const Benchmark *> bench::realWorldBenchmarks() {
  std::vector<const Benchmark *> Real;
  for (const Benchmark &B : allBenchmarks())
    if (B.isRealWorld() && B.Category != "pointer")
      Real.push_back(&B);
  return Real;
}

const Benchmark *bench::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

taco::CodegenSpec bench::codegenSpecFor(const Benchmark &B) {
  taco::CodegenSpec Spec;
  Spec.FunctionName = "kernel";
  for (const ArgSpec &Arg : B.Args) {
    switch (Arg.K) {
    case ArgSpec::Kind::SizeScalar:
      Spec.Params.emplace_back(Arg.Name, taco::CodegenSpec::ParamKind::SizeScalar);
      break;
    case ArgSpec::Kind::NumScalar:
      Spec.Params.emplace_back(Arg.Name, taco::CodegenSpec::ParamKind::NumScalar);
      break;
    case ArgSpec::Kind::Array:
      Spec.Params.emplace_back(Arg.Name, taco::CodegenSpec::ParamKind::Array);
      Spec.Shapes[Arg.Name] = Arg.Shape;
      break;
    }
  }
  return Spec;
}
