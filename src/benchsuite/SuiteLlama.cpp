//===- benchsuite/SuiteLlama.cpp - llama2.c inference kernels -------------===//
//
// The six kernels extracted from C-based llama-family inference code
// (llama2.cpp forward pass): RMSNorm's sum of squares, the weight matmul,
// the residual connection, the FFN gate elementwise product, the attention
// value aggregation, and logit temperature scaling.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/SuiteParts.h"

using namespace stagg::bench;

void stagg::bench::appendLlama(std::vector<Benchmark> &Out) {
  // rmsnorm: ss = sum x[j]^2 (the reduction that feeds the rsqrt).
  Out.push_back(makeBenchmark(
      "ll_rmsnorm_ss", "llama",
      R"(void kernel(int D, float* x, float* ss) {
        float acc = 0;
        for (int j = 0; j < D; j++)
          acc += x[j] * x[j];
        *ss = acc;
      })",
      "ss = x(i) * x(i)",
      {ArgSpec::size("D"), ArgSpec::array("x", {"D"}),
       ArgSpec::output("ss", {})}));

  // matmul: xout = W x, the dominant kernel of the forward pass.
  Out.push_back(makeBenchmark(
      "ll_matmul", "llama",
      R"(void kernel(int D, int Nw, float* w, float* x, float* xout) {
        for (int i = 0; i < D; i++) {
          float val = 0;
          for (int j = 0; j < Nw; j++)
            val += w[i * Nw + j] * x[j];
          xout[i] = val;
        }
      })",
      "xout(i) = w(i,j) * x(j)",
      {ArgSpec::size("D"), ArgSpec::size("Nw"), ArgSpec::array("w", {"D", "Nw"}),
       ArgSpec::array("x", {"Nw"}), ArgSpec::output("xout", {"D"})}));

  // Residual connection after attention / FFN.
  Out.push_back(makeBenchmark(
      "ll_residual", "llama",
      R"(void kernel(int D, float* x, float* xb, float* out) {
        for (int i = 0; i < D; i++)
          out[i] = x[i] + xb[i];
      })",
      "out(i) = x(i) + xb(i)",
      {ArgSpec::size("D"), ArgSpec::array("x", {"D"}),
       ArgSpec::array("xb", {"D"}), ArgSpec::output("out", {"D"})}));

  // FFN gate: elementwise product of the two projections (SwiGLU's linear
  // part).
  Out.push_back(makeBenchmark(
      "ll_ffn_gate", "llama",
      R"(void kernel(int H, float* hb, float* hb2, float* out) {
        for (int i = 0; i < H; i++)
          out[i] = hb[i] * hb2[i];
      })",
      "out(i) = hb(i) * hb2(i)",
      {ArgSpec::size("H"), ArgSpec::array("hb", {"H"}),
       ArgSpec::array("hb2", {"H"}), ArgSpec::output("out", {"H"})}));

  // Attention: accumulate value rows weighted by attention scores.
  Out.push_back(makeBenchmark(
      "ll_att_values", "llama",
      R"(void kernel(int T, int Hs, float* att, float* v, float* xb) {
        for (int i = 0; i < Hs; i++)
          xb[i] = 0;
        for (int t = 0; t < T; t++)
          for (int i = 0; i < Hs; i++)
            xb[i] += att[t] * v[t * Hs + i];
      })",
      "xb(i) = att(j) * v(j,i)",
      {ArgSpec::size("T"), ArgSpec::size("Hs"), ArgSpec::array("att", {"T"}),
       ArgSpec::array("v", {"T", "Hs"}), ArgSpec::output("xb", {"Hs"})}));

  // Logit temperature scaling before sampling.
  Out.push_back(makeBenchmark(
      "ll_temperature", "llama",
      R"(void kernel(int V, float temp, float* logits, float* out) {
        for (int i = 0; i < V; i++)
          out[i] = logits[i] / temp;
      })",
      "out(i) = logits(i) / temp",
      {ArgSpec::size("V"), ArgSpec::num("temp"),
       ArgSpec::array("logits", {"V"}), ArgSpec::output("out", {"V"})}));
}
