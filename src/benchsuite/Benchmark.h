//===- benchsuite/Benchmark.h - Lifting benchmark records -------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite mirrors the paper's 77 queries: 10 artificial
/// examples plus 67 real-world kernels (61 from the literature-derived
/// C2TACO suite — BLAS, darknet-style NN ops, UTDSP/DSPstone-style DSP
/// kernels, miscellaneous loops — and 6 from llama.cpp inference code).
///
/// Each benchmark carries the legacy C source, the argument specification
/// (names, kinds, shapes as functions of the size parameters, which one is
/// the output), and a ground-truth TACO expression. The ground truth is
/// consulted *only* by the simulated LLM oracle (standing in for GPT-4) and
/// by the test suite; the lifting pipeline itself sees just the C code.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_BENCHSUITE_BENCHMARK_H
#define STAGG_BENCHSUITE_BENCHMARK_H

#include "taco/Codegen.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace bench {

/// One kernel argument.
struct ArgSpec {
  enum class Kind {
    SizeScalar, ///< Integer size parameter (e.g. `int N`).
    NumScalar,  ///< Numeric scalar data (e.g. `float alpha`).
    Array,      ///< Pointer to a dense buffer.
  };

  std::string Name;
  Kind K = Kind::Array;

  /// For arrays: the logical shape as size-parameter names (e.g. {"N","N"}
  /// for a flat N*N matrix). Empty for scalars.
  std::vector<std::string> Shape;

  bool IsOutput = false;

  /// Tensor rank this argument can bind: arrays bind their shape rank,
  /// scalars bind rank 0.
  int rank() const {
    return K == Kind::Array ? static_cast<int>(Shape.size()) : 0;
  }

  static ArgSpec size(std::string Name) {
    ArgSpec A;
    A.Name = std::move(Name);
    A.K = Kind::SizeScalar;
    return A;
  }
  static ArgSpec num(std::string Name) {
    ArgSpec A;
    A.Name = std::move(Name);
    A.K = Kind::NumScalar;
    return A;
  }
  static ArgSpec array(std::string Name, std::vector<std::string> Shape,
                       bool IsOutput = false) {
    ArgSpec A;
    A.Name = std::move(Name);
    A.K = Kind::Array;
    A.Shape = std::move(Shape);
    A.IsOutput = IsOutput;
    return A;
  }
  static ArgSpec output(std::string Name, std::vector<std::string> Shape) {
    return array(std::move(Name), std::move(Shape), /*IsOutput=*/true);
  }
};

/// A complete lifting query.
struct Benchmark {
  std::string Name;

  /// "artificial", "blas", "darknet", "dsp", "misc", or "llama".
  std::string Category;

  std::string CSource;

  /// Ground-truth TACO expression over the argument names, e.g.
  /// "Result(i) = Mat1(i,j) * Mat2(j)".
  std::string GroundTruth;

  std::vector<ArgSpec> Args;

  /// Simulated-LLM difficulty in [0,1]; < 0 means "derive from the ground
  /// truth's structure" (see computedDifficulty()).
  double Difficulty = -1;

  /// True for real-world entries (the 67-benchmark subset of the paper's
  /// Fig. 9/10 experiments).
  bool isRealWorld() const { return Category != "artificial"; }

  const ArgSpec *outputArg() const {
    for (const ArgSpec &A : Args)
      if (A.IsOutput)
        return &A;
    return nullptr;
  }

  const ArgSpec *findArg(const std::string &Name) const {
    for (const ArgSpec &A : Args)
      if (A.Name == Name)
        return &A;
    return nullptr;
  }

  /// Difficulty actually used: the explicit override, or a structural score
  /// of the ground truth (more leaves, higher dimensions, parentheses and
  /// division all make a kernel harder for an LLM to translate exactly).
  double computedDifficulty() const;
};

/// The full registry, in a stable order: the paper's 77 queries first (10
/// artificial, then 67 real-world), then the post-paper "pointer" suite of
/// pointer-walking / conditional / multi-statement kernels.
const std::vector<Benchmark> &allBenchmarks();

/// The paper's 77 queries (pointers into allBenchmarks()): everything the
/// Fig. 9-12 / Table 1-3 experiments sweep. Excludes the post-paper
/// "pointer" suite so those results stay bit-identical to the publication
/// numbers.
std::vector<const Benchmark *> paperBenchmarks();

/// The paper's 67 real-world benchmarks (pointers into allBenchmarks()).
std::vector<const Benchmark *> realWorldBenchmarks();

/// Looks a benchmark up by name; nullptr when absent.
const Benchmark *findBenchmark(const std::string &Name);

/// Builds the code-generation signature for \p B (parameter order, shapes,
/// element type), so a lifted TACO program can be compiled back to a C
/// kernel with taco::generateC.
taco::CodegenSpec codegenSpecFor(const Benchmark &B);

} // namespace bench
} // namespace stagg

#endif // STAGG_BENCHSUITE_BENCHMARK_H
