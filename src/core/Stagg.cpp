//===- core/Stagg.cpp - The STAGG lifting pipeline ------------------------===//

#include "core/Stagg.h"

#include "analysis/Checker.h"
#include "analysis/KernelAnalysis.h"
#include "analysis/KernelModel.h"
#include "cfront/Parser.h"
#include "grammar/DimensionList.h"
#include "grammar/Template.h"
#include "llm/Prompt.h"
#include "llm/ResponseParser.h"
#include "search/BottomUp.h"
#include "search/TopDown.h"
#include "search/WorkerPool.h"
#include "support/Timer.h"
#include "taco/Printer.h"
#include "taco/Semantics.h"
#include "validate/Validator.h"

using namespace stagg;
using namespace stagg::core;

LiftResult core::liftBenchmark(const bench::Benchmark &B,
                               llm::CandidateOracle &Oracle,
                               const StaggConfig &Config) {
  LiftResult Result;
  Timer Clock;

  // 1. Ingest the legacy kernel.
  cfront::CParseResult Parsed = cfront::parseCFunction(B.CSource);
  if (!Parsed.ok()) {
    Result.FailReason = "C parse error: " + Parsed.Error;
    Result.Seconds = Result.ParseSeconds = Clock.seconds();
    return Result;
  }
  const cfront::CFunction &Fn = *Parsed.Function;

  // 2. Static analysis: LHS dimensionality, the constant pool, and the
  // safety checker's verdict over the normalized model. A full bounds proof
  // against the declared argument shapes licenses the verifier to drop its
  // per-access dynamic probes below.
  analysis::KernelModel Model = analysis::buildKernelModel(Fn);
  const analysis::KernelSummary &Summary = Model.Summary;
  analysis::CheckOptions CheckOpts;
  for (const bench::ArgSpec &Arg : B.Args) {
    if (Arg.K != bench::ArgSpec::Kind::Array)
      continue;
    std::vector<analysis::Poly> Extents;
    for (const std::string &Dim : Arg.Shape)
      Extents.push_back(analysis::shapeExtentPoly(Dim));
    CheckOpts.Shapes.emplace(Arg.Name, std::move(Extents));
    if (Arg.IsOutput)
      CheckOpts.OutputParams.insert(Arg.Name);
  }
  analysis::CheckReport Check = analysis::checkKernel(Model, CheckOpts);
  Result.CheckerSafe = Check.BoundsProvenSafe;
  Result.CheckerFindings = static_cast<int>(Check.Findings.size());
  Result.ParseSeconds = Clock.seconds();

  // 3. Ask the oracle for candidate translations.
  llm::OracleTask Task;
  Task.Query = &B;
  Task.Prompt = llm::buildPrompt(B.CSource, Config.NumCandidates);
  Task.NumCandidates = Config.NumCandidates;
  std::vector<std::string> Lines = Oracle.propose(Task);
  Result.OracleSeconds = Clock.seconds() - Result.ParseSeconds;

  // 4. Parse, templatize, deduplicate.
  llm::ParsedResponses Responses = llm::parseResponses(Lines);
  Result.CandidatesParsed = static_cast<int>(Responses.Programs.size());
  Result.CandidatesDiscarded = Responses.Discarded;
  // NOTE: templates are *not* deduplicated here — the dimension-list vote
  // (§4.2.3) and the rule weights (§4.3) both count frequency across all
  // candidate solutions, so repeated guesses are evidence, not noise.
  std::vector<grammar::Templatized> Templates;
  for (const taco::Program &P : Responses.Programs) {
    if (!taco::checkWellFormed(P).empty())
      continue;
    Templates.push_back(grammar::templatize(P));
  }
  if (Templates.empty()) {
    Result.FailReason = "no syntactically valid LLM candidates";
    Result.Seconds = Clock.seconds();
    Result.GrammarSeconds =
        Result.Seconds - Result.ParseSeconds - Result.OracleSeconds;
    return Result;
  }

  // 5. Predict the dimension list (LLM vote for the RHS, static analysis
  // for the LHS) and build the probabilistic template grammar.
  std::vector<int> DimList =
      grammar::predictDimensionList(Templates, Summary.LhsDim);
  Result.DimList = DimList;
  grammar::TemplateGrammar Grammar = grammar::buildTemplateGrammar(
      Templates, DimList, Summary.LhsDim, Config.Grammar);

  // 6. I/O examples and the validator.
  Rng ExampleRng(Config.ExampleSeed);
  std::vector<validate::IoExample> Examples =
      validate::generateExamples(B, Fn, Config.NumIoExamples, ExampleRng);
  if (Examples.empty()) {
    Result.FailReason = "failed to execute the legacy kernel";
    Result.Seconds = Clock.seconds();
    Result.GrammarSeconds =
        Result.Seconds - Result.ParseSeconds - Result.OracleSeconds;
    return Result;
  }
  Result.GrammarSeconds =
      Clock.seconds() - Result.ParseSeconds - Result.OracleSeconds;

  // 7. Search with validate-then-verify as the goal test (Fig. 1's loop:
  // a verification failure falls back to the next substitution, then to
  // enumeration). The reference cache memoizes the C kernel's outputs per
  // (shape, input) across that loop — they are candidate-independent, so
  // re-verifying fallback candidates only re-evaluates the TACO side.
  //
  // Kernel-derived, not a config knob: the static bounds proof (when it
  // exists) lets every reference run skip its dynamic range checks. See
  // the configFingerprint note below.
  verify::VerifyOptions Verify = Config.Verify;
  Verify.TrustStaticBounds = Check.BoundsProvenSafe;
  // The engine choice is a pipeline-level knob so the validator and the
  // verifier always agree; Config.Verify.UseVm/UseVmOpt are overwritten
  // here.
  Verify.UseVm = Config.UseVm;
  Verify.UseVmOpt = Config.UseVmOpt;

  // The probe's working state — validator, reference cache, and the slot
  // holding the instantiation that made it return true — is mutable, so
  // each search worker (search/Frontier.h) builds its own from identical
  // inputs. Probe verdicts are pure in the template; worker identity only
  // decides who computes a result, never what it is. Per-worker successes
  // strictly decrease in enumeration ticket (a worker only keeps probing
  // below the best success so far), so when the frontier accepts, the
  // winning worker's slot holds exactly the accepted instantiation.
  struct ProbeState {
    std::unique_ptr<validate::Validator> V;
    verify::ReferenceCache VerifyCache;
    taco::Program Concrete;
  };
  std::vector<ProbeState> States(
      static_cast<size_t>(search::resolveThreads(Config.Search.Threads)));
  search::TemplateProbeFactory Factory = [&](int Worker) {
    ProbeState *State = &States[static_cast<size_t>(Worker)];
    State->V = std::make_unique<validate::Validator>(
        B, Examples, Summary.Constants, Config.UseVm, Config.UseVmOpt);
    return search::TemplateProbe(
        [State, &B, &Fn, &Verify, &Config](const taco::Program &Template) {
          std::vector<validate::Instantiation> Valid =
              State->V->validate(Template);
          for (validate::Instantiation &Inst : Valid) {
            if (!Config.SkipVerification) {
              verify::VerifyResult VR = verify::verifyEquivalence(
                  B, Fn, Inst.Concrete, Verify, &State->VerifyCache);
              if (!VR.Equivalent)
                continue;
            }
            State->Concrete = std::move(Inst.Concrete);
            return true;
          }
          return false;
        });
  };

  search::SearchResult SR =
      Config.Kind == SearchKind::TopDown
          ? search::runTopDown(Grammar, Config.Search, Factory)
          : search::runBottomUp(Grammar, Config.Search, Factory);

  Result.Solved = SR.Solved;
  Result.Verified = SR.Solved && !Config.SkipVerification;
  Result.Template = std::move(SR.SolvedTemplate);
  if (SR.Solved)
    Result.Concrete =
        std::move(States[static_cast<size_t>(SR.WinnerWorker)].Concrete);
  Result.Attempts = SR.Attempts;
  Result.Expansions = SR.Expansions;
  Result.FailReason = SR.Solved ? "" : SR.FailReason;
  Result.Seconds = Clock.seconds();
  Result.SearchSeconds = Result.Seconds - Result.ParseSeconds -
                         Result.OracleSeconds - Result.GrammarSeconds;
  return Result;
}

std::string core::describeResult(const bench::Benchmark &B,
                                 const LiftResult &R) {
  return describeResult(B.Name, R);
}

std::string core::describeResult(const std::string &Name,
                                 const LiftResult &R) {
  std::string Line = Name + ": ";
  if (R.Solved) {
    Line += "OK  " + taco::printProgram(R.Concrete);
  } else {
    Line += "FAIL (" + R.FailReason + ")";
  }
  Line += "  [" + std::to_string(R.Seconds * 1e3) + " ms, " +
          std::to_string(R.Attempts) + " attempts]";
  return Line;
}

std::string core::configFingerprint(const StaggConfig &Config) {
  // Every field read anywhere in liftBenchmark (or below it) appears here;
  // the serving knobs in Config.Serve deliberately do not — queue depth,
  // batching, and cache shape never change a result — with one exception:
  // Serve.ExecuteThreads is patchable from the wire and fingerprinted
  // below. Adding a pipeline knob
  // without extending this list is a cache-correctness bug, which
  // ApiTest.FingerprintCoversResultAffectingKnobs guards against for the
  // knobs reachable from the wire protocol.
  std::string F = "v1";
  auto Add = [&F](const std::string &Token) {
    F += '|';
    F += Token;
  };
  Add(Config.Kind == SearchKind::TopDown ? "td" : "bu");
  Add(std::to_string(Config.NumCandidates));
  Add(std::to_string(Config.NumIoExamples));
  Add(std::to_string(Config.ExampleSeed));
  Add(Config.SkipVerification ? "noverify" : "verify");
  // Fingerprinted even though VM and tree-walk verdicts are bit-identical:
  // a cached result should record exactly which engine produced it.
  Add(Config.UseVm ? "vm" : "novm");
  // Same record-keeping rationale for the VM optimizer passes.
  Add(Config.UseVmOpt ? "vmopt" : "novmopt");
  const grammar::GrammarOptions &G = Config.Grammar;
  Add(std::string(G.FullGrammar ? "fg" : "-") +
      (G.EqualProbability ? "ep" : "-"));
  Add(std::to_string(G.FullGrammarTensors));
  Add(std::to_string(G.FullGrammarMaxDim));
  const search::SearchConfig &S = Config.Search;
  std::string Penalties;
  for (bool P : {S.PenaltyA1, S.PenaltyA2, S.PenaltyA3, S.PenaltyA4,
                 S.PenaltyA5, S.PenaltyB1, S.PenaltyB2})
    Penalties += P ? '1' : '0';
  Add(Penalties);
  Add(std::to_string(S.MaxDepth));
  Add(std::to_string(S.TimeoutSeconds));
  Add(std::to_string(S.MaxExpansions));
  Add(std::to_string(S.MaxAttempts));
  // Fingerprinted even though results are bit-identical across thread
  // counts (same rationale as UseVm): a cached result should record how it
  // was produced, and the serve layer clamps this knob per deployment.
  Add("t" + std::to_string(S.Threads));
  // The one Serve knob that IS fingerprinted: execute-path tiling is
  // patchable per request ("execute_threads") and, like S.Threads, a
  // cached result should record how it was produced even though tiles are
  // bit-identical to the serial pass.
  Add("x" + std::to_string(Config.Serve.ExecuteThreads));
  const verify::VerifyOptions &V = Config.Verify;
  Add(std::to_string(V.MaxSize));
  Add(std::to_string(V.RandomTrials));
  Add(std::to_string(V.MaxOneHot));
  Add(V.OneHotOnlyMultiplied ? "ohm" : "ohx");
  Add(std::to_string(V.Seed));
  // V.TrustStaticBounds is deliberately absent: liftBenchmark derives it
  // from the kernel itself (the checker's bounds proof), so for a given
  // (kernel, config) cache key it is a constant, not a knob.
  return F;
}
