//===- core/Stagg.h - The STAGG lifting pipeline ----------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline of Fig. 1: prompt the oracle for candidate
/// translations, learn a probabilistic grammar of templates from them,
/// search the grammar (top-down or bottom-up weighted A\*), validate
/// complete templates against I/O examples by substitution enumeration, and
/// verify surviving instantiations with the bounded checker. Verification
/// failures fall back to the next substitution and then to the search, as in
/// the paper.
///
/// All evaluation ablations (penalty drops, EqualProbability, FullGrammar,
/// LLMGrammar) are expressed through StaggConfig.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_CORE_STAGG_H
#define STAGG_CORE_STAGG_H

#include "benchsuite/Benchmark.h"
#include "grammar/Pcfg.h"
#include "llm/Oracle.h"
#include "search/SearchTypes.h"
#include "taco/Ast.h"
#include "verify/BoundedVerifier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stagg {
namespace core {

/// Which enumeration strategy drives the pipeline.
enum class SearchKind { TopDown, BottomUp };

/// Knobs of the serving layer (src/serve). They live next to the pipeline
/// configuration so one StaggConfig describes a whole deployment — batch
/// drivers and the persistent `stagg serve` process read the same struct.
struct ServeOptions {
  /// Bound of the request queue; submissions block once this many requests
  /// are in flight (backpressure toward the client).
  int QueueDepth = 64;

  /// Oracle batching: up to this many concurrent oracle queries are
  /// coalesced into one propose round. 1 disables batching.
  int BatchSize = 1;

  /// How long a propose round waits for the batch to fill before flushing
  /// a partial one.
  int BatchWaitMicros = 200;

  /// Result-cache entries across all shards; 0 disables caching.
  size_t CacheCapacity = 1024;

  /// Number of independently locked cache shards (rounded up to one).
  int CacheShards = 8;

  /// Socket transport: "<addr>:<port>" to listen on (port 0 picks a free
  /// one); empty keeps `stagg serve` on stdin.
  std::string ListenAddr;

  /// Transport limits (see serve::SocketServerOptions).
  int MaxConns = 64;
  int MaxInFlight = 8;
  double IdleTimeoutSeconds = 300;

  /// Cap on the total number of tensor cells one v2 "execute" request may
  /// materialize (inputs + output together). Sizes are client-controlled,
  /// so without a cap a single frame could demand a multi-GB zero-fill (or
  /// overflow the cell count entirely); requests over the cap answer with
  /// a result error instead of allocating. 0 disables the cap — overflow
  /// of the cell count itself is always rejected.
  int64_t MaxExecuteCells = int64_t(1) << 22;

  /// Persistent result-cache journal; empty keeps the cache in-memory
  /// only. Loaded at service startup, written through on every insert.
  std::string CachePath;

  /// Worker threads for v2 "execute" requests whose output crosses the
  /// tiling cell threshold: the outermost output dimension is partitioned
  /// into disjoint row tiles, each evaluated by its own interpreter over
  /// the shared compiled program — bit-identical to the serial pass by
  /// construction. 1 (the default) keeps execution serial; 0 means
  /// hardware concurrency; patchable per request as "execute_threads".
  int ExecuteThreads = 1;

  /// Minimum output cell count before an execute request is tiled at all:
  /// below this, spawn cost dominates and the request runs serially even
  /// when ExecuteThreads allows more. Not patchable (a deployment-shape
  /// knob, and bit-identical either way).
  int64_t ExecuteTileMinCells = 4096;
};

/// Pipeline configuration.
struct StaggConfig {
  SearchKind Kind = SearchKind::TopDown;
  grammar::GrammarOptions Grammar;
  search::SearchConfig Search;
  verify::VerifyOptions Verify;

  /// Number of candidate translations requested from the oracle.
  int NumCandidates = 10;

  /// Number of I/O examples used by the validator.
  int NumIoExamples = 3;

  /// Seed for I/O example generation.
  uint64_t ExampleSeed = 0xE9A3;

  /// Skip bounded verification (I/O-only acceptance, like C2TACO).
  bool SkipVerification = false;

  /// Evaluate candidates through the bytecode VM (src/vm) in the validator
  /// and the bounded verifier. Results are bit-identical with the tree-walk
  /// (`--no-vm` flips this off for A/B runs); it is fingerprinted anyway so
  /// cached serve results always record which engine produced them.
  bool UseVm = true;

  /// Run vm::optimize over every compiled program (load hoisting, fused
  /// span superinstructions, dead-register elimination) before execution.
  /// Results are bit-identical with the raw stream — the passes preserve
  /// accumulation order exactly (`--no-vm-opt` flips this off for A/B
  /// runs); fingerprinted for the same record-keeping reason as UseVm.
  /// Ignored when UseVm is false.
  bool UseVmOpt = true;

  /// Serving-layer knobs (queue depth, batching, result cache).
  ServeOptions Serve;
};

/// Everything the experiments need to know about one lifting run.
struct LiftResult {
  bool Solved = false;

  /// True when the solution also passed bounded verification (false for
  /// SkipVerification runs, which accept on I/O validation alone).
  bool Verified = false;

  /// The successful template (symbolic) and its concrete instantiation.
  taco::Program Template;
  taco::Program Concrete;

  /// Complete templates submitted to validation.
  int Attempts = 0;

  /// Queue pops in the search.
  int64_t Expansions = 0;

  /// End-to-end wall-clock seconds (oracle + grammar + search + verify).
  double Seconds = 0;

  /// Per-phase wall-clock breakdown of Seconds: C parse + static analysis,
  /// candidate generation, grammar learning (incl. response parsing and the
  /// dimension vote), and search (incl. validation and verification, which
  /// run inside the search's goal test).
  double ParseSeconds = 0;
  double OracleSeconds = 0;
  double GrammarSeconds = 0;
  double SearchSeconds = 0;

  std::string FailReason;

  /// Diagnostics.
  int CandidatesParsed = 0;
  int CandidatesDiscarded = 0;
  std::vector<int> DimList;

  /// Static-checker verdict over the kernel (analysis/Checker.h), recorded
  /// during step 2. When the checker proves every access in bounds for the
  /// declared argument shapes, the bounded verifier runs with its dynamic
  /// bounds probes elided (VerifyOptions::TrustStaticBounds).
  bool CheckerSafe = false;
  int CheckerFindings = 0;
};

/// Lifts \p B using \p Oracle under \p Config.
LiftResult liftBenchmark(const bench::Benchmark &B,
                         llm::CandidateOracle &Oracle,
                         const StaggConfig &Config);

/// Renders a result row for logs: "name: OK concrete (1.2ms, 5 attempts)".
std::string describeResult(const bench::Benchmark &B, const LiftResult &R);

/// Same rendering from a bare name (serve clients hold responses, not
/// registry records).
std::string describeResult(const std::string &Name, const LiftResult &R);

/// Serializes every result-affecting field of \p Config into a compact,
/// stable token. Two configurations with equal fingerprints produce
/// bit-identical lift results for the same query, so the serving layer keys
/// its result cache on (kernel, fingerprint) — per-request config overrides
/// must never be answered from a run under different settings.
std::string configFingerprint(const StaggConfig &Config);

} // namespace core
} // namespace stagg

#endif // STAGG_CORE_STAGG_H
