//===- taco/Semantics.cpp - Semantic analysis of TACO programs ------------===//

#include "taco/Semantics.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace stagg;
using namespace stagg::taco;

namespace {

/// Walks leaves (accesses/constants) left to right.
template <typename Fn> void forEachLeaf(const Expr &E, Fn Callback) {
  switch (E.kind()) {
  case Expr::Kind::Access:
  case Expr::Kind::Constant:
    Callback(E);
    return;
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    forEachLeaf(B.lhs(), Callback);
    forEachLeaf(B.rhs(), Callback);
    return;
  }
  case Expr::Kind::Negate:
    forEachLeaf(exprCast<NegateExpr>(E).operand(), Callback);
    return;
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    forEachLeaf(M.lhs(), Callback);
    forEachLeaf(M.rhs(), Callback);
    return;
  }
  }
}

void addUnique(std::vector<std::string> &Seen, const std::string &Name) {
  if (std::find(Seen.begin(), Seen.end(), Name) == Seen.end())
    Seen.push_back(Name);
}

} // namespace

std::vector<TensorInfo> taco::tensorInventory(const Program &P) {
  std::vector<TensorInfo> Inventory;
  std::vector<std::string> SeenNames;
  auto Note = [&](const std::string &Name, int Order, bool IsConst) {
    if (std::find(SeenNames.begin(), SeenNames.end(), Name) != SeenNames.end())
      return;
    SeenNames.push_back(Name);
    Inventory.push_back({Name, Order, IsConst});
  };
  Note(P.Lhs.name(), static_cast<int>(P.Lhs.order()), false);
  if (!P.Rhs)
    return Inventory;
  int SymbolicConsts = 0;
  forEachLeaf(*P.Rhs, [&](const Expr &Leaf) {
    if (const auto *A = exprDynCast<AccessExpr>(&Leaf)) {
      Note(A->name(), static_cast<int>(A->order()), false);
      return;
    }
    const auto &C = exprCast<ConstantExpr>(Leaf);
    // Each symbolic constant occurrence is its own dimension-list entry
    // (they instantiate independently); distinct literals stay distinct via
    // their spelling, so `2*b + 3` reports two constants while `2*b + 2`
    // reports one.
    std::string Name =
        C.isSymbolic() ? "Const#" + std::to_string(SymbolicConsts++)
                       : "Const<" + std::to_string(C.value()) + ">";
    Note(Name, 0, true);
  });
  return Inventory;
}

std::vector<int> taco::dimensionList(const Program &P) {
  std::vector<int> Dims;
  Dims.push_back(static_cast<int>(P.Lhs.order()));
  if (!P.Rhs)
    return Dims;
  forEachLeaf(*P.Rhs, [&](const Expr &Leaf) {
    if (const auto *A = exprDynCast<AccessExpr>(&Leaf))
      Dims.push_back(static_cast<int>(A->order()));
    else
      Dims.push_back(0);
  });
  return Dims;
}

std::vector<std::string> taco::exprIndexVariables(const Expr &E) {
  std::vector<std::string> Vars;
  forEachLeaf(E, [&](const Expr &Leaf) {
    if (const auto *A = exprDynCast<AccessExpr>(&Leaf))
      for (const std::string &V : A->indices())
        addUnique(Vars, V);
  });
  return Vars;
}

std::vector<std::string> taco::indexVariables(const Program &P) {
  std::vector<std::string> Vars;
  for (const std::string &V : P.Lhs.indices())
    addUnique(Vars, V);
  if (P.Rhs)
    for (const std::string &V : exprIndexVariables(*P.Rhs))
      addUnique(Vars, V);
  return Vars;
}

taco::ReductionPlacement taco::analyzeReductions(const Program &P) {
  ReductionPlacement Out;
  if (!P.Rhs)
    return Out;

  // Reduction variables: on the RHS, absent from the LHS.
  for (const std::string &Var : exprIndexVariables(*P.Rhs)) {
    bool OnLhs = std::find(P.Lhs.indices().begin(), P.Lhs.indices().end(),
                           Var) != P.Lhs.indices().end();
    if (!OnLhs)
      Out.ReductionVars.push_back(Var);
  }
  std::set<std::string> Reduced(Out.ReductionVars.begin(),
                                Out.ReductionVars.end());

  // Per-node use counts.
  std::map<const Expr *, std::map<std::string, int>> UsesAt;
  std::function<const std::map<std::string, int> &(const Expr &)> Count =
      [&](const Expr &E) -> const std::map<std::string, int> & {
    std::map<std::string, int> Here;
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      std::set<std::string> Seen;
      for (const std::string &Var : A.indices())
        if (Reduced.count(Var) && Seen.insert(Var).second)
          ++Here[Var];
      break;
    }
    case Expr::Kind::Constant:
      break;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      for (const auto &[Var, N] : Count(B.lhs()))
        Here[Var] += N;
      for (const auto &[Var, N] : Count(B.rhs()))
        Here[Var] += N;
      break;
    }
    case Expr::Kind::Negate:
      for (const auto &[Var, N] : Count(exprCast<NegateExpr>(E).operand()))
        Here[Var] += N;
      break;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      for (const auto &[Var, N] : Count(M.lhs()))
        Here[Var] += N;
      for (const auto &[Var, N] : Count(M.rhs()))
        Here[Var] += N;
      break;
    }
    }
    UsesAt[&E] = std::move(Here);
    return UsesAt[&E];
  };
  std::map<std::string, int> Totals = Count(*P.Rhs);

  // A variable is introduced at the smallest node containing all its uses.
  std::function<void(const Expr &)> Place = [&](const Expr &E) {
    auto ChildHasAll = [&](const Expr &Child, const std::string &Var,
                           int Total) {
      auto It = UsesAt[&Child].find(Var);
      return It != UsesAt[&Child].end() && It->second == Total;
    };
    for (const auto &[Var, CountHere] : UsesAt[&E]) {
      int Total = Totals[Var];
      if (CountHere != Total)
        continue;
      bool InOneChild = false;
      if (const auto *B = exprDynCast<BinaryExpr>(&E))
        InOneChild = ChildHasAll(B->lhs(), Var, Total) ||
                     ChildHasAll(B->rhs(), Var, Total);
      else if (const auto *N = exprDynCast<NegateExpr>(&E))
        InOneChild = ChildHasAll(N->operand(), Var, Total);
      else if (const auto *M = exprDynCast<MaxExpr>(&E))
        InOneChild = ChildHasAll(M->lhs(), Var, Total) ||
                     ChildHasAll(M->rhs(), Var, Total);
      if (!InOneChild)
        Out.IntroducedAt[&E].push_back(Var);
    }
    if (const auto *B = exprDynCast<BinaryExpr>(&E)) {
      Place(B->lhs());
      Place(B->rhs());
    } else if (const auto *N = exprDynCast<NegateExpr>(&E)) {
      Place(N->operand());
    } else if (const auto *M = exprDynCast<MaxExpr>(&E)) {
      Place(M->lhs());
      Place(M->rhs());
    }
  };
  Place(*P.Rhs);
  return Out;
}

std::string taco::checkWellFormed(const Program &P) {
  std::map<std::string, int> Arity;
  std::string Problem;
  auto NoteAccess = [&](const AccessExpr &A) {
    auto [It, Inserted] =
        Arity.emplace(A.name(), static_cast<int>(A.order()));
    if (!Inserted && It->second != static_cast<int>(A.order()) &&
        Problem.empty())
      Problem = "tensor '" + A.name() + "' used with inconsistent arity";
  };
  NoteAccess(P.Lhs);
  if (P.Rhs)
    forEachLeaf(*P.Rhs, [&](const Expr &Leaf) {
      if (const auto *A = exprDynCast<AccessExpr>(&Leaf))
        NoteAccess(*A);
    });
  if (!Problem.empty())
    return Problem;
  for (const std::string &V : indexVariables(P))
    if (Arity.count(V))
      return "name '" + V + "' used both as tensor and index variable";
  return "";
}
