//===- taco/Printer.cpp - Pretty-printing for TACO ASTs -------------------===//

#include "taco/Printer.h"

#include "support/StringUtils.h"

using namespace stagg;
using namespace stagg::taco;

/// Binding strength: additive = 1, multiplicative = 2, atoms = 3.
static int precedenceOf(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Access:
  case Expr::Kind::Constant:
  case Expr::Kind::Max: // call syntax self-delimits
    return 3;
  case Expr::Kind::Negate:
    return 2;
  case Expr::Kind::Binary: {
    BinOpKind Op = exprCast<BinaryExpr>(E).op();
    return (Op == BinOpKind::Mul || Op == BinOpKind::Div) ? 2 : 1;
  }
  }
  return 3;
}

static void printInto(const Expr &E, std::string &Out);

/// Prints \p Child, parenthesizing when its precedence is too low for the
/// context. An equal-precedence *right* operand is always parenthesized:
/// operators parse left-associatively, so `x + (y - z)` and even
/// `x + (y + z)` would re-parse into structurally different trees without
/// the parentheses. Left-leaning chains print clean (`x + y - z`).
static void printChild(const Expr &Child, const BinaryExpr *Parent,
                       bool IsRightOperand, std::string &Out) {
  int ContextPrec = Parent ? precedenceOf(*Parent) : 3;
  int ChildPrec = precedenceOf(Child);
  bool NeedParens =
      ChildPrec < ContextPrec || (ChildPrec == ContextPrec && IsRightOperand &&
                                  Child.kind() == Expr::Kind::Binary);
  if (NeedParens)
    Out += "(";
  printInto(Child, Out);
  if (NeedParens)
    Out += ")";
}

static void printInto(const Expr &E, std::string &Out) {
  switch (E.kind()) {
  case Expr::Kind::Access: {
    Out += printAccess(exprCast<AccessExpr>(E));
    return;
  }
  case Expr::Kind::Constant: {
    const auto &C = exprCast<ConstantExpr>(E);
    Out += C.isSymbolic() ? "Const" : std::to_string(C.value());
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    printChild(B.lhs(), &B, /*IsRightOperand=*/false, Out);
    Out += " ";
    Out += binOpSpelling(B.op());
    Out += " ";
    printChild(B.rhs(), &B, /*IsRightOperand=*/true, Out);
    return;
  }
  case Expr::Kind::Negate: {
    const auto &N = exprCast<NegateExpr>(E);
    Out += "-";
    printChild(N.operand(), /*Parent=*/nullptr, /*IsRightOperand=*/false, Out);
    return;
  }
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    Out += "max(";
    printInto(M.lhs(), Out);
    Out += ", ";
    printInto(M.rhs(), Out);
    Out += ")";
    return;
  }
  }
}

std::string taco::printAccess(const AccessExpr &A) {
  if (A.indices().empty())
    return A.name();
  return A.name() + "(" + joinStrings(A.indices(), ",") + ")";
}

std::string taco::printExpr(const Expr &E) {
  std::string Out;
  printInto(E, Out);
  return Out;
}

std::string taco::printProgram(const Program &P) {
  std::string Out = printAccess(P.Lhs);
  Out += " = ";
  if (P.Rhs)
    printInto(*P.Rhs, Out);
  else
    Out += "<null>";
  return Out;
}
