//===- taco/Ast.h - TACO index-notation AST ---------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the TACO expression subset of paper Fig. 5:
///
///   PROGRAM ::= TENSOR "=" EXPR
///   TENSOR  ::= IDENTIFIER | IDENTIFIER "(" INDEX-EXPR ")"
///   EXPR    ::= TENSOR | CONSTANT | "(" EXPR ")" | "-" EXPR
///             | EXPR "+" EXPR | EXPR "-" EXPR | EXPR "*" EXPR | EXPR "/" EXPR
///
/// Parenthesization is not represented explicitly: the tree shape carries the
/// grouping, and the printer re-inserts the minimal parentheses.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_AST_H
#define STAGG_TACO_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace stagg {
namespace taco {

/// Binary operators supported by the TACO grammar.
enum class BinOpKind { Add, Sub, Mul, Div };

/// Returns the surface syntax of \p Op ("+", "-", "*", "/").
const char *binOpSpelling(BinOpKind Op);

/// Base class of all expression nodes, with LLVM-style kind dispatch.
class Expr {
public:
  enum class Kind { Access, Constant, Binary, Negate, Max };

  virtual ~Expr() = default;

  Kind kind() const { return NodeKind; }

  /// Deep-copies the subtree.
  virtual std::unique_ptr<Expr> clone() const = 0;

protected:
  explicit Expr(Kind K) : NodeKind(K) {}

private:
  Kind NodeKind;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A tensor access `name(i,j,...)`; an empty index list denotes a scalar
/// reference `name`.
class AccessExpr : public Expr {
public:
  AccessExpr(std::string Name, std::vector<std::string> Indices)
      : Expr(Kind::Access), TensorName(std::move(Name)),
        IndexVars(std::move(Indices)) {}

  const std::string &name() const { return TensorName; }
  const std::vector<std::string> &indices() const { return IndexVars; }
  size_t order() const { return IndexVars.size(); }

  void setName(std::string Name) { TensorName = std::move(Name); }
  void setIndices(std::vector<std::string> Indices) {
    IndexVars = std::move(Indices);
  }

  std::unique_ptr<Expr> clone() const override {
    return std::make_unique<AccessExpr>(TensorName, IndexVars);
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Access; }

private:
  std::string TensorName;
  std::vector<std::string> IndexVars;
};

/// An integer literal, or the symbolic placeholder `Const` used in templates
/// (paper §4.2.1, constant templatization).
class ConstantExpr : public Expr {
public:
  explicit ConstantExpr(int64_t Value)
      : Expr(Kind::Constant), LiteralValue(Value) {}

  /// Builds the symbolic template constant.
  static std::unique_ptr<ConstantExpr> symbolic() {
    auto C = std::make_unique<ConstantExpr>(0);
    C->LiteralValue.reset();
    return C;
  }

  bool isSymbolic() const { return !LiteralValue.has_value(); }
  int64_t value() const {
    assert(LiteralValue && "symbolic constant has no value");
    return *LiteralValue;
  }

  /// Turns the node into the literal \p Value (in particular, a symbolic
  /// constant into a concrete one). The validator's enumeration loop uses
  /// this to sweep constant assignments in place instead of re-cloning the
  /// template per assignment.
  void setValue(int64_t Value) { LiteralValue = Value; }

  std::unique_ptr<Expr> clone() const override {
    if (isSymbolic())
      return symbolic();
    return std::make_unique<ConstantExpr>(*LiteralValue);
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Constant; }

private:
  std::optional<int64_t> LiteralValue;
};

/// A binary arithmetic expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOpKind Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary), Operator(Op), LhsExpr(std::move(Lhs)),
        RhsExpr(std::move(Rhs)) {
    assert(LhsExpr && RhsExpr && "binary expression needs both operands");
  }

  BinOpKind op() const { return Operator; }
  void setOp(BinOpKind Op) { Operator = Op; }
  const Expr &lhs() const { return *LhsExpr; }
  const Expr &rhs() const { return *RhsExpr; }
  Expr &lhs() { return *LhsExpr; }
  Expr &rhs() { return *RhsExpr; }

  std::unique_ptr<Expr> clone() const override {
    return std::make_unique<BinaryExpr>(Operator, LhsExpr->clone(),
                                        RhsExpr->clone());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinOpKind Operator;
  ExprPtr LhsExpr;
  ExprPtr RhsExpr;
};

/// Unary negation `-e`.
class NegateExpr : public Expr {
public:
  explicit NegateExpr(ExprPtr Operand)
      : Expr(Kind::Negate), Sub(std::move(Operand)) {
    assert(Sub && "negate needs an operand");
  }

  const Expr &operand() const { return *Sub; }
  Expr &operand() { return *Sub; }

  std::unique_ptr<Expr> clone() const override {
    return std::make_unique<NegateExpr>(Sub->clone());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Negate; }

private:
  ExprPtr Sub;
};

/// LLVM-style dyn_cast helpers specialised for the tiny hierarchy.
template <typename T> const T *exprDynCast(const Expr *E) {
  return (E && T::classof(E)) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> T *exprDynCast(Expr *E) {
  return (E && T::classof(E)) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T &exprCast(const Expr &E) {
  assert(T::classof(&E) && "bad expression cast");
  return static_cast<const T &>(E);
}

/// Elementwise maximum `max(e1, e2)` — the select node guarded stores lower
/// to (relu-family kernels become `max(x, 0)`). Function-call syntax in the
/// surface grammar; the identifier `max` is reserved and cannot name a
/// tensor.
class MaxExpr : public Expr {
public:
  MaxExpr(ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Max), LhsExpr(std::move(Lhs)), RhsExpr(std::move(Rhs)) {
    assert(LhsExpr && RhsExpr && "max needs both operands");
  }

  const Expr &lhs() const { return *LhsExpr; }
  const Expr &rhs() const { return *RhsExpr; }
  Expr &lhs() { return *LhsExpr; }
  Expr &rhs() { return *RhsExpr; }

  std::unique_ptr<Expr> clone() const override {
    return std::make_unique<MaxExpr>(LhsExpr->clone(), RhsExpr->clone());
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Max; }

private:
  ExprPtr LhsExpr;
  ExprPtr RhsExpr;
};

/// A complete TACO statement `lhs(...) = rhs`.
struct Program {
  AccessExpr Lhs{"", {}};
  ExprPtr Rhs;

  Program() = default;
  Program(AccessExpr Lhs, ExprPtr Rhs)
      : Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  Program(const Program &Other)
      : Lhs(Other.Lhs),
        Rhs(Other.Rhs ? Other.Rhs->clone() : nullptr) {}
  Program &operator=(const Program &Other) {
    if (this != &Other) {
      Lhs = Other.Lhs;
      Rhs = Other.Rhs ? Other.Rhs->clone() : nullptr;
    }
    return *this;
  }
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;
};

/// Folds the flat chain `L0 op0 L1 op1 ...` into an expression tree using
/// standard precedence (`*`/`/` bind tighter than `+`/`-`, all operators
/// left-associative) — the parse of the corresponding source string. Used by
/// the bottom-up tail grammar and the chain-enumerating baselines, whose
/// search spaces are *strings* and therefore cannot express parenthesized
/// groupings.
ExprPtr foldPrecedenceChain(std::vector<ExprPtr> Leaves,
                            const std::vector<BinOpKind> &Ops);

/// Structural equality of expression trees (names, indices, operators,
/// constants all compared exactly).
bool exprEquals(const Expr &A, const Expr &B);

/// Structural equality of whole programs.
bool programEquals(const Program &A, const Program &B);

/// Expression depth as defined in paper §5.1: a tensor access or constant has
/// depth 1 and index expressions do not contribute; `b(i) + c(i,j)` has
/// depth 2.
int exprDepth(const Expr &E);

/// Counts tensor accesses and symbolic/literal constants (the paper's notion
/// of "tensors in x" for Alg. 2, which counts occurrences of TENSOR symbols,
/// including `Const`).
int countLeaves(const Expr &E);

/// Collects the distinct binary operators used in the expression.
std::vector<BinOpKind> distinctOps(const Expr &E);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_AST_H
