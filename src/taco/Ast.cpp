//===- taco/Ast.cpp - TACO index-notation AST -----------------------------===//

#include "taco/Ast.h"

#include <algorithm>

using namespace stagg;
using namespace stagg::taco;

const char *taco::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  }
  return "?";
}

ExprPtr taco::foldPrecedenceChain(std::vector<ExprPtr> Leaves,
                                  const std::vector<BinOpKind> &Ops) {
  assert(!Leaves.empty() && Ops.size() == Leaves.size() - 1 &&
         "malformed chain");
  auto IsTight = [](BinOpKind Op) {
    return Op == BinOpKind::Mul || Op == BinOpKind::Div;
  };
  std::vector<ExprPtr> Terms;
  std::vector<BinOpKind> TermOps;
  ExprPtr Current = std::move(Leaves[0]);
  for (size_t I = 1; I < Leaves.size(); ++I) {
    BinOpKind Op = Ops[I - 1];
    if (IsTight(Op)) {
      Current = std::make_unique<BinaryExpr>(Op, std::move(Current),
                                             std::move(Leaves[I]));
      continue;
    }
    Terms.push_back(std::move(Current));
    TermOps.push_back(Op);
    Current = std::move(Leaves[I]);
  }
  Terms.push_back(std::move(Current));
  ExprPtr E = std::move(Terms[0]);
  for (size_t I = 1; I < Terms.size(); ++I)
    E = std::make_unique<BinaryExpr>(TermOps[I - 1], std::move(E),
                                     std::move(Terms[I]));
  return E;
}

bool taco::exprEquals(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Expr::Kind::Access: {
    const auto &AA = exprCast<AccessExpr>(A);
    const auto &BA = exprCast<AccessExpr>(B);
    return AA.name() == BA.name() && AA.indices() == BA.indices();
  }
  case Expr::Kind::Constant: {
    const auto &AC = exprCast<ConstantExpr>(A);
    const auto &BC = exprCast<ConstantExpr>(B);
    if (AC.isSymbolic() != BC.isSymbolic())
      return false;
    return AC.isSymbolic() || AC.value() == BC.value();
  }
  case Expr::Kind::Binary: {
    const auto &AB = exprCast<BinaryExpr>(A);
    const auto &BB = exprCast<BinaryExpr>(B);
    return AB.op() == BB.op() && exprEquals(AB.lhs(), BB.lhs()) &&
           exprEquals(AB.rhs(), BB.rhs());
  }
  case Expr::Kind::Negate:
    return exprEquals(exprCast<NegateExpr>(A).operand(),
                      exprCast<NegateExpr>(B).operand());
  case Expr::Kind::Max: {
    const auto &AM = exprCast<MaxExpr>(A);
    const auto &BM = exprCast<MaxExpr>(B);
    return exprEquals(AM.lhs(), BM.lhs()) && exprEquals(AM.rhs(), BM.rhs());
  }
  }
  return false;
}

bool taco::programEquals(const Program &A, const Program &B) {
  if (!A.Rhs || !B.Rhs)
    return A.Rhs == B.Rhs;
  return A.Lhs.name() == B.Lhs.name() && A.Lhs.indices() == B.Lhs.indices() &&
         exprEquals(*A.Rhs, *B.Rhs);
}

int taco::exprDepth(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Access:
  case Expr::Kind::Constant:
    return 1;
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    return 1 + std::max(exprDepth(B.lhs()), exprDepth(B.rhs()));
  }
  case Expr::Kind::Negate:
    return 1 + exprDepth(exprCast<NegateExpr>(E).operand());
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    return 1 + std::max(exprDepth(M.lhs()), exprDepth(M.rhs()));
  }
  }
  return 1;
}

int taco::countLeaves(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Access:
  case Expr::Kind::Constant:
    return 1;
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    return countLeaves(B.lhs()) + countLeaves(B.rhs());
  }
  case Expr::Kind::Negate:
    return countLeaves(exprCast<NegateExpr>(E).operand());
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    return countLeaves(M.lhs()) + countLeaves(M.rhs());
  }
  }
  return 0;
}

static void collectOps(const Expr &E, std::vector<BinOpKind> &Ops) {
  switch (E.kind()) {
  case Expr::Kind::Access:
  case Expr::Kind::Constant:
    return;
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    if (std::find(Ops.begin(), Ops.end(), B.op()) == Ops.end())
      Ops.push_back(B.op());
    collectOps(B.lhs(), Ops);
    collectOps(B.rhs(), Ops);
    return;
  }
  case Expr::Kind::Negate:
    collectOps(exprCast<NegateExpr>(E).operand(), Ops);
    return;
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    collectOps(M.lhs(), Ops);
    collectOps(M.rhs(), Ops);
    return;
  }
  }
}

std::vector<BinOpKind> taco::distinctOps(const Expr &E) {
  std::vector<BinOpKind> Ops;
  collectOps(E, Ops);
  return Ops;
}
