//===- taco/Codegen.h - TACO-to-C kernel generation -------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a dense C loop nest from a concrete TACO program — the role the
/// real TACO compiler plays in the paper's pipeline ("we compile this TACO
/// program using the TACO compiler into C code"). Loops iterate the output
/// indices; reductions become hoisted accumulator loops placed exactly where
/// the semantics places them (taco::analyzeReductions), so
///
///   out(i) = A(i,j) * x(j) + b(i)
///
/// becomes
///
///   for (int i = 0; i < N; i++) {
///     float acc0 = 0;
///     for (int j = 0; j < M; j++)
///       acc0 += A[i * M + j] * x[j];
///     out[i] = acc0 + b[i];
///   }
///
/// The generated source stays inside the mini-C subset, so the repository
/// can close the loop on itself: tests parse the generated kernel with
/// cfront, interpret it, and check it against the einsum reference
/// evaluator on every benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_CODEGEN_H
#define STAGG_TACO_CODEGEN_H

#include "taco/Ast.h"

#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace taco {

/// Everything codegen needs to know about the kernel signature.
struct CodegenSpec {
  /// Generated function name.
  std::string FunctionName = "kernel";

  /// Parameters in signature order: (name, kind).
  enum class ParamKind { SizeScalar, NumScalar, Array };
  std::vector<std::pair<std::string, ParamKind>> Params;

  /// For array parameters: the logical shape as size-parameter names.
  std::map<std::string, std::vector<std::string>> Shapes;

  /// Element type spelling for data parameters/locals ("float", "double").
  std::string ElementType = "float";
};

/// Result of code generation.
struct CodegenResult {
  bool Ok = false;
  std::string Source;
  std::string Error;
};

/// Generates C for the concrete \p P (tensor names are parameter names,
/// constants are literals) under \p Spec. Fails when an index variable's
/// extent cannot be derived from any operand/output shape.
CodegenResult generateC(const Program &P, const CodegenSpec &Spec);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_CODEGEN_H
