//===- taco/Einsum.h - Reference einsum evaluator ---------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference evaluator for TACO's extended einsum semantics. Indices absent
/// from the LHS are *reduction* indices; following TACO's semantics, the
/// reduction over an index is placed at the smallest subexpression that
/// contains every use of that index. So in
///
///   a(i) = B(i,j) * x(j) + d(i)
///
/// the sum over `j` wraps only `B(i,j) * x(j)`, and `d(i)` is added once —
/// not once per value of `j`. TACO's extension of the traditional notation
/// admits `-` and `/` under the same placement rule.
///
/// This evaluator replaces the paper's pipeline of TACO codegen + JAX/MLIR
/// lowering: it *is* the semantics both toolchains implement for the dense
/// fragment, so validation and verification are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_EINSUM_H
#define STAGG_TACO_EINSUM_H

#include "taco/Ast.h"
#include "taco/Semantics.h"
#include "taco/Tensor.h"

#include <functional>
#include <map>
#include <set>
#include <string>

namespace stagg {
namespace taco {

/// Result of an evaluation attempt: either a tensor or a diagnostic.
template <typename T> struct EinsumResult {
  bool Ok = false;
  Tensor<T> Value;
  std::string Error;

  static EinsumResult success(Tensor<T> V) {
    EinsumResult R;
    R.Ok = true;
    R.Value = std::move(V);
    return R;
  }
  static EinsumResult failure(std::string Message) {
    EinsumResult R;
    R.Error = std::move(Message);
    return R;
  }
};

namespace detail {

/// Advances a mixed-radix counter; returns false once all combinations have
/// been visited (an empty counter wraps immediately).
inline bool advanceCounter(std::vector<int64_t> &Coord,
                           const std::vector<int64_t> &Extents) {
  for (size_t I = Coord.size(); I > 0; --I) {
    if (++Coord[I - 1] < Extents[I - 1])
      return true;
    Coord[I - 1] = 0;
  }
  return false;
}

/// Per-run evaluator: binds extents, computes reduction placement, then
/// evaluates recursively.
template <typename T> class EinsumEvaluator {
public:
  EinsumEvaluator(const Program &P,
                  const std::map<std::string, Tensor<T>> &Operands)
      : P(P), Operands(Operands) {}

  EinsumResult<T> run(const std::vector<int64_t> &OutputShape) {
    if (!P.Rhs)
      return EinsumResult<T>::failure("program has no RHS");
    if (P.Lhs.order() != OutputShape.size())
      return EinsumResult<T>::failure("output shape rank does not match LHS");
    for (size_t I = 0; I < OutputShape.size(); ++I)
      if (!bindExtent(P.Lhs.indices()[I], OutputShape[I]))
        return EinsumResult<T>::failure(Error);
    if (!bindOperandExtents(*P.Rhs))
      return EinsumResult<T>::failure(Error);

    // Reduction indices: on the RHS but not the LHS.
    std::set<std::string> OutVarSet(P.Lhs.indices().begin(),
                                    P.Lhs.indices().end());
    for (const std::string &Var : exprIndexVariables(*P.Rhs))
      if (!OutVarSet.count(Var))
        ReductionVars.insert(Var);

    // Reduction placement: total uses per variable, then the LCA rule.
    TotalUses = countUses(*P.Rhs);
    placeReductions(*P.Rhs);

    Tensor<T> Output(OutputShape);
    const std::vector<std::string> &OutVars = P.Lhs.indices();
    std::vector<int64_t> OutCoord(OutVars.size(), 0);
    std::map<std::string, int64_t> Coords;
    do {
      for (size_t I = 0; I < OutVars.size(); ++I)
        Coords[OutVars[I]] = OutCoord[I];
      T Value = eval(*P.Rhs, Coords);
      if (OutVars.empty())
        Output.flat()[0] = Value;
      else
        Output.at(OutCoord) = Value;
    } while (advanceCounter(OutCoord, OutputShape));
    return EinsumResult<T>::success(std::move(Output));
  }

private:
  bool bindExtent(const std::string &Var, int64_t Extent) {
    auto [It, Inserted] = Extents.emplace(Var, Extent);
    if (!Inserted && It->second != Extent) {
      Error = "index '" + Var + "' has conflicting extents";
      return false;
    }
    return true;
  }

  bool bindOperandExtents(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      auto It = Operands.find(A.name());
      if (It == Operands.end()) {
        Error = "unbound tensor '" + A.name() + "'";
        return false;
      }
      if (It->second.order() != A.order()) {
        Error = "tensor '" + A.name() + "' accessed with wrong rank";
        return false;
      }
      for (size_t I = 0; I < A.order(); ++I)
        if (!bindExtent(A.indices()[I], It->second.shape()[I]))
          return false;
      return true;
    }
    case Expr::Kind::Constant:
      return true;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      return bindOperandExtents(B.lhs()) && bindOperandExtents(B.rhs());
    }
    case Expr::Kind::Negate:
      return bindOperandExtents(exprCast<NegateExpr>(E).operand());
    }
    return false;
  }

  /// Counts, for every reduction variable, how many accesses in the subtree
  /// use it; memoized per node in UsesAt.
  const std::map<std::string, int> &countUses(const Expr &E) {
    std::map<std::string, int> Here;
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      std::set<std::string> Seen;
      for (const std::string &Var : A.indices())
        if (ReductionVars.count(Var) && Seen.insert(Var).second)
          ++Here[Var];
      break;
    }
    case Expr::Kind::Constant:
      break;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      for (const auto &[Var, N] : countUses(B.lhs()))
        Here[Var] += N;
      for (const auto &[Var, N] : countUses(B.rhs()))
        Here[Var] += N;
      break;
    }
    case Expr::Kind::Negate:
      for (const auto &[Var, N] : countUses(exprCast<NegateExpr>(E).operand()))
        Here[Var] += N;
      break;
    }
    UsesAt[&E] = std::move(Here);
    return UsesAt[&E];
  }

  /// A variable is reduced at the *smallest* node containing all its uses:
  /// the node where its use count reaches the total while no single child
  /// already contains them all.
  void placeReductions(const Expr &E) {
    const std::map<std::string, int> &Here = UsesAt[&E];
    auto ChildHasAll = [&](const Expr &Child, const std::string &Var,
                           int Total) {
      auto It = UsesAt[&Child].find(Var);
      return It != UsesAt[&Child].end() && It->second == Total;
    };
    for (const auto &[Var, Count] : Here) {
      int Total = TotalUses[Var];
      if (Count != Total)
        continue;
      bool InOneChild = false;
      switch (E.kind()) {
      case Expr::Kind::Binary: {
        const auto &B = exprCast<BinaryExpr>(E);
        InOneChild = ChildHasAll(B.lhs(), Var, Total) ||
                     ChildHasAll(B.rhs(), Var, Total);
        break;
      }
      case Expr::Kind::Negate:
        InOneChild =
            ChildHasAll(exprCast<NegateExpr>(E).operand(), Var, Total);
        break;
      default:
        break;
      }
      if (!InOneChild)
        IntroducedAt[&E].push_back(Var);
    }
    switch (E.kind()) {
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      placeReductions(B.lhs());
      placeReductions(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      placeReductions(exprCast<NegateExpr>(E).operand());
      return;
    default:
      return;
    }
  }

  T evalInner(const Expr &E, std::map<std::string, int64_t> &Coords) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      const Tensor<T> &Operand = Operands.at(A.name());
      std::vector<int64_t> Point;
      Point.reserve(A.order());
      for (const std::string &Var : A.indices())
        Point.push_back(Coords.at(Var));
      return Operand.at(Point);
    }
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      assert(!C.isSymbolic() && "symbolic constants must be instantiated");
      return T(C.value());
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      T Lhs = eval(B.lhs(), Coords);
      T Rhs = eval(B.rhs(), Coords);
      switch (B.op()) {
      case BinOpKind::Add:
        return Lhs + Rhs;
      case BinOpKind::Sub:
        return Lhs - Rhs;
      case BinOpKind::Mul:
        return Lhs * Rhs;
      case BinOpKind::Div:
        return Lhs / Rhs;
      }
      return T{};
    }
    case Expr::Kind::Negate:
      return -eval(exprCast<NegateExpr>(E).operand(), Coords);
    }
    return T{};
  }

  T eval(const Expr &E, std::map<std::string, int64_t> &Coords) {
    auto It = IntroducedAt.find(&E);
    if (It == IntroducedAt.end() || It->second.empty())
      return evalInner(E, Coords);

    const std::vector<std::string> &Vars = It->second;
    std::vector<int64_t> VarExtents;
    VarExtents.reserve(Vars.size());
    for (const std::string &Var : Vars)
      VarExtents.push_back(Extents.at(Var));

    T Sum{};
    std::vector<int64_t> Coord(Vars.size(), 0);
    do {
      for (size_t I = 0; I < Vars.size(); ++I)
        Coords[Vars[I]] = Coord[I];
      Sum += evalInner(E, Coords);
    } while (advanceCounter(Coord, VarExtents));
    return Sum;
  }

  const Program &P;
  const std::map<std::string, Tensor<T>> &Operands;
  std::map<std::string, int64_t> Extents;
  std::set<std::string> ReductionVars;
  std::map<std::string, int> TotalUses;
  std::map<const Expr *, std::map<std::string, int>> UsesAt;
  std::map<const Expr *, std::vector<std::string>> IntroducedAt;
  std::string Error;
};

} // namespace detail

/// Evaluates \p P over the named \p Operands, producing a tensor of shape
/// \p OutputShape. Every tensor named in the program's RHS must be present
/// in \p Operands with a matching rank; symbolic constants must have been
/// instantiated beforehand.
template <typename T>
EinsumResult<T> evalEinsum(const Program &P,
                           const std::map<std::string, Tensor<T>> &Operands,
                           const std::vector<int64_t> &OutputShape) {
  detail::EinsumEvaluator<T> Evaluator(P, Operands);
  return Evaluator.run(OutputShape);
}

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_EINSUM_H
