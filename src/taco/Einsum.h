//===- taco/Einsum.h - Reference einsum evaluator ---------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference evaluator for TACO's extended einsum semantics. Indices absent
/// from the LHS are *reduction* indices; following TACO's semantics, the
/// reduction over an index is placed at the smallest subexpression that
/// contains every use of that index. So in
///
///   a(i) = B(i,j) * x(j) + d(i)
///
/// the sum over `j` wraps only `B(i,j) * x(j)`, and `d(i)` is added once —
/// not once per value of `j`. TACO's extension of the traditional notation
/// admits `-` and `/` under the same placement rule.
///
/// This evaluator replaces the paper's pipeline of TACO codegen + JAX/MLIR
/// lowering: it *is* the semantics both toolchains implement for the dense
/// fragment, so validation and verification are unchanged.
///
/// Evaluation is split into two phases so the validator can amortize the
/// expensive one:
///
///  * EinsumProgram — *structure compilation*, once per program: index
///    variables become integer slots into a flat coordinate array, the
///    expression becomes a vector of nodes with child indices, and
///    reduction placement is computed. None of this depends on the operand
///    tensors, so one compiled program serves every operand binding.
///  * EinsumEvaluator — *operand binding*, once per operand set: extents
///    are checked and bound per slot, and every access is lowered to the
///    operand's flat storage plus pre-resolved per-position strides. The
///    per-cell loop then runs without any map lookups, and rebinding the
///    same evaluator reuses all of its buffers.
///
/// Loop nesting and iteration order are exactly those of the direct
/// recursive evaluator this replaced, so floating-point summation order
/// (and therefore every validator verdict) is bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_EINSUM_H
#define STAGG_TACO_EINSUM_H

#include "taco/Ast.h"
#include "taco/Semantics.h"
#include "taco/Tensor.h"

#include <functional>
#include <map>
#include <set>
#include <string>

namespace stagg {
namespace taco {

/// Result of an evaluation attempt: either a tensor or a diagnostic.
template <typename T> struct EinsumResult {
  bool Ok = false;
  Tensor<T> Value;
  std::string Error;

  static EinsumResult success(Tensor<T> V) {
    EinsumResult R;
    R.Ok = true;
    R.Value = std::move(V);
    return R;
  }
  static EinsumResult failure(std::string Message) {
    EinsumResult R;
    R.Error = std::move(Message);
    return R;
  }
};

/// Outcome of einsumCompare: the evaluation matched the expected output
/// cell-for-cell, some cell failed the predicate, or the program could not
/// be evaluated at all (binding/rank/extent error).
enum class EinsumCompare { Match, Mismatch, Error };

namespace detail {

/// Advances a mixed-radix counter; returns false once all combinations have
/// been visited (an empty counter wraps immediately).
inline bool advanceCounter(std::vector<int64_t> &Coord,
                           const std::vector<int64_t> &Extents) {
  for (size_t I = Coord.size(); I > 0; --I) {
    if (++Coord[I - 1] < Extents[I - 1])
      return true;
    Coord[I - 1] = 0;
  }
  return false;
}

} // namespace detail

/// The operand-independent compilation of a program: slots, node tree, and
/// reduction placement. Immutable after construction; any number of
/// evaluators can share one instance.
class EinsumProgram {
public:
  explicit EinsumProgram(const Program &P) : P(P) {
    if (!P.Rhs) {
      StructureError = "program has no RHS";
      return;
    }

    // Slot assignment: LHS variables first, then RHS variables in order of
    // first appearance.
    for (const std::string &Var : P.Lhs.indices())
      slotOf(Var);
    collectVars(*P.Rhs);

    for (const std::string &Var : P.Lhs.indices())
      OutSlots.push_back(Slots.at(Var));

    // Reduction indices: on the RHS but not the LHS.
    std::set<std::string> OutVarSet(P.Lhs.indices().begin(),
                                    P.Lhs.indices().end());
    for (const std::string &Var : exprIndexVariables(*P.Rhs))
      if (!OutVarSet.count(Var))
        ReductionVars.insert(Var);

    // Reduction placement: total uses per variable, then the LCA rule.
    TotalUses = countUses(*P.Rhs);
    placeReductions(*P.Rhs);

    Root = compile(*P.Rhs);

    // The placement maps are only needed during compilation.
    UsesAt.clear();
    IntroducedAt.clear();
    TotalUses.clear();
    ReductionVars.clear();
  }

  bool ok() const { return StructureError.empty(); }
  const std::string &error() const { return StructureError; }
  const Program &program() const { return P; }
  size_t numSlots() const { return Slots.size(); }

  /// One compiled expression node. Children are indices into Nodes, so the
  /// hot evaluation loop touches only flat vectors.
  struct Node {
    Expr::Kind Kind;
    BinOpKind Op = BinOpKind::Add;
    int ChildA = -1;
    int ChildB = -1;
    /// Access: the source node, its index slots, and its ordinal into the
    /// evaluator's per-access binding table.
    const AccessExpr *Access = nullptr;
    std::vector<int> Slots;
    int AccessOrdinal = -1;
    /// Constant: the source node and its ordinal into the evaluator's
    /// value table.
    const ConstantExpr *Constant = nullptr;
    int ConstOrdinal = -1;
    /// Slots of the reduction variables introduced at this node, in the
    /// same order the direct evaluator used (sorted by variable name).
    std::vector<int> ReduceSlots;
  };

  const std::vector<Node> &nodes() const { return Nodes; }
  const std::vector<int> &accessNodes() const { return AccessNodes; }
  const std::vector<int> &constNodes() const { return ConstNodes; }
  const std::vector<int> &outSlots() const { return OutSlots; }
  int root() const { return Root; }

private:
  int slotOf(const std::string &Var) {
    auto [It, Inserted] = Slots.emplace(Var, static_cast<int>(Slots.size()));
    (void)Inserted;
    return It->second;
  }

  void collectVars(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access:
      for (const std::string &Var : exprCast<AccessExpr>(E).indices())
        slotOf(Var);
      return;
    case Expr::Kind::Constant:
      return;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      collectVars(B.lhs());
      collectVars(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      collectVars(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      collectVars(M.lhs());
      collectVars(M.rhs());
      return;
    }
    }
  }

  /// Counts, for every reduction variable, how many accesses in the subtree
  /// use it; memoized per node in UsesAt.
  const std::map<std::string, int> &countUses(const Expr &E) {
    std::map<std::string, int> Here;
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      std::set<std::string> Seen;
      for (const std::string &Var : A.indices())
        if (ReductionVars.count(Var) && Seen.insert(Var).second)
          ++Here[Var];
      break;
    }
    case Expr::Kind::Constant:
      break;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      for (const auto &[Var, N] : countUses(B.lhs()))
        Here[Var] += N;
      for (const auto &[Var, N] : countUses(B.rhs()))
        Here[Var] += N;
      break;
    }
    case Expr::Kind::Negate:
      for (const auto &[Var, N] : countUses(exprCast<NegateExpr>(E).operand()))
        Here[Var] += N;
      break;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      for (const auto &[Var, N] : countUses(M.lhs()))
        Here[Var] += N;
      for (const auto &[Var, N] : countUses(M.rhs()))
        Here[Var] += N;
      break;
    }
    }
    UsesAt[&E] = std::move(Here);
    return UsesAt[&E];
  }

  /// A variable is reduced at the *smallest* node containing all its uses:
  /// the node where its use count reaches the total while no single child
  /// already contains them all.
  void placeReductions(const Expr &E) {
    const std::map<std::string, int> &Here = UsesAt[&E];
    auto ChildHasAll = [&](const Expr &Child, const std::string &Var,
                           int Total) {
      auto It = UsesAt[&Child].find(Var);
      return It != UsesAt[&Child].end() && It->second == Total;
    };
    for (const auto &[Var, Count] : Here) {
      int Total = TotalUses[Var];
      if (Count != Total)
        continue;
      bool InOneChild = false;
      switch (E.kind()) {
      case Expr::Kind::Binary: {
        const auto &B = exprCast<BinaryExpr>(E);
        InOneChild = ChildHasAll(B.lhs(), Var, Total) ||
                     ChildHasAll(B.rhs(), Var, Total);
        break;
      }
      case Expr::Kind::Negate:
        InOneChild =
            ChildHasAll(exprCast<NegateExpr>(E).operand(), Var, Total);
        break;
      case Expr::Kind::Max: {
        const auto &M = exprCast<MaxExpr>(E);
        InOneChild = ChildHasAll(M.lhs(), Var, Total) ||
                     ChildHasAll(M.rhs(), Var, Total);
        break;
      }
      default:
        break;
      }
      if (!InOneChild)
        IntroducedAt[&E].push_back(Var);
    }
    switch (E.kind()) {
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      placeReductions(B.lhs());
      placeReductions(B.rhs());
      return;
    }
    case Expr::Kind::Negate:
      placeReductions(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      placeReductions(M.lhs());
      placeReductions(M.rhs());
      return;
    }
    default:
      return;
    }
  }

  /// Lowers \p E (and its reduction annotation) to a compiled node; returns
  /// its index in Nodes.
  int compile(const Expr &E) {
    Node N;
    N.Kind = E.kind();
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      N.Access = &A;
      for (const std::string &Var : A.indices())
        N.Slots.push_back(Slots.at(Var));
      break;
    }
    case Expr::Kind::Constant:
      N.Constant = &exprCast<ConstantExpr>(E);
      break;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      N.Op = B.op();
      N.ChildA = compile(B.lhs());
      N.ChildB = compile(B.rhs());
      break;
    }
    case Expr::Kind::Negate:
      N.ChildA = compile(exprCast<NegateExpr>(E).operand());
      break;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      N.ChildA = compile(M.lhs());
      N.ChildB = compile(M.rhs());
      break;
    }
    }
    auto It = IntroducedAt.find(&E);
    if (It != IntroducedAt.end())
      for (const std::string &Var : It->second)
        N.ReduceSlots.push_back(Slots.at(Var));
    if (N.Kind == Expr::Kind::Access) {
      N.AccessOrdinal = static_cast<int>(AccessNodes.size());
    } else if (N.Kind == Expr::Kind::Constant) {
      N.ConstOrdinal = static_cast<int>(ConstNodes.size());
    }
    Nodes.push_back(std::move(N));
    int Id = static_cast<int>(Nodes.size() - 1);
    if (Nodes.back().Kind == Expr::Kind::Access)
      AccessNodes.push_back(Id);
    else if (Nodes.back().Kind == Expr::Kind::Constant)
      ConstNodes.push_back(Id);
    return Id;
  }

  const Program &P;
  std::string StructureError;
  std::map<std::string, int> Slots;
  std::set<std::string> ReductionVars;
  std::map<std::string, int> TotalUses;
  std::map<const Expr *, std::map<std::string, int>> UsesAt;
  std::map<const Expr *, std::vector<std::string>> IntroducedAt;
  std::vector<Node> Nodes;
  std::vector<int> AccessNodes;
  std::vector<int> ConstNodes;
  std::vector<int> OutSlots;
  int Root = -1;
};

/// Binds operands against a shared EinsumProgram and evaluates. Rebinding
/// reuses every internal buffer, so the per-(operand set) cost is a few
/// flat-vector walks.
template <typename T> class EinsumEvaluator {
public:
  /// Resolves an access name to its operand, or nullptr when unbound.
  using Resolver = std::function<const Tensor<T> *(const std::string &)>;

  explicit EinsumEvaluator(const EinsumProgram &S) : S(S) {}

  const std::string &error() const {
    return S.ok() ? Error : S.error();
  }

  /// Binds (or rebinds) the operands and output shape against the compiled
  /// structure: checks ranks and extent consistency, resolves flat strides
  /// and data pointers, and caches constant values. Error semantics and
  /// first-reported diagnostics are identical to the original single-shot
  /// evaluator's.
  bool bind(const Resolver &Resolve, const std::vector<int64_t> &OutputShape) {
    if (!S.ok())
      return false;
    Error.clear();
    Bound = false;
    const Program &P = S.program();
    if (P.Lhs.order() != OutputShape.size()) {
      Error = "output shape rank does not match LHS";
      return false;
    }
    ExtentBySlot.assign(S.numSlots(), -1);
    Coords.assign(S.numSlots(), 0);
    const std::vector<int> &OutSlots = S.outSlots();
    for (size_t I = 0; I < OutputShape.size(); ++I)
      if (!bindExtent(OutSlots[I], P.Lhs.indices()[I], OutputShape[I]))
        return false;

    // Access nodes are listed in leaf (left-to-right) order, matching the
    // recursive binder's conflict-discovery order.
    const std::vector<EinsumProgram::Node> &Nodes = S.nodes();
    AccessBinds.resize(S.accessNodes().size());
    for (int NodeId : S.accessNodes()) {
      const EinsumProgram::Node &N = Nodes[static_cast<size_t>(NodeId)];
      const AccessExpr &A = *N.Access;
      const Tensor<T> *Operand = Resolve(A.name());
      if (!Operand) {
        Error = "unbound tensor '" + A.name() + "'";
        return false;
      }
      if (Operand->order() != A.order()) {
        Error = "tensor '" + A.name() + "' accessed with wrong rank";
        return false;
      }
      const std::vector<int64_t> &Shape = Operand->shape();
      for (size_t I = 0; I < A.order(); ++I)
        if (!bindExtent(N.Slots[I], A.indices()[I], Shape[I]))
          return false;
      // Row-major strides, innermost dimension last; repeated variables in
      // one access contribute once per position, exactly like offsetOf().
      AccessBind &AB = AccessBinds[static_cast<size_t>(N.AccessOrdinal)];
      AB.Data = &Operand->flat();
      AB.Strides.resize(Shape.size());
      size_t Stride = 1;
      for (size_t I = Shape.size(); I > 0; --I) {
        AB.Strides[I - 1] = Stride;
        Stride *= static_cast<size_t>(Shape[I - 1]);
      }
    }

    ConstValues.resize(S.constNodes().size());
    refreshConstants();

    OutShape = OutputShape;
    Bound = true;
    return true;
  }

  /// bind() against a plain name->tensor map.
  bool bindMap(const std::map<std::string, Tensor<T>> &Operands,
               const std::vector<int64_t> &OutputShape) {
    return bind(
        [&Operands](const std::string &Name) -> const Tensor<T> * {
          auto It = Operands.find(Name);
          return It == Operands.end() ? nullptr : &It->second;
        },
        OutputShape);
  }

  /// Re-reads the value of every ConstantExpr. The validator's constant
  /// odometer rewrites the same nodes in place; everything else about the
  /// binding is value-independent.
  void refreshConstants() {
    const std::vector<EinsumProgram::Node> &Nodes = S.nodes();
    for (int NodeId : S.constNodes()) {
      const EinsumProgram::Node &N = Nodes[static_cast<size_t>(NodeId)];
      assert(!N.Constant->isSymbolic() &&
             "symbolic constants must be instantiated");
      ConstValues[static_cast<size_t>(N.ConstOrdinal)] = T(N.Constant->value());
    }
  }

  /// Evaluates every output cell into a fresh tensor. Requires bind().
  EinsumResult<T> evaluate() {
    assert(Bound && "evaluate() requires a successful bind()");
    Tensor<T> Output(OutShape);
    std::vector<T> &Flat = Output.flat();
    // The output odometer enumerates coordinates in row-major order, which
    // is exactly the flat storage order: a running linear index replaces
    // the per-cell offset computation.
    const std::vector<int> &OutSlots = S.outSlots();
    std::vector<int64_t> OutCoord(OutSlots.size(), 0);
    size_t Linear = 0;
    do {
      for (size_t I = 0; I < OutSlots.size(); ++I)
        Coords[OutSlots[I]] = OutCoord[I];
      Flat[Linear++] = evalNode(S.root());
    } while (detail::advanceCounter(OutCoord, OutShape));
    return EinsumResult<T>::success(std::move(Output));
  }

  /// Evaluates cell by cell against \p Want, stopping at the first cell for
  /// which \p CellOk(got, want) is false. Verdicts equal those of
  /// evaluate() followed by a full comparison: binding errors are all
  /// raised in bind(), and cells are compared independently. Requires
  /// bind().
  template <typename CellOkFn>
  EinsumCompare compare(const std::vector<T> &Want, CellOkFn &&CellOk) {
    assert(Bound && "compare() requires a successful bind()");
    size_t Total = 1;
    for (int64_t D : OutShape)
      Total *= static_cast<size_t>(D);
    if (Want.size() != Total)
      return EinsumCompare::Mismatch;

    const std::vector<int> &OutSlots = S.outSlots();
    std::vector<int64_t> OutCoord(OutSlots.size(), 0);
    size_t Linear = 0;
    do {
      for (size_t I = 0; I < OutSlots.size(); ++I)
        Coords[OutSlots[I]] = OutCoord[I];
      if (!CellOk(evalNode(S.root()), Want[Linear++]))
        return EinsumCompare::Mismatch;
    } while (detail::advanceCounter(OutCoord, OutShape));
    return EinsumCompare::Match;
  }

private:
  struct AccessBind {
    const std::vector<T> *Data = nullptr;
    std::vector<size_t> Strides;
  };

  bool bindExtent(int Slot, const std::string &Var, int64_t Extent) {
    int64_t &Cell = ExtentBySlot[static_cast<size_t>(Slot)];
    if (Cell >= 0 && Cell != Extent) {
      Error = "index '" + Var + "' has conflicting extents";
      return false;
    }
    Cell = Extent;
    return true;
  }

  T evalInner(const EinsumProgram::Node &N) {
    switch (N.Kind) {
    case Expr::Kind::Access: {
      const AccessBind &AB = AccessBinds[static_cast<size_t>(N.AccessOrdinal)];
      size_t Offset = 0;
      for (size_t I = 0; I < N.Slots.size(); ++I)
        Offset += static_cast<size_t>(Coords[N.Slots[I]]) * AB.Strides[I];
      return (*AB.Data)[Offset];
    }
    case Expr::Kind::Constant:
      return ConstValues[static_cast<size_t>(N.ConstOrdinal)];
    case Expr::Kind::Binary: {
      T Lhs = evalNode(N.ChildA);
      T Rhs = evalNode(N.ChildB);
      switch (N.Op) {
      case BinOpKind::Add:
        return Lhs + Rhs;
      case BinOpKind::Sub:
        return Lhs - Rhs;
      case BinOpKind::Mul:
        return Lhs * Rhs;
      case BinOpKind::Div:
        return Lhs / Rhs;
      }
      return T{};
    }
    case Expr::Kind::Negate:
      return -evalNode(N.ChildA);
    case Expr::Kind::Max: {
      T Lhs = evalNode(N.ChildA);
      T Rhs = evalNode(N.ChildB);
      return Lhs < Rhs ? Rhs : Lhs;
    }
    }
    return T{};
  }

  T evalNode(int Id) {
    const EinsumProgram::Node &N = S.nodes()[static_cast<size_t>(Id)];
    if (N.ReduceSlots.empty())
      return evalInner(N);

    // Reduction loop over this node's introduced variables, innermost last;
    // identical nesting and order to the direct evaluator, so the
    // floating-point accumulation sequence is unchanged. The coordinate
    // vector is a per-visit local because reduction nodes can nest.
    T Sum{};
    std::vector<int64_t> Coord(N.ReduceSlots.size(), 0);
    for (;;) {
      for (size_t I = 0; I < N.ReduceSlots.size(); ++I)
        Coords[N.ReduceSlots[I]] = Coord[I];
      Sum += evalInner(N);
      bool Advanced = false;
      for (size_t I = Coord.size(); I > 0; --I) {
        if (++Coord[I - 1] <
            ExtentBySlot[static_cast<size_t>(N.ReduceSlots[I - 1])]) {
          Advanced = true;
          break;
        }
        Coord[I - 1] = 0;
      }
      if (!Advanced)
        break;
    }
    return Sum;
  }

  const EinsumProgram &S;
  std::string Error;
  std::vector<AccessBind> AccessBinds;
  std::vector<T> ConstValues;
  std::vector<int64_t> ExtentBySlot;
  std::vector<int64_t> Coords;
  std::vector<int64_t> OutShape;
  bool Bound = false;
};

/// Evaluates \p P over the named \p Operands, producing a tensor of shape
/// \p OutputShape. Every tensor named in the program's RHS must be present
/// in \p Operands with a matching rank; symbolic constants must have been
/// instantiated beforehand.
template <typename T>
EinsumResult<T> evalEinsum(const Program &P,
                           const std::map<std::string, Tensor<T>> &Operands,
                           const std::vector<int64_t> &OutputShape) {
  EinsumProgram Compiled(P);
  EinsumEvaluator<T> Evaluator(Compiled);
  if (!Compiled.ok() || !Evaluator.bindMap(Operands, OutputShape))
    return EinsumResult<T>::failure(Evaluator.error());
  return Evaluator.evaluate();
}

/// Infers the output shape of \p P's LHS from the extents its RHS operands
/// pin, falling back to an operand already bound under the LHS name (a
/// pre-state buffer or an earlier statement's result). Returns false when
/// some LHS index has no derivable extent.
template <typename T>
bool inferLhsShape(const Program &P,
                   const std::map<std::string, Tensor<T>> &Operands,
                   std::vector<int64_t> &Out, std::string &Error) {
  auto It = Operands.find(P.Lhs.name());
  if (It != Operands.end() &&
      It->second.order() == P.Lhs.order()) {
    Out = It->second.shape();
    return true;
  }
  std::map<std::string, int64_t> Extents;
  std::function<bool(const Expr &)> Bind = [&](const Expr &E) -> bool {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      auto OpIt = Operands.find(A.name());
      if (OpIt == Operands.end() || OpIt->second.order() != A.order())
        return true; // unbound/mismatched operands are bind()'s problem
      for (size_t I = 0; I < A.order(); ++I)
        Extents.emplace(A.indices()[I], OpIt->second.shape()[I]);
      return true;
    }
    case Expr::Kind::Constant:
      return true;
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      return Bind(B.lhs()) && Bind(B.rhs());
    }
    case Expr::Kind::Negate:
      return Bind(exprCast<NegateExpr>(E).operand());
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      return Bind(M.lhs()) && Bind(M.rhs());
    }
    }
    return true;
  };
  if (P.Rhs)
    Bind(*P.Rhs);
  Out.clear();
  for (const std::string &Var : P.Lhs.indices()) {
    auto ExtIt = Extents.find(Var);
    if (ExtIt == Extents.end()) {
      Error = "no extent derivable for output index '" + Var + "'";
      return false;
    }
    Out.push_back(ExtIt->second);
  }
  return true;
}

/// Evaluates an ordered statement list as one program: each statement's
/// result is bound under its LHS name before the next statement runs, so
/// later statements read earlier results (including read-modify-write of a
/// buffer whose pre-state is in \p Operands). The value of \p OutputName
/// after the last statement is the program's result.
template <typename T>
EinsumResult<T>
evalEinsumSequence(const std::vector<Program> &Statements,
                   std::map<std::string, Tensor<T>> Operands,
                   const std::string &OutputName) {
  if (Statements.empty())
    return EinsumResult<T>::failure("empty statement list");
  for (const Program &P : Statements) {
    std::vector<int64_t> Shape;
    std::string Error;
    if (!inferLhsShape(P, Operands, Shape, Error))
      return EinsumResult<T>::failure(Error);
    EinsumResult<T> R = evalEinsum<T>(P, Operands, Shape);
    if (!R.Ok)
      return R;
    Operands.insert_or_assign(P.Lhs.name(), std::move(R.Value));
  }
  auto It = Operands.find(OutputName);
  if (It == Operands.end())
    return EinsumResult<T>::failure("statement list never defines '" +
                                    OutputName + "'");
  return EinsumResult<T>::success(std::move(It->second));
}

/// Compares the evaluation of \p P against the expected flat output \p Want
/// cell by cell (row-major), short-circuiting on the first cell for which
/// \p CellOk(got, want) is false. Equivalent to evalEinsum + a full
/// comparison, but never materializes the output tensor and stops early on
/// a mismatch — the validator's instantiation-check fast path.
template <typename T, typename CellOkFn>
EinsumCompare einsumCompare(const Program &P,
                            const std::map<std::string, Tensor<T>> &Operands,
                            const std::vector<int64_t> &OutputShape,
                            const std::vector<T> &Want, CellOkFn &&CellOk) {
  EinsumProgram Compiled(P);
  EinsumEvaluator<T> Evaluator(Compiled);
  if (!Compiled.ok() || !Evaluator.bindMap(Operands, OutputShape))
    return EinsumCompare::Error;
  return Evaluator.compare(Want, std::forward<CellOkFn>(CellOk));
}

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_EINSUM_H
