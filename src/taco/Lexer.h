//===- taco/Lexer.h - Tokenizer for TACO index notation ---------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the TACO expression grammar of paper Fig. 5. The lexer is
/// deliberately forgiving about input it cannot tokenize (it produces an
/// Invalid token) because LLM responses routinely contain junk; the response
/// parser discards such candidates.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_LEXER_H
#define STAGG_TACO_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace stagg {
namespace taco {

/// Token categories for TACO index notation.
enum class TokKind {
  Identifier,
  Integer,
  Equals,  // '=' (':=' is normalized to '=' before lexing)
  Plus,
  Minus,
  Star,
  Slash,
  LParen,
  RParen,
  Comma,
  End,
  Invalid,
};

/// A single token with its source spelling.
struct Token {
  TokKind Kind = TokKind::Invalid;
  std::string Spelling;
  int64_t IntValue = 0;
  size_t Offset = 0;
};

/// Tokenizes \p Source. The result always ends with an End token; any
/// unrecognized character produces an Invalid token (and tokenization
/// continues, so the caller can report position).
std::vector<Token> lexTaco(const std::string &Source);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_LEXER_H
