//===- taco/Printer.h - Pretty-printing for TACO ASTs -----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders TACO expressions back to source form, inserting only the
/// parentheses required by precedence/associativity. The printed form is also
/// used as a canonical key for template deduplication.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_PRINTER_H
#define STAGG_TACO_PRINTER_H

#include "taco/Ast.h"

#include <string>

namespace stagg {
namespace taco {

/// Prints an expression with minimal parentheses.
std::string printExpr(const Expr &E);

/// Prints a full statement `lhs = rhs`.
std::string printProgram(const Program &P);

/// Prints a tensor access (LHS form).
std::string printAccess(const AccessExpr &A);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_PRINTER_H
