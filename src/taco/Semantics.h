//===- taco/Semantics.h - Semantic analysis of TACO programs ----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic queries over TACO programs: tensor/index inventories in
/// first-appearance order, dimension lists (paper Def. 4.5), and
/// well-formedness checks used both by the response parser and the searches.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_SEMANTICS_H
#define STAGG_TACO_SEMANTICS_H

#include "taco/Ast.h"

#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace taco {

/// One tensor occurrence summary: the name and its order (0 for scalars and,
/// by the paper's convention, for constants).
struct TensorInfo {
  std::string Name;
  int Order = 0;
  bool IsConstant = false;
};

/// Tensors of a program in order of first appearance, LHS first. Constants
/// appear as entries named "Const" with order 0 (paper: "we list the
/// dimensions of constants and variables as 0").
std::vector<TensorInfo> tensorInventory(const Program &P);

/// The dimension list L (Def. 4.5): the LHS tensor's order followed by the
/// order of every RHS *leaf occurrence* left to right (constants are 0).
/// We deliberately count occurrences rather than unique tensors: the grammar
/// generator mints a fresh symbol per list element anyway, and the validator
/// may bind two symbols to the same argument (Fig. 8's S1), so a repeated
/// tensor like `x(i) * x(i)` is represented as the template
/// `b(i) * c(i)` over the list [0, 1, 1].
std::vector<int> dimensionList(const Program &P);

/// Distinct index variables of the whole program, in order of first
/// appearance (LHS scanned first).
std::vector<std::string> indexVariables(const Program &P);

/// Distinct index variables of an expression only.
std::vector<std::string> exprIndexVariables(const Expr &E);

/// Checks structural sanity: every use of a tensor name has a consistent
/// arity, and no index variable name collides with a tensor name. Returns an
/// empty string when well-formed, else a diagnostic.
std::string checkWellFormed(const Program &P);

/// Reduction analysis shared by the evaluator and the code generator:
/// which index variables are reduced (used on the RHS, absent from the
/// LHS), and at which node each reduction is introduced — the smallest
/// subexpression containing all uses of the variable (TACO's placement).
struct ReductionPlacement {
  std::vector<std::string> ReductionVars;
  std::map<const Expr *, std::vector<std::string>> IntroducedAt;
};
ReductionPlacement analyzeReductions(const Program &P);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_SEMANTICS_H
