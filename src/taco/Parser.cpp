//===- taco/Parser.cpp - Parser for TACO index notation -------------------===//

#include "taco/Parser.h"

#include "taco/Lexer.h"

using namespace stagg;
using namespace stagg::taco;

namespace {

/// Token-stream cursor with error accumulation.
class ParserImpl {
public:
  explicit ParserImpl(std::vector<Token> Tokens)
      : Tokens(std::move(Tokens)) {}

  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }

  bool check(TokKind K) const { return peek().Kind == K; }

  bool match(TokKind K) {
    if (!check(K))
      return false;
    ++Pos;
    return true;
  }

  void fail(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = Message + " at offset " + std::to_string(peek().Offset);
  }

  bool hadError() const { return !ErrorMessage.empty(); }
  const std::string &error() const { return ErrorMessage; }

  /// tensor := IDENTIFIER [ "(" INDEX ("," INDEX)* ")" ]
  std::optional<AccessExpr> parseAccess() {
    if (!check(TokKind::Identifier)) {
      fail("expected identifier");
      return std::nullopt;
    }
    std::string Name = advance().Spelling;
    std::vector<std::string> Indices;
    if (match(TokKind::LParen)) {
      do {
        if (!check(TokKind::Identifier)) {
          fail("expected index variable");
          return std::nullopt;
        }
        Indices.push_back(advance().Spelling);
      } while (match(TokKind::Comma));
      if (!match(TokKind::RParen)) {
        fail("expected ')'");
        return std::nullopt;
      }
    }
    return AccessExpr(std::move(Name), std::move(Indices));
  }

  /// primary := tensor | INTEGER | "(" expr ")" | "-" primary
  ExprPtr parsePrimary() {
    if (check(TokKind::Integer)) {
      int64_t Value = advance().IntValue;
      return std::make_unique<ConstantExpr>(Value);
    }
    if (match(TokKind::Minus)) {
      ExprPtr Sub = parsePrimary();
      if (!Sub)
        return nullptr;
      return std::make_unique<NegateExpr>(std::move(Sub));
    }
    if (match(TokKind::LParen)) {
      ExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!match(TokKind::RParen)) {
        fail("expected ')'");
        return nullptr;
      }
      return Inner;
    }
    // The identifier `Const` denotes the symbolic template constant
    // (§4.2.1); it cannot be indexed.
    if (check(TokKind::Identifier) && peek().Spelling == "Const") {
      advance();
      return ConstantExpr::symbolic();
    }
    // `max(e1, e2)` is a reserved call form, not a tensor access: its
    // arguments are full expressions, which an index list cannot carry.
    if (check(TokKind::Identifier) && peek().Spelling == "max") {
      advance();
      if (!match(TokKind::LParen)) {
        fail("expected '(' after max");
        return nullptr;
      }
      ExprPtr Lhs = parseExpr();
      if (!Lhs)
        return nullptr;
      if (!match(TokKind::Comma)) {
        fail("expected ',' in max");
        return nullptr;
      }
      ExprPtr Rhs = parseExpr();
      if (!Rhs)
        return nullptr;
      if (!match(TokKind::RParen)) {
        fail("expected ')' after max");
        return nullptr;
      }
      return std::make_unique<MaxExpr>(std::move(Lhs), std::move(Rhs));
    }
    std::optional<AccessExpr> Access = parseAccess();
    if (!Access)
      return nullptr;
    return std::make_unique<AccessExpr>(std::move(*Access));
  }

  /// term := primary (("*" | "/") primary)*
  ExprPtr parseTerm() {
    ExprPtr Lhs = parsePrimary();
    if (!Lhs)
      return nullptr;
    while (check(TokKind::Star) || check(TokKind::Slash)) {
      BinOpKind Op =
          advance().Kind == TokKind::Star ? BinOpKind::Mul : BinOpKind::Div;
      ExprPtr Rhs = parsePrimary();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  /// expr := term (("+" | "-") term)*
  ExprPtr parseExpr() {
    ExprPtr Lhs = parseTerm();
    if (!Lhs)
      return nullptr;
    while (check(TokKind::Plus) || check(TokKind::Minus)) {
      BinOpKind Op =
          advance().Kind == TokKind::Plus ? BinOpKind::Add : BinOpKind::Sub;
      ExprPtr Rhs = parseTerm();
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string ErrorMessage;
};

} // namespace

ParseResult taco::parseTacoProgram(const std::string &Source) {
  ParserImpl P(lexTaco(Source));
  ParseResult Result;
  std::optional<AccessExpr> Lhs = P.parseAccess();
  if (!Lhs) {
    Result.Error = P.error();
    return Result;
  }
  if (!P.match(TokKind::Equals)) {
    Result.Error = "expected '='";
    return Result;
  }
  ExprPtr Rhs = P.parseExpr();
  if (!Rhs) {
    Result.Error = P.error();
    return Result;
  }
  if (!P.check(TokKind::End)) {
    Result.Error = "trailing tokens after expression";
    return Result;
  }
  Result.Prog = Program(std::move(*Lhs), std::move(Rhs));
  return Result;
}

ParseStatementsResult taco::parseTacoStatements(const std::string &Source) {
  ParseStatementsResult Result;
  size_t Start = 0;
  while (Start <= Source.size()) {
    size_t Semi = Source.find(';', Start);
    std::string Piece = Source.substr(
        Start, Semi == std::string::npos ? std::string::npos : Semi - Start);
    bool Blank =
        Piece.find_first_not_of(" \t\r\n") == std::string::npos;
    if (!Blank) {
      ParseResult One = parseTacoProgram(Piece);
      if (!One.ok()) {
        Result.Error = "statement " +
                       std::to_string(Result.Programs.size() + 1) + ": " +
                       One.Error;
        Result.Programs.clear();
        return Result;
      }
      Result.Programs.push_back(std::move(*One.Prog));
    }
    if (Semi == std::string::npos)
      break;
    Start = Semi + 1;
  }
  if (Result.Programs.empty())
    Result.Error = "no statements";
  return Result;
}

ParseExprResult taco::parseTacoExpr(const std::string &Source) {
  ParserImpl P(lexTaco(Source));
  ParseExprResult Result;
  ExprPtr E = P.parseExpr();
  if (!E) {
    Result.Error = P.error();
    return Result;
  }
  if (!P.check(TokKind::End)) {
    Result.Error = "trailing tokens after expression";
    return Result;
  }
  Result.E = std::move(E);
  return Result;
}
