//===- taco/Tensor.h - Dense tensors for the reference evaluator -*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dense tensor container parameterized over the scalar type. The
/// validator evaluates over double and the bounded verifier over Rational;
/// both use the same einsum reference evaluator (taco/Einsum.h).
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_TENSOR_H
#define STAGG_TACO_TENSOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace stagg {
namespace taco {

/// Dense row-major tensor. An empty shape denotes a scalar with one element.
template <typename T> class Tensor {
public:
  Tensor() : Data(1, T{}) {}

  explicit Tensor(std::vector<int64_t> Shape) : Dims(std::move(Shape)) {
    int64_t Total = 1;
    for (int64_t D : Dims) {
      assert(D > 0 && "tensor dimensions must be positive");
      Total *= D;
    }
    Data.assign(static_cast<size_t>(Total), T{});
  }

  /// Builds a scalar tensor holding \p Value.
  static Tensor scalar(T Value) {
    Tensor S;
    S.Data[0] = Value;
    return S;
  }

  const std::vector<int64_t> &shape() const { return Dims; }
  size_t order() const { return Dims.size(); }
  size_t size() const { return Data.size(); }
  bool isScalar() const { return Dims.empty(); }

  std::vector<T> &flat() { return Data; }
  const std::vector<T> &flat() const { return Data; }

  /// Row-major linearization of \p Coords.
  size_t offsetOf(const std::vector<int64_t> &Coords) const {
    assert(Coords.size() == Dims.size() && "coordinate rank mismatch");
    size_t Offset = 0;
    for (size_t I = 0; I < Dims.size(); ++I) {
      assert(Coords[I] >= 0 && Coords[I] < Dims[I] && "coordinate range");
      Offset = Offset * static_cast<size_t>(Dims[I]) +
               static_cast<size_t>(Coords[I]);
    }
    return Offset;
  }

  T &at(const std::vector<int64_t> &Coords) { return Data[offsetOf(Coords)]; }
  const T &at(const std::vector<int64_t> &Coords) const {
    return Data[offsetOf(Coords)];
  }

  bool operator==(const Tensor &Other) const {
    return Dims == Other.Dims && Data == Other.Data;
  }

private:
  std::vector<int64_t> Dims;
  std::vector<T> Data;
};

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_TENSOR_H
