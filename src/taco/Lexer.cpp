//===- taco/Lexer.cpp - Tokenizer for TACO index notation -----------------===//

#include "taco/Lexer.h"

#include <cctype>

using namespace stagg;
using namespace stagg::taco;

std::vector<Token> taco::lexTaco(const std::string &Source) {
  std::vector<Token> Tokens;
  size_t I = 0;
  const size_t N = Source.size();
  while (I < N) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    Token Tok;
    Tok.Offset = I;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Tok.Kind = TokKind::Identifier;
      Tok.Spelling = Source.substr(Start, I - Start);
      Tokens.push_back(std::move(Tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      // A fractional literal (e.g. "0.5") is outside the grammar of Fig. 5;
      // lex it as Invalid so the candidate gets discarded.
      if (I < N && Source[I] == '.') {
        ++I;
        while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
        Tok.Kind = TokKind::Invalid;
        Tok.Spelling = Source.substr(Start, I - Start);
        Tokens.push_back(std::move(Tok));
        continue;
      }
      Tok.Kind = TokKind::Integer;
      Tok.Spelling = Source.substr(Start, I - Start);
      Tok.IntValue = std::stoll(Tok.Spelling);
      Tokens.push_back(std::move(Tok));
      continue;
    }
    ++I;
    switch (C) {
    case '=':
      Tok.Kind = TokKind::Equals;
      break;
    case '+':
      Tok.Kind = TokKind::Plus;
      break;
    case '-':
      Tok.Kind = TokKind::Minus;
      break;
    case '*':
      Tok.Kind = TokKind::Star;
      break;
    case '/':
      Tok.Kind = TokKind::Slash;
      break;
    case '(':
      Tok.Kind = TokKind::LParen;
      break;
    case ')':
      Tok.Kind = TokKind::RParen;
      break;
    case ',':
      Tok.Kind = TokKind::Comma;
      break;
    default:
      Tok.Kind = TokKind::Invalid;
      break;
    }
    Tok.Spelling = std::string(1, C);
    Tokens.push_back(std::move(Tok));
  }
  Token EndTok;
  EndTok.Kind = TokKind::End;
  EndTok.Offset = N;
  Tokens.push_back(std::move(EndTok));
  return Tokens;
}
