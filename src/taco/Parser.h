//===- taco/Parser.h - Parser for TACO index notation -----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the grammar of paper Fig. 5, with the usual
/// precedence (`*`,`/` bind tighter than `+`,`-`; all left-associative).
/// Parsing never aborts the process: failures produce an error message so the
/// LLM response parser can discard syntactically invalid candidates.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_TACO_PARSER_H
#define STAGG_TACO_PARSER_H

#include "taco/Ast.h"

#include <optional>
#include <string>

namespace stagg {
namespace taco {

/// Outcome of a parse attempt.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error;

  bool ok() const { return Prog.has_value(); }
};

/// Parses a full TACO statement `tensor = expr`. The caller is expected to
/// have normalized `:=` to `=` already (see llm::preprocessResponseLine).
ParseResult parseTacoProgram(const std::string &Source);

/// Parses just an expression (used by tests and the template machinery).
struct ParseExprResult {
  ExprPtr E;
  std::string Error;

  bool ok() const { return E != nullptr; }
};
ParseExprResult parseTacoExpr(const std::string &Source);

/// Outcome of parsing an ordered statement list.
struct ParseStatementsResult {
  std::vector<Program> Programs;
  std::string Error;

  bool ok() const { return Error.empty() && !Programs.empty(); }
};

/// Parses a `;`-separated ordered list of TACO statements (trailing `;`
/// allowed). Multi-statement kernels lower to such lists; the einsum
/// sequence evaluator and the verifier execute them as one program.
ParseStatementsResult parseTacoStatements(const std::string &Source);

} // namespace taco
} // namespace stagg

#endif // STAGG_TACO_PARSER_H
