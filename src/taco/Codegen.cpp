//===- taco/Codegen.cpp - TACO-to-C kernel generation ---------------------===//

#include "taco/Codegen.h"

#include "taco/Semantics.h"

#include <functional>
#include <set>

using namespace stagg;
using namespace stagg::taco;

namespace {

/// Emission state: extent names per index variable, accumulated source, and
/// a counter for accumulator temporaries.
class Emitter {
public:
  Emitter(const Program &P, const CodegenSpec &Spec)
      : P(P), Spec(Spec), Placement(analyzeReductions(P)) {}

  CodegenResult run() {
    CodegenResult Result;
    if (!P.Rhs) {
      Result.Error = "program has no RHS";
      return Result;
    }
    if (!bindExtents(Result.Error))
      return Result;

    emitSignature();
    Indent = 1;

    // Output loops over the LHS index variables.
    const bench_vector &OutVars = P.Lhs.indices();
    for (const std::string &Var : OutVars)
      openLoop(Var);

    // RHS expression (hoisting accumulator loops as needed), then the
    // store through the linearized output subscript.
    std::string Value = emitExpr(*P.Rhs);
    line(lvalueFor(P.Lhs) + " = " + Value + ";");

    for (size_t I = 0; I < OutVars.size(); ++I)
      closeBlock();
    Out += "}\n";

    Result.Ok = true;
    Result.Source = std::move(Out);
    return Result;
  }

private:
  using bench_vector = std::vector<std::string>;

  //===------------------------------------------------------------------===//
  // Extents
  //===------------------------------------------------------------------===//

  /// Binds every index variable to a size-parameter name via the shapes of
  /// the tensors it subscripts (LHS first).
  bool bindExtents(std::string &Error) {
    auto BindAccess = [&](const AccessExpr &A) {
      auto It = Spec.Shapes.find(A.name());
      if (It == Spec.Shapes.end())
        return A.order() == 0; // Scalars need no shape.
      if (It->second.size() != A.order())
        return false;
      for (size_t I = 0; I < A.order(); ++I)
        Extents.emplace(A.indices()[I], It->second[I]);
      return true;
    };
    if (!BindAccess(P.Lhs)) {
      Error = "no shape for output '" + P.Lhs.name() + "'";
      return false;
    }
    bool Good = true;
    std::function<void(const Expr &)> Visit = [&](const Expr &E) {
      if (!Good)
        return;
      if (const auto *A = exprDynCast<AccessExpr>(&E)) {
        if (!BindAccess(*A)) {
          Error = "no shape for tensor '" + A->name() + "'";
          Good = false;
        }
      } else if (const auto *B = exprDynCast<BinaryExpr>(&E)) {
        Visit(B->lhs());
        Visit(B->rhs());
      } else if (const auto *N = exprDynCast<NegateExpr>(&E)) {
        Visit(N->operand());
      } else if (const auto *M = exprDynCast<MaxExpr>(&E)) {
        Visit(M->lhs());
        Visit(M->rhs());
      }
    };
    Visit(*P.Rhs);
    if (!Good)
      return false;
    for (const std::string &Var : indexVariables(P))
      if (!Extents.count(Var)) {
        Error = "no extent derivable for index '" + Var + "'";
        return false;
      }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Text helpers
  //===------------------------------------------------------------------===//

  void line(const std::string &Text) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += Text;
    Out += "\n";
  }

  void openLoop(const std::string &Var) {
    line("for (int " + Var + " = 0; " + Var + " < " + Extents.at(Var) + "; " +
         Var + "++) {");
    ++Indent;
  }

  void closeBlock() {
    --Indent;
    line("}");
  }

  void emitSignature() {
    Out += "void " + Spec.FunctionName + "(";
    for (size_t I = 0; I < Spec.Params.size(); ++I) {
      const auto &[Name, Kind] = Spec.Params[I];
      if (I)
        Out += ", ";
      switch (Kind) {
      case CodegenSpec::ParamKind::SizeScalar:
        Out += "int " + Name;
        break;
      case CodegenSpec::ParamKind::NumScalar:
        Out += Spec.ElementType + " " + Name;
        break;
      case CodegenSpec::ParamKind::Array:
        Out += Spec.ElementType + "* " + Name;
        break;
      }
    }
    Out += ") {\n";
  }

  /// Row-major linearized reference, e.g. `A[(i * M + j)]` or `*out`.
  std::string lvalueFor(const AccessExpr &A) {
    if (A.order() == 0) {
      // Scalar data parameters read directly; scalar *outputs* are
      // one-element buffers.
      bool IsArray = Spec.Shapes.count(A.name()) > 0;
      return IsArray ? ("*" + A.name()) : A.name();
    }
    const std::vector<std::string> &Shape = Spec.Shapes.at(A.name());
    std::string Index = A.indices()[0];
    for (size_t I = 1; I < A.order(); ++I)
      Index = "(" + Index + " * " + Shape[I] + " + " + A.indices()[I] + ")";
    return A.name() + "[" + Index + "]";
  }

  //===------------------------------------------------------------------===//
  // Expression emission
  //===------------------------------------------------------------------===//

  /// Emits statements computing \p E (hoisting reductions) and returns a C
  /// expression for its value at the current loop depth.
  std::string emitExpr(const Expr &E) {
    auto It = Placement.IntroducedAt.find(&E);
    if (It != Placement.IntroducedAt.end() && !It->second.empty()) {
      std::string Acc = "acc" + std::to_string(AccCounter++);
      line(Spec.ElementType + " " + Acc + " = 0;");
      for (const std::string &Var : It->second)
        openLoop(Var);
      std::string Value = emitInner(E);
      line(Acc + " += " + Value + ";");
      for (size_t I = 0; I < It->second.size(); ++I)
        closeBlock();
      return Acc;
    }
    return emitInner(E);
  }

  std::string emitInner(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access:
      return lvalueFor(exprCast<AccessExpr>(E));
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      assert(!C.isSymbolic() && "codegen needs concrete constants");
      return std::to_string(C.value());
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      std::string Lhs = emitExpr(B.lhs());
      std::string Rhs = emitExpr(B.rhs());
      return "(" + Lhs + " " + binOpSpelling(B.op()) + " " + Rhs + ")";
    }
    case Expr::Kind::Negate:
      return "(-" + emitExpr(exprCast<NegateExpr>(E).operand()) + ")";
    case Expr::Kind::Max: {
      // Mini-C has neither calls nor ternaries, so max lowers to a hoisted
      // temporary conditionally overwritten — still inside the subset the
      // round-trip tests re-parse and interpret.
      const auto &M = exprCast<MaxExpr>(E);
      std::string Lhs = emitExpr(M.lhs());
      std::string Rhs = emitExpr(M.rhs());
      std::string Tmp = "mx" + std::to_string(MaxCounter++);
      line(Spec.ElementType + " " + Tmp + " = " + Lhs + ";");
      line("if (" + Rhs + " > " + Tmp + ") " + Tmp + " = " + Rhs + ";");
      return Tmp;
    }
    }
    return "0";
  }

  const Program &P;
  const CodegenSpec &Spec;
  ReductionPlacement Placement;
  std::map<std::string, std::string> Extents;
  std::string Out;
  int Indent = 0;
  int AccCounter = 0;
  int MaxCounter = 0;
};

} // namespace

CodegenResult taco::generateC(const Program &P, const CodegenSpec &Spec) {
  Emitter E(P, Spec);
  return E.run();
}
