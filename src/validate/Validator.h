//===- validate/Validator.h - Template validation (§6) ----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Template validation per paper §6. A complete template contains symbolic
/// tensors (`b`, `c`, ...) and symbolic constants; the validator enumerates
/// substitutions binding the LHS symbol to the kernel's output argument, the
/// RHS symbols to *any* argument of compatible rank (including the output
/// and repeated bindings, exactly as in Fig. 8), and constant symbols to the
/// integer literals collected from the source. Each instantiation is
/// evaluated by the einsum reference evaluator against the I/O examples; all
/// consistent instantiations are returned in enumeration order, so the
/// verifier can reject one and fall back to the next.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VALIDATE_VALIDATOR_H
#define STAGG_VALIDATE_VALIDATOR_H

#include "benchsuite/Benchmark.h"
#include "taco/Ast.h"
#include "validate/IoExamples.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace validate {

/// One I/O-consistent instantiation of a template.
struct Instantiation {
  /// The concrete program: tensor names are argument names, constants are
  /// literal values.
  taco::Program Concrete;

  /// Template tensor symbol -> argument name.
  std::map<std::string, std::string> SymbolBinding;

  /// Values substituted for the symbolic constants, in leaf order.
  std::vector<int64_t> ConstantValues;
};

/// Validator state shared across all templates of one query.
///
/// The enumeration is heavily pruned relative to the naive cartesian
/// product, without changing the returned instantiations or their order:
///
///  * per-symbol options are filtered by rank *and* by shape compatibility
///    (an argument whose extents conflict with the output shape, or with
///    the symbol's own repeated accesses, in any I/O example can never
///    validate);
///  * each symbol binding is checked for cross-symbol extent consistency
///    before any instantiation is built or evaluated;
///  * the per-example operand tensors are materialized once and shared by
///    every instantiation (they depend only on the argument, not the
///    candidate);
///  * instantiation evaluation short-circuits on the first failing output
///    cell of the first failing I/O example (taco::einsumCompare).
///
/// Every pruned candidate is one the einsum evaluator would have rejected,
/// so the surviving set — and the enumeration order within it — is
/// bit-identical to the naive enumerator's (tests/PerfEquivalenceTest.cpp).
class Validator {
public:
  /// \p Constants is the literal pool harvested from the source by the
  /// static analysis. \p UseVm selects the bytecode VM for instantiation
  /// evaluation (bit-identical verdicts and order; the tree-walk remains
  /// available behind `--no-vm` for A/B comparison). \p UseVmOpt
  /// additionally runs vm::optimize over the compiled template — with
  /// constants *not* frozen, because the validator's constant odometer
  /// rewrites the template's ConstantExpr leaves between evaluations
  /// (`--no-vm-opt` disables for A/B comparison).
  Validator(const bench::Benchmark &B, std::vector<IoExample> Examples,
            std::vector<int64_t> Constants, bool UseVm = true,
            bool UseVmOpt = true);

  /// Enumerates substitutions for \p Template and returns every
  /// instantiation that satisfies all I/O examples, up to \p MaxResults.
  std::vector<Instantiation> validate(const taco::Program &Template,
                                      size_t MaxResults = 8) const;

  /// Total instantiations evaluated so far (across calls); a cost metric.
  /// Shape-pruned bindings never reach evaluation and are not counted.
  int64_t instantiationsTried() const { return Tried; }

  const std::vector<IoExample> &examples() const { return Examples; }

private:
  /// Candidate-independent evaluation state for one I/O example: every
  /// argument materialized as a tensor, plus the resolved output shape.
  struct ExampleEval {
    std::map<std::string, taco::Tensor<double>> Operands;
    std::vector<int64_t> OutShape;
  };

  /// Builds OperandCache on first use (it needs no template).
  void ensureOperandCache() const;

  const bench::Benchmark &B;
  std::vector<IoExample> Examples;
  std::vector<int64_t> Constants;
  bool UseVm = true;
  bool UseVmOpt = true;
  mutable int64_t Tried = 0;
  mutable std::vector<ExampleEval> OperandCache;
  mutable bool OperandCacheReady = false;
};

/// Rewrites \p Template by applying \p SymbolBinding to tensor names and
/// substituting \p ConstantValues into the symbolic constants (in leaf
/// order). Exposed for tests and the baselines.
taco::Program instantiateTemplate(
    const taco::Program &Template,
    const std::map<std::string, std::string> &SymbolBinding,
    const std::vector<int64_t> &ConstantValues);

/// Evaluates a fully concrete program (tensor names are argument names,
/// constants are literals) on every example and compares against the
/// expected outputs. Shared by the validator and the enumerative baselines.
bool runsConsistently(const bench::Benchmark &B, const taco::Program &Concrete,
                      const std::vector<IoExample> &Examples);

} // namespace validate
} // namespace stagg

#endif // STAGG_VALIDATE_VALIDATOR_H
