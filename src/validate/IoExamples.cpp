//===- validate/IoExamples.cpp - Input/output example generation ----------===//

#include "validate/IoExamples.h"

using namespace stagg;
using namespace stagg::validate;
using namespace stagg::bench;

std::vector<int64_t>
validate::resolveShape(const ArgSpec &Arg,
                       const std::map<std::string, int64_t> &Sizes) {
  std::vector<int64_t> Shape;
  for (const std::string &Dim : Arg.Shape) {
    auto It = Sizes.find(Dim);
    if (It != Sizes.end()) {
      Shape.push_back(It->second);
      continue;
    }
    // Ingested kernels (api::ingestKernel) can have constant-extent
    // dimensions spelled as decimal literals, e.g. a fixed 4-tap filter.
    if (!Dim.empty() && Dim.find_first_not_of("0123456789") ==
                            std::string::npos) {
      Shape.push_back(std::stoll(Dim));
      continue;
    }
    Shape.push_back(1);
  }
  return Shape;
}

std::vector<IoExample> validate::generateExamples(const Benchmark &B,
                                                  const cfront::CFunction &Fn,
                                                  int Count, Rng &R) {
  std::vector<IoExample> Examples;
  for (int N = 0; N < Count; ++N) {
    IoExample Ex;

    // Small, varied sizes; the first example uses asymmetric sizes so that
    // rank/transposition bugs cannot hide behind square shapes.
    for (const ArgSpec &Arg : B.Args)
      if (Arg.K == ArgSpec::Kind::SizeScalar)
        Ex.Sizes[Arg.Name] =
            N == 0 ? 2 + static_cast<int64_t>(Ex.Sizes.size() % 3)
                   : R.range(2, 4);

    for (const ArgSpec &Arg : B.Args) {
      switch (Arg.K) {
      case ArgSpec::Kind::SizeScalar:
        Ex.Inputs.IntScalars[Arg.Name] = Ex.Sizes[Arg.Name];
        break;
      case ArgSpec::Kind::NumScalar:
        Ex.Inputs.NumScalars[Arg.Name] = static_cast<double>(R.range(1, 5));
        break;
      case ArgSpec::Kind::Array: {
        std::vector<int64_t> Shape = resolveShape(Arg, Ex.Sizes);
        int64_t Total = 1;
        for (int64_t D : Shape)
          Total *= D;
        std::vector<double> Data(static_cast<size_t>(Total), 0.0);
        if (!Arg.IsOutput)
          for (double &V : Data)
            V = static_cast<double>(R.range(1, 5));
        Ex.Inputs.Arrays[Arg.Name] = std::move(Data);
        break;
      }
      }
    }

    // Execute the legacy kernel on a copy of the inputs.
    cfront::ExecEnv<double> Env = Ex.Inputs;
    cfront::ExecStatus Status = cfront::runCFunction(Fn, Env);
    if (!Status.Ok)
      return {};

    const ArgSpec *OutArg = B.outputArg();
    if (!OutArg)
      return {};
    taco::Tensor<double> Out(resolveShape(*OutArg, Ex.Sizes));
    Out.flat() = Env.Arrays[OutArg->Name];
    Ex.Expected = std::move(Out);
    Examples.push_back(std::move(Ex));
  }
  return Examples;
}
