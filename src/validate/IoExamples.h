//===- validate/IoExamples.h - Input/output example generation --*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the test set <I, O> of paper §6: randomly generated concrete
/// inputs are bound to the kernel's arguments, the legacy C program is
/// executed by the interpreter, and the resulting output tensor is recorded
/// as the expected value. Values are drawn from small nonzero integers so
/// that division-bearing kernels stay well-defined and double arithmetic is
/// exact.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VALIDATE_IOEXAMPLES_H
#define STAGG_VALIDATE_IOEXAMPLES_H

#include "benchsuite/Benchmark.h"
#include "cfront/Ast.h"
#include "cfront/Interp.h"
#include "support/Rng.h"
#include "taco/Tensor.h"

#include <map>
#include <string>
#include <vector>

namespace stagg {
namespace validate {

/// One input/output example.
struct IoExample {
  /// Concrete values of the size parameters.
  std::map<std::string, int64_t> Sizes;

  /// Pre-state of every argument (arrays zero-initialized for the output).
  cfront::ExecEnv<double> Inputs;

  /// Output tensor produced by running the C kernel.
  taco::Tensor<double> Expected;
};

/// Resolves an array argument's concrete shape under \p Sizes.
std::vector<int64_t>
resolveShape(const bench::ArgSpec &Arg,
             const std::map<std::string, int64_t> &Sizes);

/// Builds \p Count examples by executing \p Fn. Returns an empty vector if
/// any execution fails (malformed benchmark).
std::vector<IoExample> generateExamples(const bench::Benchmark &B,
                                        const cfront::CFunction &Fn, int Count,
                                        Rng &R);

} // namespace validate
} // namespace stagg

#endif // STAGG_VALIDATE_IOEXAMPLES_H
