//===- validate/Validator.cpp - Template validation (§6) ------------------===//

#include "validate/Validator.h"

#include "taco/Einsum.h"
#include "taco/Semantics.h"

#include <cmath>
#include <functional>

using namespace stagg;
using namespace stagg::validate;
using namespace stagg::taco;

taco::Program validate::instantiateTemplate(
    const Program &Template,
    const std::map<std::string, std::string> &SymbolBinding,
    const std::vector<int64_t> &ConstantValues) {
  size_t ConstAt = 0;
  std::function<ExprPtr(const Expr &)> Rewrite =
      [&](const Expr &E) -> ExprPtr {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      auto It = SymbolBinding.find(A.name());
      std::string Name = It != SymbolBinding.end() ? It->second : A.name();
      return std::make_unique<AccessExpr>(Name, A.indices());
    }
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      if (!C.isSymbolic())
        return C.clone();
      assert(ConstAt < ConstantValues.size() && "missing constant value");
      return std::make_unique<ConstantExpr>(ConstantValues[ConstAt++]);
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      ExprPtr Lhs = Rewrite(B.lhs());
      ExprPtr Rhs = Rewrite(B.rhs());
      return std::make_unique<BinaryExpr>(B.op(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Expr::Kind::Negate:
      return std::make_unique<NegateExpr>(
          Rewrite(exprCast<NegateExpr>(E).operand()));
    }
    return nullptr;
  };

  auto LhsIt = SymbolBinding.find(Template.Lhs.name());
  AccessExpr Lhs(LhsIt != SymbolBinding.end() ? LhsIt->second
                                              : Template.Lhs.name(),
                 Template.Lhs.indices());
  return Program(std::move(Lhs),
                 Template.Rhs ? Rewrite(*Template.Rhs) : nullptr);
}

Validator::Validator(const bench::Benchmark &B, std::vector<IoExample> Examples,
                     std::vector<int64_t> Constants)
    : B(B), Examples(std::move(Examples)), Constants(std::move(Constants)) {
  // An empty pool would make constant templates uninstantiable even though
  // the grammar can propose them; keep the degenerate default of the source
  // having no literals.
  if (this->Constants.empty())
    this->Constants.push_back(1);
}

bool Validator::checkInstantiation(const Program &Concrete) const {
  ++Tried;
  return runsConsistently(B, Concrete, Examples);
}

bool validate::runsConsistently(const bench::Benchmark &B,
                                const Program &Concrete,
                                const std::vector<IoExample> &Examples) {
  const bench::ArgSpec *OutArg = B.outputArg();

  // Names of tensors actually read by the RHS. A symbol bound to the output
  // argument (Fig. 8's S2) reads the *initial* output buffer, so the output
  // name can legitimately appear here too.
  std::vector<std::string> RhsNames;
  std::function<void(const Expr &)> Collect = [&](const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const std::string &Name = exprCast<AccessExpr>(E).name();
      if (std::find(RhsNames.begin(), RhsNames.end(), Name) == RhsNames.end())
        RhsNames.push_back(Name);
      return;
    }
    case Expr::Kind::Binary: {
      const auto &Bin = exprCast<BinaryExpr>(E);
      Collect(Bin.lhs());
      Collect(Bin.rhs());
      return;
    }
    case Expr::Kind::Negate:
      Collect(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Constant:
      return;
    }
  };
  Collect(*Concrete.Rhs);

  for (const IoExample &Ex : Examples) {
    std::map<std::string, Tensor<double>> Operands;
    for (const std::string &Name : RhsNames) {
      const bench::ArgSpec *Arg = B.findArg(Name);
      if (!Arg)
        return false;
      if (Arg->K == bench::ArgSpec::Kind::Array) {
        Tensor<double> T(resolveShape(*Arg, Ex.Sizes));
        T.flat() = Ex.Inputs.Arrays.at(Arg->Name);
        Operands.emplace(Arg->Name, std::move(T));
      } else if (Arg->K == bench::ArgSpec::Kind::SizeScalar) {
        Operands.emplace(Arg->Name, Tensor<double>::scalar(static_cast<double>(
                                        Ex.Sizes.at(Arg->Name))));
      } else {
        Operands.emplace(Arg->Name, Tensor<double>::scalar(
                                        Ex.Inputs.NumScalars.at(Arg->Name)));
      }
    }

    std::vector<int64_t> OutShape = resolveShape(*OutArg, Ex.Sizes);
    EinsumResult<double> R = evalEinsum<double>(Concrete, Operands, OutShape);
    if (!R.Ok)
      return false;
    // Exact-ish comparison: inputs are small integers, so everything except
    // division is exact; division gets a relative tolerance.
    const std::vector<double> &Got = R.Value.flat();
    const std::vector<double> &Want = Ex.Expected.flat();
    if (Got.size() != Want.size())
      return false;
    for (size_t I = 0; I < Got.size(); ++I) {
      double A = Got[I];
      double E = Want[I];
      if (!std::isfinite(A) || !std::isfinite(E))
        return false;
      double Tolerance = 1e-9 * std::max({1.0, std::fabs(A), std::fabs(E)});
      if (std::fabs(A - E) > Tolerance)
        return false;
    }
  }
  return true;
}

std::vector<Instantiation>
Validator::validate(const Program &Template, size_t MaxResults) const {
  std::vector<Instantiation> Valid;
  if (!Template.Rhs || Examples.empty())
    return Valid;

  const bench::ArgSpec *OutArg = B.outputArg();
  if (!OutArg)
    return Valid;

  // The LHS symbol is pinned to the output argument; ranks must agree.
  if (static_cast<int>(Template.Lhs.order()) != OutArg->rank())
    return Valid;

  // Distinct RHS tensor symbols with their ranks, and the constant count.
  std::vector<TensorInfo> Inventory = tensorInventory(Template);
  std::vector<TensorInfo> Symbols;
  int ConstLeaves = 0;
  {
    // Count constant *leaves* (each is substituted independently).
    std::function<void(const Expr &)> Count = [&](const Expr &E) {
      switch (E.kind()) {
      case Expr::Kind::Constant:
        if (exprCast<ConstantExpr>(E).isSymbolic())
          ++ConstLeaves;
        return;
      case Expr::Kind::Binary: {
        const auto &Bin = exprCast<BinaryExpr>(E);
        Count(Bin.lhs());
        Count(Bin.rhs());
        return;
      }
      case Expr::Kind::Negate:
        Count(exprCast<NegateExpr>(E).operand());
        return;
      case Expr::Kind::Access:
        return;
      }
    };
    Count(*Template.Rhs);
  }
  for (const TensorInfo &Info : Inventory) {
    if (Info.IsConstant || Info.Name == Template.Lhs.name())
      continue;
    Symbols.push_back(Info);
  }

  // Candidate arguments per symbol, filtered by rank (Fig. 8's "discard
  // substitutions that bind tensors to scalars and vice versa").
  std::vector<std::vector<const bench::ArgSpec *>> Choices;
  for (const TensorInfo &Symbol : Symbols) {
    std::vector<const bench::ArgSpec *> Options;
    for (const bench::ArgSpec &Arg : B.Args)
      if (Arg.rank() == Symbol.Order)
        Options.push_back(&Arg);
    if (Options.empty())
      return Valid;
    Choices.push_back(std::move(Options));
  }

  // Odometer over symbol bindings x constant assignments.
  std::vector<size_t> Pick(Symbols.size(), 0);
  std::vector<size_t> ConstPick(static_cast<size_t>(ConstLeaves), 0);
  for (;;) {
    std::map<std::string, std::string> Binding;
    Binding[Template.Lhs.name()] = OutArg->Name;
    for (size_t I = 0; I < Symbols.size(); ++I)
      Binding[Symbols[I].Name] = Choices[I][Pick[I]]->Name;

    for (;;) {
      std::vector<int64_t> ConstValues;
      for (size_t I = 0; I < ConstPick.size(); ++I)
        ConstValues.push_back(Constants[ConstPick[I]]);

      Program Concrete = instantiateTemplate(Template, Binding, ConstValues);
      if (checkInstantiation(Concrete)) {
        Instantiation Inst;
        Inst.Concrete = std::move(Concrete);
        Inst.SymbolBinding = Binding;
        Inst.ConstantValues = std::move(ConstValues);
        Valid.push_back(std::move(Inst));
        if (Valid.size() >= MaxResults)
          return Valid;
      }

      // Advance the constant odometer.
      size_t Axis = ConstPick.size();
      bool Wrapped = true;
      while (Axis > 0) {
        --Axis;
        if (++ConstPick[Axis] < Constants.size()) {
          Wrapped = false;
          break;
        }
        ConstPick[Axis] = 0;
      }
      if (ConstPick.empty() || Wrapped)
        break;
    }

    // Advance the symbol odometer.
    size_t Axis = Pick.size();
    bool Wrapped = true;
    while (Axis > 0) {
      --Axis;
      if (++Pick[Axis] < Choices[Axis].size()) {
        Wrapped = false;
        break;
      }
      Pick[Axis] = 0;
    }
    if (Pick.empty() || Wrapped)
      break;
  }
  return Valid;
}
