//===- validate/Validator.cpp - Template validation (§6) ------------------===//

#include "validate/Validator.h"

#include "taco/Einsum.h"
#include "taco/Semantics.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"
#include "vm/Interpreter.h"

#include <cmath>
#include <functional>
#include <optional>

using namespace stagg;
using namespace stagg::validate;
using namespace stagg::taco;

taco::Program validate::instantiateTemplate(
    const Program &Template,
    const std::map<std::string, std::string> &SymbolBinding,
    const std::vector<int64_t> &ConstantValues) {
  size_t ConstAt = 0;
  std::function<ExprPtr(const Expr &)> Rewrite =
      [&](const Expr &E) -> ExprPtr {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      auto It = SymbolBinding.find(A.name());
      std::string Name = It != SymbolBinding.end() ? It->second : A.name();
      return std::make_unique<AccessExpr>(Name, A.indices());
    }
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      if (!C.isSymbolic())
        return C.clone();
      assert(ConstAt < ConstantValues.size() && "missing constant value");
      return std::make_unique<ConstantExpr>(ConstantValues[ConstAt++]);
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      ExprPtr Lhs = Rewrite(B.lhs());
      ExprPtr Rhs = Rewrite(B.rhs());
      return std::make_unique<BinaryExpr>(B.op(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Expr::Kind::Negate:
      return std::make_unique<NegateExpr>(
          Rewrite(exprCast<NegateExpr>(E).operand()));
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      ExprPtr Lhs = Rewrite(M.lhs());
      ExprPtr Rhs = Rewrite(M.rhs());
      return std::make_unique<MaxExpr>(std::move(Lhs), std::move(Rhs));
    }
    }
    return nullptr;
  };

  auto LhsIt = SymbolBinding.find(Template.Lhs.name());
  AccessExpr Lhs(LhsIt != SymbolBinding.end() ? LhsIt->second
                                              : Template.Lhs.name(),
                 Template.Lhs.indices());
  return Program(std::move(Lhs),
                 Template.Rhs ? Rewrite(*Template.Rhs) : nullptr);
}

Validator::Validator(const bench::Benchmark &B, std::vector<IoExample> Examples,
                     std::vector<int64_t> Constants, bool UseVm, bool UseVmOpt)
    : B(B), Examples(std::move(Examples)), Constants(std::move(Constants)),
      UseVm(UseVm), UseVmOpt(UseVmOpt) {
  // An empty pool would make constant templates uninstantiable even though
  // the grammar can propose them; keep the degenerate default of the source
  // having no literals.
  if (this->Constants.empty())
    this->Constants.push_back(1);
}

void Validator::ensureOperandCache() const {
  if (OperandCacheReady)
    return;
  OperandCacheReady = true;
  const bench::ArgSpec *OutArg = B.outputArg();
  OperandCache.reserve(Examples.size());
  for (const IoExample &Ex : Examples) {
    ExampleEval Eval;
    for (const bench::ArgSpec &Arg : B.Args) {
      if (Arg.K == bench::ArgSpec::Kind::Array) {
        auto It = Ex.Inputs.Arrays.find(Arg.Name);
        if (It == Ex.Inputs.Arrays.end())
          continue; // eval of a candidate reading it fails as "unbound"
        Tensor<double> T(resolveShape(Arg, Ex.Sizes));
        T.flat() = It->second;
        Eval.Operands.emplace(Arg.Name, std::move(T));
      } else if (Arg.K == bench::ArgSpec::Kind::SizeScalar) {
        auto It = Ex.Sizes.find(Arg.Name);
        if (It == Ex.Sizes.end())
          continue;
        Eval.Operands.emplace(
            Arg.Name, Tensor<double>::scalar(static_cast<double>(It->second)));
      } else {
        auto It = Ex.Inputs.NumScalars.find(Arg.Name);
        if (It == Ex.Inputs.NumScalars.end())
          continue;
        Eval.Operands.emplace(Arg.Name, Tensor<double>::scalar(It->second));
      }
    }
    if (OutArg)
      Eval.OutShape = resolveShape(*OutArg, Ex.Sizes);
    OperandCache.push_back(std::move(Eval));
  }
}

namespace {

/// The per-cell acceptance shared by runsConsistently and the validator's
/// fast path — the bit-identical contract between them depends on there
/// being exactly one definition. Inputs are small integers, so everything
/// except division is exact; division gets a relative tolerance.
bool cellsMatch(double A, double E) {
  if (!std::isfinite(A) || !std::isfinite(E))
    return false;
  double Tolerance = 1e-9 * std::max({1.0, std::fabs(A), std::fabs(E)});
  return std::fabs(A - E) <= Tolerance;
}

} // namespace

bool validate::runsConsistently(const bench::Benchmark &B,
                                const Program &Concrete,
                                const std::vector<IoExample> &Examples) {
  const bench::ArgSpec *OutArg = B.outputArg();

  // Names of tensors actually read by the RHS. A symbol bound to the output
  // argument (Fig. 8's S2) reads the *initial* output buffer, so the output
  // name can legitimately appear here too.
  std::vector<std::string> RhsNames;
  std::function<void(const Expr &)> Collect = [&](const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const std::string &Name = exprCast<AccessExpr>(E).name();
      if (std::find(RhsNames.begin(), RhsNames.end(), Name) == RhsNames.end())
        RhsNames.push_back(Name);
      return;
    }
    case Expr::Kind::Binary: {
      const auto &Bin = exprCast<BinaryExpr>(E);
      Collect(Bin.lhs());
      Collect(Bin.rhs());
      return;
    }
    case Expr::Kind::Negate:
      Collect(exprCast<NegateExpr>(E).operand());
      return;
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      Collect(M.lhs());
      Collect(M.rhs());
      return;
    }
    case Expr::Kind::Constant:
      return;
    }
  };
  Collect(*Concrete.Rhs);

  for (const IoExample &Ex : Examples) {
    std::map<std::string, Tensor<double>> Operands;
    for (const std::string &Name : RhsNames) {
      const bench::ArgSpec *Arg = B.findArg(Name);
      if (!Arg)
        return false;
      if (Arg->K == bench::ArgSpec::Kind::Array) {
        Tensor<double> T(resolveShape(*Arg, Ex.Sizes));
        T.flat() = Ex.Inputs.Arrays.at(Arg->Name);
        Operands.emplace(Arg->Name, std::move(T));
      } else if (Arg->K == bench::ArgSpec::Kind::SizeScalar) {
        Operands.emplace(Arg->Name, Tensor<double>::scalar(static_cast<double>(
                                        Ex.Sizes.at(Arg->Name))));
      } else {
        Operands.emplace(Arg->Name, Tensor<double>::scalar(
                                        Ex.Inputs.NumScalars.at(Arg->Name)));
      }
    }

    std::vector<int64_t> OutShape = resolveShape(*OutArg, Ex.Sizes);
    EinsumResult<double> R = evalEinsum<double>(Concrete, Operands, OutShape);
    if (!R.Ok)
      return false;
    const std::vector<double> &Got = R.Value.flat();
    const std::vector<double> &Want = Ex.Expected.flat();
    if (Got.size() != Want.size())
      return false;
    for (size_t I = 0; I < Got.size(); ++I)
      if (!cellsMatch(Got[I], Want[I]))
        return false;
  }
  return true;
}

namespace {

/// One distinct RHS tensor symbol with every access spelled against it.
struct SymbolAccesses {
  std::string Name;
  int Order = 0; ///< Rank of the first occurrence (the rank filter's key).
  std::vector<const AccessExpr *> Leaves;
};

/// Collects the RHS access leaves grouped per symbol, in order of first
/// appearance (the same order tensorInventory reports them).
void collectSymbolAccesses(const Expr &E, std::vector<SymbolAccesses> &Out) {
  switch (E.kind()) {
  case Expr::Kind::Access: {
    const auto &A = exprCast<AccessExpr>(E);
    for (SymbolAccesses &S : Out) {
      if (S.Name == A.name()) {
        S.Leaves.push_back(&A);
        return;
      }
    }
    SymbolAccesses S;
    S.Name = A.name();
    S.Order = static_cast<int>(A.order());
    S.Leaves.push_back(&A);
    Out.push_back(std::move(S));
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    collectSymbolAccesses(B.lhs(), Out);
    collectSymbolAccesses(B.rhs(), Out);
    return;
  }
  case Expr::Kind::Negate:
    collectSymbolAccesses(exprCast<NegateExpr>(E).operand(), Out);
    return;
  case Expr::Kind::Max: {
    const auto &M = exprCast<MaxExpr>(E);
    collectSymbolAccesses(M.lhs(), Out);
    collectSymbolAccesses(M.rhs(), Out);
    return;
  }
  case Expr::Kind::Constant:
    return;
  }
}

/// The template with symbol names bound to argument names and every symbolic
/// constant replaced by a mutable literal node, so the constant odometer can
/// sweep assignments in place instead of re-cloning the template.
struct BoundTemplate {
  Program Concrete;
  std::vector<ConstantExpr *> ConstNodes; ///< In leaf (substitution) order.
};

BoundTemplate bindSymbols(const Program &Template,
                          const std::map<std::string, std::string> &Binding) {
  BoundTemplate Bound;
  std::function<ExprPtr(const Expr &)> Rewrite =
      [&](const Expr &E) -> ExprPtr {
    switch (E.kind()) {
    case Expr::Kind::Access: {
      const auto &A = exprCast<AccessExpr>(E);
      auto It = Binding.find(A.name());
      std::string Name = It != Binding.end() ? It->second : A.name();
      return std::make_unique<AccessExpr>(Name, A.indices());
    }
    case Expr::Kind::Constant: {
      const auto &C = exprCast<ConstantExpr>(E);
      if (!C.isSymbolic())
        return C.clone();
      auto Node = std::make_unique<ConstantExpr>(0);
      Bound.ConstNodes.push_back(Node.get());
      return Node;
    }
    case Expr::Kind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      ExprPtr Lhs = Rewrite(B.lhs());
      ExprPtr Rhs = Rewrite(B.rhs());
      return std::make_unique<BinaryExpr>(B.op(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Expr::Kind::Negate:
      return std::make_unique<NegateExpr>(
          Rewrite(exprCast<NegateExpr>(E).operand()));
    case Expr::Kind::Max: {
      const auto &M = exprCast<MaxExpr>(E);
      ExprPtr Lhs = Rewrite(M.lhs());
      ExprPtr Rhs = Rewrite(M.rhs());
      return std::make_unique<MaxExpr>(std::move(Lhs), std::move(Rhs));
    }
    }
    return nullptr;
  };

  auto LhsIt = Binding.find(Template.Lhs.name());
  AccessExpr Lhs(LhsIt != Binding.end() ? LhsIt->second : Template.Lhs.name(),
                 Template.Lhs.indices());
  Bound.Concrete = Program(std::move(Lhs),
                           Template.Rhs ? Rewrite(*Template.Rhs) : nullptr);
  return Bound;
}

/// Extent constraints one (symbol, candidate argument) pair imposes per
/// example: variable id -> extent, for variables not already pinned by the
/// output shape. Conflicting pairs were filtered out beforehand.
using ConstraintList = std::vector<std::pair<int, int64_t>>;

} // namespace

std::vector<Instantiation>
Validator::validate(const Program &Template, size_t MaxResults) const {
  std::vector<Instantiation> Valid;
  if (!Template.Rhs || Examples.empty())
    return Valid;

  const bench::ArgSpec *OutArg = B.outputArg();
  if (!OutArg)
    return Valid;

  // The LHS symbol is pinned to the output argument; ranks must agree.
  if (static_cast<int>(Template.Lhs.order()) != OutArg->rank())
    return Valid;

  ensureOperandCache();
  size_t NumExamples = Examples.size();

  // Distinct RHS tensor symbols with every access, and the constant count.
  std::vector<SymbolAccesses> AllSymbols;
  collectSymbolAccesses(*Template.Rhs, AllSymbols);
  int ConstLeaves = 0;
  {
    // Count constant *leaves* (each is substituted independently).
    std::function<void(const Expr &)> Count = [&](const Expr &E) {
      switch (E.kind()) {
      case Expr::Kind::Constant:
        if (exprCast<ConstantExpr>(E).isSymbolic())
          ++ConstLeaves;
        return;
      case Expr::Kind::Binary: {
        const auto &Bin = exprCast<BinaryExpr>(E);
        Count(Bin.lhs());
        Count(Bin.rhs());
        return;
      }
      case Expr::Kind::Negate:
        Count(exprCast<NegateExpr>(E).operand());
        return;
      case Expr::Kind::Max: {
        const auto &M = exprCast<MaxExpr>(E);
        Count(M.lhs());
        Count(M.rhs());
        return;
      }
      case Expr::Kind::Access:
        return;
      }
    };
    Count(*Template.Rhs);
  }

  // Index-variable ids across the whole template.
  std::map<std::string, int> VarIds;
  auto IdOf = [&VarIds](const std::string &Var) {
    auto [It, Inserted] = VarIds.emplace(Var, static_cast<int>(VarIds.size()));
    (void)Inserted;
    return It->second;
  };
  for (const std::string &Var : Template.Lhs.indices())
    IdOf(Var);
  for (const SymbolAccesses &S : AllSymbols)
    for (const AccessExpr *Leaf : S.Leaves)
      for (const std::string &Var : Leaf->indices())
        IdOf(Var);
  size_t NumVars = VarIds.size();

  // Base extents per example: variables pinned by the output shape, both
  // through the LHS and through RHS occurrences of the LHS symbol (which
  // read the output argument). A conflict here dooms every binding — the
  // einsum evaluator would reject each one on that example.
  std::vector<std::vector<int64_t>> BaseExtents(
      NumExamples, std::vector<int64_t>(NumVars, -1));
  for (size_t E = 0; E < NumExamples; ++E) {
    const std::vector<int64_t> &OutShape = OperandCache[E].OutShape;
    auto Pin = [&](const std::vector<std::string> &Vars,
                   const std::vector<int64_t> &Shape) {
      if (Vars.size() != Shape.size())
        return false;
      for (size_t I = 0; I < Vars.size(); ++I) {
        int64_t &Slot = BaseExtents[E][static_cast<size_t>(IdOf(Vars[I]))];
        if (Slot >= 0 && Slot != Shape[I])
          return false;
        Slot = Shape[I];
      }
      return true;
    };
    if (!Pin(Template.Lhs.indices(), OutShape))
      return Valid;
    for (const SymbolAccesses &S : AllSymbols) {
      if (S.Name != Template.Lhs.name())
        continue;
      for (const AccessExpr *Leaf : S.Leaves)
        if (!Pin(Leaf->indices(), OutShape))
          return Valid;
    }
  }

  // RHS symbols still needing a binding (everything but the LHS symbol).
  std::vector<const SymbolAccesses *> Symbols;
  for (const SymbolAccesses &S : AllSymbols)
    if (S.Name != Template.Lhs.name())
      Symbols.push_back(&S);

  // Candidate arguments per symbol, filtered by rank (Fig. 8's "discard
  // substitutions that bind tensors to scalars and vice versa") and by
  // shape compatibility: an option whose extents conflict — internally,
  // across the symbol's repeated accesses, or against the output-pinned
  // variables — in any example can never produce a valid instantiation,
  // because the einsum evaluator rejects exactly that conflict.
  std::vector<std::vector<const bench::ArgSpec *>> Choices(Symbols.size());
  // Constraints[S][Option][Example] lists the unpinned (var, extent) pairs
  // that picking Option for symbol S imposes.
  std::vector<std::vector<std::vector<ConstraintList>>> Constraints(
      Symbols.size());
  for (size_t SI = 0; SI < Symbols.size(); ++SI) {
    const SymbolAccesses &Symbol = *Symbols[SI];
    for (const bench::ArgSpec &Arg : B.Args) {
      if (Arg.rank() != Symbol.Order)
        continue;
      bool Compatible = true;
      std::vector<ConstraintList> PerExample(NumExamples);
      for (size_t E = 0; E < NumExamples && Compatible; ++E) {
        std::vector<int64_t> Local(NumVars, -1);
        std::vector<int64_t> Shape = resolveShape(Arg, Examples[E].Sizes);
        for (const AccessExpr *Leaf : Symbol.Leaves) {
          if (Leaf->order() != Shape.size()) {
            Compatible = false;
            break;
          }
          for (size_t P = 0; P < Shape.size(); ++P) {
            int Var = VarIds.at(Leaf->indices()[P]);
            int64_t Pinned = BaseExtents[E][static_cast<size_t>(Var)];
            if (Pinned >= 0) {
              if (Pinned != Shape[P]) {
                Compatible = false;
                break;
              }
              continue;
            }
            int64_t &Slot = Local[static_cast<size_t>(Var)];
            if (Slot >= 0) {
              if (Slot != Shape[P]) {
                Compatible = false;
                break;
              }
              continue;
            }
            Slot = Shape[P];
            PerExample[E].emplace_back(Var, Shape[P]);
          }
          if (!Compatible)
            break;
        }
      }
      if (!Compatible)
        continue;
      Choices[SI].push_back(&Arg);
      Constraints[SI].push_back(std::move(PerExample));
    }
    if (Choices[SI].empty())
      return Valid;
  }

  // Operand pointers per (symbol, option, example) and for the output
  // argument, resolved once; the enumeration then never touches the
  // operand maps.
  std::vector<std::vector<std::vector<const Tensor<double> *>>> PtrTable(
      Symbols.size());
  for (size_t SI = 0; SI < Symbols.size(); ++SI) {
    PtrTable[SI].resize(Choices[SI].size());
    for (size_t O = 0; O < Choices[SI].size(); ++O) {
      PtrTable[SI][O].resize(NumExamples, nullptr);
      for (size_t E = 0; E < NumExamples; ++E) {
        auto It = OperandCache[E].Operands.find(Choices[SI][O]->Name);
        if (It != OperandCache[E].Operands.end())
          PtrTable[SI][O][E] = &It->second;
      }
    }
  }
  std::vector<const Tensor<double> *> OutPtr(NumExamples, nullptr);
  for (size_t E = 0; E < NumExamples; ++E) {
    auto It = OperandCache[E].Operands.find(OutArg->Name);
    if (It != OperandCache[E].Operands.end())
      OutPtr[E] = &It->second;
  }
  std::map<std::string, size_t> SymIndex;
  for (size_t SI = 0; SI < Symbols.size(); ++SI)
    SymIndex.emplace(Symbols[SI]->Name, SI);

  // The template is compiled *once* and evaluated directly under each
  // symbol binding: instantiation only renames tensors and fills constant
  // values, neither of which changes the compiled structure, reduction
  // placement, or evaluation order — so verdicts are bit-identical to
  // evaluating the instantiated program. When the template has symbolic
  // constants they become mutable literal nodes (in a one-time clone) the
  // constant odometer rewrites in place; otherwise the template itself is
  // compiled, clone-free.
  std::vector<size_t> Pick(Symbols.size(), 0);
  BoundTemplate EvalT;
  if (ConstLeaves > 0)
    EvalT = bindSymbols(Template, {});
  const Program &EvalProgram = ConstLeaves > 0 ? EvalT.Concrete : Template;
  // The VM lowering delegates slot assignment and reduction placement to
  // the same structure compiler, so when it succeeds the compiled bytecode
  // evaluates cell-for-cell in the tree-walk's order and the verdicts stay
  // bit-identical. Any lowering failure falls back to the tree-walk, whose
  // EinsumProgram is only built on that path (a candidate is validated
  // once, so the compile is paid per call and must not be paid twice).
  vm::Code VmProgram;
  if (UseVm) {
    VmProgram = vm::compileProgram(EvalProgram);
    if (UseVmOpt && VmProgram.ok()) {
      // Constants must NOT be frozen here: the odometer below rewrites the
      // template's ConstantExpr leaves in place between refreshConstants()
      // calls, so value-based constant dedup would be unsound. The
      // optimizer still hoists invariant loads, fuses spans, and prunes
      // dead registers — all bit-identity preserving.
      vm::OptimizeOptions OO;
      OO.FreezeConstants = false;
      VmProgram = vm::optimize(VmProgram, OO);
    }
  }
  const bool ViaVm = UseVm && VmProgram.ok();
  std::optional<taco::EinsumProgram> Compiled;
  if (!ViaVm) {
    Compiled.emplace(EvalProgram);
    if (!Compiled->ok())
      return Valid;
  }
  size_t CurExample = 0;
  auto Resolve = [&](const std::string &Name) -> const Tensor<double> * {
    if (Name == Template.Lhs.name())
      return OutPtr[CurExample];
    size_t SI = SymIndex.find(Name)->second;
    return PtrTable[SI][Pick[SI]][CurExample];
  };

  // Cross-symbol consistency scratch, generation-stamped so the joint check
  // allocates nothing per binding.
  std::vector<int64_t> JointExtent(NumVars, -1);
  std::vector<uint64_t> JointStamp(NumVars, 0);
  uint64_t Generation = 0;
  auto BindingShapesConsistent = [&]() {
    for (size_t E = 0; E < NumExamples; ++E) {
      ++Generation;
      for (size_t SI = 0; SI < Symbols.size(); ++SI) {
        for (const auto &[Var, Extent] : Constraints[SI][Pick[SI]][E]) {
          size_t V = static_cast<size_t>(Var);
          if (JointStamp[V] == Generation) {
            if (JointExtent[V] != Extent)
              return false;
            continue;
          }
          JointStamp[V] = Generation;
          JointExtent[V] = Extent;
        }
      }
    }
    return true;
  };

  // Odometer over symbol bindings x constant assignments, exactly the naive
  // enumeration order; shape-incompatible bindings are skipped wholesale
  // (their entire constant block would have failed evaluation). The loop is
  // generic over the evaluator vector so the VM and the tree-walk share one
  // definition of the enumeration (and thus one enumeration order).
  std::vector<size_t> ConstPick(static_cast<size_t>(ConstLeaves), 0);
  std::vector<int64_t> ConstValues(static_cast<size_t>(ConstLeaves), 0);
  auto RunEnum = [&](auto &Evaluators) {
    // Examples are (re)bound lazily per binding, preserving the fail-fast
    // behavior of the naive loop: a binding rejected on the first example
    // never pays for the others.
    uint64_t BindEpoch = 0;
    std::vector<uint64_t> BoundEpoch(NumExamples, 0);
    std::vector<bool> BindOk(NumExamples, false);
    auto EnsureBound = [&](size_t E) -> bool {
      if (BoundEpoch[E] == BindEpoch)
        return BindOk[E];
      BoundEpoch[E] = BindEpoch;
      CurExample = E;
      BindOk[E] = Evaluators[E].bind(Resolve, OperandCache[E].OutShape);
      return BindOk[E];
    };

    for (;;) {
      if (BindingShapesConsistent()) {
        ++BindEpoch;
        for (bool More = true; More;) {
          for (size_t I = 0; I < ConstPick.size(); ++I) {
            ConstValues[I] = Constants[ConstPick[I]];
            EvalT.ConstNodes[I]->setValue(ConstValues[I]);
          }

          ++Tried;
          bool Consistent = true;
          for (size_t E = 0; E < NumExamples; ++E) {
            if (!EnsureBound(E)) {
              Consistent = false;
              break;
            }
            Evaluators[E].refreshConstants();
            if (Evaluators[E].compare(Examples[E].Expected.flat(),
                                      cellsMatch) !=
                taco::EinsumCompare::Match) {
              Consistent = false;
              break;
            }
          }

          if (Consistent) {
            Instantiation Inst;
            Inst.SymbolBinding[Template.Lhs.name()] = OutArg->Name;
            for (size_t I = 0; I < Symbols.size(); ++I)
              Inst.SymbolBinding[Symbols[I]->Name] = Choices[I][Pick[I]]->Name;
            Inst.Concrete =
                instantiateTemplate(Template, Inst.SymbolBinding, ConstValues);
            Inst.ConstantValues = ConstValues;
            Valid.push_back(std::move(Inst));
            if (Valid.size() >= MaxResults)
              return;
          }

          // Advance the constant odometer.
          size_t Axis = ConstPick.size();
          bool Wrapped = true;
          while (Axis > 0) {
            --Axis;
            if (++ConstPick[Axis] < Constants.size()) {
              Wrapped = false;
              break;
            }
            ConstPick[Axis] = 0;
          }
          if (ConstPick.empty() || Wrapped)
            More = false;
        }
      }

      // Advance the symbol odometer.
      size_t Axis = Pick.size();
      bool Wrapped = true;
      while (Axis > 0) {
        --Axis;
        if (++Pick[Axis] < Choices[Axis].size()) {
          Wrapped = false;
          break;
        }
        Pick[Axis] = 0;
      }
      if (Pick.empty() || Wrapped)
        return;
    }
  };

  if (ViaVm) {
    std::vector<vm::Interpreter<double>> Evaluators(
        NumExamples, vm::Interpreter<double>(VmProgram));
    RunEnum(Evaluators);
  } else {
    std::vector<taco::EinsumEvaluator<double>> Evaluators(
        NumExamples, taco::EinsumEvaluator<double>(*Compiled));
    RunEnum(Evaluators);
  }
  return Valid;
}
