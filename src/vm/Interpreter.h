//===- vm/Interpreter.h - Execute vm::Code ----------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vm::Interpreter executes a shared, immutable vm::Code against concrete
/// operands. It is reentrant in the sense that any number of Interpreter
/// instances (each with its own InterpreterState) can run the same Code
/// concurrently; a single instance rebinds across operand sets with zero
/// allocation once its buffers have grown to size (tracked by
/// allocEvents(), which the rebind-reuse test pins).
///
/// The public surface mirrors taco::EinsumEvaluator bit-for-bit — bind order,
/// error strings, accumulation order, and comparison verdicts are identical —
/// so the validator and verifier can switch between the two behind one seam
/// (`--no-vm`). Statement lists run through run(), which replicates
/// taco::evalEinsumSequence (shape inference, per-statement binding, store
/// forwarding of earlier results) without re-compiling anything per call.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VM_INTERPRETER_H
#define STAGG_VM_INTERPRETER_H

#include "vm/Code.h"

#include "taco/Einsum.h"
#include "taco/Tensor.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace stagg {
namespace vm {

/// Executes one vm::Code. Template parameter T is the cell type (double for
/// validation/execution, Rational for the bounded verifier).
template <typename T> class Interpreter {
public:
  /// Resolves an access name to its operand, or nullptr when unbound.
  using Resolver = std::function<const taco::Tensor<T> *(const std::string &)>;

  explicit Interpreter(const Code &C) : C(C) {
    States.resize(C.statements().size());
    Scratch.resize(C.statements().size());
  }

  const std::string &error() const { return C.ok() ? Error : C.error(); }

  /// Number of buffer growths since construction. Stable across rebinds of
  /// equal-or-smaller shapes: the zero-allocation re-execution contract.
  int64_t allocEvents() const { return AllocEvents; }

  //===--------------------------------------------------------------------===
  // Single-statement surface (EinsumEvaluator-compatible; requires
  // C.single()).
  //===--------------------------------------------------------------------===

  /// Binds (or rebinds) operands and output shape against the first
  /// statement. Check order, error strings, and stride layout are those of
  /// EinsumEvaluator::bind. \p Resolve is any callable with the Resolver
  /// signature (a plain lambda avoids the std::function indirection).
  template <typename ResolveFn>
  bool bind(const ResolveFn &Resolve, const std::vector<int64_t> &OutputShape) {
    if (!C.ok())
      return false;
    Error.clear();
    return bindStmt(0, Resolve, OutputShape);
  }

  /// bind() against a plain name->tensor map.
  bool bindMap(const std::map<std::string, taco::Tensor<T>> &Operands,
               const std::vector<int64_t> &OutputShape) {
    return bind(
        [&Operands](const std::string &Name) -> const taco::Tensor<T> * {
          auto It = Operands.find(Name);
          return It == Operands.end() ? nullptr : &It->second;
        },
        OutputShape);
  }

  /// Re-reads every ConstantExpr the code references (the validator's
  /// constant odometer rewrites them in place).
  void refreshConstants() {
    for (size_t K = 0; K < C.statements().size(); ++K)
      refreshStmtConstants(K);
  }

  /// Evaluates every output cell into a fresh tensor. Requires bind().
  taco::EinsumResult<T> evaluate() {
    StmtState &St = States[0];
    assert(St.Bound && "evaluate() requires a successful bind()");
    taco::Tensor<T> Output(St.OutShape);
    evalStmtInto(0, Output.flat());
    return taco::EinsumResult<T>::success(std::move(Output));
  }

  /// Evaluates into \p Out, reusing its storage — the zero-allocation
  /// execute path. Requires bind().
  void evaluateInto(taco::Tensor<T> &Out) {
    StmtState &St = States[0];
    assert(St.Bound && "evaluateInto() requires a successful bind()");
    reshape(Out, St.OutShape);
    evalStmtInto(0, Out.flat());
  }

  /// Evaluates only the output rows [RowBegin, RowEnd) of the *outermost*
  /// dimension, writing them at their usual row-major positions in \p Flat
  /// (the full-size output buffer). The parallel tiled execute path: workers
  /// with disjoint row ranges write disjoint cells of a shared buffer, each
  /// through its own Interpreter, producing exactly the cells a serial
  /// evaluate() would. Requires bind() and an output rank >= 1.
  void evaluateRows(std::vector<T> &Flat, int64_t RowBegin, int64_t RowEnd) {
    StmtState &St = States[0];
    (void)St;
    assert(St.Bound && "evaluateRows() requires a successful bind()");
    assert(!St.OutShape.empty() && "evaluateRows() requires rank >= 1");
    evalStmtRows(0, Flat, RowBegin, RowEnd);
  }

  /// Evaluates cell by cell against \p Want, stopping at the first cell for
  /// which \p CellOk(got, want) is false. Verdict-identical to
  /// EinsumEvaluator::compare. Requires bind().
  template <typename CellOkFn>
  taco::EinsumCompare compare(const std::vector<T> &Want, CellOkFn &&CellOk) {
    StmtState &St = States[0];
    assert(St.Bound && "compare() requires a successful bind()");
    size_t Total = 1;
    for (int64_t D : St.OutShape)
      Total *= static_cast<size_t>(D);
    if (Want.size() != Total)
      return taco::EinsumCompare::Mismatch;

    const StmtCode &SC = C.statements()[0];
    if (isMapSpan(SC)) {
      // Same row-major cell order, same per-cell arithmetic; only the
      // dispatch is amortized, so the first-mismatch verdict is identical.
      return forMapCells(SC, St, 0, St.OutShape[0],
                         [&](size_t L, T Got) { return CellOk(Got, Want[L]); })
                 ? taco::EinsumCompare::Match
                 : taco::EinsumCompare::Mismatch;
    }
    assign(St.OutCoord, SC.OutSlots.size(), int64_t(0));
    size_t Linear = 0;
    do {
      for (size_t I = 0; I < SC.OutSlots.size(); ++I)
        St.Coords[static_cast<size_t>(SC.OutSlots[I])] = St.OutCoord[I];
      if (!CellOk(execCell(SC, St), Want[Linear++]))
        return taco::EinsumCompare::Mismatch;
    } while (taco::detail::advanceCounter(St.OutCoord, St.OutShape));
    return taco::EinsumCompare::Match;
  }

  //===--------------------------------------------------------------------===
  // Statement-list surface (evalEinsumSequence-compatible).
  //===--------------------------------------------------------------------===

  /// Runs every statement in order against \p Resolve, binding each result
  /// under its LHS name for later statements (store forwarding through
  /// per-statement scratch tensors, reused across calls), then copies the
  /// final value of \p OutputName into \p Out. Error strings are those of
  /// evalEinsumSequence. Returns false with error() set on failure.
  template <typename ResolveFn>
  bool run(const ResolveFn &Resolve, const std::string &OutputName,
           taco::Tensor<T> &Out) {
    if (!C.ok())
      return false;
    Error.clear();
    const std::vector<StmtCode> &Stmts = C.statements();

    // Name resolution chains through the scratch results of statements
    // executed so far this run (latest definition wins), then the caller's
    // operands — exactly the evolving Operands map of evalEinsumSequence.
    size_t Done = 0;
    auto Chain = [&](const std::string &Name) -> const taco::Tensor<T> * {
      for (size_t K = Done; K > 0; --K)
        if (Stmts[K - 1].LhsName == Name)
          return &Scratch[K - 1];
      return Resolve(Name);
    };

    for (size_t K = 0; K < Stmts.size(); ++K) {
      const StmtCode &SC = Stmts[K];
      StmtState &St = States[K];
      if (!inferShape(SC, St, Chain))
        return false;
      if (!bindStmt(K, Chain, St.InferredShape))
        return false;
      reshape(Scratch[K], St.OutShape);
      evalStmtInto(K, Scratch[K].flat());
      Done = K + 1;
    }

    const taco::Tensor<T> *Result = Chain(OutputName);
    if (!Result) {
      Error = "statement list never defines '" + OutputName + "'";
      return false;
    }
    Out = *Result;
    return true;
  }

private:
  struct AccessBind {
    const std::vector<T> *Data = nullptr;
    /// Pre-resolved (coordinate slot, row-major stride) per index position.
    std::vector<std::pair<int, size_t>> SlotStride;
  };

  /// Per-statement binding and execution state.
  struct StmtState {
    std::vector<int64_t> ExtentBySlot;
    std::vector<int64_t> Coords;
    std::vector<AccessBind> Binds;
    std::vector<T> Regs;
    std::vector<int64_t> OutShape;
    std::vector<int64_t> OutCoord;
    std::vector<int64_t> InferredShape;
    std::vector<int64_t> InferExtent; ///< Per-slot extents seen by inferShape.
    bool Bound = false;
  };

  /// resize()/assign() with allocation tracking: a capacity change counts
  /// as one alloc event.
  template <typename V> void grow(V &Vec, size_t N) {
    size_t Cap = Vec.capacity();
    Vec.resize(N);
    if (Vec.capacity() != Cap)
      ++AllocEvents;
  }
  template <typename V, typename E> void assign(V &Vec, size_t N, E Value) {
    size_t Cap = Vec.capacity();
    Vec.assign(N, Value);
    if (Vec.capacity() != Cap)
      ++AllocEvents;
  }

  /// Resizes \p Out to \p Shape, reusing its flat storage.
  void reshape(taco::Tensor<T> &Out, const std::vector<int64_t> &Shape) {
    if (Out.shape() == Shape)
      return;
    size_t Cap = Out.flat().capacity();
    Out = taco::Tensor<T>(Shape);
    if (Out.flat().capacity() > Cap)
      ++AllocEvents;
  }

  bool bindExtent(StmtState &St, int Slot, const std::string &Var,
                  int64_t Extent) {
    // LoopBegin/LoopEnd is a do-while — the reduction body runs at least
    // once — and Op::Load does not bounds-check, so a zero extent would
    // read out of bounds. Every current caller guarantees extents >= 1
    // (the protocol rejects non-positive sizes, Tensor asserts positive
    // dims), but the assert is debug-only; fail the bind so release builds
    // are safe against a future caller too.
    if (Extent <= 0) {
      Error = "index '" + Var + "' has non-positive extent";
      return false;
    }
    int64_t &Cell = St.ExtentBySlot[static_cast<size_t>(Slot)];
    if (Cell >= 0 && Cell != Extent) {
      Error = "index '" + Var + "' has conflicting extents";
      return false;
    }
    Cell = Extent;
    return true;
  }

  /// EinsumEvaluator::bind for statement \p K: same check order, same
  /// diagnostics, strides row-major with the innermost dimension last.
  template <typename ResolveFn>
  bool bindStmt(size_t K, const ResolveFn &Resolve,
                const std::vector<int64_t> &OutputShape) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    St.Bound = false;
    if (SC.LhsIndices.size() != OutputShape.size()) {
      Error = "output shape rank does not match LHS";
      return false;
    }
    assign(St.ExtentBySlot, static_cast<size_t>(SC.NumSlots), int64_t(-1));
    assign(St.Coords, static_cast<size_t>(SC.NumSlots), int64_t(0));
    for (size_t I = 0; I < OutputShape.size(); ++I)
      if (!bindExtent(St, SC.OutSlots[I], SC.LhsIndices[I], OutputShape[I]))
        return false;

    grow(St.Binds, SC.Accesses.size());
    for (size_t Ord = 0; Ord < SC.Accesses.size(); ++Ord) {
      const AccessInfo &A = SC.Accesses[Ord];
      const taco::Tensor<T> *Operand = Resolve(A.Name);
      if (!Operand) {
        Error = "unbound tensor '" + A.Name + "'";
        return false;
      }
      if (Operand->order() != A.Indices.size()) {
        Error = "tensor '" + A.Name + "' accessed with wrong rank";
        return false;
      }
      const std::vector<int64_t> &Shape = Operand->shape();
      for (size_t I = 0; I < A.Indices.size(); ++I)
        if (!bindExtent(St, A.Slots[I], A.Indices[I], Shape[I]))
          return false;
      AccessBind &AB = St.Binds[Ord];
      AB.Data = &Operand->flat();
      grow(AB.SlotStride, Shape.size());
      size_t Stride = 1;
      for (size_t I = Shape.size(); I > 0; --I) {
        AB.SlotStride[I - 1] = {A.Slots[I - 1], Stride};
        Stride *= static_cast<size_t>(Shape[I - 1]);
      }
    }

    grow(St.Regs, static_cast<size_t>(SC.NumRegs));
    refreshStmtConstants(K);

    size_t Cap = St.OutShape.capacity();
    St.OutShape = OutputShape;
    if (St.OutShape.capacity() != Cap)
      ++AllocEvents;
    St.Bound = true;
    return true;
  }

  void refreshStmtConstants(size_t K) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    if (St.Regs.size() < static_cast<size_t>(SC.NumRegs))
      grow(St.Regs, static_cast<size_t>(SC.NumRegs));
    for (size_t I = 0; I < SC.Consts.size(); ++I) {
      assert(!SC.Consts[I]->isSymbolic() &&
             "symbolic constants must be instantiated");
      St.Regs[static_cast<size_t>(SC.ConstRegs[I])] =
          T(SC.Consts[I]->value());
    }
  }

  /// taco::inferLhsShape for statement \p K: prefer an operand already bound
  /// under the LHS name with matching order, else derive extents from the
  /// RHS accesses in leaf order (first binding of a variable wins).
  template <typename ResolveFn>
  bool inferShape(const StmtCode &SC, StmtState &St,
                  const ResolveFn &Resolve) {
    const taco::Tensor<T> *Existing = Resolve(SC.LhsName);
    if (Existing && Existing->order() == SC.LhsIndices.size()) {
      size_t Cap = St.InferredShape.capacity();
      St.InferredShape = Existing->shape();
      if (St.InferredShape.capacity() != Cap)
        ++AllocEvents;
      return true;
    }
    assign(St.InferExtent, static_cast<size_t>(SC.NumSlots), int64_t(-1));
    for (const AccessInfo &A : SC.Accesses) {
      const taco::Tensor<T> *Operand = Resolve(A.Name);
      if (!Operand || Operand->order() != A.Indices.size())
        continue; // unbound/mismatched operands are bind()'s problem
      for (size_t I = 0; I < A.Slots.size(); ++I) {
        int64_t &Cell = St.InferExtent[static_cast<size_t>(A.Slots[I])];
        if (Cell < 0)
          Cell = Operand->shape()[I];
      }
    }
    assign(St.InferredShape, size_t(0), int64_t(0));
    for (size_t I = 0; I < SC.OutSlots.size(); ++I) {
      int64_t Extent = St.InferExtent[static_cast<size_t>(SC.OutSlots[I])];
      if (Extent < 0) {
        Error = "no extent derivable for output index '" + SC.LhsIndices[I] +
                "'";
        return false;
      }
      size_t Cap = St.InferredShape.capacity();
      St.InferredShape.push_back(Extent);
      if (St.InferredShape.capacity() != Cap)
        ++AllocEvents;
    }
    return true;
  }

  /// Runs the instruction stream once for the current coordinates; the cell
  /// value lands in the root register.
  T execCell(const StmtCode &SC, StmtState &St) {
    const Inst *Base = SC.Instrs.data();
    const Inst *I = Base;
    const Inst *End = Base + SC.Instrs.size();
    T *R = St.Regs.data();
    int64_t *Coords = St.Coords.data();
    const int64_t *Ext = St.ExtentBySlot.data();
    while (I != End) {
      switch (I->K) {
      case Op::Load: {
        const AccessBind &AB = St.Binds[static_cast<size_t>(I->A)];
        size_t Offset = 0;
        for (const std::pair<int, size_t> &P : AB.SlotStride)
          Offset += static_cast<size_t>(Coords[P.first]) * P.second;
        R[I->Dst] = (*AB.Data)[Offset];
        break;
      }
      case Op::Add:
        R[I->Dst] = R[I->A] + R[I->B];
        break;
      case Op::Sub:
        R[I->Dst] = R[I->A] - R[I->B];
        break;
      case Op::Mul:
        R[I->Dst] = R[I->A] * R[I->B];
        break;
      case Op::Div:
        R[I->Dst] = R[I->A] / R[I->B];
        break;
      case Op::Neg:
        R[I->Dst] = -R[I->A];
        break;
      case Op::Max:
        R[I->Dst] = R[I->A] < R[I->B] ? R[I->B] : R[I->A];
        break;
      case Op::ResetAcc:
        R[I->Dst] = T{};
        break;
      case Op::AccAdd:
        R[I->Dst] += R[I->A];
        break;
      case Op::MulAcc: {
        T Product = R[I->A] * R[I->B];
        R[I->Dst] += Product;
        break;
      }
      case Op::LoopBegin:
        Coords[I->Dst] = 0;
        break;
      case Op::LoopEnd:
        if (++Coords[I->Dst] < Ext[I->Dst]) {
          I = Base + I->A;
          continue;
        }
        break;
      case Op::DotSpan: {
        // Fused {Load, Load, MulAcc} loop over slot C: the same loads and
        // the same round-then-accumulate sequence as the scalar loop, with
        // the dispatch switch run once instead of 3*N times.
        size_t BaseA, StepA, BaseB, StepB;
        spanBase(St.Binds[static_cast<size_t>(I->A)], Coords, I->C, BaseA,
                 StepA);
        spanBase(St.Binds[static_cast<size_t>(I->B)], Coords, I->C, BaseB,
                 StepB);
        const T *Pa =
            St.Binds[static_cast<size_t>(I->A)].Data->data() + BaseA;
        const T *Pb =
            St.Binds[static_cast<size_t>(I->B)].Data->data() + BaseB;
        const int64_t N = Ext[I->C];
        T Acc = R[I->Dst];
        for (int64_t K = 0; K < N; ++K) {
          T Product = Pa[static_cast<size_t>(K) * StepA] *
                      Pb[static_cast<size_t>(K) * StepB];
          Acc += Product;
        }
        R[I->Dst] = Acc;
        Coords[I->C] = N; // where the scalar LoopEnd leaves the counter
        break;
      }
      case Op::SumSpan: {
        size_t BaseA, StepA;
        spanBase(St.Binds[static_cast<size_t>(I->A)], Coords, I->C, BaseA,
                 StepA);
        const T *Pa =
            St.Binds[static_cast<size_t>(I->A)].Data->data() + BaseA;
        const int64_t N = Ext[I->C];
        T Acc = R[I->Dst];
        for (int64_t K = 0; K < N; ++K)
          Acc += Pa[static_cast<size_t>(K) * StepA];
        R[I->Dst] = Acc;
        Coords[I->C] = N;
        break;
      }
      case Op::MapSpan:
        assert(false && "MapSpan executes at the output odometer level");
        break;
      }
      ++I;
    }
    return R[SC.Root];
  }

  static bool isMapSpan(const StmtCode &SC) {
    return SC.Instrs.size() == 1 && SC.Instrs[0].K == Op::MapSpan;
  }

  /// Splits an access's flat offset at the current coordinates into a base
  /// (every slot except \p Span) and the stride of \p Span — the pointer
  /// arithmetic behind the fused span loops. An access that does not index
  /// \p Span gets step 0 (its value is constant across the span); a
  /// diagonal access indexing it twice gets the summed stride.
  static void spanBase(const AccessBind &AB, const int64_t *Coords, int Span,
                       size_t &Base, size_t &Step) {
    Base = 0;
    Step = 0;
    for (const std::pair<int, size_t> &P : AB.SlotStride) {
      if (P.first == Span)
        Step += P.second;
      else
        Base += static_cast<size_t>(Coords[P.first]) * P.second;
    }
  }

  /// Advances the output odometer over every dimension *except* the
  /// outermost (which evalStmtRows owns). False when the inner dims wrap.
  static bool advanceInnerDims(std::vector<int64_t> &Coord,
                               const std::vector<int64_t> &Shape) {
    for (size_t I = Shape.size(); I > 1; --I) {
      if (++Coord[I - 1] < Shape[I - 1])
        return true;
      Coord[I - 1] = 0;
    }
    return false;
  }

  /// Drives \p Cell(linear, value) over the cells of a MapSpan statement in
  /// row-major order, restricted to outermost rows [RowBegin, RowEnd),
  /// stopping early when \p Cell returns false. The span runs over the
  /// innermost output dimension as a tight pointer loop; for rank 1 the
  /// outermost dimension *is* the span, so the row restriction becomes a
  /// span segment.
  template <typename CellFn>
  bool forMapCells(const StmtCode &SC, StmtState &St, int64_t RowBegin,
                   int64_t RowEnd, const CellFn &Cell) {
    if (RowBegin >= RowEnd)
      return true;
    const Inst &M = SC.Instrs[0];
    const size_t Rank = St.OutShape.size();
    const AccessBind &BA = St.Binds[static_cast<size_t>(M.A)];
    const AccessBind *BB =
        M.B >= 0 ? &St.Binds[static_cast<size_t>(M.B)] : nullptr;
    const MapOp MO = static_cast<MapOp>(M.Dst);
    int64_t *Coords = St.Coords.data();

    const int64_t SpanLen =
        Rank == 1 ? RowEnd - RowBegin : St.OutShape[Rank - 1];
    const int64_t SpanOff = Rank == 1 ? RowBegin : 0;
    const int64_t OuterEnd = Rank == 1 ? RowBegin + 1 : RowEnd;

    assign(St.OutCoord, SC.OutSlots.size(), int64_t(0));
    for (int64_t Row = RowBegin; Row < OuterEnd; ++Row) {
      St.OutCoord[0] = Row;
      for (size_t I = 1; I < Rank; ++I)
        St.OutCoord[I] = 0;
      bool More = true;
      while (More) {
        for (size_t I = 0; I + 1 < Rank; ++I)
          Coords[static_cast<size_t>(SC.OutSlots[I])] = St.OutCoord[I];
        size_t Linear = static_cast<size_t>(St.OutCoord[0]);
        for (size_t I = 1; I < Rank; ++I)
          Linear = Linear * static_cast<size_t>(St.OutShape[I]) +
                   static_cast<size_t>(I + 1 < Rank ? St.OutCoord[I] : 0);

        size_t BaseA, StepA;
        spanBase(BA, Coords, M.C, BaseA, StepA);
        const T *Pa = BA.Data->data() + BaseA +
                      static_cast<size_t>(SpanOff) * StepA;
        const T *Pb = nullptr;
        size_t StepB = 0;
        if (BB) {
          size_t BaseB;
          spanBase(*BB, Coords, M.C, BaseB, StepB);
          Pb = BB->Data->data() + BaseB + static_cast<size_t>(SpanOff) * StepB;
        }
        // One switch per row, then a tight loop per sub-operation; each
        // cell performs exactly the scalar stream's load(s) + op.
        switch (MO) {
        case MapOp::Copy:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      Pa[static_cast<size_t>(K) * StepA]))
              return false;
          break;
        case MapOp::Neg:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      -Pa[static_cast<size_t>(K) * StepA]))
              return false;
          break;
        case MapOp::Add:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      Pa[static_cast<size_t>(K) * StepA] +
                          Pb[static_cast<size_t>(K) * StepB]))
              return false;
          break;
        case MapOp::Sub:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      Pa[static_cast<size_t>(K) * StepA] -
                          Pb[static_cast<size_t>(K) * StepB]))
              return false;
          break;
        case MapOp::Mul:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      Pa[static_cast<size_t>(K) * StepA] *
                          Pb[static_cast<size_t>(K) * StepB]))
              return false;
          break;
        case MapOp::Div:
          for (int64_t K = 0; K < SpanLen; ++K)
            if (!Cell(Linear + static_cast<size_t>(K),
                      Pa[static_cast<size_t>(K) * StepA] /
                          Pb[static_cast<size_t>(K) * StepB]))
              return false;
          break;
        case MapOp::Max: {
          for (int64_t K = 0; K < SpanLen; ++K) {
            const T &Va = Pa[static_cast<size_t>(K) * StepA];
            const T &Vb = Pb[static_cast<size_t>(K) * StepB];
            if (!Cell(Linear + static_cast<size_t>(K), Va < Vb ? Vb : Va))
              return false;
          }
          break;
        }
        }
        More = advanceInnerDims(St.OutCoord, St.OutShape);
      }
    }
    return true;
  }

  /// The row-major output odometer of EinsumEvaluator::evaluate.
  void evalStmtInto(size_t K, std::vector<T> &Flat) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    if (St.OutShape.empty()) {
      // Rank-0 output: one cell, no out slots to drive (MapSpan is never
      // emitted for rank 0).
      assign(St.OutCoord, size_t(0), int64_t(0));
      Flat[0] = execCell(SC, St);
      return;
    }
    evalStmtRows(K, Flat, 0, St.OutShape[0]);
  }

  /// Evaluates outermost rows [RowBegin, RowEnd) of statement \p K into
  /// their row-major positions in \p Flat. Cell order within the range and
  /// per-cell arithmetic match the full odometer exactly.
  void evalStmtRows(size_t K, std::vector<T> &Flat, int64_t RowBegin,
                    int64_t RowEnd) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    if (isMapSpan(SC)) {
      forMapCells(SC, St, RowBegin, RowEnd, [&Flat](size_t L, T V) {
        Flat[L] = V;
        return true;
      });
      return;
    }
    const size_t Rank = St.OutShape.size();
    size_t InnerCells = 1;
    for (size_t I = 1; I < Rank; ++I)
      InnerCells *= static_cast<size_t>(St.OutShape[I]);
    assign(St.OutCoord, SC.OutSlots.size(), int64_t(0));
    for (int64_t Row = RowBegin; Row < RowEnd; ++Row) {
      St.OutCoord[0] = Row;
      for (size_t I = 1; I < Rank; ++I)
        St.OutCoord[I] = 0;
      size_t Linear = static_cast<size_t>(Row) * InnerCells;
      do {
        for (size_t I = 0; I < SC.OutSlots.size(); ++I)
          St.Coords[static_cast<size_t>(SC.OutSlots[I])] = St.OutCoord[I];
        Flat[Linear++] = execCell(SC, St);
      } while (advanceInnerDims(St.OutCoord, St.OutShape));
    }
  }

  const Code &C;
  std::string Error;
  std::vector<StmtState> States;
  std::vector<taco::Tensor<T>> Scratch;
  int64_t AllocEvents = 0;
};

} // namespace vm
} // namespace stagg

#endif // STAGG_VM_INTERPRETER_H
