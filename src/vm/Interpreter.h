//===- vm/Interpreter.h - Execute vm::Code ----------------------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vm::Interpreter executes a shared, immutable vm::Code against concrete
/// operands. It is reentrant in the sense that any number of Interpreter
/// instances (each with its own InterpreterState) can run the same Code
/// concurrently; a single instance rebinds across operand sets with zero
/// allocation once its buffers have grown to size (tracked by
/// allocEvents(), which the rebind-reuse test pins).
///
/// The public surface mirrors taco::EinsumEvaluator bit-for-bit — bind order,
/// error strings, accumulation order, and comparison verdicts are identical —
/// so the validator and verifier can switch between the two behind one seam
/// (`--no-vm`). Statement lists run through run(), which replicates
/// taco::evalEinsumSequence (shape inference, per-statement binding, store
/// forwarding of earlier results) without re-compiling anything per call.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VM_INTERPRETER_H
#define STAGG_VM_INTERPRETER_H

#include "vm/Code.h"

#include "taco/Einsum.h"
#include "taco/Tensor.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace stagg {
namespace vm {

/// Executes one vm::Code. Template parameter T is the cell type (double for
/// validation/execution, Rational for the bounded verifier).
template <typename T> class Interpreter {
public:
  /// Resolves an access name to its operand, or nullptr when unbound.
  using Resolver = std::function<const taco::Tensor<T> *(const std::string &)>;

  explicit Interpreter(const Code &C) : C(C) {
    States.resize(C.statements().size());
    Scratch.resize(C.statements().size());
  }

  const std::string &error() const { return C.ok() ? Error : C.error(); }

  /// Number of buffer growths since construction. Stable across rebinds of
  /// equal-or-smaller shapes: the zero-allocation re-execution contract.
  int64_t allocEvents() const { return AllocEvents; }

  //===--------------------------------------------------------------------===
  // Single-statement surface (EinsumEvaluator-compatible; requires
  // C.single()).
  //===--------------------------------------------------------------------===

  /// Binds (or rebinds) operands and output shape against the first
  /// statement. Check order, error strings, and stride layout are those of
  /// EinsumEvaluator::bind. \p Resolve is any callable with the Resolver
  /// signature (a plain lambda avoids the std::function indirection).
  template <typename ResolveFn>
  bool bind(const ResolveFn &Resolve, const std::vector<int64_t> &OutputShape) {
    if (!C.ok())
      return false;
    Error.clear();
    return bindStmt(0, Resolve, OutputShape);
  }

  /// bind() against a plain name->tensor map.
  bool bindMap(const std::map<std::string, taco::Tensor<T>> &Operands,
               const std::vector<int64_t> &OutputShape) {
    return bind(
        [&Operands](const std::string &Name) -> const taco::Tensor<T> * {
          auto It = Operands.find(Name);
          return It == Operands.end() ? nullptr : &It->second;
        },
        OutputShape);
  }

  /// Re-reads every ConstantExpr the code references (the validator's
  /// constant odometer rewrites them in place).
  void refreshConstants() {
    for (size_t K = 0; K < C.statements().size(); ++K)
      refreshStmtConstants(K);
  }

  /// Evaluates every output cell into a fresh tensor. Requires bind().
  taco::EinsumResult<T> evaluate() {
    StmtState &St = States[0];
    assert(St.Bound && "evaluate() requires a successful bind()");
    taco::Tensor<T> Output(St.OutShape);
    evalStmtInto(0, Output.flat());
    return taco::EinsumResult<T>::success(std::move(Output));
  }

  /// Evaluates into \p Out, reusing its storage — the zero-allocation
  /// execute path. Requires bind().
  void evaluateInto(taco::Tensor<T> &Out) {
    StmtState &St = States[0];
    assert(St.Bound && "evaluateInto() requires a successful bind()");
    reshape(Out, St.OutShape);
    evalStmtInto(0, Out.flat());
  }

  /// Evaluates cell by cell against \p Want, stopping at the first cell for
  /// which \p CellOk(got, want) is false. Verdict-identical to
  /// EinsumEvaluator::compare. Requires bind().
  template <typename CellOkFn>
  taco::EinsumCompare compare(const std::vector<T> &Want, CellOkFn &&CellOk) {
    StmtState &St = States[0];
    assert(St.Bound && "compare() requires a successful bind()");
    size_t Total = 1;
    for (int64_t D : St.OutShape)
      Total *= static_cast<size_t>(D);
    if (Want.size() != Total)
      return taco::EinsumCompare::Mismatch;

    const StmtCode &SC = C.statements()[0];
    assign(St.OutCoord, SC.OutSlots.size(), int64_t(0));
    size_t Linear = 0;
    do {
      for (size_t I = 0; I < SC.OutSlots.size(); ++I)
        St.Coords[static_cast<size_t>(SC.OutSlots[I])] = St.OutCoord[I];
      if (!CellOk(execCell(SC, St), Want[Linear++]))
        return taco::EinsumCompare::Mismatch;
    } while (taco::detail::advanceCounter(St.OutCoord, St.OutShape));
    return taco::EinsumCompare::Match;
  }

  //===--------------------------------------------------------------------===
  // Statement-list surface (evalEinsumSequence-compatible).
  //===--------------------------------------------------------------------===

  /// Runs every statement in order against \p Resolve, binding each result
  /// under its LHS name for later statements (store forwarding through
  /// per-statement scratch tensors, reused across calls), then copies the
  /// final value of \p OutputName into \p Out. Error strings are those of
  /// evalEinsumSequence. Returns false with error() set on failure.
  template <typename ResolveFn>
  bool run(const ResolveFn &Resolve, const std::string &OutputName,
           taco::Tensor<T> &Out) {
    if (!C.ok())
      return false;
    Error.clear();
    const std::vector<StmtCode> &Stmts = C.statements();

    // Name resolution chains through the scratch results of statements
    // executed so far this run (latest definition wins), then the caller's
    // operands — exactly the evolving Operands map of evalEinsumSequence.
    size_t Done = 0;
    auto Chain = [&](const std::string &Name) -> const taco::Tensor<T> * {
      for (size_t K = Done; K > 0; --K)
        if (Stmts[K - 1].LhsName == Name)
          return &Scratch[K - 1];
      return Resolve(Name);
    };

    for (size_t K = 0; K < Stmts.size(); ++K) {
      const StmtCode &SC = Stmts[K];
      StmtState &St = States[K];
      if (!inferShape(SC, St, Chain))
        return false;
      if (!bindStmt(K, Chain, St.InferredShape))
        return false;
      reshape(Scratch[K], St.OutShape);
      evalStmtInto(K, Scratch[K].flat());
      Done = K + 1;
    }

    const taco::Tensor<T> *Result = Chain(OutputName);
    if (!Result) {
      Error = "statement list never defines '" + OutputName + "'";
      return false;
    }
    Out = *Result;
    return true;
  }

private:
  struct AccessBind {
    const std::vector<T> *Data = nullptr;
    /// Pre-resolved (coordinate slot, row-major stride) per index position.
    std::vector<std::pair<int, size_t>> SlotStride;
  };

  /// Per-statement binding and execution state.
  struct StmtState {
    std::vector<int64_t> ExtentBySlot;
    std::vector<int64_t> Coords;
    std::vector<AccessBind> Binds;
    std::vector<T> Regs;
    std::vector<int64_t> OutShape;
    std::vector<int64_t> OutCoord;
    std::vector<int64_t> InferredShape;
    std::vector<int64_t> InferExtent; ///< Per-slot extents seen by inferShape.
    bool Bound = false;
  };

  /// resize()/assign() with allocation tracking: a capacity change counts
  /// as one alloc event.
  template <typename V> void grow(V &Vec, size_t N) {
    size_t Cap = Vec.capacity();
    Vec.resize(N);
    if (Vec.capacity() != Cap)
      ++AllocEvents;
  }
  template <typename V, typename E> void assign(V &Vec, size_t N, E Value) {
    size_t Cap = Vec.capacity();
    Vec.assign(N, Value);
    if (Vec.capacity() != Cap)
      ++AllocEvents;
  }

  /// Resizes \p Out to \p Shape, reusing its flat storage.
  void reshape(taco::Tensor<T> &Out, const std::vector<int64_t> &Shape) {
    if (Out.shape() == Shape)
      return;
    size_t Cap = Out.flat().capacity();
    Out = taco::Tensor<T>(Shape);
    if (Out.flat().capacity() > Cap)
      ++AllocEvents;
  }

  bool bindExtent(StmtState &St, int Slot, const std::string &Var,
                  int64_t Extent) {
    // LoopBegin/LoopEnd is a do-while — the reduction body runs at least
    // once — and Op::Load does not bounds-check, so a zero extent would
    // read out of bounds. Every current caller guarantees extents >= 1
    // (the protocol rejects non-positive sizes, Tensor asserts positive
    // dims), but the assert is debug-only; fail the bind so release builds
    // are safe against a future caller too.
    if (Extent <= 0) {
      Error = "index '" + Var + "' has non-positive extent";
      return false;
    }
    int64_t &Cell = St.ExtentBySlot[static_cast<size_t>(Slot)];
    if (Cell >= 0 && Cell != Extent) {
      Error = "index '" + Var + "' has conflicting extents";
      return false;
    }
    Cell = Extent;
    return true;
  }

  /// EinsumEvaluator::bind for statement \p K: same check order, same
  /// diagnostics, strides row-major with the innermost dimension last.
  template <typename ResolveFn>
  bool bindStmt(size_t K, const ResolveFn &Resolve,
                const std::vector<int64_t> &OutputShape) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    St.Bound = false;
    if (SC.LhsIndices.size() != OutputShape.size()) {
      Error = "output shape rank does not match LHS";
      return false;
    }
    assign(St.ExtentBySlot, static_cast<size_t>(SC.NumSlots), int64_t(-1));
    assign(St.Coords, static_cast<size_t>(SC.NumSlots), int64_t(0));
    for (size_t I = 0; I < OutputShape.size(); ++I)
      if (!bindExtent(St, SC.OutSlots[I], SC.LhsIndices[I], OutputShape[I]))
        return false;

    grow(St.Binds, SC.Accesses.size());
    for (size_t Ord = 0; Ord < SC.Accesses.size(); ++Ord) {
      const AccessInfo &A = SC.Accesses[Ord];
      const taco::Tensor<T> *Operand = Resolve(A.Name);
      if (!Operand) {
        Error = "unbound tensor '" + A.Name + "'";
        return false;
      }
      if (Operand->order() != A.Indices.size()) {
        Error = "tensor '" + A.Name + "' accessed with wrong rank";
        return false;
      }
      const std::vector<int64_t> &Shape = Operand->shape();
      for (size_t I = 0; I < A.Indices.size(); ++I)
        if (!bindExtent(St, A.Slots[I], A.Indices[I], Shape[I]))
          return false;
      AccessBind &AB = St.Binds[Ord];
      AB.Data = &Operand->flat();
      grow(AB.SlotStride, Shape.size());
      size_t Stride = 1;
      for (size_t I = Shape.size(); I > 0; --I) {
        AB.SlotStride[I - 1] = {A.Slots[I - 1], Stride};
        Stride *= static_cast<size_t>(Shape[I - 1]);
      }
    }

    grow(St.Regs, static_cast<size_t>(SC.NumRegs));
    refreshStmtConstants(K);

    size_t Cap = St.OutShape.capacity();
    St.OutShape = OutputShape;
    if (St.OutShape.capacity() != Cap)
      ++AllocEvents;
    St.Bound = true;
    return true;
  }

  void refreshStmtConstants(size_t K) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    if (St.Regs.size() < static_cast<size_t>(SC.NumRegs))
      grow(St.Regs, static_cast<size_t>(SC.NumRegs));
    for (size_t I = 0; I < SC.Consts.size(); ++I) {
      assert(!SC.Consts[I]->isSymbolic() &&
             "symbolic constants must be instantiated");
      St.Regs[static_cast<size_t>(SC.ConstRegs[I])] =
          T(SC.Consts[I]->value());
    }
  }

  /// taco::inferLhsShape for statement \p K: prefer an operand already bound
  /// under the LHS name with matching order, else derive extents from the
  /// RHS accesses in leaf order (first binding of a variable wins).
  template <typename ResolveFn>
  bool inferShape(const StmtCode &SC, StmtState &St,
                  const ResolveFn &Resolve) {
    const taco::Tensor<T> *Existing = Resolve(SC.LhsName);
    if (Existing && Existing->order() == SC.LhsIndices.size()) {
      size_t Cap = St.InferredShape.capacity();
      St.InferredShape = Existing->shape();
      if (St.InferredShape.capacity() != Cap)
        ++AllocEvents;
      return true;
    }
    assign(St.InferExtent, static_cast<size_t>(SC.NumSlots), int64_t(-1));
    for (const AccessInfo &A : SC.Accesses) {
      const taco::Tensor<T> *Operand = Resolve(A.Name);
      if (!Operand || Operand->order() != A.Indices.size())
        continue; // unbound/mismatched operands are bind()'s problem
      for (size_t I = 0; I < A.Slots.size(); ++I) {
        int64_t &Cell = St.InferExtent[static_cast<size_t>(A.Slots[I])];
        if (Cell < 0)
          Cell = Operand->shape()[I];
      }
    }
    assign(St.InferredShape, size_t(0), int64_t(0));
    for (size_t I = 0; I < SC.OutSlots.size(); ++I) {
      int64_t Extent = St.InferExtent[static_cast<size_t>(SC.OutSlots[I])];
      if (Extent < 0) {
        Error = "no extent derivable for output index '" + SC.LhsIndices[I] +
                "'";
        return false;
      }
      size_t Cap = St.InferredShape.capacity();
      St.InferredShape.push_back(Extent);
      if (St.InferredShape.capacity() != Cap)
        ++AllocEvents;
    }
    return true;
  }

  /// Runs the instruction stream once for the current coordinates; the cell
  /// value lands in the root register.
  T execCell(const StmtCode &SC, StmtState &St) {
    const Inst *Base = SC.Instrs.data();
    const Inst *I = Base;
    const Inst *End = Base + SC.Instrs.size();
    T *R = St.Regs.data();
    int64_t *Coords = St.Coords.data();
    const int64_t *Ext = St.ExtentBySlot.data();
    while (I != End) {
      switch (I->K) {
      case Op::Load: {
        const AccessBind &AB = St.Binds[static_cast<size_t>(I->A)];
        size_t Offset = 0;
        for (const std::pair<int, size_t> &P : AB.SlotStride)
          Offset += static_cast<size_t>(Coords[P.first]) * P.second;
        R[I->Dst] = (*AB.Data)[Offset];
        break;
      }
      case Op::Add:
        R[I->Dst] = R[I->A] + R[I->B];
        break;
      case Op::Sub:
        R[I->Dst] = R[I->A] - R[I->B];
        break;
      case Op::Mul:
        R[I->Dst] = R[I->A] * R[I->B];
        break;
      case Op::Div:
        R[I->Dst] = R[I->A] / R[I->B];
        break;
      case Op::Neg:
        R[I->Dst] = -R[I->A];
        break;
      case Op::Max:
        R[I->Dst] = R[I->A] < R[I->B] ? R[I->B] : R[I->A];
        break;
      case Op::ResetAcc:
        R[I->Dst] = T{};
        break;
      case Op::AccAdd:
        R[I->Dst] += R[I->A];
        break;
      case Op::MulAcc: {
        T Product = R[I->A] * R[I->B];
        R[I->Dst] += Product;
        break;
      }
      case Op::LoopBegin:
        Coords[I->Dst] = 0;
        break;
      case Op::LoopEnd:
        if (++Coords[I->Dst] < Ext[I->Dst]) {
          I = Base + I->A;
          continue;
        }
        break;
      }
      ++I;
    }
    return R[SC.Root];
  }

  /// The row-major output odometer of EinsumEvaluator::evaluate.
  void evalStmtInto(size_t K, std::vector<T> &Flat) {
    const StmtCode &SC = C.statements()[K];
    StmtState &St = States[K];
    assign(St.OutCoord, SC.OutSlots.size(), int64_t(0));
    size_t Linear = 0;
    do {
      for (size_t I = 0; I < SC.OutSlots.size(); ++I)
        St.Coords[static_cast<size_t>(SC.OutSlots[I])] = St.OutCoord[I];
      Flat[Linear++] = execCell(SC, St);
    } while (taco::detail::advanceCounter(St.OutCoord, St.OutShape));
  }

  const Code &C;
  std::string Error;
  std::vector<StmtState> States;
  std::vector<taco::Tensor<T>> Scratch;
  int64_t AllocEvents = 0;
};

} // namespace vm
} // namespace stagg

#endif // STAGG_VM_INTERPRETER_H
