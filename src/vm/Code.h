//===- vm/Code.h - Register-based bytecode for lifted programs --*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vm::Code is the compiled form of a lifted TACO program (or ordered
/// statement list): a flat register-based instruction stream in the style of
/// PyTorch JIT's interpreter, produced once by vm::Compiler and executed any
/// number of times by vm::Interpreter. The stream encodes exactly the
/// evaluation the tree-walking EinsumEvaluator performs — same loop nesting,
/// same accumulation order, same operator semantics — so outputs are
/// bit-identical, but the hot loop is a switch over a dense `Inst` array
/// instead of a recursive walk that allocates a coordinate vector per
/// reduction-node visit.
///
/// Division of labor:
///
///  * Compilation (vm::Compiler) happens once per program: reduction
///    placement is borrowed from taco::EinsumProgram (guaranteeing identical
///    slot assignment and LCA reduction placement), then the node tree is
///    lowered to instructions. Loops appear in the stream as
///    LoopBegin/LoopEnd pairs over index slots; `acc += a * b` bodies fuse
///    into a single MulAcc.
///  * Binding (vm::Interpreter::bind) happens once per operand set: loop
///    ranges are resolved from the bound shapes into a per-slot extent
///    table, and every access is resolved to flat storage plus pre-computed
///    (slot, stride) pairs.
///  * Execution touches only flat arrays: registers, coordinates, extents.
///
/// Lifetime: Code copies every name and slot it needs, but keeps pointers to
/// the source program's ConstantExpr nodes so the validator's constant
/// odometer (ConstantExpr::setValue + refreshConstants) works unchanged.
/// The source statements' RHS trees must therefore outlive the Code; moving
/// a taco::Program keeps the heap-allocated RHS stable, copying does not.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VM_CODE_H
#define STAGG_VM_CODE_H

#include "taco/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stagg {
namespace vm {

/// One VM opcode. Arithmetic follows EinsumEvaluator::evalInner exactly;
/// Max is `a < b ? b : a`, reductions accumulate with `+=`.
enum class Op : uint8_t {
  Load,      ///< R[Dst] = access A's storage at the current coordinates.
  Add,       ///< R[Dst] = R[A] + R[B]
  Sub,       ///< R[Dst] = R[A] - R[B]
  Mul,       ///< R[Dst] = R[A] * R[B]
  Div,       ///< R[Dst] = R[A] / R[B]
  Neg,       ///< R[Dst] = -R[A]
  Max,       ///< R[Dst] = R[A] < R[B] ? R[B] : R[A]
  ResetAcc,  ///< R[Dst] = T{}
  AccAdd,    ///< R[Dst] += R[A]
  MulAcc,    ///< R[Dst] += R[A] * R[B] (product rounded first, like the
             ///< tree-walk's `Sum += Lhs * Rhs`)
  LoopBegin, ///< Coords[Dst] = 0; fall through (body runs at least once)
  LoopEnd,   ///< if (++Coords[Dst] < Extent[Dst]) jump to instruction A

  // Fused span superinstructions, emitted only by vm::optimize. Each
  // replaces a whole LoopBegin/body/LoopEnd triple (or, for MapSpan, the
  // whole stream) with one tight pointer loop over a span slot. The loop
  // body performs exactly the scalar sequence — load, (load,) op,
  // accumulate — in the same order, so results are bit-identical; there is
  // no reassociation and no fast-math, the win is dispatch removal (and
  // compiler auto-vectorization of the stride-1 cases).
  DotSpan, ///< for k in 0..Extent[C): R[Dst] += a_A[k] * a_B[k] — the fused
           ///< form of {Load, Load, MulAcc} over loop slot C, where A/B are
           ///< access ordinals.
  SumSpan, ///< for k in 0..Extent[C): R[Dst] += a_A[k] — the fused form of
           ///< {Load, AccAdd} over loop slot C; A is an access ordinal.
  MapSpan, ///< Whole-statement elementwise map over the innermost free
           ///< dimension (slot C): out[k] = op(a_A[k][, a_B[k]]) with the
           ///< sub-operation in Dst (see MapOp). Executed at the output
           ///< odometer level, one contiguous row at a time.
};

/// MapSpan sub-operations, carried in Inst::Dst.
enum class MapOp : int32_t {
  Copy = 0, ///< out = a
  Neg = 1,  ///< out = -a
  Add = 2,  ///< out = a + b
  Sub = 3,  ///< out = a - b
  Mul = 4,  ///< out = a * b
  Div = 5,  ///< out = a / b
  Max = 6,  ///< out = a < b ? b : a
};

/// One instruction. Operand meaning depends on the opcode: Dst is a register
/// (or an index slot for LoopBegin/LoopEnd, or a MapOp for MapSpan), A/B are
/// source registers, an access ordinal (Load and the spans), or a jump
/// target (LoopEnd). C is the span slot of the fused superinstructions and
/// unused (-1) elsewhere.
struct Inst {
  Op K;
  int32_t Dst = -1;
  int32_t A = -1;
  int32_t B = -1;
  int32_t C = -1;
};

/// One tensor access of a compiled statement, in leaf (left-to-right) order —
/// the order the tree-walking binder discovers extent conflicts in.
struct AccessInfo {
  std::string Name;
  std::vector<std::string> Indices; ///< Index variable names, for diagnostics.
  std::vector<int> Slots;           ///< One slot per index position.
};

/// One compiled statement: `Lhs(indices...) = <instruction stream>`.
struct StmtCode {
  std::string LhsName;
  std::vector<std::string> LhsIndices;
  int NumSlots = 0;
  std::vector<int> OutSlots; ///< One slot per LHS index position.
  std::vector<AccessInfo> Accesses;
  /// Constant leaves in ordinal order. Live pointers into the source RHS
  /// tree: refreshConstants re-reads them after the validator's setValue.
  std::vector<const taco::ConstantExpr *> Consts;
  std::vector<int> ConstRegs; ///< Constant ordinal -> pre-filled register.
  std::vector<Inst> Instrs;
  int Root = -1; ///< Register holding the cell value after the stream runs.
  int NumRegs = 0;
};

/// A compiled program: one StmtCode per statement of the source list (a
/// single taco::Program compiles to one). Immutable after compilation; any
/// number of Interpreters (including concurrently) can share one instance.
class Code {
public:
  bool ok() const { return Error.empty() && !Stmts.empty(); }
  const std::string &error() const { return Error; }
  const std::vector<StmtCode> &statements() const { return Stmts; }
  bool single() const { return Stmts.size() == 1; }

  /// Compiler hooks; not for consumers.
  void setError(std::string E) {
    Error = std::move(E);
    Stmts.clear();
  }
  std::vector<StmtCode> &mutableStatements() { return Stmts; }

private:
  std::string Error;
  std::vector<StmtCode> Stmts;
};

} // namespace vm
} // namespace stagg

#endif // STAGG_VM_CODE_H
