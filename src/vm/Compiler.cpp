//===- vm/Compiler.cpp - Lower TACO programs to vm::Code ------------------===//

#include "vm/Compiler.h"

#include "taco/Einsum.h"

using namespace stagg;
using namespace stagg::vm;

namespace {

/// Linearizes one EinsumProgram node tree into a StmtCode. The recursion
/// mirrors EinsumEvaluator::evalNode/evalInner one-to-one so the instruction
/// stream performs the identical sequence of loads, operations, and
/// accumulations.
class Lowering {
public:
  Lowering(const taco::EinsumProgram &S, StmtCode &Out) : S(S), Out(Out) {}

  void run() {
    const taco::Program &P = S.program();
    Out.LhsName = P.Lhs.name();
    Out.LhsIndices = P.Lhs.indices();
    Out.NumSlots = static_cast<int>(S.numSlots());
    Out.OutSlots = S.outSlots();

    // Accesses and constants in ordinal (leaf) order — the binder walks
    // them in this order, matching the tree-walk's conflict discovery.
    for (int NodeId : S.accessNodes()) {
      const taco::EinsumProgram::Node &N = node(NodeId);
      AccessInfo Info;
      Info.Name = N.Access->name();
      Info.Indices = N.Access->indices();
      Info.Slots = N.Slots;
      Out.Accesses.push_back(std::move(Info));
    }
    for (int NodeId : S.constNodes()) {
      Out.Consts.push_back(node(NodeId).Constant);
      Out.ConstRegs.push_back(newReg());
    }

    Out.Root = lowerNode(S.root());
    Out.NumRegs = NextReg;
  }

private:
  const taco::EinsumProgram::Node &node(int Id) const {
    return S.nodes()[static_cast<size_t>(Id)];
  }

  int newReg() { return NextReg++; }

  void emit(Op K, int32_t Dst, int32_t A = -1, int32_t B = -1) {
    Out.Instrs.push_back(Inst{K, Dst, A, B});
  }

  /// evalNode: wraps the node's own evaluation in its reduction loops.
  int lowerNode(int Id) {
    const taco::EinsumProgram::Node &N = node(Id);
    if (N.ReduceSlots.empty())
      return lowerInner(Id);

    // ResetAcc, then one loop per introduced variable (innermost last, the
    // mixed-radix order of the tree-walk), accumulating the body per
    // iteration. LoopBegin falls through, so the body runs at least once —
    // the tree-walk's do-while.
    int Acc = newReg();
    emit(Op::ResetAcc, Acc);
    std::vector<int32_t> BodyStarts;
    for (int Slot : N.ReduceSlots) {
      emit(Op::LoopBegin, Slot);
      BodyStarts.push_back(static_cast<int32_t>(Out.Instrs.size()));
    }

    // The body is evalInner; `Sum += Lhs * Rhs` fuses into MulAcc (the
    // product is still rounded before the add, as in the tree-walk).
    if (N.Kind == taco::Expr::Kind::Binary &&
        N.Op == taco::BinOpKind::Mul) {
      int A = lowerNode(N.ChildA);
      int B = lowerNode(N.ChildB);
      emit(Op::MulAcc, Acc, A, B);
    } else {
      emit(Op::AccAdd, Acc, lowerInner(Id));
    }

    for (size_t I = N.ReduceSlots.size(); I > 0; --I)
      emit(Op::LoopEnd, N.ReduceSlots[I - 1], BodyStarts[I - 1]);
    return Acc;
  }

  /// evalInner: the node's own operation, children via lowerNode (which
  /// replays their reduction loops inside this body).
  int lowerInner(int Id) {
    const taco::EinsumProgram::Node &N = node(Id);
    switch (N.Kind) {
    case taco::Expr::Kind::Access: {
      int R = newReg();
      emit(Op::Load, R, N.AccessOrdinal);
      return R;
    }
    case taco::Expr::Kind::Constant:
      return Out.ConstRegs[static_cast<size_t>(N.ConstOrdinal)];
    case taco::Expr::Kind::Binary: {
      int A = lowerNode(N.ChildA);
      int B = lowerNode(N.ChildB);
      int R = newReg();
      switch (N.Op) {
      case taco::BinOpKind::Add:
        emit(Op::Add, R, A, B);
        break;
      case taco::BinOpKind::Sub:
        emit(Op::Sub, R, A, B);
        break;
      case taco::BinOpKind::Mul:
        emit(Op::Mul, R, A, B);
        break;
      case taco::BinOpKind::Div:
        emit(Op::Div, R, A, B);
        break;
      }
      return R;
    }
    case taco::Expr::Kind::Negate: {
      int A = lowerNode(N.ChildA);
      int R = newReg();
      emit(Op::Neg, R, A);
      return R;
    }
    case taco::Expr::Kind::Max: {
      int A = lowerNode(N.ChildA);
      int B = lowerNode(N.ChildB);
      int R = newReg();
      emit(Op::Max, R, A, B);
      return R;
    }
    }
    return -1;
  }

  const taco::EinsumProgram &S;
  StmtCode &Out;
  int NextReg = 0;
};

} // namespace

namespace {

/// Compiles one statement into \p C; false (with C.Error set) on failure.
/// The compiled StmtCode keeps ConstantExpr pointers into \p P's RHS tree,
/// so \p P must be the caller's own program, never a temporary.
bool compileInto(const taco::Program &P, Code &C, std::string &Error) {
  taco::EinsumProgram S(P);
  if (!S.ok()) {
    Error = S.error();
    return false;
  }
  StmtCode Stmt;
  Lowering(S, Stmt).run();
  C.mutableStatements().push_back(std::move(Stmt));
  return true;
}

} // namespace

Code Compiler::compile(const taco::Program &P) const {
  Code C;
  std::string Error;
  if (!compileInto(P, C, Error))
    C.setError(std::move(Error));
  return C;
}

Code Compiler::compile(const std::vector<taco::Program> &Statements) const {
  Code C;
  if (Statements.empty()) {
    C.setError("empty statement list");
    return C;
  }
  std::string Error;
  for (const taco::Program &P : Statements)
    if (!compileInto(P, C, Error)) {
      C.setError(std::move(Error));
      return C;
    }
  return C;
}
