//===- vm/Optimizer.h - Post-compile optimizer for vm::Code -----*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vm::optimize rewrites a compiled vm::Code into a faster but
/// result-identical stream. Three families of passes, all bit-identity
/// preserving by construction (no reassociation, no fast-math, no change to
/// accumulation order):
///
///  * Classic passes on the flat stream: loop-invariant load hoisting (a
///    Load whose access does not use the enclosing loop's slot moves above
///    the LoopBegin), constant-register dedup (only when the caller promises
///    the constants are frozen — the validator's constant odometer rewrites
///    ConstantExpr values in place, which makes value-based merging unsound
///    there), and dead-register elimination with compact renumbering.
///
///  * Fused span superinstructions: an innermost reduction loop whose body
///    is exactly {Load, Load, MulAcc} becomes one Op::DotSpan; {Load,
///    AccAdd} becomes Op::SumSpan; a loop-free elementwise statement with a
///    recognized root becomes a single Op::MapSpan executed one output row
///    at a time. Each superinstruction performs the same loads and the same
///    accumulation sequence as the scalar loop it replaces, so outputs are
///    bit-identical; the win is that the interpreter's dispatch switch runs
///    once per span instead of once per element.
///
///  * vm::disassemble renders either stream human-readably, for the
///    `stagg disasm` subcommand and for debugging the passes themselves.
///
/// optimize() is idempotent (span opcodes are opaque to the pattern
/// matchers) and total: a malformed or already-minimal stream comes back
/// unchanged rather than failing.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VM_OPTIMIZER_H
#define STAGG_VM_OPTIMIZER_H

#include "vm/Code.h"

#include <string>

namespace stagg {
namespace vm {

/// Optimizer knobs. Defaults are what every consumer except the validator
/// wants; the individual pass switches exist for the per-pass unit tests.
struct OptimizeOptions {
  /// Promise that the ConstantExpr nodes the code references will not be
  /// rewritten (ConstantExpr::setValue) for the lifetime of the optimized
  /// Code. Enables value-based constant dedup. The validator must pass
  /// false: its constant odometer retunes every constant leaf between
  /// refreshConstants() calls, so two constants that are equal now may
  /// diverge later. Pointer-identical constants are always merged.
  bool FreezeConstants = false;

  bool HoistLoads = true;     ///< Loop-invariant load hoisting.
  bool FuseSpans = true;      ///< DotSpan/SumSpan/MapSpan recognition.
  bool EliminateDead = true;  ///< Dead-register elimination + renumbering.
  bool DedupConstants = true; ///< Constant-register dedup (see above).
};

/// Returns an optimized copy of \p C. A !ok() input is returned unchanged.
Code optimize(const Code &C, const OptimizeOptions &Options = {});

/// Renders \p C as a human-readable listing: one header line per statement
/// (LHS, accesses, constants) followed by the numbered instruction stream
/// with loop-nesting indentation. Stable enough to grep in tests.
std::string disassemble(const Code &C);

} // namespace vm
} // namespace stagg

#endif // STAGG_VM_OPTIMIZER_H
