//===- vm/Compiler.h - Lower TACO programs to vm::Code ----------*- C++ -*-===//
//
// Part of the STAGG reproduction of "Guided Tensor Lifting" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vm::Compiler lowers a taco::Program (or an ordered statement list) to a
/// vm::Code instruction stream. Slot assignment and reduction placement are
/// delegated to taco::EinsumProgram — the structure compiler both the
/// tree-walking evaluator and the VM agree on — so the lowering is a pure
/// linearization: every expression node becomes a register, reduction nodes
/// become ResetAcc + LoopBegin/LoopEnd nests, and `acc += a * b` bodies fuse
/// into MulAcc.
///
//===----------------------------------------------------------------------===//

#ifndef STAGG_VM_COMPILER_H
#define STAGG_VM_COMPILER_H

#include "vm/Code.h"

#include "taco/Ast.h"

#include <vector>

namespace stagg {
namespace vm {

/// Compiles TACO programs to vm::Code. Stateless; the free functions below
/// are the usual entry points.
class Compiler {
public:
  /// Compiles a single statement. On structural failure (no RHS), the
  /// returned Code is !ok() and carries the diagnostic.
  Code compile(const taco::Program &P) const;

  /// Compiles an ordered statement list; statements execute in order with
  /// each result bound under its LHS name (evalEinsumSequence semantics).
  Code compile(const std::vector<taco::Program> &Statements) const;
};

/// Convenience wrappers around a stateless Compiler.
inline Code compileProgram(const taco::Program &P) {
  return Compiler().compile(P);
}
inline Code compileStatements(const std::vector<taco::Program> &Statements) {
  return Compiler().compile(Statements);
}

} // namespace vm
} // namespace stagg

#endif // STAGG_VM_COMPILER_H
